//! The multi-purpose channel: SCA traffic and processor-to-processor
//! messages sharing one waveguide under a TDM frame (paper §IV: "PSCAN
//! presents a communication mode on a multi-purpose physical channel").
//!
//! ```text
//! cargo run --release --example shared_channel
//! ```

use photonics::waveguide::ChipLayout;
use photonics::wdm::WavelengthPlan;
use pscan::arbitration::{Message, TdmPlanner};
use pscan::bus::BusSim;

fn main() {
    let nodes = 8;
    let bus = BusSim::new(
        ChipLayout::square(20.0, nodes),
        WavelengthPlan::paper_320g(),
    );

    // Frame: 64 slots. Nodes 2 and 5 hold SCA shares (a partial transpose
    // writeback); three point-to-point messages pack into the gaps.
    let mut planner = TdmPlanner::new(nodes, 64);
    planner.reserve(2, 0, 16).reserve(5, 16, 16);
    let messages = [
        Message {
            src: 0,
            dst: 7,
            words: 12,
        }, // code broadcast downstream
        Message {
            src: 1,
            dst: 4,
            words: 8,
        }, // halo exchange
        Message {
            src: 3,
            dst: 6,
            words: 6,
        }, // reduction partial
    ];
    let plan = planner.plan(&messages).expect("frame fits");

    println!("frame plan ({} slots):", plan.frame_len);
    for (i, (m, (start, len))) in messages.iter().zip(&plan.message_slots).enumerate() {
        println!(
            "  message {i}: P{} -> P{} ({} words) at slots {}..{}",
            m.src,
            m.dst,
            m.words,
            start,
            start + len
        );
    }
    for (n, cp) in plan.programs.iter().enumerate() {
        if !cp.entries().is_empty() {
            println!(
                "  P{n} CP: {} entries, {} bits",
                cp.entries().len(),
                cp.encoded_bits()
            );
        }
    }

    // Execute the whole frame as one transaction.
    let mut data = vec![Vec::new(); nodes];
    data[2] = (200..216u64).collect();
    data[5] = (500..516u64).collect();
    data[0] = (0..12u64).collect();
    data[1] = (100..108u64).collect();
    data[3] = (300..306u64).collect();
    let out = bus
        .transact(&plan.programs, &data)
        .expect("collision-free frame");

    println!("\ndelivered:");
    for n in 0..nodes {
        if !out.delivered[n].is_empty() {
            println!(
                "  P{n} received {:?} at {}",
                out.delivered[n],
                out.completion[n].unwrap()
            );
        }
    }
    println!(
        "\nterminus saw the SCA shares intact; frame utilization {:.0}% over {} slots",
        out.gather.utilization * 100.0,
        out.gather.received.len()
    );
    assert_eq!(out.delivered[7], (0..12u64).collect::<Vec<_>>());
    assert_eq!(out.delivered[4], (100..108u64).collect::<Vec<_>>());
    assert_eq!(out.delivered[6], (300..306u64).collect::<Vec<_>>());
}
