//! Timing margins: how much calibration drift can the SCA tolerate?
//!
//! §III-A demands "exact temporal alignment of data elements". This sweep
//! injects a growing timing error into one node of a 16-node gather and
//! reports when the splice corrupts — the capture window is exactly ±half a
//! bus slot, independent of where on the waveguide the drifting node sits.
//!
//! ```text
//! cargo run --release --example timing_margins
//! ```

use photonics::waveguide::ChipLayout;
use photonics::wdm::WavelengthPlan;
use pscan::bus::{BusError, BusSim};
use pscan::compiler::{CpCompiler, GatherSpec};

fn main() {
    let nodes = 16;
    let spec = GatherSpec::interleaved(nodes, 4, 4);
    let cps = CpCompiler.compile_gather(&spec, nodes);
    let data: Vec<Vec<u64>> = (0..nodes).map(|n| vec![n as u64; 16]).collect();
    let slot_ps = WavelengthPlan::paper_320g().slot().as_ps() as i64;
    println!("bus slot = {slot_ps} ps; drifting node 7 of {nodes}\n");
    println!(
        "{:>10} {:>12} {:>14}",
        "drift (ps)", "outcome", "utilization"
    );

    for drift in [-120i64, -60, -49, -25, 0, 25, 49, 60, 120, 250] {
        let mut bus = BusSim::new(
            ChipLayout::square(20.0, nodes),
            WavelengthPlan::paper_320g(),
        );
        bus.set_timing_error(7, drift);
        match bus.gather(&cps, &data) {
            Ok(out) => {
                let ok = out.utilization == 1.0;
                println!(
                    "{drift:>10} {:>12} {:>13.1}%",
                    if ok { "clean" } else { "GAPPED" },
                    out.utilization * 100.0
                );
            }
            Err(BusError::Collision {
                slot,
                first,
                second,
            }) => {
                println!(
                    "{drift:>10} {:>12} {:>14}",
                    "COLLISION",
                    format!("slot {slot}: {second} on {first}")
                );
            }
            Err(e) => println!("{drift:>10} {:>12} {e}", "ERROR"),
        }
    }

    println!(
        "\nwithin +/-{} ps (half a slot) the splice is perfect; past it, the drifting",
        slot_ps / 2
    );
    println!("node lands on a neighbour's wavefront — the open-loop clock must hold its");
    println!("calibration to sub-slot precision, and nothing more.");
}
