//! Scaling study: the §VI LLMORE-style sweep — how 2-D FFT throughput and
//! the data-reorganization share evolve from 4 to 4096 cores on the
//! electronic mesh vs P-sync (Figs. 13 and 14 in miniature).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use llmore::sweep::{paper_core_counts, sweep_cores};
use llmore::SystemParams;

fn bar(frac: f64, width: usize) -> String {
    let n = (frac * width as f64).round() as usize;
    format!(
        "{}{}",
        "#".repeat(n.min(width)),
        " ".repeat(width - n.min(width))
    )
}

fn main() {
    let params = SystemParams::default();
    let pts = sweep_cores(&params, &paper_core_counts());

    println!("2-D FFT (1024x1024), 4 shared memory controllers, equalized links\n");
    println!(
        "{:>6} | {:>10} {:>10} {:>10} | {:>9} | reorg share (mesh vs P-sync)",
        "cores", "ideal", "P-sync", "mesh", "gap"
    );
    let max_g = pts.iter().map(|p| p.ideal_gflops).fold(0.0, f64::max);
    for p in &pts {
        println!(
            "{:>6} | {:>10.2} {:>10.2} {:>10.2} | {:>8.2}x | mesh [{}] {:>4.0}%  psync [{}] {:>4.0}%",
            p.cores,
            p.ideal_gflops,
            p.psync_gflops,
            p.mesh_gflops,
            p.psync_gflops / p.mesh_gflops,
            bar(p.mesh_reorg_frac, 16),
            p.mesh_reorg_frac * 100.0,
            bar(p.psync_reorg_frac, 16),
            p.psync_reorg_frac * 100.0,
        );
    }
    let peak = pts
        .iter()
        .max_by(|a, b| a.mesh_gflops.partial_cmp(&b.mesh_gflops).unwrap())
        .unwrap();
    println!(
        "\n(GFLOPS = paper multiply-costing; ideal peak {:.1} GFLOPS; mesh peaks at {} cores and declines)",
        max_g, peak.cores
    );
}
