//! Corner turn: the ISR / SAR imaging motif from the paper's introduction —
//! a matrix held row-wise across processors must land column-wise in DRAM.
//!
//! Runs the same 64-processor corner turn two ways and compares cycles:
//! 1. SCA on the PSCAN (in-flight reorganization, Table III arithmetic), and
//! 2. element packets through a wormhole mesh with reorder staging.
//!
//! ```text
//! cargo run --release --example corner_turn
//! ```

use analytic::table3::Table3Params;
use emesh::mesh::MeshConfig;
use emesh::workloads::load_transpose;
use pscan::compiler::GatherSpec;
use pscan::network::{Pscan, PscanConfig};

const PROCS: usize = 64;
const ROW_LEN: usize = 64;

fn main() {
    println!("corner turn: {PROCS} processors x {ROW_LEN}-sample rows\n");

    // --- PSCAN: one SCA, data reorganized in flight -----------------------
    // Transposed stream: slot k = c*P + r comes from processor r.
    let slot_source: Vec<usize> = (0..PROCS * ROW_LEN).map(|k| k % PROCS).collect();
    let spec = GatherSpec { slot_source };
    let pscan = Pscan::new(PscanConfig {
        nodes: PROCS,
        ..Default::default()
    });
    let data: Vec<Vec<u64>> = (0..PROCS)
        .map(|p| (0..ROW_LEN as u64).map(|c| (p as u64) << 32 | c).collect())
        .collect();
    let out = pscan.gather(&spec, &data).expect("clean SCA");
    assert_eq!(out.utilization, 1.0);

    let t3 = Table3Params {
        n: ROW_LEN as u64,
        p: PROCS as u64,
        ..Default::default()
    };
    let pscan_cycles = t3.pscan_cycles();
    println!(
        "PSCAN : {} bus cycles ({} row transactions x {} cycles, 100% bus utilization)",
        pscan_cycles,
        t3.transactions(),
        t3.cycles_per_transaction()
    );

    // --- Mesh: 2-flit element packets + t_p reorder staging ---------------
    for t_p in [1u64, 4] {
        let mut mesh = load_transpose(MeshConfig::table3(PROCS, t_p), PROCS, ROW_LEN);
        let res = mesh.run().expect("no deadlock");
        let mult = res.cycles as f64 / pscan_cycles as f64;
        println!(
            "mesh  : {} cycles at t_p = {t_p}  ({mult:.2}x PSCAN; DRAM row hit rate {:.0}%)",
            res.cycles,
            mesh.memif(0).dram_stats().hit_rate() * 100.0
        );
    }

    println!("\nThe SCA wins because elements coalesce on the waveguide itself —");
    println!("no headers per element, no hotspot ejection port, no staging buffers.");
}
