//! Boot over light: §IV's claim that "all data, including communication
//! programs and computation programs can be delivered on the SCA⁻¹" —
//! compile the distributed-FFT application, ship every node its CPs *and*
//! its FFT machine code through the simulated photonic bus, decode on
//! arrival, and execute the delivered code.
//!
//! ```text
//! cargo run --release --example boot_over_light
//! ```

use fft::complex::max_error;
use fft::{fft_in_place, Complex64};
use pscan::network::{Pscan, PscanConfig};
use psync::codegen::{boot_chain, compile_fft2d_app, unpack_bundle};

fn main() {
    let procs = 8;
    let n = 64;
    println!("compiling the {n}x{n} 2-D FFT for {procs} P-sync processors...");
    let app = compile_fft2d_app(procs, n);
    let chain = boot_chain(&app);
    println!(
        "boot chain: {} words total ({} control words of CPs, rest is FFT machine code + twiddle ROM)",
        chain.burst.len(),
        chain.control_layout.iter().flatten().sum::<usize>(),
    );

    // One SCA⁻¹ carries the whole boot image.
    let pscan = Pscan::new(PscanConfig {
        nodes: procs,
        ..Default::default()
    });
    let out = pscan
        .scatter(&chain.spec, &chain.burst)
        .expect("boot scatter");
    println!(
        "boot burst delivered in {} bus slots ({:.2} us at 320 Gb/s)",
        chain.burst.len(),
        chain.burst.len() as f64 * 200e-12 * 1e6
    );

    // Every node decodes its bundle and runs the delivered code.
    let x: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i as f64 * 0.2).sin(), (i as f64 * 0.05).cos()))
        .collect();
    let mut exact = x.clone();
    fft_in_place(&mut exact);
    for p in 0..procs {
        let bundle = unpack_bundle(&chain, p, &out.delivered[p]).expect("decode");
        let mut y = x.clone();
        let stats = bundle.comp_fft.execute(&mut y);
        let err = max_error(&y, &exact);
        println!(
            "  P{p}: decoded {} instrs, executed {} multiplies, FFT error {err:.1e}",
            bundle.comp_fft.len(),
            stats.multiplies
        );
        assert!(err < 1e-3);
    }
    println!("\nevery node booted from photons and computed a correct FFT.");
}
