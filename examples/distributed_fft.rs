//! The paper's headline application: a distributed 2-D FFT on the P-sync
//! machine, end to end — SCA⁻¹ delivery, parallel row FFTs, SCA transpose,
//! redelivery, column FFTs, final writeback — with real samples moving
//! through the simulated photonic bus and the result checked against a
//! monolithic FFT.
//!
//! ```text
//! cargo run --release --example distributed_fft [n] [procs]
//! ```

use fft::complex::max_error;
use fft::fft2d::{Fft2d, Matrix};
use fft::Complex64;
use psync::run_fft2d;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let procs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);

    println!("distributed 2-D FFT: {n}x{n} samples on {procs} P-sync processors\n");
    let input = Matrix::from_fn(n, n, |r, c| {
        Complex64::new(
            ((r * 5 + c) as f64 * 0.13).sin(),
            ((r as f64) * 0.7 - c as f64 * 0.3).cos() * 0.4,
        )
    });

    let run = run_fft2d(procs, &input);

    println!(
        "{:<12} {:>14} {:>12} {:>12}",
        "phase", "bus slots", "DRAM cycles", "time (us)"
    );
    for p in &run.phases {
        println!(
            "{:<12} {:>14} {:>12} {:>12.3}",
            p.name,
            p.bus_slots,
            p.dram_cycles,
            p.seconds * 1e6
        );
    }
    println!(
        "\ntotal: {:.3} us   compute fraction: {:.1}%   transpose bus slots: {}",
        run.total_seconds * 1e6,
        run.compute_fraction * 100.0,
        run.transpose_bus_slots
    );

    // Verify against the monolithic transform.
    let reference = Fft2d::new(n, n).forward(&input);
    let err = max_error(&run.output.data, &reference.data);
    println!("max |distributed - monolithic| = {err:.2e} (64-bit wire-format quantization)");
    assert!(err < 1e-2 * n as f64, "numerical mismatch");
    println!("result verified.");
}
