//! Large 1-D FFTs are 2-D FFTs (paper §II / Bailey): a 2²⁰-point vector FFT
//! decomposed 1024 × 1024, whose two corner turns are priced with the
//! Table III SCA arithmetic vs the simulated mesh multiplier.
//!
//! ```text
//! cargo run --release --example large_1d_fft [log2_n]
//! ```

use analytic::table3::Table3Params;
use fft::complex::max_error;
use fft::{fft_in_place, Complex64, SixStepPlan};

fn main() {
    let log2n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let n = 1usize << log2n;
    let plan = SixStepPlan::square(n);
    let (n1, n2) = plan.shape();
    println!("1-D FFT of 2^{log2n} = {n} points, decomposed {n1} x {n2}\n");

    // Verify numerically at this size.
    let x: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i as f64 * 0.0137).sin(), (i as f64 * 0.0071).cos()))
        .collect();
    let six = plan.forward(&x);
    let mut mono = x.clone();
    fft_in_place(&mut mono);
    let err = max_error(&six, &mono);
    println!("six-step vs monolithic max error: {err:.2e}");
    assert!(err < 1e-6 * n as f64);

    // Cost model: the decomposition needs two full corner turns (steps 1
    // and 4). Price each with the Table III arithmetic on P = n1
    // processors.
    let t3 = Table3Params {
        n: n2 as u64,
        p: n1 as u64,
        ..Default::default()
    };
    let pscan_turn = t3.pscan_cycles();
    // Conservative mesh multipliers measured by our Table III simulation.
    let mesh_turn_tp1 = (pscan_turn as f64 * 2.93) as u64;
    println!("\ncorner-turn cost ({} samples each):", t3.total_samples());
    println!("  SCA   : {pscan_turn:>12} bus cycles per turn x 2 turns");
    println!("  mesh  : {mesh_turn_tp1:>12} cycles per turn x 2 turns (t_p = 1, measured 2.93x)");

    let mults = plan.multiplies();
    println!(
        "\ncompute: {mults} multiplies = {} us at 2 ns each (single core)",
        mults * 2 / 1000
    );
    println!(
        "communication saved by SCA: {} cycles across both turns",
        2 * (mesh_turn_tp1 - pscan_turn)
    );
    println!("\nThe 1-D case inherits the 2-D transpose advantage — \"the optimization of");
    println!("the 2D FFT is generalizable to the 1D case\" (paper SS II).");
}
