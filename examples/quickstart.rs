//! Quickstart: build a PSCAN, run the paper's Fig. 4 interleave, and watch
//! two spatially separate processors splice a burst in flight.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pscan::compiler::{CpCompiler, GatherSpec};
use pscan::network::{Pscan, PscanConfig};

fn main() {
    // A PSCAN with 3 taps on a 2 cm die: P0 and P1 transmit, P2's end of
    // the bus hosts the receiver.
    let pscan = Pscan::new(PscanConfig {
        nodes: 3,
        ..Default::default()
    });

    // The Fig. 4 schedule: P0 owns wavefronts {0,1} and {4,5}; P1 owns
    // {2,3}. Slot -> source-node map:
    let spec = GatherSpec {
        slot_source: vec![0, 0, 1, 1, 0, 0],
    };

    // Compile to per-node Communication Programs and show them.
    let cps = CpCompiler.compile_gather(&spec, 3);
    for (n, cp) in cps.iter().enumerate() {
        println!("P{n} CP: {:?} ({} bits)", cp.entries(), cp.encoded_bits());
    }

    // P0 holds a,b,e,f; P1 holds c,d.
    let data = vec![vec![0xA, 0xB, 0xE, 0xF], vec![0xC, 0xD], vec![]];
    let out = pscan
        .gather(&spec, &data)
        .expect("collision-free by construction");

    let burst: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
    println!("\nreceived burst: {burst:x?}");
    println!(
        "bus utilization during burst: {:.0}%",
        out.utilization * 100.0
    );
    println!(
        "first wavefront arrived at {:?}, last at {:?}",
        out.first_arrival, out.last_arrival
    );
    assert_eq!(burst, vec![0xA, 0xB, 0xC, 0xD, 0xE, 0xF]);
    println!("\nThe receiver saw one gap-free six-cycle burst, \"as if from a single source\".");

    // Regenerate the paper's Fig. 4 timing diagram from the simulation:
    // what a probe at each tap position sees on the data wavelength.
    println!("\nFig. 4 waveforms (slot-aligned; digit = modulating node, '.' = dark carrier):");
    println!("  clk {}", pscan::trace::clock_lane(6));
    for w in pscan::trace::render_waveforms(pscan.bus(), &cps, &[0, 1, 2], 6) {
        println!("  {}  {}", w.label, w.lanes);
    }
}
