//! Photonic design explorer: how many taps can one PSCAN span?
//!
//! Sweeps waveguide loss and node count on the paper's 2 cm die, printing
//! the Eq. (1)-(3) link budget, the energy-optimal repeater count, the
//! resulting energy per bit, and the WDM plan feasibility check.
//!
//! ```text
//! cargo run --release --example link_budget
//! ```

use photonics::budget::LinkBudget;
use photonics::devices::{Laser, Modulator, Photodiode};
use photonics::energy::PhotonicEnergyModel;
use photonics::spectrum::{check_plan, crosstalk_power_penalty, RingSpectrum};
use photonics::waveguide::{ChipLayout, Waveguide};
use photonics::wdm::WavelengthPlan;

fn main() {
    println!("PSCAN link budget explorer (2 cm x 2 cm die, 10 dBm/lambda launch)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>11} {:>12}",
        "nodes", "bus (cm)", "loss dB/cm", "reach", "repeaters", "pJ/bit"
    );
    for &nodes in &[16usize, 64, 256, 1024] {
        let layout = ChipLayout::square(20.0, nodes);
        for &loss in &[0.3f64, 1.0] {
            let budget = LinkBudget::new(
                Laser::default().output,
                &Modulator::default(),
                &Photodiode::default(),
                &Waveguide::new(layout.bus_length_mm()).with_loss(loss),
                layout.pitch_mm(),
            );
            let model = PhotonicEnergyModel {
                waveguide_loss_db_per_cm: loss,
                ..Default::default()
            };
            let (_, reps) = model.required_laser(&layout);
            println!(
                "{:>6} {:>12.1} {:>12.1} {:>10} {:>11} {:>12.3}",
                nodes,
                layout.bus_length_mm() / 10.0,
                loss,
                budget.max_segments(),
                reps,
                model.sca_energy(&layout).total_pj_per_bit(),
            );
        }
    }

    println!("\nWDM plan check (32 lambda x 10 Gb/s on a Q = 20k ring bank):");
    let ring = RingSpectrum::default();
    let plan = WavelengthPlan::paper_320g();
    for spacing in [25.0f64, 50.0, 62.5] {
        let check = check_plan(&ring, plan.data_lambdas, spacing);
        let penalty = if check.aggregate_crosstalk < 1.0 {
            format!("{:.2} dB", crosstalk_power_penalty(&check).db())
        } else {
            "n/a".to_string()
        };
        println!(
            "  {spacing:>5.1} GHz spacing: FSR occupancy {:>5.2}, adjacent suppression {:>5.1} dB, \
             xtalk penalty {penalty}, feasible: {}",
            check.fsr_occupancy, check.adjacent_suppression_db, check.feasible
        );
    }
}
