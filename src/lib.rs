//! # psync-suite
//!
//! Workspace facade for the P-sync reproduction (Whelihan et al., IPDPS
//! Workshops 2013). Re-exports every subsystem crate under one roof so the
//! examples and integration tests read naturally; see the individual crates
//! for the real APIs:
//!
//! * [`sim_core`] — simulation kernel
//! * [`photonics`] — photonic physical layer
//! * [`memory`] — DRAM substrate
//! * [`pscan`] — the Photonic Synchronous Coalesced Access Network
//! * [`emesh`] — the electronic wormhole-mesh baseline
//! * [`fft`] — the FFT workload
//! * [`analytic`] — §V closed-form performance models
//! * [`llmore`] — application-level mapping/simulation runtime
//! * [`psync`] — the P-sync architecture itself

pub use analytic;
pub use emesh;
pub use fft;
pub use llmore;
pub use memory;
pub use photonics;
pub use pscan;
pub use psync;
pub use sim_core;

/// Workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Touch one symbol from each crate so a broken re-export fails here.
        let _ = sim_core::Time::ZERO;
        let _ = photonics::WavelengthPlan::paper_320g();
        let _ = memory::DramConfig::default();
        let _ = pscan::cp::CommProgram::empty();
        let _ = emesh::Topology::square(4, emesh::MemifPlacement::SingleCorner);
        let _ = fft::Complex64::ZERO;
        let _ = analytic::table3_pscan_cycles();
        let _ = llmore::SystemParams::default();
        let _ = psync::MachineConfig::paper_default(2, 16);
        assert!(!super::VERSION.is_empty());
    }
}
