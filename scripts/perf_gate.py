#!/usr/bin/env python3
"""Gate CI on simulator throughput: compare a fresh `perf_mesh --quick` run
against the committed baseline and fail on a >15% cycles/sec regression.

Usage:
    python3 scripts/perf_gate.py <fresh_perf_mesh.json> [<baseline.json>]
                                 [--summary-out <path>]

The baseline defaults to ci/perf_baseline.json. Rows are matched on
(policy, threads); fresh rows absent from the baseline are ignored, so
adding a thread count to the sweep never breaks the gate. The converse is a
named failure: a baseline row that the fresh run no longer produces means a
measurement silently disappeared from the sweep. That check is scoped per
namespace — the policy prefix before ":" ("crosscheck:...", "collective:...")
or "perf" for plain throughput rows — and namespaces gate independently, so
a single-family fresh file is never failed for lacking the others. The
tolerance can be overridden with PERF_GATE_TOLERANCE (a fraction, default
0.15).

Besides the regression check, threaded mesh rows (threads > 1) must show a
minimum speedup over the same policy's 1-thread row in the *fresh* run:
PERF_GATE_MIN_SPEEDUP (default 1.0 — parallel execution must at least not
be a slowdown). The speedup check only runs for rows whose thread count
fits the machine (os.cpu_count() >= max(2, threads)); on smaller runners it
is skipped with an explicit log line so a 1-core CI box never silently
"passes" a parallelism gate it could not measure. Crosscheck rows are
exempt — they are conformance fixtures, not throughput measurements.

--summary-out writes a machine-readable verdict (status, per-row ratios,
every failure string) for CI artifact upload; it is written on failure too.

To accept an intentional slowdown (or record a faster scheduler), refresh
the baseline:

    PSYNC_RESULTS_DIR=/tmp/perf cargo run --release -p bench --bin perf_mesh -- --quick --threads 2
    cp /tmp/perf/perf_mesh.json ci/perf_baseline.json
"""

import json
import os
import sys
from pathlib import Path


def rows_by_key(path: Path):
    rows = json.loads(path.read_text())
    return {(r["policy"], r["threads"]): r for r in rows}


def namespace(policy: str) -> str:
    """The gating namespace a row belongs to: the prefix before ":" for
    labelled rows ("crosscheck:...", "collective:..."), "perf" for plain
    throughput rows. Namespaces are checked for completeness independently,
    so a single-family fresh file is never failed for lacking the others."""
    prefix, sep, _ = policy.partition(":")
    return prefix if sep else "perf"


def parse_args(argv):
    summary_out = None
    positional = []
    it = iter(argv)
    for a in it:
        if a == "--summary-out":
            summary_out = Path(next(it, "") or sys.exit("--summary-out needs a path"))
        elif a.startswith("--summary-out="):
            summary_out = Path(a.split("=", 1)[1])
        else:
            positional.append(a)
    return positional, summary_out


def main() -> int:
    positional, summary_out = parse_args(sys.argv[1:])
    if not positional:
        print(__doc__)
        return 2
    fresh_path = Path(positional[0])
    base_path = Path(positional[1]) if len(positional) > 1 else Path("ci/perf_baseline.json")
    tol = float(os.environ.get("PERF_GATE_TOLERANCE", "0.15"))

    fresh = rows_by_key(fresh_path)
    base = rows_by_key(base_path)
    shared = sorted(set(fresh) & set(base))
    row_reports = []
    failures = []

    # Completeness, per namespace actually measured by the fresh run: a
    # baseline row the sweep no longer produces must fail by name, not
    # silently shrink the intersection.
    fresh_namespaces = {namespace(policy) for (policy, _) in fresh}
    for key in sorted(set(base) - set(fresh)):
        ns = namespace(key[0])
        if ns in fresh_namespaces:
            failures.append(
                f"{key}: baseline row missing from {fresh_path} "
                "(a measurement disappeared from the sweep; refresh "
                "ci/perf_baseline.json if that was intentional)"
            )
        else:
            print(f"perf-gate: {key}: SKIP ({ns} namespace not in fresh results)")

    if not shared and not failures:
        print(f"perf-gate: no (policy, threads) rows shared between {fresh_path} and {base_path}")
        write_summary(summary_out, "fail", tol, row_reports, ["no shared rows"])
        return 1

    for key in shared:
        f, b = fresh[key], base[key]
        report = {"policy": key[0], "threads": key[1], "cycles": f["cycles"]}
        row_reports.append(report)
        if f["cycles"] != b["cycles"]:
            report["verdict"] = "cycles-drift"
            failures.append(
                f"{key}: simulated cycles changed {b['cycles']} -> {f['cycles']} "
                "(the workload itself drifted; this gate only expects wall-clock noise)"
            )
            continue
        if b["cycles_per_s"] <= 0:
            # A zero-cycle row (e.g. a conformance witness of a quantity
            # that is exactly 0) has no throughput to gate; the cycles
            # equality above already pinned it.
            print(f"perf-gate: {key}: zero-cycle row, equality-only")
            report["verdict"] = "equality-only"
            continue
        ratio = f["cycles_per_s"] / b["cycles_per_s"]
        verdict = "FAIL" if ratio < 1.0 - tol else "ok"
        report["throughput_ratio"] = ratio
        report["verdict"] = verdict
        print(
            f"perf-gate: {key}: {b['cycles_per_s']:.3e} -> {f['cycles_per_s']:.3e} "
            f"cycles/s ({ratio:.2f}x) {verdict}"
        )
        if verdict == "FAIL":
            failures.append(f"{key}: throughput regressed to {ratio:.2f}x of baseline")

    failures += check_parallel_speedup(fresh)

    if failures:
        print(f"perf-gate: FAILED (tolerance {tol:.0%}):")
        for f in failures:
            print(f"  {f}")
        write_summary(summary_out, "fail", tol, row_reports, failures)
        return 1
    print(f"perf-gate: {len(shared)} rows within {tol:.0%} of baseline")
    write_summary(summary_out, "pass", tol, row_reports, [])
    return 0


def write_summary(path, status, tol, rows, failures):
    """Publish the machine-readable verdict for artifact upload."""
    if path is None:
        return
    summary = {
        "status": status,
        "tolerance": tol,
        "min_speedup": float(os.environ.get("PERF_GATE_MIN_SPEEDUP", "1.0")),
        "rows_compared": len(rows),
        "rows": rows,
        "failures": failures,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"perf-gate: summary written to {path}")


def check_parallel_speedup(fresh) -> list:
    """Require threaded mesh rows to beat their 1-thread sibling by
    PERF_GATE_MIN_SPEEDUP when the machine has enough cores to tell."""
    min_speedup = float(os.environ.get("PERF_GATE_MIN_SPEEDUP", "1.0"))
    cores = os.cpu_count() or 1
    failures = []
    for (policy, threads), row in sorted(fresh.items()):
        if threads <= 1 or namespace(policy) != "perf":
            # Conformance witnesses and collective fixtures are not
            # throughput measurements.
            continue
        if cores < max(2, threads):
            print(
                f"perf-gate: ({policy!r}, {threads}): SKIP parallel-speedup check "
                f"(machine has {cores} core(s), row needs {threads})"
            )
            continue
        base = fresh.get((policy, 1))
        speedup = row.get("speedup_vs_1t")
        if speedup is None and base and base.get("wall_s", 0) > 0 and row.get("wall_s", 0) > 0:
            speedup = base["wall_s"] / row["wall_s"]
        if speedup is None:
            failures.append(
                f"({policy!r}, {threads}): no 1-thread sibling row to compute a "
                "parallel speedup against"
            )
            continue
        verdict = "FAIL" if speedup < min_speedup else "ok"
        print(
            f"perf-gate: ({policy!r}, {threads}): {speedup:.2f}x vs 1 thread "
            f"(min {min_speedup:.2f}x) {verdict}"
        )
        if verdict == "FAIL":
            failures.append(
                f"({policy!r}, {threads}): parallel speedup {speedup:.2f}x below "
                f"required {min_speedup:.2f}x"
            )
    return failures


if __name__ == "__main__":
    sys.exit(main())
