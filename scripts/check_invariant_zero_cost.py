#!/usr/bin/env python3
"""Prove the `check-invariants` feature is zero-cost when compiled out.

Runs `crosscheck_models --quick` twice — once with the feature off (release
default) and once with it on — into separate results directories, scrubs the
wall-clock-dependent keys exactly as scripts/goldens_freshness.py does, and
requires the remaining JSON to be byte-identical. Any divergence means an
invariant check leaked into the simulated numbers (e.g. a check with a side
effect, or one gating a state change) instead of only observing them.

Usage:
    python3 scripts/check_invariant_zero_cost.py

Run from the workspace root; builds go through cargo (release).
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BIN = "crosscheck_models"
VOLATILE = ("wall", "per_s", "speedup")


def scrub(obj):
    if isinstance(obj, dict):
        return {
            k: scrub(v)
            for k, v in obj.items()
            if not any(t in k for t in VOLATILE)
        }
    if isinstance(obj, list):
        return [scrub(v) for v in obj]
    return obj


def run_variant(out_dir: Path, features: list[str]) -> dict:
    env = dict(os.environ, PSYNC_RESULTS_DIR=str(out_dir))
    cmd = ["cargo", "run", "--release", "-q", "-p", "bench"]
    cmd += features
    cmd += ["--bin", BIN, "--", "--quick"]
    print(f"zero-cost: running {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, env=env, check=True, stdout=subprocess.DEVNULL)
    return scrub(json.loads((out_dir / f"{BIN}.json").read_text()))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="zerocost_") as tmp:
        off = run_variant(Path(tmp) / "off", [])
        on = run_variant(Path(tmp) / "on", ["--features", "check-invariants"])

    off_s = json.dumps(off, indent=2, sort_keys=True)
    on_s = json.dumps(on, indent=2, sort_keys=True)
    if off_s != on_s:
        print("zero-cost: FAILED — check-invariants changed deterministic output:")
        for a, b in zip(off_s.splitlines(), on_s.splitlines()):
            if a != b:
                print(f"  off: {a}")
                print(f"  on:  {b}")
        return 1
    print(f"zero-cost: ok — {BIN} deterministic output byte-identical with the feature on and off")
    return 0


if __name__ == "__main__":
    sys.exit(main())
