#!/usr/bin/env python3
"""Check (or refresh) the committed quick-mode goldens in results/quick/.

Every harness binary is deterministic in quick mode apart from wall-clock
fields, so CI can rerun the whole sweep and diff the outputs byte-for-byte
after scrubbing the volatile keys. A mismatch means a code change silently
altered published numbers without regenerating the goldens.

Usage:
    python3 scripts/goldens_freshness.py           # verify (CI mode)
    python3 scripts/goldens_freshness.py --update  # refresh results/quick/

Run from the workspace root. Builds happen through cargo, so the first run
compiles the bench crate in release mode.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

# Every harness binary; each writes results/<experiment>.json on its own.
BINS = [
    "ablate_buffers",
    "ablate_cp_granularity",
    "ablate_faults",
    "ablate_fig13_model2",
    "ablate_frfcfs",
    "ablate_memports",
    "ablate_model2",
    "ablate_routing",
    "ablate_row_size",
    "ablate_tp",
    "ablate_tr",
    "collectives",
    "crosscheck_fig13",
    "crosscheck_models",
    "fig11_efficiency",
    "fig13_scaling",
    "fig14_reorg",
    "fig5_energy",
    "full_matrix",
    "perf_mesh",
    "run_batch",
    "table1",
    "table2",
    "table3_transpose",
]

# Any JSON key containing one of these substrings is wall-clock-dependent
# and excluded from both the goldens and the comparison.
VOLATILE = ("wall", "per_s", "speedup")

GOLDEN_DIR = Path("results/quick")


def scrub(obj):
    """Strip volatile keys recursively."""
    if isinstance(obj, dict):
        return {
            k: scrub(v)
            for k, v in obj.items()
            if not any(t in k for t in VOLATILE)
        }
    if isinstance(obj, list):
        return [scrub(v) for v in obj]
    return obj


def run_sweep(out_dir: Path) -> None:
    env = dict(os.environ, PSYNC_RESULTS_DIR=str(out_dir))
    for b in BINS:
        print(f"goldens-freshness: running {b} --quick", flush=True)
        subprocess.run(
            ["cargo", "run", "--release", "-q", "-p", "bench", "--bin", b, "--", "--quick"],
            env=env,
            check=True,
            stdout=subprocess.DEVNULL,
        )


def main() -> int:
    update = "--update" in sys.argv[1:]
    with tempfile.TemporaryDirectory(prefix="goldens_") as tmp:
        fresh_dir = Path(tmp)
        run_sweep(fresh_dir)
        fresh = {p.name: scrub(json.loads(p.read_text())) for p in sorted(fresh_dir.glob("*.json"))}

    if update:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        for name, data in fresh.items():
            (GOLDEN_DIR / name).write_text(json.dumps(data, indent=2) + "\n")
        print(f"updated {len(fresh)} goldens in {GOLDEN_DIR}/")
        return 0

    failures = []
    for name, data in fresh.items():
        golden_path = GOLDEN_DIR / name
        if not golden_path.exists():
            failures.append(f"{name}: no committed golden ({golden_path})")
            continue
        golden = json.loads(golden_path.read_text())
        if golden != data:
            failures.append(f"{name}: drifted from {golden_path}")
    for name in {p.name for p in GOLDEN_DIR.glob("*.json")} - set(fresh):
        failures.append(f"{name}: committed golden has no producing binary")

    if failures:
        print("STALE GOLDENS — rerun `python3 scripts/goldens_freshness.py --update`:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"all {len(fresh)} quick goldens fresh")
    return 0


if __name__ == "__main__":
    sys.exit(main())
