//! Property-based bit-identity between the sequential and epoch-parallel
//! mesh schedulers: for *arbitrary* random traffic (mixed packet sizes,
//! arbitrary src/dst pairs, both routing policies, random thread counts),
//! `with_threads(n)` must reproduce the sequential run exactly — completion
//! cycle, energy counters, memory-interface stats, per-node deliveries and
//! payload words, and the per-router forward heatmap.
//!
//! The deterministic golden grid lives in
//! `crates/emesh/tests/parallel_identity.rs`; this file covers the space
//! between those fixed points — including the fully instrumented scheduler
//! (fault injection + telemetry + latency tracking), which runs on the
//! same epoch-parallel path with no sequential fallback.

use emesh::flit::Packet;
use emesh::mesh::{Mesh, MeshConfig, RoutingPolicy};
use emesh::topology::{MemifPlacement, Topology};
use emesh::MeshFaultConfig;
use proptest::prelude::*;

fn cfg(nodes: usize, policy: RoutingPolicy, threads: usize) -> MeshConfig {
    MeshConfig {
        topology: Topology::square(nodes, MemifPlacement::SingleCorner),
        t_r: 1,
        policy,
        memif: Default::default(),
        buffer_depth: 2,
        max_cycles: 1 << 22,
        threads,
    }
    .with_threads(threads)
}

/// Run packets described by parallel seed vectors on a 16-node mesh and
/// collapse every observable into one comparable string. Packet `i` goes
/// from `srcs[i] % 16` to `dsts[i] % 16` with `sizes[i] % 5 + 1` payload
/// words (self-traffic is skipped).
fn fingerprint(
    policy: RoutingPolicy,
    threads: usize,
    srcs: &[u8],
    dsts: &[u8],
    sizes: &[u8],
) -> String {
    fingerprint_with(policy, threads, srcs, dsts, sizes, None)
}

/// As [`fingerprint`], optionally with the fully instrumented scheduler:
/// a fault layer seeded from `fault_seed`, telemetry, and latency
/// tracking. The telemetry metrics dump is folded into the fingerprint so
/// occupancy samples and counter totals are compared too.
fn fingerprint_with(
    policy: RoutingPolicy,
    threads: usize,
    srcs: &[u8],
    dsts: &[u8],
    sizes: &[u8],
    fault_seed: Option<u64>,
) -> String {
    let nodes = 16usize;
    let mut mesh = Mesh::new(cfg(nodes, policy, threads));
    mesh.collect_sink_words(true);
    if let Some(seed) = fault_seed {
        mesh.enable_faults(MeshFaultConfig {
            seed,
            corrupt_rate: 0.01,
            link_down_rate: 0.003,
            link_down_cycles: 5,
            max_retransmits: 64,
            nack_delay: 3,
            ..Default::default()
        });
        mesh.enable_telemetry();
        mesh.track_latency(2, 1024);
    }
    for (i, ((&s, &d), &w)) in srcs.iter().zip(dsts).zip(sizes).enumerate() {
        let src = u32::from(s) % nodes as u32;
        let dst = u32::from(d) % nodes as u32;
        if src == dst {
            continue;
        }
        // Destination 0 is the memory interface: those packets carry DRAM
        // addresses; all others are sink traffic with arbitrary payloads.
        let words = usize::from(w % 5) + 1;
        let payload: Vec<u64> = (0..words as u64).map(|k| k + i as u64 * 31).collect();
        mesh.inject_packet(src, &Packet::with_header(dst, i as u64, payload));
    }
    let res = mesh.run().expect("random traffic drains");
    let words: Vec<&[u64]> = (0..nodes as u32).map(|n| mesh.sink_words(n)).collect();
    let metrics = mesh.telemetry().map(|reg| reg.metrics_json());
    format!("{res:?}|{words:?}|{metrics:?}")
}

const N_PACKETS: usize = 40;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_equals_sequential_on_arbitrary_traffic(
        srcs in prop::collection::vec(0u8..=255, N_PACKETS),
        dsts in prop::collection::vec(0u8..=255, N_PACKETS),
        sizes in prop::collection::vec(0u8..=255, N_PACKETS),
        adaptive in 0u8..2,
        threads in 2usize..6,
    ) {
        let policy = if adaptive == 1 {
            RoutingPolicy::MinimalAdaptive
        } else {
            RoutingPolicy::Xy
        };
        let seq = fingerprint(policy, 1, &srcs, &dsts, &sizes);
        let par = fingerprint(policy, threads, &srcs, &dsts, &sizes);
        prop_assert_eq!(
            seq, par,
            "threads={} policy={:?} diverged", threads, policy
        );
    }

    /// The fully instrumented scheduler — fault injection (corruption +
    /// transient link outages + retransmission), telemetry, latency
    /// tracking — under arbitrary traffic and thread counts. The parallel
    /// path has no sequential fallback, so this genuinely fuzzes the
    /// threaded fault/telemetry code against the 1-thread oracle.
    #[test]
    fn instrumented_parallel_equals_sequential_on_arbitrary_traffic(
        srcs in prop::collection::vec(0u8..=255, N_PACKETS),
        dsts in prop::collection::vec(0u8..=255, N_PACKETS),
        sizes in prop::collection::vec(0u8..=255, N_PACKETS),
        adaptive in 0u8..2,
        threads in 2usize..6,
        fault_seed in 0u64..1024,
    ) {
        let policy = if adaptive == 1 {
            RoutingPolicy::MinimalAdaptive
        } else {
            RoutingPolicy::Xy
        };
        let seq = fingerprint_with(policy, 1, &srcs, &dsts, &sizes, Some(fault_seed));
        let par = fingerprint_with(policy, threads, &srcs, &dsts, &sizes, Some(fault_seed));
        prop_assert_eq!(
            seq, par,
            "threads={} policy={:?} seed={} instrumented run diverged",
            threads, policy, fault_seed
        );
    }
}
