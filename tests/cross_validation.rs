//! Cross-validation: the closed-form §V models against the cycle/event
//! simulators — each side checks the other.

use analytic::model::FftParams;
use analytic::table3::Table3Params;
use emesh::mesh::{MeshConfig, RoutingPolicy};
use emesh::topology::{MemifPlacement, Topology};
use emesh::workloads::{
    eq21_delivery_cycles, eq21_delivery_cycles_dims, load_scatter, load_transpose,
};
use pscan::compiler::GatherSpec;
use pscan::network::{Pscan, PscanConfig};

#[test]
fn mesh_scatter_sim_tracks_eq21() {
    // Eq. (21): delivery = P·F + P·√P·t_r. Simulate a blocked scatter on a
    // 64-node mesh across block sizes and require agreement within 35 %
    // (the closed form ignores pipelining overlap and wormhole stalls).
    for block in [16usize, 64, 128] {
        let cfg = MeshConfig {
            topology: Topology::square(64, MemifPlacement::SingleCorner),
            t_r: 1,
            policy: RoutingPolicy::Xy,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 30,
            threads: 1,
        };
        let mut mesh = load_scatter(cfg, block, 1);
        let res = mesh.run().unwrap();
        let predicted = eq21_delivery_cycles(63, block as u64 + 1, 1);
        let err = (res.cycles as f64 - predicted as f64).abs() / predicted as f64;
        assert!(
            err < 0.35,
            "block {block}: sim {} vs Eq.21 {predicted} ({:.0}% off)",
            res.cycles,
            err * 100.0
        );
    }
}

#[test]
fn eq21_forms_agree_across_crates_and_geometries() {
    // The emesh closed form and the analytic surrogate must be the same
    // integer arithmetic — square, rectangular, and torus alike.
    assert_eq!(
        eq21_delivery_cycles(63, 17, 1),
        analytic::surrogate::mesh_scatter_cycles(64, 16, 1)
    );
    for (w, h, block, t_r, torus) in [
        (8u64, 8u64, 16u64, 1u64, false),
        (8, 4, 64, 1, false),
        (16, 4, 16, 4, false),
        (8, 8, 16, 1, true),
        (6, 4, 32, 2, true),
    ] {
        assert_eq!(
            eq21_delivery_cycles_dims(w, h, block + 1, t_r, torus),
            analytic::surrogate::mesh_scatter_cycles_dims(w, h, block, t_r, torus),
            "{w}x{h} torus={torus}"
        );
    }
}

#[test]
fn mesh_scatter_sim_tracks_eq21_dims_on_rect_and_torus() {
    // The generalized closed form must track the simulator on the
    // geometries the truncated-√P form got wrong.
    for (w, h, torus) in [(8usize, 4usize, false), (8, 8, true)] {
        let cfg = MeshConfig {
            topology: Topology::rect(w, h, MemifPlacement::SingleCorner).with_torus(torus),
            t_r: 1,
            policy: RoutingPolicy::Xy,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 30,
            threads: 1,
        };
        let mut mesh = load_scatter(cfg, 64, 1);
        let res = mesh.run().unwrap();
        let predicted = eq21_delivery_cycles_dims(w as u64, h as u64, 65, 1, torus);
        let err = (res.cycles as f64 - predicted as f64).abs() / predicted as f64;
        assert!(
            err < 0.35,
            "{w}x{h} torus={torus}: sim {} vs Eq.21 {predicted} ({:.0}% off)",
            res.cycles,
            err * 100.0
        );
    }
}

#[test]
fn pscan_gather_sim_matches_closed_form_cycles() {
    // An SCA moving S samples at one 64-bit sample per slot must span
    // exactly S slots at the terminus; with DRAM-row headers added, the
    // total equals the Table III closed form.
    let procs = 32;
    let row_len = 32;
    let pscan = Pscan::new(PscanConfig {
        nodes: procs,
        ..Default::default()
    });
    let spec = GatherSpec {
        slot_source: (0..procs * row_len).map(|k| k % procs).collect(),
    };
    let data: Vec<Vec<u64>> = (0..procs).map(|p| vec![p as u64; row_len]).collect();
    let out = pscan.gather(&spec, &data).unwrap();
    assert_eq!(out.utilization, 1.0);
    let span_slots = out.last_arrival.since(out.first_arrival).as_ps() / pscan.slot().as_ps() + 1;
    assert_eq!(span_slots, (procs * row_len) as u64);

    let t3 = Table3Params {
        n: row_len as u64,
        p: procs as u64,
        ..Default::default()
    };
    let payload = (procs * row_len) as u64;
    let headers = payload.div_ceil(2048 / 64);
    assert_eq!(payload + headers, t3.pscan_cycles());
}

#[test]
fn mesh_transpose_multiplier_in_paper_band() {
    // Scaled-down Table III: the mesh-to-PSCAN multiplier should sit in the
    // paper's 3–7x band and grow with t_p.
    let procs = 64;
    let row_len = 64;
    let t3 = Table3Params {
        n: row_len as u64,
        p: procs as u64,
        ..Default::default()
    };
    let pscan = t3.pscan_cycles() as f64;

    let run = |t_p: u64| {
        let mut mesh = load_transpose(MeshConfig::table3(procs, t_p), procs, row_len);
        mesh.run().unwrap().cycles as f64
    };
    let m1 = run(1) / pscan;
    let m4 = run(4) / pscan;
    assert!(m1 > 1.5 && m1 < 5.5, "t_p=1 multiplier {m1}");
    assert!(m4 > m1, "multiplier must grow with t_p");
    assert!(m4 > 3.5 && m4 < 9.0, "t_p=4 multiplier {m4}");
}

#[test]
fn blocked_fft_ops_match_analytic_params() {
    let params = FftParams::default();
    for k in [1u64, 4, 16, 64] {
        let bf = fft::BlockedFft::new(1024, k as usize);
        assert_eq!(
            bf.multiplies_per_block() as f64 * params.mult_ns,
            params.t_ck_ns(k)
        );
        assert_eq!(
            bf.multiplies_final() as f64 * params.mult_ns,
            params.t_cf_ns(k)
        );
    }
}

#[test]
fn photonic_clock_skew_equals_flight_time_on_machine_layout() {
    // The pscan bus's per-tap clock skew must equal the photonics layer's
    // flight time for the same layout (no hidden fudge factors).
    let pscan = Pscan::new(PscanConfig {
        nodes: 16,
        ..Default::default()
    });
    let layout = pscan.bus().layout();
    for tap in [0usize, 7, 15] {
        assert_eq!(pscan.bus().clock().skew(tap), layout.flight_to_tap(tap));
    }
}
