//! Integration: the §IV machinery around the SCA — TDM channel sharing,
//! CP chains, repeater-linked segments, and map optimization — composed
//! across crates.

use photonics::waveguide::ChipLayout;
use photonics::wdm::WavelengthPlan;
use pscan::arbitration::{Message, TdmPlanner};
use pscan::bus::BusSim;
use pscan::compiler::GatherSpec;
use pscan::repeater::RepeatedPscan;

#[test]
fn sca_share_and_messages_coexist_collision_free() {
    let nodes = 16;
    let bus = BusSim::new(
        ChipLayout::square(20.0, nodes),
        WavelengthPlan::paper_320g(),
    );
    let mut planner = TdmPlanner::new(nodes, 256);
    // SCA shares: an interleaved writeback for the first 8 nodes.
    for n in 0..8 {
        planner.reserve(n, (n as u64) * 16, 16);
    }
    // Messages among the rest.
    let msgs = [
        Message {
            src: 8,
            dst: 15,
            words: 40,
        },
        Message {
            src: 9,
            dst: 12,
            words: 30,
        },
        Message {
            src: 10,
            dst: 11,
            words: 20,
        },
    ];
    let plan = planner.plan(&msgs).unwrap();
    let mut data = vec![Vec::new(); nodes];
    #[allow(clippy::needless_range_loop)] // n is the node id under test
    for n in 0..8usize {
        data[n] = vec![n as u64; 16];
    }
    data[8] = vec![0x8888; 40];
    data[9] = vec![0x9999; 30];
    data[10] = vec![0xAAAA; 20];
    let out = bus.transact(&plan.programs, &data).unwrap();
    assert_eq!(out.delivered[15], vec![0x8888; 40]);
    assert_eq!(out.delivered[12], vec![0x9999; 30]);
    assert_eq!(out.delivered[11], vec![0xAAAA; 20]);
    // SCA shares arrive whole at the terminus.
    for n in 0..8usize {
        for s in 0..16usize {
            assert_eq!(out.gather.received[n * 16 + s], Some(n as u64));
        }
    }
}

#[test]
fn chained_segments_match_single_bus_payload() {
    // The same interleave through a single 8-node bus and a 2x4 repeated
    // chain must produce identical streams (latency differs).
    let spec = GatherSpec::interleaved(8, 2, 8);
    let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64 * 7; 16]).collect();

    let single = {
        let bus = BusSim::new(ChipLayout::square(20.0, 8), WavelengthPlan::paper_320g());
        let cps = pscan::compiler::CpCompiler.compile_gather(&spec, 8);
        bus.gather(&cps, &data).unwrap()
    };
    let chained = RepeatedPscan::new(2, 4, 20.0).gather(&spec, &data).unwrap();
    let single_words: Vec<Option<u64>> = single.received;
    assert_eq!(single_words, chained.received);
    assert_eq!(chained.utilization, 1.0);
}

#[test]
fn optimizer_matches_table_predictions_end_to_end() {
    use llmore::{optimize_map, ArchKind, SystemParams};
    let params = SystemParams::default();
    let mesh = optimize_map(ArchKind::ElectronicMesh, &params, 256, 64);
    let psync = optimize_map(ArchKind::Psync, &params, 256, 64);
    // Mesh knee from the analytic crate agrees with the map optimizer.
    let knee = analytic::crossover::mesh_knee(&analytic::model::FftParams::default(), 64);
    assert_eq!(mesh.map.k, knee);
    assert!(psync.efficiency > mesh.efficiency);
}

#[test]
fn fifo_sizing_matches_cp_schedules() {
    // A node whose core delivers a burst of 8 words at once but whose CP
    // drains them in two 4-slot runs needs a FIFO ≥ ... compute it and
    // validate by replaying through the FIFO model.
    use pscan::fifo::{required_depth, DualClockFifo};
    use sim_core::Time;

    let pushes: Vec<Time> = (0..8).map(|_| Time::from_ps(0)).collect();
    let pops: Vec<Time> = (0..4)
        .map(|i| Time::from_ps(1_000 + i * 100))
        .chain((0..4).map(|i| Time::from_ps(5_000 + i * 100)))
        .collect();
    let depth = required_depth(&pushes, &pops);
    assert_eq!(depth, 8);

    let mut fifo = DualClockFifo::new(depth);
    let mut events: Vec<(Time, bool)> = pushes
        .iter()
        .map(|&t| (t, true))
        .chain(pops.iter().map(|&t| (t, false)))
        .collect();
    events.sort_by_key(|&(t, is_push)| (t, !is_push));
    for (t, is_push) in events {
        if is_push {
            fifo.push(t, 1).expect("sized exactly, no overflow");
        } else {
            fifo.pop(t).expect("no underflow");
        }
    }
    assert_eq!(fifo.high_water(), depth);
}

#[test]
fn codegen_cps_match_the_machine_runners_specs() {
    // The compiled application bundle must schedule exactly the slots the
    // fft_app runner uses: per-node listen counts equal each node's data
    // share, drive CPs tile the transposed stream disjointly, and the
    // delivered ISA code computes the same row FFT the runner computes.
    use psync::codegen::compile_fft2d_app;
    let (procs, n) = (8usize, 64usize);
    let app = compile_fft2d_app(procs, n);
    let share = (n * n / procs) as u64;
    for (p, b) in app.nodes.iter().enumerate() {
        assert_eq!(b.cp_deliver.slots_listened(), share, "node {p} delivery");
        assert_eq!(b.cp_transpose.slots_driven(), share, "node {p} transpose");
        assert_eq!(b.cp_redeliver.slots_listened(), share);
        assert_eq!(b.cp_writeback.slots_driven(), share);
    }
    let drives: Vec<_> = app.nodes.iter().map(|b| b.cp_transpose.clone()).collect();
    assert!(pscan::compiler::CpCompiler::audit_disjoint(&drives).is_ok());

    // ISA path == library path on a row.
    use fft::complex::max_error;
    let row: Vec<fft::Complex64> = (0..n)
        .map(|i| fft::Complex64::new((i as f64 * 0.3).sin(), 0.1 * i as f64))
        .collect();
    let mut via_isa = row.clone();
    app.nodes[0].comp_fft.execute(&mut via_isa);
    let mut via_lib = row;
    fft::fft_in_place(&mut via_lib);
    assert!(max_error(&via_isa, &via_lib) < 1e-12);
}

#[test]
fn six_step_corner_turns_cost_what_table3_says() {
    // Each corner turn of a 2^16-point six-step FFT moves n1*n2 samples;
    // the SCA prices it at exactly (payload + headers) cycles.
    use analytic::table3::Table3Params;
    let plan = fft::SixStepPlan::square(1 << 16);
    let (n1, n2) = plan.shape();
    let t3 = Table3Params {
        n: n2 as u64,
        p: n1 as u64,
        ..Default::default()
    };
    let payload = (n1 * n2) as u64;
    assert_eq!(t3.pscan_cycles(), payload + payload / 32);
}
