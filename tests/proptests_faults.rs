//! Property tests over the fault-injection layer: schedule determinism,
//! the zero-rate bit-identity invariant, CRC error detection on PSCAN
//! words, and end-to-end recovery on the CRC-checked gather path.

use proptest::prelude::*;
use pscan::compiler::GatherSpec;
use pscan::faults::{PscanFaultConfig, PscanFaultState};
use pscan::network::{Pscan, PscanConfig};
use pscan::{crc32_words, crc32_words_update};
use sim_core::faults::{FaultSchedule, FaultSite};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Identical seeds reproduce the identical fault schedule, in the same
    /// `(at, site)` injection order; a different seed gives a different one.
    #[test]
    fn schedule_generation_is_deterministic(
        seed in 0u64..1_000_000,
        horizon in 100u64..2_000,
        sites in 1u32..12,
    ) {
        let a = FaultSchedule::generate(seed, 0.02, horizon, sites);
        let b = FaultSchedule::generate(seed, 0.02, horizon, sites);
        prop_assert_eq!(a.events(), b.events());
        prop_assert!(a
            .events()
            .windows(2)
            .all(|w| (w[0].at, w[0].site) <= (w[1].at, w[1].site)));
        // Consuming via pop_due yields exactly the sorted event list.
        let mut c = FaultSchedule::generate(seed, 0.02, horizon, sites);
        let mut popped = Vec::new();
        while let Some(e) = c.pop_due(horizon) {
            popped.push(e);
        }
        prop_assert_eq!(popped.as_slice(), a.events());
    }

    /// Rate 0 injects nothing, at any seed/horizon/site count, and a
    /// zero-rate site never fires no matter how often it is consulted.
    #[test]
    fn zero_rate_injects_nothing(
        seed in 0u64..u64::MAX,
        horizon in 0u64..10_000,
        sites in 0u32..64,
        trials in 0usize..2_000,
    ) {
        let s = FaultSchedule::generate(seed, 0.0, horizon, sites);
        prop_assert!(s.events().is_empty());
        let mut site = FaultSite::new(seed, 3, 0.0);
        prop_assert!((0..trials).all(|_| !site.fire()));
        prop_assert_eq!(site.fired, 0);
    }

    /// CRC-32 detects every corruption the photonic fault model can inject
    /// (single-bit flips across any subset of burst words).
    #[test]
    fn crc_detects_corrupted_pscan_words(
        words in prop::collection::vec(0u64..u64::MAX, 1..128),
        seed in 0u64..1_000_000,
    ) {
        let committed = crc32_words(&words);
        // Incremental update over any split agrees with the one-shot CRC.
        let split = words.len() / 2;
        let inc = crc32_words_update(crc32_words_update(0, &words[..split]), &words[split..]);
        prop_assert_eq!(inc, committed);

        // Corrupt at a rate high enough that some word almost always flips;
        // whenever at least one does, the CRC must differ.
        let mut st = PscanFaultState::new(PscanFaultConfig {
            seed,
            word_error_rate: 0.3,
            ..Default::default()
        });
        let mut noisy = words.clone();
        let hits: u64 = noisy.iter_mut().map(|w| u64::from(st.corrupt(w))).sum();
        if hits > 0 {
            prop_assert!(crc32_words(&noisy) != committed);
        } else {
            prop_assert_eq!(crc32_words(&noisy), committed);
        }
    }

    /// The CRC-checked gather either delivers exactly the clean burst or
    /// surfaces a structured error — never silently corrupted data.
    #[test]
    fn reliable_gather_never_delivers_corrupt_data(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.2,
    ) {
        let nodes = 4usize;
        let spec = GatherSpec::interleaved(nodes, 2, 2);
        let data: Vec<Vec<u64>> = (0..nodes).map(|n| vec![n as u64 * 3 + 1; 4]).collect();
        let clean = Pscan::new(PscanConfig {
            nodes,
            die_mm: 20.0,
            plan: photonics::wdm::WavelengthPlan::paper_320g(),
        });
        let want = clean.gather(&spec, &data).expect("clean gather");
        let mut noisy = Pscan::new(PscanConfig {
            nodes,
            die_mm: 20.0,
            plan: photonics::wdm::WavelengthPlan::paper_320g(),
        });
        noisy.set_faults(PscanFaultConfig {
            seed,
            word_error_rate: rate,
            max_retries: 200,
            ..Default::default()
        });
        match noisy.gather_reliable(&spec, &data) {
            Ok(rel) => {
                prop_assert_eq!(&rel.outcome.received, &want.received);
                prop_assert_eq!(rel.retries as u64 + 1, u64::from(rel.attempts));
            }
            Err(e) => {
                // Only the structured exhaustion error is acceptable, and
                // only if corruption actually happened.
                match e {
                    pscan::PscanError::RetriesExhausted { corrupted_words, .. } => {
                        prop_assert!(corrupted_words > 0);
                    }
                    other => prop_assert!(false, "unexpected error: {other}"),
                }
            }
        }
    }
}
