//! Property-based tests over the core invariants:
//!
//! * any slot→node map compiles to collision-free CPs whose SCA reproduces
//!   the map's data exactly and gap-free;
//! * scatter∘gather is the identity on payloads;
//! * the FFT agrees with the naive DFT on random signals;
//! * CPs survive the 48-bit wire encoding;
//! * the mesh delivers every packet of random traffic exactly once.

use fft::complex::max_error;
use fft::{dft_reference, fft_in_place, Complex64};
use proptest::prelude::*;
use pscan::compiler::{CpCompiler, GatherSpec, ScatterSpec};
use pscan::cp::CommProgram;
use pscan::network::{Pscan, PscanConfig};

/// A random slot→node map over `nodes` nodes with `slots` slots.
fn slot_map(nodes: usize, slots: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..nodes, slots)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_gather_spec_is_collision_free_and_exact(
        map in slot_map(8, 96),
    ) {
        let nodes = 8;
        let spec = GatherSpec { slot_source: map.clone() };
        let cps = CpCompiler.compile_gather(&spec, nodes);
        prop_assert!(CpCompiler::audit_disjoint(&cps).is_ok());

        // Node n's data: its global slot indices, so the coalesced burst
        // must be 0,1,2,... in slot order.
        let mut data = vec![Vec::new(); nodes];
        for (slot, &n) in map.iter().enumerate() {
            data[n].push(slot as u64);
        }
        let pscan = Pscan::new(PscanConfig { nodes, ..Default::default() });
        let out = pscan.gather(&spec, &data).unwrap();
        prop_assert_eq!(out.utilization, 1.0, "SCA must be gap-free");
        for (slot, w) in out.received.iter().enumerate() {
            prop_assert_eq!(w.unwrap(), slot as u64);
        }
    }

    #[test]
    fn scatter_then_gather_roundtrips(
        map in slot_map(6, 64),
    ) {
        let nodes = 6;
        let burst: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let pscan = Pscan::new(PscanConfig { nodes, ..Default::default() });

        // Scatter by the map, then gather by the same map: identity.
        let sspec = ScatterSpec { slot_dest: map.clone() };
        let delivered = pscan.scatter(&sspec, &burst).unwrap().delivered;
        let gspec = GatherSpec { slot_source: map };
        let out = pscan.gather(&gspec, &delivered).unwrap();
        let back: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
        prop_assert_eq!(back, burst);
    }

    #[test]
    fn fft_matches_dft_on_random_signals(
        res in prop::collection::vec(-100.0f64..100.0, 64),
        ims in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        let x: Vec<Complex64> = res
            .iter()
            .zip(&ims)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect();
        let mut y = x.clone();
        fft_in_place(&mut y);
        let r = dft_reference(&x);
        prop_assert!(max_error(&y, &r) < 1e-6);
    }

    #[test]
    fn cp_encoding_roundtrips(map in slot_map(5, 80)) {
        let cps = CpCompiler.compile_gather(&GatherSpec { slot_source: map }, 5);
        for cp in cps {
            let decoded = CommProgram::decode_words(&cp.encode_words()).unwrap();
            prop_assert_eq!(cp, decoded);
        }
    }

    #[test]
    fn blocked_fft_equals_monolithic_on_random_input(
        res in prop::collection::vec(-10.0f64..10.0, 256),
        k_pow in 0u32..=8,
    ) {
        let x: Vec<Complex64> = res.iter().map(|&r| Complex64::new(r, -r * 0.5)).collect();
        let k = 1usize << k_pow;
        let blocked = fft::BlockedFft::new(256, k).run(&x);
        let mut mono = x.clone();
        fft_in_place(&mut mono);
        prop_assert!(max_error(&blocked, &mono) < 1e-7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mesh_delivers_random_traffic_exactly_once(
        seeds in prop::collection::vec(0u8..16, 10),
    ) {
        use emesh::flit::Packet;
        use emesh::mesh::{Mesh, MeshConfig, RoutingPolicy};
        use emesh::topology::{MemifPlacement, Topology};

        let cfg = MeshConfig {
            topology: Topology::square(16, MemifPlacement::SingleCorner),
            t_r: 1,
            policy: RoutingPolicy::MinimalAdaptive,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 22,
            threads: 1,
        };
        let mut mesh = Mesh::new(cfg);
        mesh.collect_sink_words(true);
        let mut expected = [0u64; 16];
        for (i, &s) in seeds.iter().enumerate() {
            let src = (s as u32 + 1) % 16;
            let dst = (s as u32 * 7 + i as u32) % 16;
            if src == dst || dst == 0 || src == 0 {
                continue;
            }
            mesh.inject_packet(src, &Packet::with_header(dst, i as u64, vec![i as u64; 3]));
            expected[dst as usize] += 3;
        }
        let res = mesh.run().unwrap();
        #[allow(clippy::needless_range_loop)] // n is the node id under test
        for n in 0..16 {
            prop_assert_eq!(res.sink_delivered[n], expected[n], "node {}", n);
        }
    }
}
