//! Property tests over the extension modules: the redistribution compiler,
//! TDM arbitration, repeater chains, six-step FFT and Model II numerics.

use fft::complex::max_error;
use fft::{fft_in_place, Complex64, SixStepPlan};
use photonics::waveguide::ChipLayout;
use photonics::wdm::WavelengthPlan;
use proptest::prelude::*;
use pscan::arbitration::{Message, TdmPlanner};
use pscan::bus::BusSim;
use pscan::compiler::GatherSpec;
use pscan::redistribute::{arrange_data, compile, Layout, Perm};
use pscan::repeater::RepeatedPscan;

fn perm_strategy(n: u64) -> impl Strategy<Value = Perm> {
    prop_oneof![
        Just(Perm::Identity),
        Just(Perm::BitReversal),
        Just(Perm::Transpose {
            rows: 8,
            cols: n / 8
        }),
        // Odd strides are coprime with power-of-two n.
        (0u64..n / 2).prop_map(move |s| Perm::Stride { stride: 2 * s + 1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn redistribution_compiler_is_exact_for_any_layout_and_perm(
        block in 1u64..16,
        procs in 1usize..8,
        perm in perm_strategy(64),
    ) {
        let n = 64u64;
        let layout = Layout { n, procs, block };
        let red = compile(&layout, &perm);
        let local: Vec<Vec<u64>> = (0..procs).map(|p| layout.elements_of(p)).collect();
        let data = arrange_data(&red, &local);
        let pscan = pscan::network::Pscan::new(pscan::network::PscanConfig {
            nodes: procs,
            ..Default::default()
        });
        let out = pscan.gather(&red.spec, &data).unwrap();
        prop_assert_eq!(out.utilization, 1.0);
        for (k, w) in out.received.iter().enumerate() {
            prop_assert_eq!(w.unwrap(), perm.source_element(k as u64, n));
        }
    }

    #[test]
    fn tdm_planner_always_yields_collision_free_frames(
        msg_sizes in prop::collection::vec(1u64..12, 1..5),
        reserve_len in 1u64..24,
    ) {
        let nodes = 8;
        let frame = 256u64;
        let mut planner = TdmPlanner::new(nodes, frame);
        planner.reserve(3, 0, reserve_len);
        let messages: Vec<Message> = msg_sizes
            .iter()
            .enumerate()
            .map(|(i, &w)| Message { src: i % 3, dst: 4 + i % 4, words: w })
            .collect();
        let plan = planner.plan(&messages).unwrap();
        prop_assert!(pscan::compiler::CpCompiler::audit_disjoint(&plan.programs).is_ok());

        // Execute and verify payload delivery.
        let bus = BusSim::new(ChipLayout::square(20.0, nodes), WavelengthPlan::paper_320g());
        let mut data = vec![Vec::new(); nodes];
        data[3] = vec![0x33; reserve_len as usize];
        for (i, m) in messages.iter().enumerate() {
            data[m.src].extend(std::iter::repeat_n(i as u64 + 100, m.words as usize));
        }
        let out = bus.transact(&plan.programs, &data).unwrap();
        let mut expect = vec![0u64; nodes];
        for m in &messages {
            expect[m.dst] += m.words;
        }
        #[allow(clippy::needless_range_loop)] // n is the node id under test
        for n in 0..nodes {
            prop_assert_eq!(out.delivered[n].len() as u64, expect[n], "node {}", n);
        }
    }

    #[test]
    fn repeated_chain_equals_single_bus_for_any_interleave(
        map in prop::collection::vec(0usize..8, 32),
    ) {
        let spec = GatherSpec { slot_source: map };
        let mut data = vec![Vec::new(); 8];
        for (slot, &n) in spec.slot_source.iter().enumerate() {
            data[n].push(slot as u64);
        }
        let single = {
            let bus = BusSim::new(ChipLayout::square(20.0, 8), WavelengthPlan::paper_320g());
            let cps = pscan::compiler::CpCompiler.compile_gather(&spec, 8);
            bus.gather(&cps, &data).unwrap().received
        };
        let chained = RepeatedPscan::new(2, 4, 20.0).gather(&spec, &data).unwrap().received;
        prop_assert_eq!(single, chained);
    }

    #[test]
    fn six_step_equals_monolithic_on_random_signals(
        res in prop::collection::vec(-50.0f64..50.0, 256),
    ) {
        let x: Vec<Complex64> = res.iter().map(|&r| Complex64::new(r, r * 0.3 - 1.0)).collect();
        let six = SixStepPlan::square(256).forward(&x);
        let mut mono = x.clone();
        fft_in_place(&mut mono);
        prop_assert!(max_error(&six, &mono) < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sub_half_slot_drift_never_corrupts(
        drifts in prop::collection::vec(-49i64..=49, 8),
    ) {
        // §III-A margin property: with every node's calibration error inside
        // ±half a 100 ps slot, any interleaved gather stays perfect.
        let mut bus = BusSim::new(ChipLayout::square(20.0, 8), WavelengthPlan::paper_320g());
        for (n, &d) in drifts.iter().enumerate() {
            bus.set_timing_error(n, d);
        }
        let spec = GatherSpec::interleaved(8, 2, 4);
        let cps = pscan::compiler::CpCompiler.compile_gather(&spec, 8);
        let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 8]).collect();
        let out = bus.gather(&cps, &data).unwrap();
        prop_assert_eq!(out.utilization, 1.0);
    }

    #[test]
    fn past_half_slot_drift_always_corrupts(
        victim in 0usize..8,
        extra in 51i64..400,
        sign in prop::bool::ANY,
    ) {
        // And past the window, a fine (1-slot-per-node) interleave always
        // breaks: either a collision or a gap.
        let mut bus = BusSim::new(ChipLayout::square(20.0, 8), WavelengthPlan::paper_320g());
        bus.set_timing_error(victim, if sign { extra } else { -extra });
        let spec = GatherSpec::interleaved(8, 1, 4);
        let cps = pscan::compiler::CpCompiler.compile_gather(&spec, 8);
        let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 4]).collect();
        match bus.gather(&cps, &data) {
            Err(pscan::bus::BusError::Collision { .. }) => {}
            Ok(out) => prop_assert!(out.utilization < 1.0, "drift must corrupt"),
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn model2_machine_numerics_for_random_k(
        k_pow in 0u32..=5,
        seed in 0u64..1000,
    ) {
        use psync::model2::run_model2_rows;
        let n = 128usize;
        let procs = 4usize;
        let rows: Vec<Vec<Complex64>> = (0..procs)
            .map(|p| {
                (0..n)
                    .map(|i| {
                        let v = ((p as u64 * 131 + i as u64 * 7 + seed) % 97) as f64 / 97.0;
                        Complex64::new(v - 0.5, (v * 2.0).sin())
                    })
                    .collect()
            })
            .collect();
        let run = run_model2_rows(procs, n, 1 << k_pow, &rows);
        for (p, row) in rows.iter().enumerate() {
            let mut reference = row.clone();
            fft_in_place(&mut reference);
            prop_assert!(
                max_error(&run.spectra[p], &reference) < 1e-3,
                "proc {}", p
            );
        }
    }
}
