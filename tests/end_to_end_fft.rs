//! Cross-crate integration: the full distributed 2-D FFT on the P-sync
//! machine, checked against the monolithic FFT and against the §V-C
//! transpose arithmetic.

use analytic::table3::Table3Params;
use fft::complex::max_error;
use fft::fft2d::{Fft2d, Matrix};
use fft::Complex64;
use psync::run_fft2d;

fn input(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        Complex64::new(
            ((r * 7 + c * 3) as f64 * 0.11).sin(),
            ((r + 2 * c) as f64 * 0.23).cos() * 0.6,
        )
    })
}

#[test]
fn distributed_fft_matches_monolithic() {
    let n = 64;
    let run = run_fft2d(16, &input(n));
    let reference = Fft2d::new(n, n).forward(&input(n));
    let err = max_error(&run.output.data, &reference.data);
    assert!(err < 1e-3 * n as f64, "err = {err}");
}

#[test]
fn transpose_slots_equal_analytic_pscan_cycles() {
    // The machine's SCA transpose writeback must cost exactly what
    // Eq. (23)/(24) predict for its configuration.
    let n = 64usize;
    let procs = 16usize;
    let run = run_fft2d(procs, &input(n));
    let t3 = Table3Params {
        n: n as u64,
        p: n as u64, // n*n samples total = n rows of n... expressed as N*P
        ..Default::default()
    };
    assert_eq!(run.transpose_bus_slots, t3.pscan_cycles());
}

#[test]
fn compute_fraction_rises_with_fewer_processors() {
    // Fewer processors -> more compute per node -> compute dominates.
    let n = 64;
    let few = run_fft2d(4, &input(n));
    let many = run_fft2d(32, &input(n));
    assert!(few.compute_fraction > many.compute_fraction);
}

#[test]
fn bus_work_is_processor_count_invariant() {
    let n = 32;
    let a = run_fft2d(4, &input(n));
    let b = run_fft2d(16, &input(n));
    let slots = |r: &psync::Fft2dRun| -> u64 { r.phases.iter().map(|p| p.bus_slots).sum() };
    assert_eq!(slots(&a), slots(&b));
}

/// The paper-scale run: 1024×1024 samples on 1024 processors, transported
/// through the event-level photonic bus. Slow in debug builds — run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale (2^20-sample) machine simulation; run with --release -- --ignored"]
fn paper_scale_transpose_is_exactly_table3() {
    let n = 1024;
    let run = run_fft2d(1024, &input(n));
    assert_eq!(run.transpose_bus_slots, 1_081_344, "Table III exact");
    let reference = Fft2d::new(n, n).forward(&input(n));
    let err = max_error(&run.output.data, &reference.data);
    assert!(err < 1e-2 * n as f64, "err = {err}");
}

#[test]
fn phases_in_model_i_order() {
    let run = run_fft2d(8, &input(32));
    let names: Vec<&str> = run.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "deliver",
            "row_fft",
            "transpose",
            "redeliver",
            "col_fft",
            "writeback"
        ]
    );
    // Communication phases move the whole matrix each.
    let area = 32 * 32;
    for p in &run.phases {
        if p.name != "row_fft" && p.name != "col_fft" {
            assert!(p.bus_slots >= area as u64);
        }
    }
}
