//! Core-count sweeps for Figs. 13 and 14.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::arch::{ArchKind, SystemParams};
use crate::sim::simulate_fft2d;

/// One x-position of the Fig. 13 / Fig. 14 plots.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Core count (x-axis; paper sweeps 4 → 4096).
    pub cores: u64,
    /// Ideal GFLOPS (red curve).
    pub ideal_gflops: f64,
    /// P-sync GFLOPS (green curve).
    pub psync_gflops: f64,
    /// Mesh GFLOPS (blue curve).
    pub mesh_gflops: f64,
    /// P-sync reorganization fraction (Fig. 14 green).
    pub psync_reorg_frac: f64,
    /// Mesh reorganization fraction (Fig. 14 blue).
    pub mesh_reorg_frac: f64,
}

/// The paper's core counts: square meshes from 2×2 to 64×64.
pub fn paper_core_counts() -> Vec<u64> {
    (1..=6).map(|i| 4u64.pow(i)).collect() // 4, 16, 64, 256, 1024, 4096
}

/// Sweep all three architectures over `cores` (parallelized — each point is
/// independent).
pub fn sweep_cores(params: &SystemParams, cores: &[u64]) -> Vec<SweepPoint> {
    cores
        .par_iter()
        .map(|&p| {
            let ideal = simulate_fft2d(ArchKind::Ideal, params, p);
            let psync = simulate_fft2d(ArchKind::Psync, params, p);
            let mesh = simulate_fft2d(ArchKind::ElectronicMesh, params, p);
            SweepPoint {
                cores: p,
                ideal_gflops: ideal.gflops,
                psync_gflops: psync.gflops,
                mesh_gflops: mesh.gflops,
                psync_reorg_frac: psync.reorg_fraction,
                mesh_reorg_frac: mesh.reorg_fraction,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_are_square_mesh_sides_2_to_64() {
        assert_eq!(paper_core_counts(), vec![4, 16, 64, 256, 1024, 4096]);
    }

    #[test]
    fn sweep_preserves_order_and_bounds() {
        let pts = sweep_cores(&SystemParams::default(), &paper_core_counts());
        assert_eq!(pts.len(), 6);
        for (pt, &p) in pts.iter().zip(&paper_core_counts()) {
            assert_eq!(pt.cores, p);
            assert!(pt.ideal_gflops >= pt.psync_gflops);
            assert!(pt.psync_gflops >= pt.mesh_gflops * 0.99);
            assert!(pt.mesh_reorg_frac > 0.0 && pt.mesh_reorg_frac < 1.0);
        }
    }

    #[test]
    fn ideal_is_monotone_nondecreasing() {
        let pts = sweep_cores(&SystemParams::default(), &paper_core_counts());
        for w in pts.windows(2) {
            assert!(w[1].ideal_gflops >= w[0].ideal_gflops - 1e-9);
        }
    }

    #[test]
    fn sweep_is_deterministic_despite_parallelism() {
        let a = sweep_cores(&SystemParams::default(), &paper_core_counts());
        let b = sweep_cores(&SystemParams::default(), &paper_core_counts());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.psync_gflops.to_bits(), y.psync_gflops.to_bits());
        }
    }
}
