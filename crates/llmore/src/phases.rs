//! Per-phase timing models for the §VI 2-D FFT flow.
//!
//! The five phases are: deliver, row FFTs, reorganize (transpose),
//! column FFTs, writeback. Delivery, compute and writeback are common to
//! both architectures (Model I, equalized bandwidth). The *reorganization*
//! phase is where they diverge:
//!
//! * **Mesh (block-wise transpose)**: every element crosses a memory port
//!   twice (read + write). Transactions shrink as cores grow — a core's
//!   tile row is `N/√P` elements — so the per-transaction header/routing
//!   overhead `√P·t_r` eats an ever-larger share, exactly the Eq. (22)
//!   delivery-efficiency form; and the reorder staging costs `t_p` per
//!   element at the port. This is what makes the mesh's reorganization
//!   fraction grow with core count (Fig. 14) and its GFLOPS peak and fall
//!   (Fig. 13).
//! * **P-sync (SCA)**: one gather writes the transposed stream at full
//!   line rate (utilization 1.0, §III), one scatter reloads it; the only
//!   overheads are the per-DRAM-row header (33/32) and a single optical
//!   flight. Constant in P.

use serde::{Deserialize, Serialize};

use crate::arch::{ArchKind, SystemParams};

/// Wall-clock seconds per phase.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Initial Model-I delivery of the matrix to the cores.
    pub deliver: f64,
    /// Row-FFT compute.
    pub row_fft: f64,
    /// Transpose / data reorganization between the FFT passes.
    pub reorg: f64,
    /// Column-FFT compute.
    pub col_fft: f64,
    /// Final result writeback.
    pub writeback: f64,
}

impl PhaseBreakdown {
    /// Total runtime.
    pub fn total(&self) -> f64 {
        self.deliver + self.row_fft + self.reorg + self.col_fft + self.writeback
    }

    /// Fraction of the runtime spent reorganizing data (Fig. 14's y-axis).
    pub fn reorg_fraction(&self) -> f64 {
        self.reorg / self.total()
    }
}

/// Delivery-efficiency factor for transactions of `beats` payload beats
/// against a fixed per-transaction latency of `lat` cycles — Eq. (22).
fn eta_d(beats: f64, lat: f64) -> f64 {
    beats / (beats + lat)
}

/// Time for the initial Model-I delivery (or final writeback) of the whole
/// matrix through the memory ports.
pub fn stream_phase_secs(kind: ArchKind, params: &SystemParams, p: u64) -> f64 {
    let base = params.matrix_stream_secs();
    match kind {
        ArchKind::Ideal => base,
        ArchKind::Psync => {
            // Pre-scheduled SCA⁻¹: full line rate; one flight latency.
            base + 10e-9
        }
        ArchKind::ElectronicMesh => {
            // Each core's share arrives as one wormhole transfer; the
            // header pays √P·t_r route cycles (Eq. 21/22). Per-core beats:
            let beats = (params.n * params.n / p) as f64; // 64-bit flits
            let lat = (p as f64).sqrt() * params.t_r as f64;
            base / eta_d(beats, lat)
        }
    }
}

/// Time for the reorganization (transpose) phase.
pub fn reorg_phase_secs(kind: ArchKind, params: &SystemParams, p: u64) -> f64 {
    // Everyone moves the matrix out and back in: 2 passes of payload.
    let two_pass = 2.0 * params.matrix_stream_secs();
    match kind {
        ArchKind::Ideal => two_pass,
        ArchKind::Psync => {
            // SCA gather + SCA⁻¹ scatter at full utilization; per-DRAM-row
            // header amortization (t_t = 33 cycles per 32-beat row,
            // Table III) plus one optical flight each way.
            two_pass * (33.0 / 32.0) + 20e-9
        }
        ArchKind::ElectronicMesh => {
            // Block-wise transpose: a core's transaction is one tile row of
            // N/√P elements; per-transaction overhead is the √P·t_r header
            // walk to the hotspot port (Eq. 22 shape), and the port's
            // reorder staging costs (2 + t_p)/2 relative to pure streaming
            // of the 2-flit element packets (§V-C-2).
            let sqrt_p = (p as f64).sqrt();
            let tx_beats = (params.n as f64 / sqrt_p).max(1.0);
            let header_walk = sqrt_p * params.t_r as f64;
            let staging = (2.0 + params.t_p as f64) / 2.0;
            two_pass * staging / eta_d(tx_beats, header_walk)
        }
    }
}

/// Delivery model (§V-A): Model I serializes delivery before compute;
/// Model II overlaps them with k-way blocking (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryModel {
    /// All data before compute (Fig. 8) — what the paper's §VI runs used.
    ModelI,
    /// k-way blocked, overlapped delivery (Fig. 9).
    ModelII {
        /// Blocks per delivery.
        k: u64,
    },
}

/// Compute one full phase set under Model I.
pub fn phase_breakdown(kind: ArchKind, params: &SystemParams, p: u64) -> PhaseBreakdown {
    phase_breakdown_with(kind, params, p, DeliveryModel::ModelI)
}

/// Compute one full phase set under either delivery model.
///
/// Under Model II a delivery phase and its following compute phase overlap:
/// the pair costs `max(t_d, t_c) + min(t_d, t_c)/k` (the un-overlapped
/// first/last block), which reduces to `t_d + t_c` at k = 1. We fold the
/// saving into the compute entries so the reorg fraction stays comparable.
pub fn phase_breakdown_with(
    kind: ArchKind,
    params: &SystemParams,
    p: u64,
    model: DeliveryModel,
) -> PhaseBreakdown {
    let pass = params.pass_compute_secs(p);
    let deliver = stream_phase_secs(kind, params, p);
    let reorg = reorg_phase_secs(kind, params, p);
    match model {
        DeliveryModel::ModelI => PhaseBreakdown {
            deliver,
            row_fft: pass,
            reorg,
            col_fft: pass,
            writeback: deliver,
        },
        DeliveryModel::ModelII { k } => {
            assert!(k >= 1);
            let overlap = |d: f64, c: f64| d.max(c) + d.min(c) / k as f64;
            // deliver+row overlap; the reorg's redelivery half overlaps the
            // column pass the same way.
            let d_and_row = overlap(deliver, pass);
            let redeliver = reorg / 2.0;
            let r_and_col = overlap(redeliver, pass);
            PhaseBreakdown {
                deliver: 0.0,
                row_fft: d_and_row,
                reorg: reorg - redeliver,
                col_fft: r_and_col,
                writeback: deliver,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psync_reorg_is_constant_in_p() {
        let s = SystemParams::default();
        let a = reorg_phase_secs(ArchKind::Psync, &s, 16);
        let b = reorg_phase_secs(ArchKind::Psync, &s, 4096);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn mesh_reorg_grows_with_p() {
        let s = SystemParams::default();
        let mut last = 0.0;
        for p in [16u64, 64, 256, 1024, 4096] {
            let t = reorg_phase_secs(ArchKind::ElectronicMesh, &s, p);
            assert!(t > last, "P = {p}");
            last = t;
        }
    }

    #[test]
    fn mesh_to_psync_reorg_ratio_band() {
        // The Table III / Fig. 13 story: mesh reorganization lands roughly
        // 2–10× slower than the SCA for P > 256.
        let s = SystemParams::default();
        for (p, lo, hi) in [(1024u64, 2.0, 6.0), (4096, 3.0, 12.0)] {
            let mesh = reorg_phase_secs(ArchKind::ElectronicMesh, &s, p);
            let psync = reorg_phase_secs(ArchKind::Psync, &s, p);
            let ratio = mesh / psync;
            assert!((lo..hi).contains(&ratio), "P = {p}: ratio {ratio}");
        }
    }

    #[test]
    fn ideal_is_a_lower_bound() {
        let s = SystemParams::default();
        for p in [4u64, 64, 1024, 4096] {
            let ideal = phase_breakdown(ArchKind::Ideal, &s, p).total();
            let psync = phase_breakdown(ArchKind::Psync, &s, p).total();
            let mesh = phase_breakdown(ArchKind::ElectronicMesh, &s, p).total();
            assert!(ideal <= psync && psync <= mesh, "P = {p}");
        }
    }

    #[test]
    fn model2_never_slower_than_model1() {
        let s = SystemParams::default();
        for kind in [ArchKind::Psync, ArchKind::ElectronicMesh, ArchKind::Ideal] {
            for p in [16u64, 256, 4096] {
                let m1 = phase_breakdown_with(kind, &s, p, DeliveryModel::ModelI).total();
                let m2 = phase_breakdown_with(kind, &s, p, DeliveryModel::ModelII { k: 8 }).total();
                assert!(m2 <= m1 + 1e-15, "{kind:?} P={p}: {m2} > {m1}");
            }
        }
    }

    #[test]
    fn model2_k1_equals_model1() {
        let s = SystemParams::default();
        let m1 = phase_breakdown_with(ArchKind::Psync, &s, 256, DeliveryModel::ModelI).total();
        let m2 =
            phase_breakdown_with(ArchKind::Psync, &s, 256, DeliveryModel::ModelII { k: 1 }).total();
        assert!((m1 - m2).abs() < 1e-15);
    }

    #[test]
    fn model2_gain_largest_near_balance() {
        // Overlap saves most when delivery and compute are comparable —
        // P ≈ 256 is where Fig. 13 bends, so the gain should peak there
        // rather than at either extreme.
        let s = SystemParams::default();
        let gain = |p: u64| {
            let m1 = phase_breakdown_with(ArchKind::Psync, &s, p, DeliveryModel::ModelI).total();
            let m2 = phase_breakdown_with(ArchKind::Psync, &s, p, DeliveryModel::ModelII { k: 16 })
                .total();
            (m1 - m2) / m1
        };
        assert!(gain(256) > gain(4u64));
        assert!(gain(256) > 0.05);
    }

    #[test]
    fn reorg_fraction_sums() {
        let b = PhaseBreakdown {
            deliver: 1.0,
            row_fft: 2.0,
            reorg: 3.0,
            col_fft: 2.0,
            writeback: 2.0,
        };
        assert!((b.total() - 10.0).abs() < 1e-12);
        assert!((b.reorg_fraction() - 0.3).abs() < 1e-12);
    }
}
