//! Architecture models and shared system parameters (paper Fig. 12).
//!
//! Both architectures share: processing elements with identical compute
//! rates, four external memory banks, and equalized link bandwidth — "a
//! conservative, fair comparison" in which the mesh actually enjoys far
//! higher bisection bandwidth. They differ in how data is *reorganized*
//! between the two 1-D FFT phases: the mesh performs a block-wise transpose
//! through the memory ports; P-sync performs an SCA on the waveguide.

use serde::{Deserialize, Serialize};

/// Which architecture a simulation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchKind {
    /// Wormhole-routed electronic mesh with 4 corner memory interfaces.
    ElectronicMesh,
    /// P-sync: PSCAN bus with memory banks at the waveguide end.
    Psync,
    /// The ideal machine: full memory bandwidth, zero network overhead.
    Ideal,
}

/// Shared system parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SystemParams {
    /// Matrix edge (N × N samples; paper: 1024).
    pub n: u64,
    /// Sample size in bits (S_s = 64).
    pub sample_bits: u64,
    /// Memory controllers (4, Fig. 12).
    pub mem_ports: u64,
    /// Bandwidth per controller in Gb/s (80 each → 320 aggregate, §III-C).
    pub port_gbps: f64,
    /// Per-core multiply rate in operations/s (paper: 2 ns per FP multiply
    /// → 5 × 10⁸).
    pub core_mults_per_sec: f64,
    /// Network clock in GHz (2.5).
    pub clock_ghz: f64,
    /// Header route delay per router, cycles (t_r = 1).
    pub t_r: u64,
    /// Memory-interface reorder cost per element, cycles (t_p).
    pub t_p: u64,
    /// Transaction header bits (S_h = 64).
    pub header_bits: u64,
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams {
            n: 1024,
            sample_bits: 64,
            mem_ports: 4,
            port_gbps: 80.0,
            core_mults_per_sec: 0.5e9,
            clock_ghz: 2.5,
            t_r: 1,
            t_p: 1,
            header_bits: 64,
        }
    }
}

impl SystemParams {
    /// Aggregate memory bandwidth in bits/s.
    pub fn agg_mem_bps(&self) -> f64 {
        self.mem_ports as f64 * self.port_gbps * 1e9
    }

    /// Total matrix payload in bits.
    pub fn matrix_bits(&self) -> f64 {
        (self.n * self.n * self.sample_bits) as f64
    }

    /// Seconds to stream the whole matrix once at full memory bandwidth.
    pub fn matrix_stream_secs(&self) -> f64 {
        self.matrix_bits() / self.agg_mem_bps()
    }

    /// Total multiplies in one 1-D FFT pass over all rows: `N · 2N·log₂N`.
    pub fn mults_per_pass(&self) -> u64 {
        self.n * fft::ops::multiplies(self.n)
    }

    /// Seconds of compute for one FFT pass on `p` cores (idealized even
    /// split).
    pub fn pass_compute_secs(&self, p: u64) -> f64 {
        self.mults_per_pass() as f64 / (p as f64 * self.core_mults_per_sec)
    }

    /// Network cycle time in seconds.
    pub fn cycle_secs(&self) -> f64 {
        1.0 / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_aggregates() {
        let s = SystemParams::default();
        assert!((s.agg_mem_bps() - 320e9).abs() < 1.0);
        assert_eq!(s.matrix_bits() as u64, 1 << 26); // 2^20 samples x 64 b
                                                     // Streaming the matrix once: 2^26 / 320e9 ≈ 210 µs.
        assert!((s.matrix_stream_secs() - 2.097e-4).abs() < 2e-6);
    }

    #[test]
    fn compute_scales_inversely_with_cores() {
        let s = SystemParams::default();
        let t256 = s.pass_compute_secs(256);
        let t1024 = s.pass_compute_secs(1024);
        assert!((t256 / t1024 - 4.0).abs() < 1e-9);
        // One pass on 256 cores: 1024·20480 mults / (256·0.5e9) ≈ 164 µs.
        assert!((t256 - 1.638e-4).abs() < 2e-6);
    }

    #[test]
    fn mults_per_pass_matches_fft_crate() {
        let s = SystemParams::default();
        assert_eq!(s.mults_per_pass(), 1024 * 20_480);
    }
}
