//! Data maps and map optimization — the "optimization" in LLMORE.
//!
//! LLMORE's output includes "a complete set of optimized maps (describing
//! the data distribution for all parallel objects in the user code)". For
//! the 2-D FFT the map space is small but real: how rows are distributed
//! over processors (block / cyclic / block-cyclic) and how many delivery
//! blocks `k` Model II uses. This module enumerates those maps and selects
//! the efficiency-optimal one per architecture.

use serde::{Deserialize, Serialize};

use crate::arch::{ArchKind, SystemParams};

/// How matrix rows are assigned to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowDistribution {
    /// Processor p owns rows `[p·N/P, (p+1)·N/P)`.
    Block,
    /// Processor p owns rows `{p, p+P, p+2P, ...}`.
    Cyclic,
    /// Blocks of `b` rows dealt round-robin.
    BlockCyclic {
        /// Rows per dealt block.
        block: usize,
    },
}

impl RowDistribution {
    /// Owner of `row` among `p` processors for `n` total rows.
    pub fn owner(&self, row: usize, n: usize, p: usize) -> usize {
        assert!(row < n && p >= 1);
        match *self {
            RowDistribution::Block => row / n.div_ceil(p),
            RowDistribution::Cyclic => row % p,
            RowDistribution::BlockCyclic { block } => (row / block) % p,
        }
    }

    /// Rows owned by processor `q`.
    pub fn rows_of(&self, q: usize, n: usize, p: usize) -> Vec<usize> {
        (0..n).filter(|&r| self.owner(r, n, p) == q).collect()
    }

    /// Maximum rows any processor owns (load balance metric).
    pub fn max_load(&self, n: usize, p: usize) -> usize {
        (0..p)
            .map(|q| self.rows_of(q, n, p).len())
            .max()
            .unwrap_or(0)
    }
}

/// A candidate map for the 2-D FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FftMap {
    /// Row distribution.
    pub rows: RowDistribution,
    /// Model II delivery blocks per row (1 = Model I).
    pub k: u64,
}

/// Result of map optimization.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OptimizedMap {
    /// The chosen map.
    pub map: FftMap,
    /// Its predicted compute efficiency (0..1).
    pub efficiency: f64,
}

/// Predicted compute efficiency of `map` on `arch` with `p` cores — uses
/// the §V analytic models: Table I's zero-latency curve for P-sync, the
/// Table II product for the mesh.
pub fn predict_efficiency(arch: ArchKind, params: &SystemParams, p: u64, map: &FftMap) -> f64 {
    let fft = analytic::model::FftParams {
        n: params.n,
        p,
        mult_ns: 1e9 / params.core_mults_per_sec,
        sample_bits: params.sample_bits,
        t_r: params.t_r,
    };
    let base = match arch {
        ArchKind::Ideal => fft.efficiency_zero_latency(map.k),
        ArchKind::Psync => analytic::fig11::psync_efficiency(&fft, map.k, 9.2),
        ArchKind::ElectronicMesh => fft.mesh_efficiency(map.k),
    };
    // Load imbalance directly scales realized throughput.
    let ideal_load = (params.n as usize).div_ceil(p as usize);
    let max_load = map.rows.max_load(params.n as usize, p as usize);
    base * ideal_load as f64 / max_load as f64
}

/// Search block/cyclic distributions × k ∈ {1..=k_max} for the best map.
pub fn optimize_map(arch: ArchKind, params: &SystemParams, p: u64, k_max: u64) -> OptimizedMap {
    let mut best: Option<OptimizedMap> = None;
    let mut k = 1;
    while k <= k_max {
        for rows in [
            RowDistribution::Block,
            RowDistribution::Cyclic,
            RowDistribution::BlockCyclic { block: 4 },
        ] {
            let map = FftMap { rows, k };
            let eff = predict_efficiency(arch, params, p, &map);
            if best.is_none_or(|b| eff > b.efficiency) {
                best = Some(OptimizedMap {
                    map,
                    efficiency: eff,
                });
            }
        }
        k *= 2;
    }
    best.expect("nonempty search space")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_partition_rows() {
        for d in [
            RowDistribution::Block,
            RowDistribution::Cyclic,
            RowDistribution::BlockCyclic { block: 4 },
        ] {
            let mut seen = [false; 64];
            for q in 0..8 {
                for r in d.rows_of(q, 64, 8) {
                    assert!(!seen[r], "{d:?} row {r} assigned twice");
                    seen[r] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{d:?} left rows unassigned");
            assert_eq!(d.max_load(64, 8), 8, "{d:?} should balance 64/8");
        }
    }

    #[test]
    fn block_and_cyclic_owners() {
        assert_eq!(RowDistribution::Block.owner(0, 64, 8), 0);
        assert_eq!(RowDistribution::Block.owner(63, 64, 8), 7);
        assert_eq!(RowDistribution::Cyclic.owner(9, 64, 8), 1);
        assert_eq!(RowDistribution::BlockCyclic { block: 4 }.owner(4, 64, 8), 1);
        assert_eq!(
            RowDistribution::BlockCyclic { block: 4 }.owner(32, 64, 8),
            0
        );
    }

    #[test]
    fn psync_optimizer_picks_large_k() {
        let m = optimize_map(ArchKind::Psync, &SystemParams::default(), 256, 64);
        assert_eq!(m.map.k, 64, "P-sync keeps gaining with finer blocking");
        assert!(m.efficiency > 0.99);
    }

    #[test]
    fn mesh_optimizer_picks_k8() {
        // The Table II peak.
        let m = optimize_map(ArchKind::ElectronicMesh, &SystemParams::default(), 256, 64);
        assert_eq!(m.map.k, 8);
        assert!((m.efficiency - 0.8174).abs() < 0.01);
    }

    #[test]
    fn imbalanced_maps_score_lower() {
        // 6 processors for 64 rows: block gives ceil(64/6)=11 max vs the
        // perfect 64/6 ≈ 10.67, so every distribution carries a penalty,
        // and the predictor must reflect max load.
        let params = SystemParams::default();
        let balanced = predict_efficiency(
            ArchKind::Psync,
            &params,
            256,
            &FftMap {
                rows: RowDistribution::Block,
                k: 8,
            },
        );
        // Same arch, deliberately awful distribution: block-cyclic with a
        // block so large one processor gets everything.
        let skewed = predict_efficiency(
            ArchKind::Psync,
            &params,
            256,
            &FftMap {
                rows: RowDistribution::BlockCyclic { block: 1024 },
                k: 8,
            },
        );
        assert!(skewed < balanced / 100.0, "skewed {skewed} vs {balanced}");
    }
}
