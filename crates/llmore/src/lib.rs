//! # llmore
//!
//! A stand-in for the Lincoln Laboratory Mapping and Optimization Runtime
//! Environment (LLMORE) used in paper §VI: a framework that takes an
//! architecture model plus a parallel-application description and produces
//! performance data (runtime, GFLOPS, phase breakdowns) across mappings.
//!
//! The application here is the §VI 2-D FFT flow: deliver → row FFTs →
//! reorganize (transpose) → column FFTs → writeback, under Model-I delivery,
//! with "link bandwidths and latencies ... equivalent across architectures"
//! and four shared memory controllers (Fig. 12).
//!
//! * [`arch`] — the two architecture models (electronic mesh, P-sync) and
//!   the shared system parameters.
//! * [`phases`] — per-phase timing models; the architectures differ only in
//!   how the *reorganization* phase behaves (block-wise transpose vs SCA).
//! * [`sim`] — the phase-level simulator producing [`sim::PerfResult`].
//! * [`sweep`] — core-count sweeps regenerating Fig. 13 (GFLOPS vs cores)
//!   and Fig. 14 (reorganization fraction vs cores), parallelized with
//!   rayon.

pub mod arch;
pub mod mapping;
pub mod phases;
pub mod sim;
pub mod sweep;

pub use arch::{ArchKind, SystemParams};
pub use mapping::{optimize_map, FftMap, RowDistribution};
pub use phases::{DeliveryModel, PhaseBreakdown};
pub use sim::{simulate_fft2d, PerfResult};
pub use sweep::{sweep_cores, SweepPoint};
