//! The phase-level simulator.

use serde::{Deserialize, Serialize};

use crate::arch::{ArchKind, SystemParams};
use crate::phases::{phase_breakdown, PhaseBreakdown};

/// Performance data for one (architecture, core count) point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerfResult {
    /// Architecture simulated.
    pub arch: ArchKind,
    /// Core count.
    pub cores: u64,
    /// Phase timing.
    pub phases: PhaseBreakdown,
    /// Total runtime in seconds.
    pub runtime_secs: f64,
    /// Achieved performance in GFLOPS (multiply ops / runtime / 1e9,
    /// matching the paper's multiply-only costing).
    pub gflops: f64,
    /// Fraction of runtime spent in data reorganization (Fig. 14).
    pub reorg_fraction: f64,
}

/// Simulate the full 2-D FFT flow on `arch` with `cores` cores.
pub fn simulate_fft2d(arch: ArchKind, params: &SystemParams, cores: u64) -> PerfResult {
    assert!(cores >= 1, "need at least one core");
    let phases = phase_breakdown(arch, params, cores);
    let runtime = phases.total();
    let total_mults = 2 * params.mults_per_pass(); // row pass + column pass
    PerfResult {
        arch,
        cores,
        phases,
        runtime_secs: runtime,
        gflops: total_mults as f64 / runtime / 1e9,
        reorg_fraction: phases.reorg_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_is_work_over_time() {
        let s = SystemParams::default();
        let r = simulate_fft2d(ArchKind::Ideal, &s, 256);
        let expect = (2 * s.mults_per_pass()) as f64 / r.runtime_secs / 1e9;
        assert!((r.gflops - expect).abs() < 1e-9);
    }

    #[test]
    fn psync_converges_toward_ideal() {
        // Fig. 13: "As the number of cores is increased, the performance of
        // the P-sync architecture converges to ideal performance."
        let s = SystemParams::default();
        let gap = |arch: ArchKind, p: u64| {
            let i = simulate_fft2d(ArchKind::Ideal, &s, p).gflops;
            let a = simulate_fft2d(arch, &s, p).gflops;
            (i - a) / i
        };
        // P-sync stays within a few percent of ideal at every scale...
        for p in [16u64, 256, 4096] {
            assert!(gap(ArchKind::Psync, p) < 0.05, "P = {p}");
        }
        // ...while the mesh departs dramatically at scale.
        assert!(gap(ArchKind::ElectronicMesh, 4096) > 0.5);
    }

    #[test]
    fn mesh_peaks_near_256_then_declines() {
        // Fig. 13: "the performance of the electronic mesh architecture
        // peaks around 256 cores and decreases for larger numbers".
        let s = SystemParams::default();
        let g = |p: u64| simulate_fft2d(ArchKind::ElectronicMesh, &s, p).gflops;
        let sweep: Vec<(u64, f64)> = [4u64, 16, 64, 256, 1024, 4096]
            .iter()
            .map(|&p| (p, g(p)))
            .collect();
        let (peak_p, _) = sweep
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((64..=1024).contains(&peak_p), "mesh peak at {peak_p} cores");
        assert!(g(4096) < g(256), "mesh must decline past its peak");
    }

    #[test]
    fn psync_2_to_10x_better_past_256() {
        // Fig. 13: "performance for the P-sync architecture for P > 256 is
        // two to ten times better than the electronic mesh".
        let s = SystemParams::default();
        for p in [512u64, 1024, 2048, 4096] {
            let ratio = simulate_fft2d(ArchKind::Psync, &s, p).gflops
                / simulate_fft2d(ArchKind::ElectronicMesh, &s, p).gflops;
            assert!(
                (1.5..=12.0).contains(&ratio),
                "P = {p}: P-sync/mesh = {ratio:.2}"
            );
        }
        let r4096 = simulate_fft2d(ArchKind::Psync, &s, 4096).gflops
            / simulate_fft2d(ArchKind::ElectronicMesh, &s, 4096).gflops;
        assert!(
            r4096 >= 2.0,
            "at 4096 cores the gap should exceed 2x: {r4096}"
        );
    }

    #[test]
    fn reorg_fraction_shapes() {
        // Fig. 14: mesh fraction grows with cores; P-sync levels off.
        let s = SystemParams::default();
        let mesh: Vec<f64> = [16u64, 256, 4096]
            .iter()
            .map(|&p| simulate_fft2d(ArchKind::ElectronicMesh, &s, p).reorg_fraction)
            .collect();
        assert!(mesh[0] < mesh[1] && mesh[1] < mesh[2]);
        assert!(mesh[2] > 0.5, "mesh reorg should dominate at 4096 cores");

        let ps16 = simulate_fft2d(ArchKind::Psync, &s, 16).reorg_fraction;
        let ps1024 = simulate_fft2d(ArchKind::Psync, &s, 1024).reorg_fraction;
        let ps4096 = simulate_fft2d(ArchKind::Psync, &s, 4096).reorg_fraction;
        assert!(ps1024 >= ps16);
        // Leveling off: the late-sweep increase is small.
        assert!(ps4096 - ps1024 < 0.05);
        assert!(ps4096 < 0.55, "P-sync reorg stays reasonable: {ps4096}");
    }
}
