//! Table I — "Compute efficiency for zero latency".

use serde::{Deserialize, Serialize};

use crate::model::FftParams;

/// One row of Table I.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table1Row {
    /// Blocks per row, k.
    pub k: u64,
    /// Block size in samples, S_b = N/k.
    pub s_b: u64,
    /// Per-block compute time, ns.
    pub t_ck_ns: f64,
    /// Final-phase compute time, ns.
    pub t_cf_ns: f64,
    /// Required bandwidth, Gb/s (Eq. 20).
    pub w_p_gbps: f64,
    /// Compute efficiency, percent.
    pub eta_pct: f64,
}

/// The k values the paper tabulates.
pub const TABLE1_K: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Generate Table I for the given parameters (defaults = the paper's).
pub fn table1_with(params: &FftParams) -> Vec<Table1Row> {
    TABLE1_K
        .iter()
        .map(|&k| Table1Row {
            k,
            s_b: params.block_samples(k),
            t_ck_ns: params.t_ck_ns(k),
            t_cf_ns: params.t_cf_ns(k),
            w_p_gbps: params.required_bandwidth_gbps(k),
            eta_pct: params.efficiency_zero_latency(k) * 100.0,
        })
        .collect()
}

/// Generate Table I with the paper's parameters.
pub fn table1() -> Vec<Table1Row> {
    table1_with(&FftParams::default())
}

/// The values printed in the paper, for verification:
/// (k, S_b, t_ck, t_cf, W_p, η%).
pub const PAPER_TABLE1: [(u64, u64, u64, u64, f64, f64); 7] = [
    (1, 1024, 40_960, 0, 409.6, 50.00),
    (2, 512, 18_432, 4_096, 455.1, 68.97),
    (4, 256, 8_192, 8_192, 512.0, 83.33),
    (8, 128, 3_584, 12_288, 585.1, 91.95),
    (16, 64, 1_536, 16_384, 682.7, 96.39),
    (32, 32, 640, 20_480, 819.2, 98.46),
    (64, 16, 256, 24_576, 1024.0, 99.38),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_every_printed_cell() {
        let rows = table1();
        assert_eq!(rows.len(), PAPER_TABLE1.len());
        for (row, &(k, s_b, t_ck, t_cf, w_p, eta)) in rows.iter().zip(&PAPER_TABLE1) {
            assert_eq!(row.k, k);
            assert_eq!(row.s_b, s_b, "k={k}");
            assert!((row.t_ck_ns - t_ck as f64).abs() < 1e-9, "k={k} t_ck");
            assert!((row.t_cf_ns - t_cf as f64).abs() < 1e-9, "k={k} t_cf");
            assert!(
                (row.w_p_gbps - w_p).abs() < 0.05,
                "k={k} W_p: {} vs {w_p}",
                row.w_p_gbps
            );
            assert!(
                (row.eta_pct - eta).abs() < 0.005,
                "k={k} eta: {} vs {eta}",
                row.eta_pct
            );
        }
    }

    #[test]
    fn efficiency_approaches_one() {
        let rows = table1();
        assert!(rows.last().unwrap().eta_pct > 99.0);
        assert!(rows.first().unwrap().eta_pct == 50.0);
    }

    #[test]
    fn bandwidth_monotone_increasing() {
        let rows = table1();
        for w in rows.windows(2) {
            assert!(w[1].w_p_gbps > w[0].w_p_gbps);
        }
    }
}
