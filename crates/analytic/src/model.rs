//! The generalized performance model of §V-A.
//!
//! A parallel computation decomposes into data-delivery time and compute
//! time. Model I (Fig. 8) delivers everything before computing; Model II
//! (Fig. 9) delivers in `k` round-robin blocks so delivery overlaps compute:
//!
//! ```text
//! T = P·t_dk + (k−1)·max(t_ck, P·t_dk) + t_ck          (11)
//! η = t_c / T                                           (14)
//! ```
//!
//! Case 1 (`P·t_dk ≤ t_ck`) is compute-bound; Case 2 is communication-bound;
//! efficiency peaks at the balance point `P·t_dk = t_ck` (Eq. 19).

use serde::{Deserialize, Serialize};

/// Parameters of the Table I / Table II FFT analysis.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FftParams {
    /// Row length in samples (N = 1024).
    pub n: u64,
    /// Processor count (P = 256).
    pub p: u64,
    /// Nanoseconds per floating-point multiply (2 ns).
    pub mult_ns: f64,
    /// Sample size in bits (S_s = 64).
    pub sample_bits: u64,
    /// Header route delay in the mesh, cycles (t_r = 1).
    pub t_r: u64,
}

impl Default for FftParams {
    fn default() -> Self {
        FftParams {
            n: 1024,
            p: 256,
            mult_ns: 2.0,
            sample_bits: 64,
            t_r: 1,
        }
    }
}

impl FftParams {
    /// Block size `S_b = N/k` in samples.
    pub fn block_samples(&self, k: u64) -> u64 {
        assert!(k >= 1 && self.n.is_multiple_of(k));
        self.n / k
    }

    /// Per-block compute time `t_ck` in ns (Eq. 17 × mult time).
    pub fn t_ck_ns(&self, k: u64) -> f64 {
        fft::ops::multiplies_per_block(self.n, k) as f64 * self.mult_ns
    }

    /// Final-phase compute time `t_cf` in ns (Eq. 18 × mult time).
    pub fn t_cf_ns(&self, k: u64) -> f64 {
        fft::ops::multiplies_final(self.n, k) as f64 * self.mult_ns
    }

    /// Total compute time per processor, `t_c = k·t_ck + t_cf`, ns.
    pub fn t_c_ns(&self, k: u64) -> f64 {
        k as f64 * self.t_ck_ns(k) + self.t_cf_ns(k)
    }

    /// Required peak chip bandwidth `W_p = S_b·S_s·P / t_ck` in Gb/s
    /// (Eq. 20): the rate at which blocks must stream so no processor
    /// stalls.
    pub fn required_bandwidth_gbps(&self, k: u64) -> f64 {
        let bits = (self.block_samples(k) * self.sample_bits * self.p) as f64;
        bits / self.t_ck_ns(k)
    }

    /// Zero-latency compute efficiency at the balance point (Table I):
    /// with `P·t_dk = t_ck`, `η = t_c / ((k+1)·t_ck + t_cf)`.
    pub fn efficiency_zero_latency(&self, k: u64) -> f64 {
        let t_ck = self.t_ck_ns(k);
        let t_cf = self.t_cf_ns(k);
        self.t_c_ns(k) / ((k as f64 + 1.0) * t_ck + t_cf)
    }

    /// Mesh delivery efficiency `η_d = F / (F + √P·t_r)` (Eq. 22 with one
    /// flit per sample and the network latency `λ = √P·t_r` route cycles).
    pub fn mesh_delivery_efficiency(&self, k: u64) -> f64 {
        let f = self.block_samples(k) as f64;
        let lambda = (self.p as f64).sqrt() * self.t_r as f64;
        f / (f + lambda)
    }

    /// Mesh compute efficiency: the product of the zero-latency efficiency
    /// and the delivery efficiency (§V-B-2, "the overall efficiency for the
    /// mesh will be the product of those efficiencies").
    pub fn mesh_efficiency(&self, k: u64) -> f64 {
        self.efficiency_zero_latency(k) * self.mesh_delivery_efficiency(k)
    }
}

/// The generalized Model II (Model I is the `k = 1` special case).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelIi {
    /// Processor count.
    pub p: u64,
    /// Time to deliver one block to one processor.
    pub t_dk: f64,
    /// Time to compute on one block.
    pub t_ck: f64,
    /// Number of blocks.
    pub k: u64,
}

impl ModelIi {
    /// Total time — Eq. (11).
    ///
    /// # Panics
    /// Panics if `k = 0` (Eq. 11 is defined for at least one block) or if
    /// `t_dk` / `t_ck` are negative or non-finite — such parameters used to
    /// yield NaN that serialized as `null` in results JSON instead of
    /// erroring.
    pub fn total_time(&self) -> f64 {
        assert!(self.k >= 1, "ModelIi: k must be >= 1 (Eq. 11)");
        assert!(
            self.t_dk.is_finite() && self.t_dk >= 0.0,
            "ModelIi: t_dk must be finite and non-negative, got {}",
            self.t_dk
        );
        assert!(
            self.t_ck.is_finite() && self.t_ck >= 0.0,
            "ModelIi: t_ck must be finite and non-negative, got {}",
            self.t_ck
        );
        let pd = self.p as f64 * self.t_dk;
        pd + (self.k as f64 - 1.0) * self.t_ck.max(pd) + self.t_ck
    }

    /// Compute efficiency — Eq. (14) with `t_c = k·t_ck`.
    ///
    /// # Panics
    /// Panics on the invalid parameters [`ModelIi::total_time`] rejects,
    /// and on all-zero timings (`total_time() == 0`), whose efficiency is
    /// the indeterminate 0/0.
    pub fn efficiency(&self) -> f64 {
        let total = self.total_time();
        assert!(
            total > 0.0,
            "ModelIi: degenerate all-zero parameters (total_time = 0)"
        );
        (self.k as f64 * self.t_ck) / total
    }

    /// Is this operating point compute-bound (Case 1, Eq. 15)?
    pub fn is_compute_bound(&self) -> bool {
        self.p as f64 * self.t_dk <= self.t_ck
    }

    /// The balanced block-delivery time for these compute parameters —
    /// Eq. (19): `t_dk = t_ck / P`.
    pub fn balanced_t_dk(&self) -> f64 {
        self.t_ck / self.p as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn model_i_is_k1() {
        // Model I: η = t_c / (P·t_d + t_c) (Eq. 7).
        let m = ModelIi {
            p: 4,
            t_dk: 10.0,
            t_ck: 100.0,
            k: 1,
        };
        close(m.efficiency(), 100.0 / 140.0, 1e-12);
    }

    #[test]
    fn case1_compute_bound_efficiency() {
        // Eq. 15: η = t_c / (P·t_dk + t_c) when P·t_dk <= t_ck.
        let m = ModelIi {
            p: 4,
            t_dk: 5.0,
            t_ck: 100.0,
            k: 8,
        };
        assert!(m.is_compute_bound());
        close(m.efficiency(), 800.0 / (20.0 + 800.0), 1e-12);
    }

    #[test]
    fn case2_comm_bound_efficiency() {
        // Eq. 16: η = t_c / (P·k·t_dk + t_ck) when P·t_dk > t_ck.
        let m = ModelIi {
            p: 4,
            t_dk: 50.0,
            t_ck: 100.0,
            k: 8,
        };
        assert!(!m.is_compute_bound());
        close(m.efficiency(), 800.0 / (4.0 * 8.0 * 50.0 + 100.0), 1e-12);
    }

    #[test]
    fn balance_point_is_the_bandwidth_knee() {
        let base = ModelIi {
            p: 16,
            t_dk: 0.0,
            t_ck: 64.0,
            k: 8,
        };
        let balanced = ModelIi {
            t_dk: base.balanced_t_dk(),
            ..base
        };
        let under = ModelIi {
            t_dk: balanced.t_dk * 0.5,
            ..base
        };
        let over = ModelIi {
            t_dk: balanced.t_dk * 2.0,
            ..base
        };
        // Faster delivery always helps a little (start-up shrinks), but
        // slower-than-balanced delivery stalls compute outright: the drop
        // from balanced→over is far larger than the gain balanced→under.
        assert!(under.efficiency() > balanced.efficiency());
        assert!(balanced.efficiency() > over.efficiency());
        let gain = under.efficiency() - balanced.efficiency();
        let drop = balanced.efficiency() - over.efficiency();
        assert!(drop > 4.0 * gain, "gain {gain}, drop {drop}");
        assert!(balanced.is_compute_bound() && !over.is_compute_bound());
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn k_zero_is_rejected() {
        // Regression: k = 0 used to produce NaN (serialized as `null`).
        let m = ModelIi {
            p: 4,
            t_dk: 1.0,
            t_ck: 1.0,
            k: 0,
        };
        let _ = m.total_time();
    }

    #[test]
    #[should_panic(expected = "all-zero parameters")]
    fn all_zero_params_are_rejected() {
        // Regression: 0/0 efficiency used to propagate NaN into JSON.
        let m = ModelIi {
            p: 0,
            t_dk: 0.0,
            t_ck: 0.0,
            k: 1,
        };
        let _ = m.efficiency();
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_timing_is_rejected() {
        let m = ModelIi {
            p: 4,
            t_dk: f64::NAN,
            t_ck: 1.0,
            k: 2,
        };
        let _ = m.total_time();
    }

    #[test]
    fn efficiency_improves_with_k_when_balanced() {
        let params = FftParams::default();
        let mut last = 0.0;
        for k in [1u64, 2, 4, 8, 16, 32, 64] {
            let eta = params.efficiency_zero_latency(k);
            assert!(eta > last, "k = {k}: {eta} <= {last}");
            last = eta;
        }
    }

    #[test]
    fn required_bandwidth_grows_with_k() {
        let params = FftParams::default();
        assert!(params.required_bandwidth_gbps(64) > params.required_bandwidth_gbps(1) * 2.0);
    }

    #[test]
    fn t_c_is_constant_in_k() {
        // Blocking reorganizes the same total work: k·t_ck + t_cf is the
        // full FFT's multiply time regardless of k.
        let params = FftParams::default();
        for k in [1u64, 2, 4, 8, 16, 32, 64] {
            close(params.t_c_ns(k), 40_960.0, 1e-9);
        }
    }
}
