//! # analytic
//!
//! ```
//! // Table I's headline: zero-latency efficiency climbs toward 1 with k.
//! let params = analytic::model::FftParams::default();
//! assert_eq!(params.efficiency_zero_latency(1), 0.5);
//! assert!(params.efficiency_zero_latency(64) > 0.99);
//! // And the PSCAN transpose is exactly 1,081,344 bus cycles.
//! assert_eq!(analytic::table3_pscan_cycles(), 1_081_344);
//! ```
//!
//! The paper's §V quantitative analysis, implemented exactly:
//!
//! * [`model`] — the generalized performance model: Model I (all data
//!   before compute, Fig. 8) and Model II (k-way blocked delivery, Fig. 9),
//!   Eqs. (4)–(16), including the balance condition `P·t_dk = t_ck`.
//! * [`mod@table1`] — Table I: blocked-FFT compute efficiency at zero latency,
//!   with the required-bandwidth column of Eq. (20).
//! * [`mod@table2`] — Table II: mesh delivery efficiency (Eq. 22) and the
//!   resulting compute efficiency; the 81.74 % peak at k = 8.
//! * [`table3`] — Table III: the PSCAN transpose writeback arithmetic
//!   (Eqs. 23–24; exactly 1,081,344 bus cycles for the 2²⁰-sample case)
//!   and the paper's reported mesh multipliers for comparison.
//! * [`fig11`] — the efficiency-vs-k curves for the mesh and P-sync.
//! * [`surrogate`] — the closed forms repackaged as drop-in surrogates for
//!   the cycle-accurate fabrics (the multi-fidelity engine's fast path).

pub mod crossover;
pub mod fig11;
pub mod model;
pub mod surrogate;
pub mod table1;
pub mod table2;
pub mod table3;

pub use crossover::{bandwidth_for_efficiency, best_k_under_bandwidth, mesh_knee};
pub use fig11::{fig11_curves, Fig11Point};
pub use model::{FftParams, ModelIi};
pub use surrogate::{
    mesh_scatter_cycles, model2_point, table3_writeback_cycles, Model2Point, Model2TimingParams,
};
pub use table1::{table1, Table1Row};
pub use table2::{table2, Table2Row};
pub use table3::{
    table3_pscan_cycles, Table3Params, PAPER_MESH_WRITEBACK_TP1, PAPER_MESH_WRITEBACK_TP4,
};
