//! Table III — transpose completion time.
//!
//! PSCAN side (§V-C-1): the distributed transpose writeback is a gather of
//! `P_t = N·S_s·P / S_r` DRAM-row transactions, each taking
//! `t_t = (S_r + S_h)/S_b` bus cycles, with the SCA keeping the bus at
//! 100 % utilization — so completion is exactly `P_t · t_t`.
//!
//! Mesh side: the paper reports simulated values (3,526,620 cycles at
//! `t_p = 1`; 6,553,448 at `t_p = 4`). We reproduce those with the `emesh`
//! simulator (see the `bench` crate); the constants are kept here so tests
//! and benches can compare shape.

use serde::{Deserialize, Serialize};

/// Parameters of the transpose analysis (defaults = the paper's).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table3Params {
    /// Row length in samples (N = 1024).
    pub n: u64,
    /// Sample size in bits (S_s = 64).
    pub s_s: u64,
    /// Processor count (P = 1024).
    pub p: u64,
    /// DRAM row size in bits (S_r = 2048).
    pub s_r: u64,
    /// Bus width in bits (S_b = 64).
    pub s_b: u64,
    /// Transaction header size in bits (S_h = 64).
    pub s_h: u64,
}

impl Default for Table3Params {
    fn default() -> Self {
        Table3Params {
            n: 1024,
            s_s: 64,
            p: 1024,
            s_r: 2048,
            s_b: 64,
            s_h: 64,
        }
    }
}

impl Table3Params {
    /// Number of DRAM-row transactions — Eq. (23).
    pub fn transactions(&self) -> u64 {
        self.n * self.s_s * self.p / self.s_r
    }

    /// Bus cycles per transaction — Eq. (24).
    pub fn cycles_per_transaction(&self) -> u64 {
        (self.s_r + self.s_h) / self.s_b
    }

    /// Total PSCAN writeback time in bus cycles: `P_t · t_t`.
    pub fn pscan_cycles(&self) -> u64 {
        self.transactions() * self.cycles_per_transaction()
    }

    /// Total samples moved.
    pub fn total_samples(&self) -> u64 {
        self.n * self.p
    }
}

/// PSCAN transpose writeback cycles with the paper's parameters.
pub fn table3_pscan_cycles() -> u64 {
    Table3Params::default().pscan_cycles()
}

/// The paper's simulated mesh writeback at `t_p = 1` (multiplier 3.26×).
pub const PAPER_MESH_WRITEBACK_TP1: u64 = 3_526_620;
/// The paper's simulated mesh writeback at `t_p = 4` (multiplier 6.06×).
pub const PAPER_MESH_WRITEBACK_TP4: u64 = 6_553_448;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_exact() {
        let p = Table3Params::default();
        assert_eq!(p.transactions(), 32_768);
        assert_eq!(p.cycles_per_transaction(), 33);
        assert_eq!(p.pscan_cycles(), 1_081_344);
        assert_eq!(table3_pscan_cycles(), 1_081_344);
        assert_eq!(p.total_samples(), 1 << 20);
    }

    #[test]
    fn paper_multipliers() {
        let pscan = table3_pscan_cycles() as f64;
        let m1 = PAPER_MESH_WRITEBACK_TP1 as f64 / pscan;
        let m4 = PAPER_MESH_WRITEBACK_TP4 as f64 / pscan;
        assert!((m1 - 3.26).abs() < 0.01, "t_p=1 multiplier {m1}");
        assert!((m4 - 6.06).abs() < 0.01, "t_p=4 multiplier {m4}");
    }

    #[test]
    fn wider_rows_amortize_headers() {
        // Doubling S_r halves the transaction count and shrinks total time
        // (header amortization) — the §7 ablation's expectation.
        let narrow = Table3Params {
            s_r: 1024,
            ..Default::default()
        };
        let base = Table3Params::default();
        let wide = Table3Params {
            s_r: 4096,
            ..Default::default()
        };
        assert!(narrow.pscan_cycles() > base.pscan_cycles());
        assert!(wide.pscan_cycles() < base.pscan_cycles());
    }

    #[test]
    fn payload_cycles_are_invariant() {
        // Headers aside, moving 2^20 64-bit samples over a 64-bit bus takes
        // exactly 2^20 cycles; everything above that is header overhead.
        let p = Table3Params::default();
        let payload = p.total_samples() * p.s_s / p.s_b;
        assert_eq!(payload, 1 << 20);
        assert_eq!(
            p.pscan_cycles() - payload,
            p.transactions() * (p.s_h / p.s_b)
        );
    }
}
