//! Table II — "Electronic mesh compute efficiency with latency".
//!
//! The mesh pays `λ = √P·t_r` route cycles per delivered block, giving the
//! delivery efficiency of Eq. (22); the overall mesh efficiency is the
//! product of Table I's zero-latency efficiency and the delivery
//! efficiency. The punchline: the product peaks at k = 8 (81.74 %) and
//! *falls* afterwards — blocking finer buys compute overlap but drowns in
//! per-packet routing overhead.

use serde::{Deserialize, Serialize};

use crate::model::FftParams;
use crate::table1::TABLE1_K;

/// One row of Table II.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table2Row {
    /// Blocks per row, k.
    pub k: u64,
    /// Delivery efficiency η_d, percent (Eq. 22).
    pub eta_d_pct: f64,
    /// Compute efficiency η, percent (product with Table I).
    pub eta_pct: f64,
}

/// Generate Table II for the given parameters.
pub fn table2_with(params: &FftParams) -> Vec<Table2Row> {
    TABLE1_K
        .iter()
        .map(|&k| Table2Row {
            k,
            eta_d_pct: params.mesh_delivery_efficiency(k) * 100.0,
            eta_pct: params.mesh_efficiency(k) * 100.0,
        })
        .collect()
}

/// Generate Table II with the paper's parameters.
pub fn table2() -> Vec<Table2Row> {
    table2_with(&FftParams::default())
}

/// The values printed in the paper: (k, η_d %, η %).
pub const PAPER_TABLE2: [(u64, f64, f64); 7] = [
    (1, 98.46, 49.23),
    (2, 96.97, 66.88),
    (4, 94.12, 78.43),
    (8, 88.89, 81.74),
    (16, 80.00, 77.11),
    (32, 66.67, 65.64),
    (64, 50.01, 49.70),
];

/// The paper's boldfaced peak: k = 8 at ~82 %.
pub const PAPER_PEAK_K: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_every_printed_cell() {
        let rows = table2();
        for (row, &(k, eta_d, eta)) in rows.iter().zip(&PAPER_TABLE2) {
            assert_eq!(row.k, k);
            assert!(
                (row.eta_d_pct - eta_d).abs() < 0.05,
                "k={k} eta_d: {} vs {eta_d}",
                row.eta_d_pct
            );
            assert!(
                (row.eta_pct - eta).abs() < 0.05,
                "k={k} eta: {} vs {eta}",
                row.eta_pct
            );
        }
    }

    #[test]
    fn peak_is_at_k8() {
        let rows = table2();
        let best = rows
            .iter()
            .max_by(|a, b| a.eta_pct.partial_cmp(&b.eta_pct).unwrap())
            .unwrap();
        assert_eq!(best.k, PAPER_PEAK_K);
        assert!((best.eta_pct - 81.74).abs() < 0.05);
    }

    #[test]
    fn efficiency_falls_after_the_peak() {
        let rows = table2();
        let peak_idx = rows.iter().position(|r| r.k == PAPER_PEAK_K).unwrap();
        for w in rows[peak_idx..].windows(2) {
            assert!(w[1].eta_pct < w[0].eta_pct);
        }
    }

    #[test]
    fn k64_is_no_better_than_k1() {
        // "the k = 64 case is half as efficient as the k = 1 case" — in the
        // delivery-efficiency column; overall it lands back near k = 1.
        let rows = table2();
        let d64 = rows.iter().find(|r| r.k == 64).unwrap().eta_d_pct;
        let d1 = rows.iter().find(|r| r.k == 1).unwrap().eta_d_pct;
        assert!((d64 * 2.0 - d1).abs() < 2.0);
    }
}
