//! Inversions of the §V models: given a target, what does the machine need?
//!
//! Table I reads left-to-right (pick k, read required bandwidth `W_p` and
//! efficiency). Design questions run the other way: *given* a link budget,
//! what k can be sustained and what efficiency follows? And where is the
//! balance point `P·t_dk = t_ck` (Eq. 19) for a concrete machine?

use serde::{Deserialize, Serialize};

use crate::model::FftParams;

/// A feasible operating point under a bandwidth budget.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Blocks per row.
    pub k: u64,
    /// Required bandwidth at this k (Eq. 20), Gb/s.
    pub required_gbps: f64,
    /// Zero-latency efficiency at this k, percent.
    pub eta_pct: f64,
}

/// The largest power-of-two k (≤ `k_max`) whose Eq. (20) bandwidth fits in
/// `available_gbps`, with its efficiency — i.e. how far up Table I a given
/// link can climb.
///
/// The sweep is additionally clamped at `k ≤ params.n`: a block cannot be
/// smaller than one sample, so larger `k_max` values are accepted but
/// never probed past `n`.
pub fn best_k_under_bandwidth(
    params: &FftParams,
    available_gbps: f64,
    k_max: u64,
) -> Option<OperatingPoint> {
    let mut best = None;
    let mut k = 1;
    while k <= k_max.min(params.n) {
        let need = params.required_bandwidth_gbps(k);
        if need <= available_gbps {
            best = Some(OperatingPoint {
                k,
                required_gbps: need,
                eta_pct: params.efficiency_zero_latency(k) * 100.0,
            });
        }
        k *= 2;
    }
    best
}

/// Bandwidth (Gb/s) needed to reach a target zero-latency efficiency
/// (fraction strictly inside `(0,1)`), or `None` if no power-of-two
/// k ≤ `min(k_max, n)` reaches it at finite bandwidth.
///
/// The sweep is clamped at `k ≤ params.n` like
/// [`best_k_under_bandwidth`]; the degenerate `k = n` point (one-sample
/// blocks, `t_ck = 0`) would require infinite bandwidth and is never
/// returned.
///
/// # Panics
/// Panics unless `0 < target < 1`.
pub fn bandwidth_for_efficiency(
    params: &FftParams,
    target: f64,
    k_max: u64,
) -> Option<OperatingPoint> {
    assert!(
        target > 0.0 && target < 1.0,
        "target must be in the open interval (0,1)"
    );
    let mut k = 1;
    while k <= k_max.min(params.n) {
        if params.efficiency_zero_latency(k) >= target {
            let need = params.required_bandwidth_gbps(k);
            if need.is_finite() {
                return Some(OperatingPoint {
                    k,
                    required_gbps: need,
                    eta_pct: params.efficiency_zero_latency(k) * 100.0,
                });
            }
        }
        k *= 2;
    }
    None
}

/// The k at which the mesh's efficiency (Table II product) stops improving —
/// its routing-overhead knee (k = 8 for the paper's parameters). The sweep
/// is clamped at `k ≤ params.n` like [`best_k_under_bandwidth`].
pub fn mesh_knee(params: &FftParams, k_max: u64) -> u64 {
    let mut best_k = 1;
    let mut best = f64::MIN;
    let mut k = 1;
    while k <= k_max.min(params.n) {
        let e = params.mesh_efficiency(k);
        if e > best {
            best = e;
            best_k = k;
        }
        k *= 2;
    }
    best_k
}

/// The P-sync : mesh efficiency ratio at a given k.
pub fn efficiency_ratio(params: &FftParams, k: u64, flight_ns: f64) -> f64 {
    crate::fig11::psync_efficiency(params, k, flight_ns) / params.mesh_efficiency(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bandwidth_ladder() {
        let p = FftParams::default();
        // 409.6 Gb/s buys k = 1 only; 512 buys k = 4; 1024 buys k = 64.
        assert_eq!(best_k_under_bandwidth(&p, 410.0, 64).unwrap().k, 1);
        assert_eq!(best_k_under_bandwidth(&p, 512.0, 64).unwrap().k, 4);
        assert_eq!(best_k_under_bandwidth(&p, 1024.0, 64).unwrap().k, 64);
        // Below the k=1 requirement nothing fits.
        assert!(best_k_under_bandwidth(&p, 400.0, 64).is_none());
    }

    #[test]
    fn efficiency_targets_map_to_table1_rows() {
        let p = FftParams::default();
        let op = bandwidth_for_efficiency(&p, 0.90, 64).unwrap();
        assert_eq!(op.k, 8); // first row ≥ 90 % is k = 8 at 91.95 %
        assert!((op.required_gbps - 585.1).abs() < 0.1);
        assert!(bandwidth_for_efficiency(&p, 0.999, 64).is_none());
    }

    #[test]
    fn knee_is_k8() {
        assert_eq!(mesh_knee(&FftParams::default(), 64), 8);
    }

    #[test]
    fn k_max_beyond_n_is_clamped_not_panicking() {
        // Regression: k_max = 4096 > n = 1024 used to trip the k <= n
        // asserts in model::block_samples / fft::ops and panic. The sweep
        // now clamps at k = n and the answers match the k_max = 64 ones.
        let p = FftParams::default();
        assert_eq!(p.n, 1024);
        assert_eq!(best_k_under_bandwidth(&p, 1024.0, 4096).unwrap().k, 64);
        assert_eq!(bandwidth_for_efficiency(&p, 0.90, 4096).unwrap().k, 8);
        assert_eq!(mesh_knee(&p, 4096), 8);
        // Unreachable targets still answer None (never the degenerate
        // infinite-bandwidth k = n point).
        if let Some(op) = bandwidth_for_efficiency(&p, 0.999_999, 4096) {
            assert!(op.required_gbps.is_finite(), "k = {}", op.k);
        }
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn target_zero_is_rejected() {
        // The old bound `(0.0..1.0).contains(&target)` accepted 0.0 while
        // the message promised the open interval.
        bandwidth_for_efficiency(&FftParams::default(), 0.0, 64);
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn target_one_is_rejected() {
        bandwidth_for_efficiency(&FftParams::default(), 1.0, 64);
    }

    #[test]
    fn ratio_grows_with_k() {
        let p = FftParams::default();
        let r8 = efficiency_ratio(&p, 8, 9.2);
        let r64 = efficiency_ratio(&p, 64, 9.2);
        assert!(r64 > r8 && r64 > 1.9, "r8 {r8}, r64 {r64}");
    }
}
