//! Fig. 11 — FFT compute efficiency vs k: P-sync vs electronic mesh.
//!
//! "Global synchrony and pre-scheduled communication allow P-sync to achieve
//! near ideal FFT compute efficiency as k increases. Such efficiency gains
//! in the mesh are limited by the increased overhead of routing smaller
//! packets."
//!
//! The P-sync curve is the zero-latency Table I efficiency degraded only by
//! the (tiny, sub-slot) optical flight latency; the mesh curve is Table II.

use serde::{Deserialize, Serialize};

use crate::model::FftParams;

/// One point of the Fig. 11 curves.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig11Point {
    /// Blocks per row.
    pub k: u64,
    /// Ideal (zero-latency) efficiency, percent.
    pub ideal_pct: f64,
    /// P-sync efficiency, percent.
    pub psync_pct: f64,
    /// Electronic mesh efficiency, percent.
    pub mesh_pct: f64,
}

/// P-sync efficiency with latency: because SCA⁻¹ delivery is pre-scheduled
/// and streams continuously, the optical flight time across the bus
/// (≈ 10 ns for a 2 cm die serpentine ≈ 64 cm at 7 cm/ns) is paid **once**
/// per FFT phase, not per block:
/// `η = t_c / ((k+1)·t_ck + t_cf + flight)`.
pub fn psync_efficiency(params: &FftParams, k: u64, flight_ns: f64) -> f64 {
    let t_ck = params.t_ck_ns(k);
    let t_cf = params.t_cf_ns(k);
    params.t_c_ns(k) / ((k as f64 + 1.0) * t_ck + t_cf + flight_ns)
}

/// Generate the Fig. 11 curves over the given k values.
pub fn fig11_curves_with(params: &FftParams, ks: &[u64], flight_ns: f64) -> Vec<Fig11Point> {
    ks.iter()
        .map(|&k| {
            let ideal = params.efficiency_zero_latency(k);
            Fig11Point {
                k,
                ideal_pct: ideal * 100.0,
                psync_pct: psync_efficiency(params, k, flight_ns) * 100.0,
                mesh_pct: params.mesh_efficiency(k) * 100.0,
            }
        })
        .collect()
}

/// The paper's curves: k ∈ {1..64}, 2 cm die serpentine flight ≈ 9.2 ns.
pub fn fig11_curves() -> Vec<Fig11Point> {
    fig11_curves_with(&FftParams::default(), &[1, 2, 4, 8, 16, 32, 64], 9.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psync_tracks_ideal_upward() {
        let pts = fig11_curves();
        for w in pts.windows(2) {
            assert!(
                w[1].psync_pct > w[0].psync_pct,
                "P-sync must rise monotonically with k"
            );
        }
        // Near-ideal at the largest k.
        let last = pts.last().unwrap();
        assert!(last.psync_pct > 95.0);
        assert!(last.ideal_pct - last.psync_pct < 4.0);
    }

    #[test]
    fn mesh_peaks_then_falls() {
        let pts = fig11_curves();
        let peak = pts
            .iter()
            .max_by(|a, b| a.mesh_pct.partial_cmp(&b.mesh_pct).unwrap())
            .unwrap();
        assert_eq!(peak.k, 8);
        assert!(pts.last().unwrap().mesh_pct < peak.mesh_pct - 20.0);
    }

    #[test]
    fn psync_beats_mesh_at_large_k() {
        let pts = fig11_curves();
        let last = pts.last().unwrap();
        assert!(last.psync_pct > last.mesh_pct * 1.8);
    }

    #[test]
    fn psync_latency_penalty_is_tiny() {
        let p = FftParams::default();
        for k in [1u64, 8, 64] {
            let with = psync_efficiency(&p, k, 9.2);
            let without = p.efficiency_zero_latency(k);
            assert!(without - with < 0.001, "k={k}: {with} vs {without}");
        }
    }
}
