//! Closed-form surrogates for the cycle-accurate fabrics — the analytic
//! fast path of the multi-fidelity sweep engine.
//!
//! Each function here reproduces, from the paper's §V closed forms alone,
//! the exact quantity one of the simulators measures:
//!
//! * [`model2_point`] — the overlapped/serialized wall clocks and Eq. 14
//!   efficiency of `psync::run_model2_rows`, rebuilt from Eq. 11 with the
//!   machine's own slot/header/multiply timing ([`Model2TimingParams`]).
//! * [`mesh_scatter_cycles`] — Eq. 21's delivery cycles for the corner
//!   scatter workload `emesh::workloads::load_scatter` measures, in the
//!   same integer arithmetic as `eq21_delivery_cycles`.
//! * [`table3_writeback_cycles`] — the Table III PSCAN writeback
//!   (Eqs. 23/24), identical to the slot span the SCA gather produces.
//!
//! The conformance oracle (`bench::crosscheck`, DESIGN.md §12) bounds how
//! far each surrogate can sit from its simulator; the fidelity engine
//! (`bench::fidelity`, DESIGN.md §15) only answers a sweep point from here
//! when the point lies inside a validated region, and attaches that
//! envelope to the result as an error bar.

use serde::{Deserialize, Serialize};

use crate::model::ModelIi;
use crate::table3::Table3Params;

/// Machine timing the Model II surrogate needs: the paper-default P-sync
/// machine reduced to three numbers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Model2TimingParams {
    /// Nanoseconds per floating-point multiply (paper: 2 ns).
    pub mult_ns: f64,
    /// Bus slot period in seconds (64 λ × 5 Gb/s plan: one 64-bit word
    /// every 200 ps).
    pub slot_secs: f64,
    /// DRAM row size in 64-bit words (`S_r / S_s` = 2048 / 64 = 32): one
    /// header slot is charged per row of payload.
    pub row_words: u64,
}

impl Default for Model2TimingParams {
    /// The timing of `psync::machine::MachineConfig::paper_default`.
    fn default() -> Self {
        Model2TimingParams {
            mult_ns: 2.0,
            slot_secs: 200e-12,
            row_words: 32,
        }
    }
}

/// One Model II operating point answered in closed form.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Model2Point {
    /// Eq. 11 total time plus the serial final combine, seconds.
    pub overlapped_seconds: f64,
    /// The Model I serialization of the same work, seconds.
    pub serialized_seconds: f64,
    /// Eq. 14 efficiency with `t_c = k·t_ck + t_cf`.
    pub efficiency: f64,
}

/// Evaluate the Model II machine's timing at (`procs`, `n`, `k`) from
/// Eq. 11 alone.
///
/// The machine delivers each round as `procs·(n/k)` payload slots plus one
/// header slot per DRAM row, so the per-block delivery time Eq. 11 wants is
/// `t_dk = round_secs / P`; its overlapped clock folds exactly as
/// `P·t_dk + (k−1)·max(t_ck, P·t_dk) + t_ck` plus the serial `t_cf`
/// (the identity `bench::crosscheck::predict_model2` recovers from the
/// serialized measurement — here both sides come from the closed form).
///
/// # Panics
/// Panics if `k` is zero, does not divide `n`, or `procs` is zero — the
/// same preconditions `psync::run_model2_rows` imposes.
pub fn model2_point(procs: u64, n: u64, k: u64, params: &Model2TimingParams) -> Model2Point {
    assert!(procs >= 1, "model2_point: procs must be >= 1");
    assert!(
        k >= 1 && n.is_multiple_of(k),
        "model2_point: k must divide n (n = {n}, k = {k})"
    );
    let payload = procs * (n / k);
    let round_secs = (payload + payload.div_ceil(params.row_words)) as f64 * params.slot_secs;
    let t_ck = fft::ops::multiplies_per_block(n, k) as f64 * params.mult_ns * 1e-9;
    let t_cf = fft::ops::multiplies_final(n, k) as f64 * params.mult_ns * 1e-9;
    let model = ModelIi {
        p: procs,
        t_dk: round_secs / procs as f64,
        t_ck,
        k,
    };
    let overlapped = model.total_time() + t_cf;
    let compute_total = k as f64 * t_ck + t_cf;
    Model2Point {
        overlapped_seconds: overlapped,
        serialized_seconds: k as f64 * round_secs + compute_total,
        efficiency: compute_total / overlapped,
    }
}

/// Eq. 21 delivery cycles for the corner-scatter workload: `nodes − 1`
/// receivers of `block_words + 1` flits each (payload plus one header),
/// `P·F + P·⌊√P⌋·t_r` — the same truncating integer form as
/// `emesh::workloads::eq21_delivery_cycles`, so the two can be compared
/// exactly.
///
/// # Panics
/// Panics if `nodes < 2` (a scatter needs at least one receiver), or if
/// `nodes` is not a perfect square — the truncated `⌊√P⌋` is only the mean
/// corner distance on a square mesh; rectangular and torus geometries go
/// through [`mesh_scatter_cycles_dims`].
pub fn mesh_scatter_cycles(nodes: u64, block_words: u64, t_r: u64) -> u64 {
    assert!(nodes >= 2, "mesh_scatter_cycles: nodes must be >= 2");
    assert!(
        nodes.isqrt().pow(2) == nodes,
        "mesh_scatter_cycles: nodes must be a perfect square, got {nodes}; \
         use mesh_scatter_cycles_dims for rectangular or torus geometries"
    );
    let p = nodes - 1;
    let f = block_words + 1;
    p * f + p * p.isqrt() * t_r
}

/// Eq. 21 delivery cycles generalized to a `width × height` rectangle (or
/// torus): `P·F + P·H̄·t_r` with `P = width·height − 1` receivers,
/// `F = block_words + 1` flits, and `H̄` the truncating mean hop distance
/// from the corner memory interface — per-dimension distance sums
/// `w(w−1)/2` (mesh) or `⌊w²/4⌋` (torus). Matches
/// `emesh::workloads::eq21_delivery_cycles_dims` exactly, and
/// [`mesh_scatter_cycles`] on square meshes.
pub fn mesh_scatter_cycles_dims(
    width: u64,
    height: u64,
    block_words: u64,
    t_r: u64,
    torus: bool,
) -> u64 {
    assert!(
        width >= 1 && height >= 1 && width * height >= 2,
        "mesh_scatter_cycles_dims: need at least one receiver, got {width}x{height}"
    );
    let dim_sum = |w: u64| if torus { w * w / 4 } else { w * (w - 1) / 2 };
    let mean_hops = (dim_sum(width) * height + dim_sum(height) * width) / (width * height);
    let p = width * height - 1;
    let f = block_words + 1;
    p * f + p * mean_hops * t_r
}

/// Table III PSCAN writeback cycles (Eqs. 23/24) for a `p × n` transpose
/// of 64-bit samples at the paper's bus/row/header widths.
///
/// # Panics
/// Panics unless the sample volume divides into whole DRAM rows
/// (`p·n·64` a multiple of 2048, i.e. `p·n` a multiple of 32) — partial
/// rows are outside Eq. 23's arithmetic and outside the validated region.
pub fn table3_writeback_cycles(p: u64, n: u64) -> u64 {
    let params = Table3Params {
        n,
        p,
        ..Default::default()
    };
    assert!(
        (n * params.s_s * p).is_multiple_of(params.s_r),
        "table3_writeback_cycles: p·n must fill whole DRAM rows (p = {p}, n = {n})"
    );
    params.pscan_cycles()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1e-300), "{a} vs {b}");
    }

    #[test]
    fn model2_matches_hand_rolled_eq11() {
        // P = 4, N = 64, k = 4: payload = 64 slots + 2 header slots,
        // round = 66 × 200 ps = 13.2 ns.
        let params = Model2TimingParams::default();
        let pt = model2_point(4, 64, 4, &params);
        let round = 66.0 * 200e-12;
        let t_ck = fft::ops::multiplies_per_block(64, 4) as f64 * 2e-9;
        let t_cf = fft::ops::multiplies_final(64, 4) as f64 * 2e-9;
        let expect = round + 3.0 * t_ck.max(round) + t_ck + t_cf;
        close(pt.overlapped_seconds, expect, 1e-12);
        close(
            pt.serialized_seconds,
            4.0 * round + 4.0 * t_ck + t_cf,
            1e-12,
        );
        close(pt.efficiency, (4.0 * t_ck + t_cf) / expect, 1e-12);
    }

    #[test]
    fn model2_k1_has_nothing_to_overlap() {
        let pt = model2_point(8, 256, 1, &Model2TimingParams::default());
        close(pt.overlapped_seconds, pt.serialized_seconds, 1e-12);
    }

    #[test]
    fn model2_overlap_beats_serialization() {
        let pt = model2_point(8, 256, 8, &Model2TimingParams::default());
        assert!(pt.overlapped_seconds < pt.serialized_seconds);
        assert!(pt.efficiency > 0.0 && pt.efficiency <= 1.0);
    }

    #[test]
    #[should_panic(expected = "k must divide n")]
    fn model2_rejects_indivisible_k() {
        model2_point(4, 64, 3, &Model2TimingParams::default());
    }

    #[test]
    fn mesh_scatter_matches_eq21_integer_form() {
        // 64 nodes minus the memory corner: P = 63, ⌊√63⌋ = 7.
        assert_eq!(mesh_scatter_cycles(64, 16, 1), 63 * 17 + 63 * 7);
        // Perfect-square receiver count: P = 255, ⌊√255⌋ = 15.
        assert_eq!(mesh_scatter_cycles(256, 1024, 1), 255 * 1025 + 255 * 15);
        // t_r scales only the routing term.
        assert_eq!(
            mesh_scatter_cycles(64, 16, 4) - mesh_scatter_cycles(64, 16, 0),
            63 * 7 * 4
        );
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn mesh_scatter_rejects_non_square_node_counts() {
        mesh_scatter_cycles(48, 16, 1);
    }

    #[test]
    fn mesh_scatter_dims_agrees_with_square_form() {
        assert_eq!(
            mesh_scatter_cycles_dims(8, 8, 16, 1, false),
            mesh_scatter_cycles(64, 16, 1)
        );
        assert_eq!(
            mesh_scatter_cycles_dims(16, 16, 1024, 1, false),
            mesh_scatter_cycles(256, 1024, 1)
        );
        // Rectangle: 8×4, dim sums 28 and 6, H̄ = (28·4 + 6·8)/32 = 5.
        assert_eq!(
            mesh_scatter_cycles_dims(8, 4, 16, 1, false),
            31 * 17 + 31 * 5
        );
        // Torus wrap halves the mean: 8×8 torus H̄ = 4.
        assert_eq!(
            mesh_scatter_cycles_dims(8, 8, 16, 1, true),
            63 * 17 + 63 * 4
        );
    }

    #[test]
    fn table3_matches_paper_arithmetic() {
        assert_eq!(table3_writeback_cycles(1024, 1024), 1_081_344);
        // 32 × 32 = 1024 samples = 32 DRAM rows of 32 words, 33 cycles each.
        assert_eq!(table3_writeback_cycles(32, 32), 32 * 33);
    }

    #[test]
    #[should_panic(expected = "whole DRAM rows")]
    fn table3_rejects_partial_rows() {
        table3_writeback_cycles(3, 5);
    }
}
