//! Property tests for the §V analytic formulas (ISSUE satellite of the
//! conformance oracle): algebraic identities that must hold across the
//! whole valid parameter space, not just the paper's table rows.

use analytic::model::FftParams;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work conservation (Eqs. 17/18 vs Table I's total): blocking
    /// reorganizes the FFT's multiplies without creating or destroying
    /// any — `k·multiplies_per_block(n, k) + multiplies_final(n, k)
    /// == multiplies(n)` for every valid power-of-two pair.
    #[test]
    fn blocking_conserves_multiplies(bits in 0u32..=20) {
        let n = 1u64 << bits;
        for kb in 0..=bits {
            let k = 1u64 << kb;
            prop_assert_eq!(
                k * fft::ops::multiplies_per_block(n, k) + fft::ops::multiplies_final(n, k),
                fft::ops::multiplies(n),
                "n = {}, k = {}", n, k
            );
        }
    }

    /// Eq. 22 monotonicity: smaller blocks amortize the mesh's `√P·t_r`
    /// route latency over fewer flits, so `η_d = F/(F + √P·t_r)` can only
    /// fall as k doubles — strictly, whenever the latency term is nonzero.
    #[test]
    fn mesh_delivery_efficiency_is_monotone_in_k(
        bits in 1u32..=12,
        p in 1u64..=4096,
        t_r in 0u64..=4,
    ) {
        let params = FftParams {
            n: 1u64 << bits,
            p,
            t_r,
            ..FftParams::default()
        };
        let lambda = (p as f64).sqrt() * t_r as f64;
        for kb in 0..bits {
            let k = 1u64 << kb;
            let here = params.mesh_delivery_efficiency(k);
            let next = params.mesh_delivery_efficiency(2 * k);
            prop_assert!((0.0..=1.0).contains(&here), "k = {}: eta_d = {}", k, here);
            if lambda > 0.0 {
                prop_assert!(next < here, "k = {}: {} !< {}", k, next, here);
            } else {
                prop_assert_eq!(next, here, "k = {}", k);
            }
        }
    }
}
