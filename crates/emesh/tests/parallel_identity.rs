//! Bit-identity between the sequential and epoch-parallel mesh schedulers.
//!
//! The parallel path (`MeshConfig::with_threads(n)`, n > 1) must reproduce
//! the sequential scheduler **bit-for-bit** on every observable: completion
//! cycle, every energy counter, every `MemifStats` field, per-node sink
//! deliveries and payload words, and the per-router forward heatmap. These
//! tests sweep the golden configurations from ISSUE 4 — three mesh sizes ×
//! both routing policies × fault injection on/off — plus uniform-random
//! permutation traffic, odd thread counts that don't divide the grid, and
//! the telemetry-off byte-identity check.
//!
//! With a fault layer attached the scheduler falls back to the sequential
//! path by design (shared-RNG draw order is processing-order-dependent);
//! those cases are still swept here so the contract "`with_threads` never
//! changes results" holds unconditionally.

use emesh::mesh::{Mesh, MeshConfig, MeshRunResult, RoutingPolicy};
use emesh::workloads::{load_transpose, load_uniform_random};
use emesh::MeshFaultConfig;

/// Every deterministic observable of a run, in one comparable bundle.
#[derive(Debug, PartialEq)]
struct Observables {
    cycles: u64,
    energy: String,
    memif_stats: String,
    sink_delivered: Vec<u64>,
    sink_last_cycle: Vec<u64>,
    router_forwards: Vec<u64>,
    sink_words: Vec<Vec<u64>>,
}

fn observe(mesh: &Mesh, res: &MeshRunResult) -> Observables {
    let nodes = res.sink_delivered.len();
    Observables {
        cycles: res.cycles,
        energy: format!("{:?}", res.energy),
        memif_stats: format!("{:?}", res.memif_stats),
        sink_delivered: res.sink_delivered.clone(),
        sink_last_cycle: res.sink_last_cycle.clone(),
        router_forwards: res.router_forwards.clone(),
        sink_words: (0..nodes as u32)
            .map(|n| mesh.sink_words(n).to_vec())
            .collect(),
    }
}

fn run_transpose(
    procs: usize,
    row_len: usize,
    policy: RoutingPolicy,
    threads: usize,
    faults: bool,
) -> Observables {
    let mut cfg = MeshConfig::table3(procs, 1);
    cfg.policy = policy;
    let mut mesh = load_transpose(cfg.with_threads(threads), procs, row_len);
    mesh.collect_sink_words(true);
    if faults {
        mesh.enable_faults(MeshFaultConfig {
            seed: 7,
            corrupt_rate: 0.01,
            max_retransmits: 16,
            ..Default::default()
        });
    }
    let res = mesh.run().expect("transpose completes");
    observe(&mesh, &res)
}

/// The ISSUE 4 golden grid: 3 sizes × 2 policies × faults on/off, sequential
/// vs 3 worker threads (3 deliberately does not divide the 4- and 8-wide
/// grids evenly).
#[test]
fn parallel_matches_sequential_on_golden_grid() {
    let sizes: &[(usize, usize)] = &[(16, 16), (16, 64), (64, 32)];
    let policies = [RoutingPolicy::Xy, RoutingPolicy::MinimalAdaptive];
    for &(procs, row_len) in sizes {
        for policy in policies {
            for faults in [false, true] {
                let seq = run_transpose(procs, row_len, policy, 1, faults);
                let par = run_transpose(procs, row_len, policy, 3, faults);
                assert_eq!(
                    seq, par,
                    "({procs}, {row_len}, {policy:?}, faults={faults}): \
                     parallel diverged from sequential"
                );
            }
        }
    }
}

/// Thread counts beyond the row count and prime counts must also be exact —
/// the partitioner hands some workers empty chunks and the result may not
/// depend on it.
#[test]
fn parallel_is_exact_for_awkward_thread_counts() {
    let seq = run_transpose(16, 32, RoutingPolicy::MinimalAdaptive, 1, false);
    for threads in [2, 5, 7, 16, 33] {
        let par = run_transpose(16, 32, RoutingPolicy::MinimalAdaptive, threads, false);
        assert_eq!(seq, par, "threads={threads} diverged");
    }
}

/// Uniform-random permutation traffic exercises sink delivery and adaptive
/// contention much harder than the transpose; identity must still hold.
#[test]
fn parallel_matches_sequential_on_uniform_random() {
    for policy in [RoutingPolicy::Xy, RoutingPolicy::MinimalAdaptive] {
        let run = |threads: usize| {
            let mut cfg = MeshConfig::table3(64, 1);
            cfg.policy = policy;
            let mut mesh = load_uniform_random(cfg.with_threads(threads), 8, 3, 42);
            mesh.collect_sink_words(true);
            let res = mesh.run().expect("random traffic drains");
            observe(&mesh, &res)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq, par, "{policy:?}: parallel diverged on random traffic");
        assert!(seq.sink_delivered.iter().sum::<u64>() > 0);
    }
}

/// Telemetry-off byte-identity: rendering the full result of a threaded
/// run must produce the same bytes as the sequential run.
#[test]
fn parallel_result_is_byte_identical_when_rendered() {
    let run = |threads: usize| {
        let mut mesh = load_transpose(MeshConfig::table3(16, 4).with_threads(threads), 16, 16);
        let res = mesh.run().expect("completes");
        format!("{res:?}")
    };
    assert_eq!(run(1), run(3), "rendered bytes differ");
}

/// A threaded run repeated twice must equal itself (no scheduling noise
/// leaks into results even when the thread pool is reused differently).
#[test]
fn parallel_runs_are_self_deterministic() {
    let a = run_transpose(64, 16, RoutingPolicy::MinimalAdaptive, 4, false);
    let b = run_transpose(64, 16, RoutingPolicy::MinimalAdaptive, 4, false);
    assert_eq!(a, b);
}

/// `with_threads(0)` clamps to 1 and stays on the sequential path.
#[test]
fn zero_threads_clamps_to_sequential() {
    let cfg = MeshConfig::table3(16, 1).with_threads(0);
    assert_eq!(cfg.threads, 1);
    let seq = run_transpose(16, 16, RoutingPolicy::Xy, 1, false);
    let clamped = run_transpose(16, 16, RoutingPolicy::Xy, 0, false);
    assert_eq!(seq, clamped);
}
