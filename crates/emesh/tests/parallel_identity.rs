//! Bit-identity between the sequential and epoch-parallel mesh schedulers.
//!
//! The parallel path (`MeshConfig::with_threads(n)`, n > 1) must reproduce
//! the sequential scheduler **bit-for-bit** on every observable: completion
//! cycle, every energy counter, every `MemifStats` field, per-node sink
//! deliveries and payload words, and the per-router forward heatmap. These
//! tests sweep the golden configurations from ISSUE 4 — three mesh sizes ×
//! both routing policies × fault injection on/off — plus uniform-random
//! permutation traffic, odd thread counts that don't divide the grid, and
//! byte-identity checks of the rendered result and telemetry output.
//!
//! There is **no sequential fallback**: fault injection, telemetry and
//! latency tracking all execute on the epoch-parallel scheduler (per-site
//! counter-hashed fault streams and service-order effect replay make their
//! observation order interleaving-independent — DESIGN.md §11), so the
//! instrumented sweeps below genuinely exercise the threaded path.

use emesh::mesh::{Mesh, MeshConfig, MeshRunResult, RoutingPolicy, RunWarning};
use emesh::workloads::{load_transpose, load_uniform_random};
use emesh::MeshFaultConfig;

/// Every deterministic observable of a run, in one comparable bundle.
#[derive(Debug, PartialEq)]
struct Observables {
    cycles: u64,
    energy: String,
    memif_stats: String,
    fault_stats: String,
    latency: String,
    sink_delivered: Vec<u64>,
    sink_last_cycle: Vec<u64>,
    router_forwards: Vec<u64>,
    sink_words: Vec<Vec<u64>>,
}

fn observe(mesh: &Mesh, res: &MeshRunResult) -> Observables {
    let nodes = res.sink_delivered.len();
    Observables {
        cycles: res.cycles,
        energy: format!("{:?}", res.energy),
        memif_stats: format!("{:?}", res.memif_stats),
        fault_stats: format!("{:?}", res.faults),
        latency: format!("{:?}", res.latency),
        sink_delivered: res.sink_delivered.clone(),
        sink_last_cycle: res.sink_last_cycle.clone(),
        router_forwards: res.router_forwards.clone(),
        sink_words: (0..nodes as u32)
            .map(|n| mesh.sink_words(n).to_vec())
            .collect(),
    }
}

fn run_transpose(
    procs: usize,
    row_len: usize,
    policy: RoutingPolicy,
    threads: usize,
    faults: bool,
) -> Observables {
    let mut cfg = MeshConfig::table3(procs, 1);
    cfg.policy = policy;
    let mut mesh = load_transpose(cfg.with_threads(threads), procs, row_len);
    mesh.collect_sink_words(true);
    if faults {
        mesh.enable_faults(MeshFaultConfig {
            seed: 7,
            corrupt_rate: 0.01,
            max_retransmits: 16,
            ..Default::default()
        });
    }
    let res = mesh.run().expect("transpose completes");
    observe(&mesh, &res)
}

/// The ISSUE 4 golden grid: 3 sizes × 2 policies × faults on/off, sequential
/// vs 3 worker threads (3 deliberately does not divide the 4- and 8-wide
/// grids evenly).
#[test]
fn parallel_matches_sequential_on_golden_grid() {
    let sizes: &[(usize, usize)] = &[(16, 16), (16, 64), (64, 32)];
    let policies = [RoutingPolicy::Xy, RoutingPolicy::MinimalAdaptive];
    for &(procs, row_len) in sizes {
        for policy in policies {
            for faults in [false, true] {
                let seq = run_transpose(procs, row_len, policy, 1, faults);
                let par = run_transpose(procs, row_len, policy, 3, faults);
                assert_eq!(
                    seq, par,
                    "({procs}, {row_len}, {policy:?}, faults={faults}): \
                     parallel diverged from sequential"
                );
            }
        }
    }
}

/// Thread counts beyond the row count and prime counts must also be exact —
/// the partitioner hands some workers empty chunks and the result may not
/// depend on it.
#[test]
fn parallel_is_exact_for_awkward_thread_counts() {
    let seq = run_transpose(16, 32, RoutingPolicy::MinimalAdaptive, 1, false);
    for threads in [2, 5, 7, 16, 33] {
        let par = run_transpose(16, 32, RoutingPolicy::MinimalAdaptive, threads, false);
        assert_eq!(seq, par, "threads={threads} diverged");
    }
}

/// Uniform-random permutation traffic exercises sink delivery and adaptive
/// contention much harder than the transpose; identity must still hold.
#[test]
fn parallel_matches_sequential_on_uniform_random() {
    for policy in [RoutingPolicy::Xy, RoutingPolicy::MinimalAdaptive] {
        let run = |threads: usize| {
            let mut cfg = MeshConfig::table3(64, 1);
            cfg.policy = policy;
            let (mut mesh, _) = load_uniform_random(cfg.with_threads(threads), 8, 3, 42);
            mesh.collect_sink_words(true);
            let res = mesh.run().expect("random traffic drains");
            observe(&mesh, &res)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq, par, "{policy:?}: parallel diverged on random traffic");
        assert!(seq.sink_delivered.iter().sum::<u64>() > 0);
    }
}

/// Telemetry-off byte-identity: rendering the full result of a threaded
/// run must produce the same bytes as the sequential run.
#[test]
fn parallel_result_is_byte_identical_when_rendered() {
    let run = |threads: usize| {
        let mut mesh = load_transpose(MeshConfig::table3(16, 4).with_threads(threads), 16, 16);
        let res = mesh.run().expect("completes");
        format!("{res:?}")
    };
    assert_eq!(run(1), run(3), "rendered bytes differ");
}

/// A threaded run repeated twice must equal itself (no scheduling noise
/// leaks into results even when the thread pool is reused differently).
#[test]
fn parallel_runs_are_self_deterministic() {
    let a = run_transpose(64, 16, RoutingPolicy::MinimalAdaptive, 4, false);
    let b = run_transpose(64, 16, RoutingPolicy::MinimalAdaptive, 4, false);
    assert_eq!(a, b);
}

/// `with_threads(0)` clamps to 1 and stays on the sequential path.
#[test]
fn zero_threads_clamps_to_sequential() {
    let cfg = MeshConfig::table3(16, 1).with_threads(0);
    assert_eq!(cfg.threads, 1);
    let seq = run_transpose(16, 16, RoutingPolicy::Xy, 1, false);
    let clamped = run_transpose(16, 16, RoutingPolicy::Xy, 0, false);
    assert_eq!(seq, clamped);
}

/// An instrumented run: telemetry registry, latency histogram, and (when
/// `faults` is set) corruption + transient link outages + retransmission,
/// all attached at once. Returns the observables, the rendered result
/// bytes, and the full telemetry metrics dump.
fn run_instrumented(threads: usize, faults: bool) -> (Observables, String, String) {
    let cfg = MeshConfig::table3(16, 2)
        .with_policy(RoutingPolicy::MinimalAdaptive)
        .with_threads(threads);
    let mut mesh = load_transpose(cfg, 16, 48);
    mesh.collect_sink_words(true);
    mesh.enable_telemetry();
    mesh.track_latency(4, 512);
    if faults {
        mesh.enable_faults(MeshFaultConfig {
            seed: 11,
            corrupt_rate: 0.008,
            link_down_rate: 0.002,
            link_down_cycles: 6,
            max_retransmits: 32,
            nack_delay: 5,
            ..Default::default()
        });
    }
    let res = mesh.run().expect("instrumented transpose completes");
    let obs = observe(&mesh, &res);
    let rendered = format!("{res:?}");
    let metrics = mesh.telemetry().expect("telemetry enabled").metrics_json();
    (obs, rendered, metrics)
}

/// Telemetry-on identity: the threaded scheduler must reproduce not just
/// the run result but the **entire metrics dump** — counter totals, the
/// occupancy histogram (sample-for-sample), per-router activity spans —
/// byte for byte, under even, odd, and node-count thread counts.
#[test]
fn telemetry_run_is_byte_identical_across_thread_counts() {
    let (seq, seq_rendered, seq_metrics) = run_instrumented(1, false);
    for threads in [2, 4, 5, 16] {
        let (par, par_rendered, par_metrics) = run_instrumented(threads, false);
        assert_eq!(seq, par, "threads={threads}: observables diverged");
        assert_eq!(
            seq_rendered, par_rendered,
            "threads={threads}: rendered result bytes diverged"
        );
        assert_eq!(
            seq_metrics, par_metrics,
            "threads={threads}: telemetry metrics diverged"
        );
    }
}

/// Faults + telemetry + latency all at once, still bit-identical: the
/// per-site counter-hashed fault streams and the service-order effect
/// replay may not observe thread interleaving anywhere.
#[test]
fn faulted_instrumented_run_is_byte_identical_across_thread_counts() {
    let (seq, seq_rendered, seq_metrics) = run_instrumented(1, true);
    assert_ne!(
        seq.fault_stats, "None",
        "fault layer must be live for this sweep"
    );
    for threads in [2, 4, 7] {
        let (par, par_rendered, par_metrics) = run_instrumented(threads, true);
        assert_eq!(seq, par, "threads={threads}: observables diverged");
        assert_eq!(
            seq_rendered, par_rendered,
            "threads={threads}: rendered result bytes diverged"
        );
        assert_eq!(
            seq_metrics, par_metrics,
            "threads={threads}: telemetry metrics diverged"
        );
    }
}

/// Requesting more threads than the mesh has routers is not an error and
/// not a silent degradation: the run completes (clamped) and says so in
/// the structured warning list. Sane requests leave the list empty.
#[test]
fn thread_clamp_is_reported_as_a_structured_warning() {
    let run = |threads: usize| {
        let mut mesh = load_transpose(MeshConfig::table3(16, 1).with_threads(threads), 16, 16);
        mesh.run().expect("completes")
    };
    let clamped = run(33);
    assert_eq!(
        clamped.warnings,
        vec![RunWarning::ThreadsExceedNodes {
            requested: 33,
            nodes: 16,
        }]
    );
    // The warning renders as a human-readable sentence for run summaries.
    assert!(clamped.warnings[0].to_string().contains("clamped"));
    for sane in [1, 2, 16] {
        assert_eq!(run(sane).warnings, vec![], "threads={sane}");
    }
}
