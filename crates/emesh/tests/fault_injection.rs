//! Resilience-layer integration tests: zero-fault bit-identity, corruption
//! recovery via NACK/retransmit, link outages, the hard-kill watchdog, and
//! the structured injection errors.

use emesh::flit::Packet;
use emesh::memif::MemifConfig;
use emesh::mesh::{Mesh, MeshConfig, MeshError, RoutingPolicy};
use emesh::topology::{MemifPlacement, Topology};
use emesh::{MeshFaultConfig, RouterKill};

fn cfg(policy: RoutingPolicy) -> MeshConfig {
    MeshConfig {
        topology: Topology::square(16, MemifPlacement::SingleCorner),
        t_r: 1,
        policy,
        memif: MemifConfig::default(),
        buffer_depth: 2,
        max_cycles: 1 << 24,
        threads: 1,
    }
}

/// Every node sends its own row's addresses to the corner memif.
fn inject_all_to_corner(m: &mut Mesh, elements_per_node: u64) {
    for n in 0..16u32 {
        for e in 0..elements_per_node {
            let addr = u64::from(n) * 32 + e;
            m.inject_packet(
                n,
                &Packet::with_header(0, u64::from(n) * 32 + e, vec![addr]),
            );
        }
    }
}

#[test]
fn zero_rate_fault_layer_is_bit_identical() {
    let run = |with_layer: bool| {
        let mut m = Mesh::new(cfg(RoutingPolicy::MinimalAdaptive));
        if with_layer {
            m.enable_faults(MeshFaultConfig::default());
        }
        inject_all_to_corner(&mut m, 32);
        m.run().expect("clean run")
    };
    let plain = run(false);
    let layered = run(true);
    assert_eq!(plain.cycles, layered.cycles);
    assert_eq!(plain.energy, layered.energy);
    assert_eq!(plain.sink_delivered, layered.sink_delivered);
    assert_eq!(plain.router_forwards, layered.router_forwards);
    let (a, b) = (plain.memif_stats[0], layered.memif_stats[0]);
    assert_eq!(a.flits_accepted, b.flits_accepted);
    assert_eq!(a.elements, b.elements);
    assert_eq!(a.rows_written, b.rows_written);
    assert_eq!(a.dram_done, b.dram_done);
    assert_eq!(a.last_accept, b.last_accept);
    assert_eq!(b.nacked, 0);
    let stats = layered.faults.expect("layer attached");
    assert_eq!(stats, Default::default(), "zero-rate layer fired nothing");
}

#[test]
fn corruption_is_recovered_by_retransmission() {
    let mut m = Mesh::new(cfg(RoutingPolicy::Xy));
    m.enable_faults(MeshFaultConfig {
        seed: 42,
        corrupt_rate: 0.02,
        max_retransmits: 16,
        ..Default::default()
    });
    inject_all_to_corner(&mut m, 32);
    let res = m.run().expect("recovers under noise");
    let stats = res.faults.expect("layer attached");
    assert!(stats.corrupted_flits > 0, "2% over ~3k traversals must hit");
    assert!(stats.nacks > 0);
    assert!(stats.retransmits > 0);
    assert_eq!(stats.dropped_elements, 0, "retry budget ample: {stats:?}");
    // Every element eventually staged cleanly.
    assert_eq!(res.memif_stats[0].elements, 16 * 32);
    assert_eq!(res.memif_stats[0].rows_written, 16);
    assert_eq!(res.memif_stats[0].nacked, stats.nacks);
}

#[test]
fn faulty_runs_are_deterministic() {
    let run = || {
        let mut m = Mesh::new(cfg(RoutingPolicy::MinimalAdaptive));
        m.enable_faults(MeshFaultConfig {
            seed: 7,
            corrupt_rate: 0.01,
            link_down_rate: 0.001,
            max_retransmits: 16,
            ..Default::default()
        });
        inject_all_to_corner(&mut m, 16);
        let res = m.run().expect("recovers");
        (res.cycles, res.energy, res.faults.unwrap())
    };
    assert_eq!(run(), run());
}

#[test]
fn corruption_costs_cycles_and_energy() {
    let baseline = {
        let mut m = Mesh::new(cfg(RoutingPolicy::Xy));
        inject_all_to_corner(&mut m, 32);
        m.run().unwrap()
    };
    let noisy = {
        let mut m = Mesh::new(cfg(RoutingPolicy::Xy));
        m.enable_faults(MeshFaultConfig {
            seed: 9,
            corrupt_rate: 0.05,
            max_retransmits: 32,
            ..Default::default()
        });
        inject_all_to_corner(&mut m, 32);
        m.run().unwrap()
    };
    assert!(noisy.cycles > baseline.cycles);
    assert!(noisy.energy.injections > baseline.energy.injections);
    assert_eq!(noisy.memif_stats[0].elements, 16 * 32, "no data lost");
}

#[test]
fn link_outages_delay_but_complete() {
    let mut m = Mesh::new(cfg(RoutingPolicy::Xy));
    m.enable_faults(MeshFaultConfig {
        seed: 3,
        link_down_rate: 0.01,
        link_down_cycles: 32,
        ..Default::default()
    });
    inject_all_to_corner(&mut m, 16);
    let res = m.run().expect("outages are transient");
    let stats = res.faults.unwrap();
    assert!(stats.link_down_events > 0);
    assert_eq!(res.memif_stats[0].elements, 16 * 16);
}

#[test]
fn watchdog_converts_hard_kill_into_diagnostic() {
    // XY routing from (3,3) to the (0,0) memif goes west along y = 3 first;
    // killing router 13 = (1,3) wedges that path. With retransmission
    // disabled nothing can recover: the sender at 14 probes its dead
    // neighbour forever — a livelock the watchdog must convert into a
    // structured report instead of a hang.
    let mut m = Mesh::new(cfg(RoutingPolicy::Xy));
    m.enable_faults(MeshFaultConfig {
        router_kills: vec![RouterKill {
            router: 13,
            at_cycle: 0,
        }],
        retransmit: false,
        watchdog_cycles: 500,
        ..Default::default()
    });
    for e in 0..4u64 {
        m.inject_packet(15, &Packet::with_header(0, e, vec![e]));
    }
    match m.run() {
        Err(MeshError::NoProgress { at_cycle, report }) => {
            assert!(at_cycle < 5_000, "watchdog fired late: {at_cycle}");
            assert_eq!(report.killed_routers, vec![13]);
            assert!(report.in_flight + report.pending_inject > 0);
            assert!(!report.stuck_routers.is_empty());
            assert!(report.stats.probes > 0, "senders were probing: {report:?}");
        }
        other => panic!("expected NoProgress, got {other:?}"),
    }
}

#[test]
fn injection_at_out_of_range_node_is_structured() {
    let mut m = Mesh::new(cfg(RoutingPolicy::Xy));
    let err = m
        .try_inject_packet(99, &Packet::with_header(0, 0, vec![1]))
        .unwrap_err();
    assert_eq!(
        err,
        MeshError::BadInjection {
            node: 99,
            nodes: 16
        }
    );
}

#[test]
fn injection_at_killed_node_is_structured() {
    let mut m = Mesh::new(cfg(RoutingPolicy::Xy));
    m.enable_faults(MeshFaultConfig {
        router_kills: vec![RouterKill {
            router: 5,
            at_cycle: 0,
        }],
        ..Default::default()
    });
    let err = m
        .try_inject_packet(5, &Packet::with_header(0, 0, vec![1]))
        .unwrap_err();
    assert_eq!(
        err,
        MeshError::DeadNode {
            node: 5,
            killed_at: 0
        }
    );
    // A live node still injects fine.
    m.try_inject_packet(15, &Packet::with_header(0, 1, vec![2]))
        .expect("live node");
}
