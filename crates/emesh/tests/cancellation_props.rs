//! Property tests for cancellation determinism (ISSUE 7 satellite).
//!
//! Cancellation must be an *observer*, not a participant: interrupting a
//! run at an arbitrary cycle may not perturb what a fresh, uninterrupted
//! rerun of the same configuration produces, and the cancellation payload
//! itself (cycle reached, partial progress counters, energy) must be a
//! deterministic function of the configuration and the bound — including
//! under the epoch-parallel scheduler, which polls the same master loop.
//!
//! The deterministic [`Interrupt::with_cycle_bound`] source stands in for
//! the wall-clock sources here: token and deadline cancellations go
//! through the exact same poll site and error path, differing only in
//! *when* they fire, which is precisely what these properties quantify
//! over.

use emesh::mesh::{Mesh, MeshConfig, MeshError, RoutingPolicy};
use emesh::workloads::load_transpose;
use proptest::prelude::*;
use sim_core::cancel::{CancelCause, CancelToken, Interrupt};

/// A small transpose mesh: big enough to run for hundreds of cycles,
/// small enough for dozens of proptest cases.
fn build(procs: usize, row_len: usize, threads: usize) -> Mesh {
    let cfg = MeshConfig::table3(procs, 1)
        .with_policy(RoutingPolicy::MinimalAdaptive)
        .with_threads(threads);
    let mut mesh = load_transpose(cfg, procs, row_len);
    mesh.collect_sink_words(true);
    mesh
}

/// Every deterministic observable of a completed run, as one string.
fn fingerprint(mesh: &mut Mesh) -> String {
    let res = mesh.run().expect("uncancelled transpose completes");
    let nodes = res.sink_delivered.len() as u32;
    let words: Vec<Vec<u64>> = (0..nodes).map(|n| mesh.sink_words(n).to_vec()).collect();
    format!("{res:?}|{words:?}")
}

/// Run with a deterministic cycle bound installed; `Err` when the bound
/// fired, `Ok` when it fell past the final poll site (e.g. in the
/// trailing DRAM-drain window) and the run completed normally.
fn run_bounded(
    procs: usize,
    row_len: usize,
    threads: usize,
    bound: u64,
) -> Result<String, MeshError> {
    let mut mesh = build(procs, row_len, threads);
    mesh.set_interrupt(Interrupt::new().with_cycle_bound(bound));
    match mesh.run() {
        Err(e) => Err(e),
        Ok(res) => {
            let nodes = res.sink_delivered.len() as u32;
            let words: Vec<Vec<u64>> = (0..nodes).map(|n| mesh.sink_words(n).to_vec()).collect();
            Ok(format!("{res:?}|{words:?}"))
        }
    }
}

/// Run to the deterministic cycle bound and return the full error payload.
fn cancelled_at(procs: usize, row_len: usize, threads: usize, bound: u64) -> MeshError {
    run_bounded(procs, row_len, threads, bound).expect_err("cycle bound must cancel the run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cancelling at a random mid-run cycle, then rerunning the same
    /// configuration on a fresh mesh with no interrupt, reproduces the
    /// never-cancelled fingerprint exactly — cancellation leaves no
    /// residue in any observable. The cancellation payload itself is also
    /// deterministic: repeating the cancelled run gives the identical
    /// structured error, and the epoch-parallel scheduler (4 workers)
    /// reports the identical payload as the sequential one.
    #[test]
    fn mid_run_cancel_leaves_no_residue(
        row_len in 8usize..48,
        bound_sel in 0u64..u64::MAX,
    ) {
        let procs = 16;
        let baseline = fingerprint(&mut build(procs, row_len, 1));
        let cycles = build(procs, row_len, 1)
            .run()
            .expect("completes")
            .cycles;
        prop_assert!(cycles > 1, "a {row_len}-word transpose takes cycles");
        let bound = 1 + bound_sel % (cycles - 1);

        match run_bounded(procs, row_len, 1, bound) {
            Err(err) => {
                match &err {
                    MeshError::Cancelled { at_cycle, cause, .. } => {
                        prop_assert_eq!(*cause, CancelCause::CycleReached { bound });
                        prop_assert!(*at_cycle >= bound, "fired before the bound");
                        prop_assert!(*at_cycle <= cycles, "fired after completion");
                    }
                    other => prop_assert!(false, "expected Cancelled, got {other:?}"),
                }
                // The cancellation payload is itself deterministic...
                let again = cancelled_at(procs, row_len, 1, bound);
                prop_assert_eq!(format!("{err:?}"), format!("{again:?}"));
                // ...including under the epoch-parallel scheduler.
                let par = cancelled_at(procs, row_len, 4, bound);
                prop_assert_eq!(format!("{err:?}"), format!("{par:?}"));
            }
            // The bound fell past the final poll site (the run's trailing
            // drain has no serviced cycles left to poll on): the run must
            // then complete *exactly* as an uninterrupted one, and do so
            // at either thread count.
            Ok(fp) => {
                prop_assert_eq!(&fp, &baseline);
                prop_assert_eq!(
                    &run_bounded(procs, row_len, 4, bound).expect("tail bound completes"),
                    &baseline
                );
            }
        }

        // And a fresh uncancelled rerun is exact, sequential and parallel.
        prop_assert_eq!(&fingerprint(&mut build(procs, row_len, 1)), &baseline);
        prop_assert_eq!(&fingerprint(&mut build(procs, row_len, 4)), &baseline);
    }

    /// Bound 0 cancels before any cycle is serviced: no flits have moved,
    /// every flit is still pending injection, at either thread count.
    #[test]
    fn cancel_at_cycle_zero_is_a_clean_preemption(row_len in 8usize..48) {
        for threads in [1usize, 4] {
            match cancelled_at(16, row_len, threads, 0) {
                MeshError::Cancelled { at_cycle, cause, in_flight, pending_inject, .. } => {
                    prop_assert_eq!(at_cycle, 0);
                    prop_assert_eq!(cause, CancelCause::CycleReached { bound: 0 });
                    prop_assert_eq!(in_flight, 0, "no flit can be in flight at cycle 0");
                    prop_assert!(pending_inject > 0, "the workload is still queued");
                }
                other => prop_assert!(false, "expected Cancelled, got {other:?}"),
            }
        }
    }

    /// An armed interrupt that never fires — an unreachable cycle bound
    /// plus an untripped token — is invisible: the run completes with a
    /// fingerprint identical to a run with no interrupt installed, at
    /// both thread counts.
    #[test]
    fn unfired_interrupt_is_invisible(row_len in 8usize..48) {
        let baseline = fingerprint(&mut build(16, row_len, 1));
        let token = CancelToken::new();
        for threads in [1usize, 4] {
            let mut mesh = build(16, row_len, threads);
            mesh.set_interrupt(
                Interrupt::new()
                    .with_cycle_bound(u64::MAX)
                    .with_token(&token),
            );
            prop_assert_eq!(&fingerprint(&mut mesh), &baseline, "threads = {}", threads);
        }
    }

    /// A token tripped *before* the watch is armed is invisible (stale
    /// cancellations cannot leak into a new run), while tripping it after
    /// arming cancels the run with the token cause.
    #[test]
    fn pre_armed_trip_is_invisible_and_post_armed_trip_cancels(row_len in 8usize..48) {
        let baseline = fingerprint(&mut build(16, row_len, 1));

        let stale = CancelToken::new();
        stale.cancel();
        let mut mesh = build(16, row_len, 1);
        mesh.set_interrupt(Interrupt::new().with_token(&stale));
        prop_assert_eq!(&fingerprint(&mut mesh), &baseline);

        let live = CancelToken::new();
        let mut mesh = build(16, row_len, 1);
        let interrupt = Interrupt::new().with_token(&live);
        live.cancel();
        mesh.set_interrupt(interrupt);
        match mesh.run() {
            Err(MeshError::Cancelled { at_cycle, cause, .. }) => {
                prop_assert_eq!(cause, CancelCause::Cancelled);
                prop_assert_eq!(at_cycle, 0, "tripped before the run started");
            }
            other => prop_assert!(false, "expected Cancelled, got {other:?}"),
        }
    }
}
