//! Geometry properties and collective-schedule determinism (ISSUE 10).
//!
//! Property tests over the generalized topology — wrap links may only ever
//! shorten paths, coordinates and ids must be inverse bijections on any
//! rectangle in either wrap mode — plus golden-fingerprint identity for
//! every collective builder on the mesh fabric: the same spec must produce
//! bit-identical [`MeshCollectiveResult`] fingerprints across repeat runs
//! and across worker-thread counts of the epoch-parallel scheduler,
//! mirroring the transpose identity suite in `parallel_identity.rs`.

use emesh::collectives::{run_mesh_collective, MeshCollectiveResult};
use emesh::mesh::{MeshConfig, RoutingPolicy};
use emesh::topology::{MemifPlacement, NodeCoord, Topology};
use proptest::prelude::*;
use sim_core::collective::Collective;

proptest! {
    #[test]
    fn torus_hops_never_exceed_mesh_hops(
        width in 1usize..9,
        height in 1usize..9,
        a in 0u32..64,
        b in 0u32..64,
    ) {
        let nodes = (width * height) as u32;
        let (a, b) = (a % nodes, b % nodes);
        let mesh = Topology::rect(width, height, MemifPlacement::SingleCorner);
        let torus = mesh.with_torus(true);
        prop_assert!(torus.hops(a, b) <= mesh.hops(a, b));
        // Symmetric in both modes.
        prop_assert_eq!(torus.hops(a, b), torus.hops(b, a));
        prop_assert_eq!(mesh.hops(a, b), mesh.hops(b, a));
        // A wrap path is still a path: nonzero iff the nodes differ.
        prop_assert_eq!(torus.hops(a, b) == 0, a == b);
    }

    #[test]
    fn coord_id_roundtrip_on_rect_and_torus(
        width in 1usize..12,
        height in 1usize..12,
        torus in prop::bool::ANY,
    ) {
        let t = Topology::rect(width, height, MemifPlacement::SingleCorner)
            .with_torus(torus);
        for id in 0..t.nodes() as u32 {
            let c = t.coord(id);
            prop_assert!((c.x as usize) < width && (c.y as usize) < height);
            prop_assert_eq!(t.id(c), id);
        }
        // And the inverse direction over every coordinate.
        for y in 0..height as u32 {
            for x in 0..width as u32 {
                let c = NodeCoord { x, y };
                prop_assert_eq!(t.coord(t.id(c)), c);
            }
        }
    }

    #[test]
    fn mean_memif_distance_is_torus_monotone(
        width in 2usize..9,
        height in 2usize..9,
    ) {
        // Shortcut links can only bring nodes closer to the corner memif.
        let mesh = Topology::rect(width, height, MemifPlacement::SingleCorner);
        let torus = mesh.with_torus(true);
        prop_assert!(torus.mean_hops_to_memif() <= mesh.mean_hops_to_memif() + 1e-12);
    }
}

fn cfg(topology: Topology, threads: usize) -> MeshConfig {
    MeshConfig {
        topology,
        t_r: 1,
        policy: RoutingPolicy::Xy,
        memif: Default::default(),
        buffer_depth: 2,
        max_cycles: 1 << 30,
        threads,
    }
}

/// The geometries the `collectives` bin's quick goldens pin.
fn golden_geometries() -> Vec<Topology> {
    vec![
        Topology::square(16, MemifPlacement::SingleCorner),
        Topology::rect(8, 2, MemifPlacement::SingleCorner),
        Topology::torus(4, 4, MemifPlacement::SingleCorner),
    ]
}

fn run(topology: Topology, collective: Collective, threads: usize) -> MeshCollectiveResult {
    run_mesh_collective(collective, cfg(topology, threads), 4, None)
        .expect("golden collective completes")
}

#[test]
fn every_collective_builder_is_repeat_deterministic() {
    for topology in golden_geometries() {
        for collective in Collective::ALL {
            let a = run(topology, collective, 1);
            let b = run(topology, collective, 1);
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{} on {}",
                collective.label(),
                topology.label()
            );
            assert_eq!(a, b, "{} on {}", collective.label(), topology.label());
        }
    }
}

#[test]
fn every_collective_builder_is_thread_count_invariant() {
    // The epoch-parallel scheduler must not perturb a single observable,
    // including the deadlock-split recovery path on the torus.
    for topology in golden_geometries() {
        for collective in Collective::ALL {
            let seq = run(topology, collective, 1);
            for threads in [2, 3] {
                let par = run(topology, collective, threads);
                assert_eq!(
                    seq,
                    par,
                    "{} on {} diverged at {threads} threads",
                    collective.label(),
                    topology.label()
                );
            }
        }
    }
}
