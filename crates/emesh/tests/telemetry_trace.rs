//! Telemetry integration: a tiny 2×2 mesh transpose produces a well-formed
//! Chrome trace, and attaching the telemetry layer never perturbs the
//! simulation itself (the zero-overhead-when-disabled contract, checked
//! from the enabled side: same cycles, same memif accounting).

use emesh::mesh::MeshConfig;
use emesh::workloads::load_transpose;

/// 2×2 mesh, 32-element rows (one full 2048-bit DRAM row each): small
/// enough that the golden fragments below are stable, big enough to
/// exercise injection, forwarding, ejection and complete DRAM row writes.
fn run_traced() -> (emesh::mesh::MeshRunResult, sim_core::Registry) {
    let cfg = MeshConfig::table3(4, 1);
    let mut mesh = load_transpose(cfg, 4, 32);
    mesh.enable_telemetry();
    let res = mesh.run().expect("transpose completes");
    let reg = mesh.take_telemetry().expect("telemetry was enabled");
    (res, reg)
}

#[test]
fn chrome_trace_golden_snippet() {
    let (_res, reg) = run_traced();
    let json = reg.chrome_trace_json();

    // Envelope.
    assert!(
        json.contains("\"traceEvents\""),
        "missing traceEvents array"
    );
    assert!(json.contains("\"displayTimeUnit\": \"ms\""));

    // Metadata events name the emesh process and its per-router tracks.
    assert!(
        json.contains("\"process_name\""),
        "missing process metadata"
    );
    assert!(json.contains("\"thread_name\""), "missing thread metadata");
    assert!(json.contains("\"emesh\""), "missing emesh process");
    assert!(json.contains("\"router 0\""), "missing router track");
    assert!(json.contains("\"memif 0\""), "missing memif track");

    // Complete ("X") span events: per-router activity and DRAM row writes.
    assert!(json.contains("\"ph\": \"X\""), "no complete events");
    assert!(json.contains("\"active\""), "no router activity span");
    assert!(json.contains("\"row_write\""), "no memif row-write span");

    // Every event of a well-formed trace carries ts/dur/pid/tid.
    for key in ["\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":"] {
        assert!(json.contains(key), "trace events missing {key}");
    }
}

#[test]
fn metrics_cover_the_expected_series() {
    let (res, reg) = run_traced();
    // Counter totals agree with the run result the caller already gets.
    assert_eq!(reg.counter_value("emesh.mesh.cycles"), Some(res.cycles));
    assert_eq!(
        reg.counter_value("emesh.mesh.injections"),
        Some(res.energy.injections)
    );
    for series in [
        "emesh.mesh.ejections",
        "emesh.mesh.link_hops",
        "emesh.mesh.router_traversals",
    ] {
        assert!(
            reg.counter_value(series).is_some(),
            "missing series {series}"
        );
    }
    assert!(reg.gauge_value("emesh.link.utilization").is_some());
    let metrics = reg.metrics_json();
    assert!(metrics.contains("\"series\""));
    assert!(metrics.contains("emesh.router.forwards{node=0}"));
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let cfg = MeshConfig::table3(4, 1);
    let mut plain = load_transpose(cfg, 4, 32);
    let base = plain.run().expect("plain run completes");
    let (traced, _) = run_traced();
    assert_eq!(base.cycles, traced.cycles);
    assert_eq!(base.energy, traced.energy);
    assert_eq!(base.memif_stats, traced.memif_stats);
}
