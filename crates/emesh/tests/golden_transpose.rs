//! Golden cycle-exactness tests for the mesh scheduler.
//!
//! The numbers below were recorded from the original global-`BinaryHeap`
//! wakeup scheduler (the seed implementation) on the Table III transpose
//! workload. Any scheduler or data-layout change — the bucketed timing
//! wheel, push-time wake dedup, the inline flit rings — must reproduce
//! them **bit-for-bit**: completion cycle, every `MemifStats` field, every
//! energy counter, and the packet-latency histogram envelope. A drift of
//! even one cycle means the event order changed and the simulator is no
//! longer the one the paper results were produced with.

use emesh::mesh::{MeshConfig, MeshRunResult, RoutingPolicy};
use emesh::workloads::load_transpose;

/// One recorded seed-scheduler run.
struct Golden {
    procs: usize,
    row_len: usize,
    policy: RoutingPolicy,
    t_p: u64,
    cycles: u64,
    // MemifStats, in declaration order.
    flits_accepted: u64,
    elements: u64,
    rows_written: u64,
    dram_done: u64,
    last_accept: u64,
    // EnergyCounters.
    injections: u64,
    ejections: u64,
    router_traversals: u64,
    link_hops: u64,
    // Latency histogram envelope and total forwards.
    lat_count: u64,
    lat_min: u64,
    lat_max: u64,
    forwards: u64,
}

const XY: RoutingPolicy = RoutingPolicy::Xy;
const AD: RoutingPolicy = RoutingPolicy::MinimalAdaptive;

/// Recorded 2026-08-05 from the seed `BinaryHeap` scheduler (commit
/// f071ec2), release build. Three transpose sizes × both routing policies
/// × `t_p` ∈ {1, 4}.
#[rustfmt::skip]
const GOLDENS: &[Golden] = &[
    Golden { procs: 16, row_len: 16, policy: XY, t_p: 1, cycles:   957, flits_accepted:  512, elements:  256, rows_written:   8, dram_done:   957, last_accept:   768, injections:  512, ejections:  512, router_traversals:  2048, link_hops:  1536, lat_count:  256, lat_min: 3, lat_max:   690, forwards:  2048 },
    Golden { procs: 16, row_len: 16, policy: AD, t_p: 1, cycles:   957, flits_accepted:  512, elements:  256, rows_written:   8, dram_done:   957, last_accept:   768, injections:  512, ejections:  512, router_traversals:  2048, link_hops:  1536, lat_count:  256, lat_min: 3, lat_max:   690, forwards:  2048 },
    Golden { procs: 16, row_len: 16, policy: XY, t_p: 4, cycles:  1611, flits_accepted:  512, elements:  256, rows_written:   8, dram_done:  1611, last_accept:  1533, injections:  512, ejections:  512, router_traversals:  2048, link_hops:  1536, lat_count:  256, lat_min: 3, lat_max:  1290, forwards:  2048 },
    Golden { procs: 16, row_len: 16, policy: AD, t_p: 4, cycles:  1611, flits_accepted:  512, elements:  256, rows_written:   8, dram_done:  1611, last_accept:  1533, injections:  512, ejections:  512, router_traversals:  2048, link_hops:  1536, lat_count:  256, lat_min: 3, lat_max:  1290, forwards:  2048 },
    Golden { procs: 16, row_len: 64, policy: XY, t_p: 1, cycles:  3822, flits_accepted: 2048, elements: 1024, rows_written:  32, dram_done:  3822, last_accept:  3072, injections: 2048, ejections: 2048, router_traversals:  8192, link_hops:  6144, lat_count: 1024, lat_min: 3, lat_max:  2763, forwards:  8192 },
    Golden { procs: 16, row_len: 64, policy: AD, t_p: 1, cycles:  3822, flits_accepted: 2048, elements: 1024, rows_written:  32, dram_done:  3822, last_accept:  3072, injections: 2048, ejections: 2048, router_traversals:  8192, link_hops:  6144, lat_count: 1024, lat_min: 3, lat_max:  2763, forwards:  8192 },
    Golden { procs: 16, row_len: 64, policy: XY, t_p: 4, cycles:  6393, flits_accepted: 2048, elements: 1024, rows_written:  32, dram_done:  6393, last_accept:  6141, injections: 2048, ejections: 2048, router_traversals:  8192, link_hops:  6144, lat_count: 1024, lat_min: 3, lat_max:  5070, forwards:  8192 },
    Golden { procs: 16, row_len: 64, policy: AD, t_p: 4, cycles:  6393, flits_accepted: 2048, elements: 1024, rows_written:  32, dram_done:  6393, last_accept:  6141, injections: 2048, ejections: 2048, router_traversals:  8192, link_hops:  6144, lat_count: 1024, lat_min: 3, lat_max:  5070, forwards:  8192 },
    Golden { procs: 64, row_len: 64, policy: XY, t_p: 1, cycles: 13980, flits_accepted: 8192, elements: 4096, rows_written: 128, dram_done: 13980, last_accept: 12288, injections: 8192, ejections: 8192, router_traversals: 65536, link_hops: 57344, lat_count: 4096, lat_min: 3, lat_max: 11871, forwards: 65536 },
    Golden { procs: 64, row_len: 64, policy: AD, t_p: 1, cycles: 13980, flits_accepted: 8192, elements: 4096, rows_written: 128, dram_done: 13980, last_accept: 12288, injections: 8192, ejections: 8192, router_traversals: 65536, link_hops: 57344, lat_count: 4096, lat_min: 3, lat_max: 11871, forwards: 65536 },
    Golden { procs: 64, row_len: 64, policy: XY, t_p: 4, cycles: 25755, flits_accepted: 8192, elements: 4096, rows_written: 128, dram_done: 25755, last_accept: 24573, injections: 8192, ejections: 8192, router_traversals: 65536, link_hops: 57344, lat_count: 4096, lat_min: 3, lat_max: 23670, forwards: 65536 },
    Golden { procs: 64, row_len: 64, policy: AD, t_p: 4, cycles: 25755, flits_accepted: 8192, elements: 4096, rows_written: 128, dram_done: 25755, last_accept: 24573, injections: 8192, ejections: 8192, router_traversals: 65536, link_hops: 57344, lat_count: 4096, lat_min: 3, lat_max: 23670, forwards: 65536 },
];

fn run_case(procs: usize, row_len: usize, policy: RoutingPolicy, t_p: u64) -> MeshRunResult {
    let mut cfg = MeshConfig::table3(procs, t_p);
    cfg.policy = policy;
    let mut mesh = load_transpose(cfg, procs, row_len);
    mesh.track_latency(8, 512);
    mesh.run().expect("transpose completes")
}

#[test]
fn scheduler_reproduces_seed_cycle_counts_bit_for_bit() {
    for g in GOLDENS {
        let tag = format!(
            "({}, {}, {:?}, t_p={})",
            g.procs, g.row_len, g.policy, g.t_p
        );
        let res = run_case(g.procs, g.row_len, g.policy, g.t_p);
        assert_eq!(res.cycles, g.cycles, "{tag}: cycles");
        let s = res.memif_stats[0];
        assert_eq!(s.flits_accepted, g.flits_accepted, "{tag}: flits_accepted");
        assert_eq!(s.elements, g.elements, "{tag}: elements");
        assert_eq!(s.rows_written, g.rows_written, "{tag}: rows_written");
        assert_eq!(s.dram_done, g.dram_done, "{tag}: dram_done");
        assert_eq!(s.last_accept, g.last_accept, "{tag}: last_accept");
        assert_eq!(res.energy.injections, g.injections, "{tag}: injections");
        assert_eq!(res.energy.ejections, g.ejections, "{tag}: ejections");
        assert_eq!(
            res.energy.router_traversals, g.router_traversals,
            "{tag}: traversals"
        );
        assert_eq!(res.energy.link_hops, g.link_hops, "{tag}: link_hops");
        let h = res.latency.as_ref().expect("tracking enabled");
        assert_eq!(h.count(), g.lat_count, "{tag}: latency count");
        assert_eq!(h.min(), Some(g.lat_min), "{tag}: latency min");
        assert_eq!(h.max(), Some(g.lat_max), "{tag}: latency max");
        assert_eq!(
            res.router_forwards.iter().sum::<u64>(),
            g.forwards,
            "{tag}: forwards"
        );
    }
}

#[test]
fn repeated_table3_transpose_is_deterministic() {
    // Same workload twice under each policy: every observable — completion
    // cycle, energy counters, per-interface stats, the full latency
    // histogram, the per-router forward heatmap — must be identical.
    for policy in [RoutingPolicy::Xy, RoutingPolicy::MinimalAdaptive] {
        let a = run_case(64, 64, policy, 1);
        let b = run_case(64, 64, policy, 1);
        assert_eq!(a.cycles, b.cycles, "{policy:?}: cycles");
        assert_eq!(a.energy, b.energy, "{policy:?}: energy");
        assert_eq!(
            format!("{:?}", a.memif_stats),
            format!("{:?}", b.memif_stats),
            "{policy:?}: memif stats"
        );
        assert_eq!(
            format!("{:?}", a.latency),
            format!("{:?}", b.latency),
            "{policy:?}: latency histogram"
        );
        assert_eq!(a.router_forwards, b.router_forwards, "{policy:?}: heatmap");
        assert_eq!(a.sink_delivered, b.sink_delivered, "{policy:?}: sinks");
    }
}
