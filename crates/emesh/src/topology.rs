//! Mesh coordinates and memory-interface placement.
//!
//! A [`Topology`] is a `width × height` grid of nodes, optionally with
//! wraparound (torus) links in both dimensions, plus a memory-interface
//! placement. Constructors validate dimensions up front — a zero-width or
//! zero-height grid has no nodes to route between, and silently wrapping
//! `width - 1` in [`Topology::memif_nodes`] was exactly the class of
//! latent bug generalized geometries made live.

use serde::{Deserialize, Serialize};

/// A node's (x, y) position in the mesh; node index = `y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeCoord {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

/// Where memory interfaces attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemifPlacement {
    /// A single interface at the (0, 0) corner — the Table III setup
    /// ("a single memory port").
    SingleCorner,
    /// Four interfaces at the four corners — the Fig. 5 / Fig. 12 setup
    /// ("four memory interfaces at the corner network nodes").
    FourCorners,
    /// One interface at every node of the top edge (`y = 0`) — the
    /// edge-of-die placement HBM-style interface stacks use. On a
    /// `width = 1` grid this degenerates to a single corner.
    TopEdge,
}

/// A rectangular mesh (or torus) topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Mesh width (columns). Must be ≥ 1.
    pub width: u32,
    /// Mesh height (rows). Must be ≥ 1.
    pub height: u32,
    /// Memory interface placement.
    pub memifs: MemifPlacement,
    /// Wraparound links in both dimensions (torus). Affects hop
    /// distances, routing, and the parallel scheduler's adjacency; the
    /// node-id ↔ coordinate mapping is unchanged.
    pub torus: bool,
}

impl Topology {
    /// A square mesh of `n` nodes (n must be a positive perfect square).
    pub fn square(n: usize, memifs: MemifPlacement) -> Self {
        let side = (n as f64).sqrt().round() as u32;
        assert_eq!(
            (side * side) as usize,
            n,
            "square topology needs a perfect square, got {n}"
        );
        Topology::rect(side as usize, side as usize, memifs)
    }

    /// A rectangular `width × height` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn rect(width: usize, height: usize, memifs: MemifPlacement) -> Self {
        assert!(
            width >= 1 && height >= 1,
            "topology dimensions must be positive, got {width}x{height}"
        );
        Topology {
            width: width as u32,
            height: height as u32,
            memifs,
            torus: false,
        }
    }

    /// A `width × height` torus: the rectangular mesh plus wraparound
    /// links in both dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn torus(width: usize, height: usize, memifs: MemifPlacement) -> Self {
        Topology {
            torus: true,
            ..Topology::rect(width, height, memifs)
        }
    }

    /// Toggle wraparound links.
    pub fn with_torus(mut self, torus: bool) -> Self {
        self.torus = torus;
        self
    }

    /// Short geometry label, e.g. `8x8`, `8x4`, `4x4t` (torus).
    pub fn label(&self) -> String {
        format!(
            "{}x{}{}",
            self.width,
            self.height,
            if self.torus { "t" } else { "" }
        )
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Coordinate of node `id`.
    pub fn coord(&self, id: u32) -> NodeCoord {
        debug_assert!((id as usize) < self.nodes());
        NodeCoord {
            x: id % self.width,
            y: id / self.width,
        }
    }

    /// Node id at a coordinate.
    pub fn id(&self, c: NodeCoord) -> u32 {
        debug_assert!(c.x < self.width && c.y < self.height);
        c.y * self.width + c.x
    }

    /// Shortest-path distance between two nodes, in hops: Manhattan on a
    /// mesh, per-dimension `min(d, dim − d)` with wraparound on a torus.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        let (dx, dy) = (ca.x.abs_diff(cb.x), ca.y.abs_diff(cb.y));
        if self.torus {
            dx.min(self.width - dx) + dy.min(self.height - dy)
        } else {
            dx + dy
        }
    }

    /// Node ids of the memory interfaces, sorted and deduplicated (a
    /// degenerate grid can place several corners on one node).
    ///
    /// # Panics
    /// Panics on a zero-dimension topology — such a grid has no nodes, so
    /// it cannot carry a memory interface. The constructors reject it;
    /// this guards literal-built values.
    pub fn memif_nodes(&self) -> Vec<u32> {
        assert!(
            self.width >= 1 && self.height >= 1,
            "memif_nodes on a degenerate {}x{} topology",
            self.width,
            self.height
        );
        let mut ids = match self.memifs {
            MemifPlacement::SingleCorner => vec![0],
            MemifPlacement::FourCorners => vec![
                self.id(NodeCoord { x: 0, y: 0 }),
                self.id(NodeCoord {
                    x: self.width - 1,
                    y: 0,
                }),
                self.id(NodeCoord {
                    x: 0,
                    y: self.height - 1,
                }),
                self.id(NodeCoord {
                    x: self.width - 1,
                    y: self.height - 1,
                }),
            ],
            MemifPlacement::TopEdge => (0..self.width).collect(),
        };
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The memory interface nearest `node` (ties broken by lowest id) —
    /// how LLMORE-style mapping assigns processors to memory ports.
    pub fn nearest_memif(&self, node: u32) -> u32 {
        *self
            .memif_nodes()
            .iter()
            .min_by_key(|&&m| (self.hops(node, m), m))
            .expect("at least one memif")
    }

    /// Average hop distance from all nodes to their nearest memif.
    pub fn mean_hops_to_memif(&self) -> f64 {
        let total: u64 = (0..self.nodes() as u32)
            .map(|n| self.hops(n, self.nearest_memif(n)) as u64)
            .sum();
        total as f64 / self.nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_construction() {
        let t = Topology::square(256, MemifPlacement::FourCorners);
        assert_eq!((t.width, t.height), (16, 16));
        assert_eq!(t.nodes(), 256);
        assert!(!t.torus);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_rejected() {
        Topology::square(10, MemifPlacement::SingleCorner);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mesh_rejected() {
        Topology::square(0, MemifPlacement::FourCorners);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rect_rejected() {
        Topology::rect(0, 4, MemifPlacement::SingleCorner);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn literal_zero_topology_cannot_place_memifs() {
        let t = Topology {
            width: 0,
            height: 0,
            memifs: MemifPlacement::FourCorners,
            torus: false,
        };
        t.memif_nodes();
    }

    #[test]
    fn degenerate_corners_dedupe() {
        // A 1×1 "mesh" has one node; all four corners coincide on it.
        let t = Topology::square(1, MemifPlacement::FourCorners);
        assert_eq!(t.memif_nodes(), vec![0]);
        // A 1×4 column: the two corner pairs coincide pairwise.
        let col = Topology::rect(1, 4, MemifPlacement::FourCorners);
        assert_eq!(col.memif_nodes(), vec![0, 3]);
        // A 4×1 row likewise.
        let row = Topology::rect(4, 1, MemifPlacement::FourCorners);
        assert_eq!(row.memif_nodes(), vec![0, 3]);
    }

    #[test]
    fn coord_id_roundtrip() {
        let t = Topology::square(64, MemifPlacement::SingleCorner);
        for id in 0..64u32 {
            assert_eq!(t.id(t.coord(id)), id);
        }
    }

    #[test]
    fn rect_coord_id_roundtrip() {
        let t = Topology::rect(8, 3, MemifPlacement::SingleCorner);
        assert_eq!(t.nodes(), 24);
        for id in 0..24u32 {
            assert_eq!(t.id(t.coord(id)), id);
        }
    }

    #[test]
    fn hop_distance() {
        let t = Topology::square(16, MemifPlacement::SingleCorner);
        // Node 0 = (0,0), node 15 = (3,3): 6 hops.
        assert_eq!(t.hops(0, 15), 6);
        assert_eq!(t.hops(5, 5), 0);
    }

    #[test]
    fn torus_hops_wrap() {
        let t = Topology::torus(4, 4, MemifPlacement::SingleCorner);
        // (0,0) -> (3,3): 1 + 1 via the wrap links, not 6.
        assert_eq!(t.hops(0, 15), 2);
        // (0,0) -> (2,0): both directions cost 2.
        assert_eq!(t.hops(0, 2), 2);
        assert!(t.label().ends_with('t'));
    }

    #[test]
    fn torus_never_longer_than_mesh() {
        let mesh = Topology::rect(5, 3, MemifPlacement::SingleCorner);
        let torus = mesh.with_torus(true);
        for a in 0..mesh.nodes() as u32 {
            for b in 0..mesh.nodes() as u32 {
                assert!(torus.hops(a, b) <= mesh.hops(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn corner_memifs() {
        let t = Topology::square(16, MemifPlacement::FourCorners);
        assert_eq!(t.memif_nodes(), vec![0, 3, 12, 15]);
        let s = Topology::square(16, MemifPlacement::SingleCorner);
        assert_eq!(s.memif_nodes(), vec![0]);
    }

    #[test]
    fn top_edge_memifs() {
        let t = Topology::rect(4, 3, MemifPlacement::TopEdge);
        assert_eq!(t.memif_nodes(), vec![0, 1, 2, 3]);
        // Every node's nearest interface is straight up its own column.
        assert_eq!(t.nearest_memif(9), 1); // (1,2) -> (1,0)
        assert_eq!(t.mean_hops_to_memif(), 1.0); // columns of height 3: 0+1+2 over 3
    }

    #[test]
    fn nearest_memif_partitions_quadrants() {
        let t = Topology::square(16, MemifPlacement::FourCorners);
        assert_eq!(t.nearest_memif(5), 0); // (1,1) -> corner (0,0)
        assert_eq!(t.nearest_memif(7), 3); // (3,1) -> corner (3,0)
        assert_eq!(t.nearest_memif(10), 15); // (2,2) -> nearest is (3,3) at 2 hops
    }

    #[test]
    fn four_corners_shrink_mean_distance() {
        let one = Topology::square(256, MemifPlacement::SingleCorner);
        let four = Topology::square(256, MemifPlacement::FourCorners);
        assert!(four.mean_hops_to_memif() < one.mean_hops_to_memif() / 1.5);
    }

    #[test]
    fn torus_shrinks_mean_distance_to_corner() {
        let mesh = Topology::square(64, MemifPlacement::SingleCorner);
        let torus = mesh.with_torus(true);
        assert!(torus.mean_hops_to_memif() < mesh.mean_hops_to_memif());
    }
}
