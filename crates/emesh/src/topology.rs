//! Mesh coordinates and memory-interface placement.

use serde::{Deserialize, Serialize};

/// A node's (x, y) position in the mesh; node index = `y * width + x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeCoord {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

/// Where memory interfaces attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemifPlacement {
    /// A single interface at the (0, 0) corner — the Table III setup
    /// ("a single memory port").
    SingleCorner,
    /// Four interfaces at the four corners — the Fig. 5 / Fig. 12 setup
    /// ("four memory interfaces at the corner network nodes").
    FourCorners,
}

/// A rectangular mesh topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Mesh width (columns).
    pub width: u32,
    /// Mesh height (rows).
    pub height: u32,
    /// Memory interface placement.
    pub memifs: MemifPlacement,
}

impl Topology {
    /// A square mesh of `n` nodes (n must be a perfect square).
    pub fn square(n: usize, memifs: MemifPlacement) -> Self {
        let side = (n as f64).sqrt().round() as u32;
        assert_eq!(
            (side * side) as usize,
            n,
            "square topology needs a perfect square, got {n}"
        );
        Topology {
            width: side,
            height: side,
            memifs,
        }
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Coordinate of node `id`.
    pub fn coord(&self, id: u32) -> NodeCoord {
        debug_assert!((id as usize) < self.nodes());
        NodeCoord {
            x: id % self.width,
            y: id / self.width,
        }
    }

    /// Node id at a coordinate.
    pub fn id(&self, c: NodeCoord) -> u32 {
        debug_assert!(c.x < self.width && c.y < self.height);
        c.y * self.width + c.x
    }

    /// Manhattan distance between two nodes, in hops.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// Node ids of the memory interfaces.
    pub fn memif_nodes(&self) -> Vec<u32> {
        match self.memifs {
            MemifPlacement::SingleCorner => vec![0],
            MemifPlacement::FourCorners => vec![
                0,
                self.width - 1,
                (self.height - 1) * self.width,
                self.height * self.width - 1,
            ],
        }
    }

    /// The memory interface nearest `node` (ties broken by lowest id) —
    /// how LLMORE-style mapping assigns processors to memory ports.
    pub fn nearest_memif(&self, node: u32) -> u32 {
        *self
            .memif_nodes()
            .iter()
            .min_by_key(|&&m| (self.hops(node, m), m))
            .expect("at least one memif")
    }

    /// Average hop distance from all nodes to their nearest memif.
    pub fn mean_hops_to_memif(&self) -> f64 {
        let total: u64 = (0..self.nodes() as u32)
            .map(|n| self.hops(n, self.nearest_memif(n)) as u64)
            .sum();
        total as f64 / self.nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_construction() {
        let t = Topology::square(256, MemifPlacement::FourCorners);
        assert_eq!((t.width, t.height), (16, 16));
        assert_eq!(t.nodes(), 256);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_rejected() {
        Topology::square(10, MemifPlacement::SingleCorner);
    }

    #[test]
    fn coord_id_roundtrip() {
        let t = Topology::square(64, MemifPlacement::SingleCorner);
        for id in 0..64u32 {
            assert_eq!(t.id(t.coord(id)), id);
        }
    }

    #[test]
    fn hop_distance() {
        let t = Topology::square(16, MemifPlacement::SingleCorner);
        // Node 0 = (0,0), node 15 = (3,3): 6 hops.
        assert_eq!(t.hops(0, 15), 6);
        assert_eq!(t.hops(5, 5), 0);
    }

    #[test]
    fn corner_memifs() {
        let t = Topology::square(16, MemifPlacement::FourCorners);
        assert_eq!(t.memif_nodes(), vec![0, 3, 12, 15]);
        let s = Topology::square(16, MemifPlacement::SingleCorner);
        assert_eq!(s.memif_nodes(), vec![0]);
    }

    #[test]
    fn nearest_memif_partitions_quadrants() {
        let t = Topology::square(16, MemifPlacement::FourCorners);
        assert_eq!(t.nearest_memif(5), 0); // (1,1) -> corner (0,0)
        assert_eq!(t.nearest_memif(7), 3); // (3,1) -> corner (3,0)
        assert_eq!(t.nearest_memif(10), 15); // (2,2) -> nearest is (3,3) at 2 hops
    }

    #[test]
    fn four_corners_shrink_mean_distance() {
        let one = Topology::square(256, MemifPlacement::SingleCorner);
        let four = Topology::square(256, MemifPlacement::FourCorners);
        assert!(four.mean_hops_to_memif() < one.mean_hops_to_memif() / 1.5);
    }
}
