//! Fault injection and resilience for the electronic mesh.
//!
//! Three fault classes, all deterministic under the config seed:
//!
//! * **Transient corruption** — a per-traversal Bernoulli process poisons a
//!   payload flit (modelled as a failed-ECC flag; the clean word is retained
//!   so a retransmission carries good data). The memory interface detects
//!   poisoned payloads at ejection, refuses to stage them, and NACKs the
//!   source, which retransmits the element after a bounded delay, up to
//!   `max_retransmits` attempts.
//! * **Transient link-down** — a per-traversal Bernoulli process takes one
//!   router output out of service for `link_down_cycles`; flits wait (the
//!   wormhole holds) and resume when the link recovers.
//! * **Hard router kill** — scheduled [`RouterKill`]s permanently silence a
//!   router at a given cycle. Neighbours with traffic for it re-probe every
//!   few cycles, which turns an unrecoverable loss into a *livelock* that
//!   the no-progress watchdog converts into a structured
//!   [`crate::mesh::MeshError::NoProgress`] diagnostic instead of a hang.
//!
//! The layer is attached with [`crate::mesh::Mesh::enable_faults`]; a mesh
//! without it (or with all rates zero and no kills) is bit-identical to the
//! fault-free simulator — enforced by the golden transpose tests.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};
use sim_core::faults::FaultSite;

use crate::flit::Packet;
use crate::router::NUM_PORTS;

/// Child-stream indices under the config seed.
const STREAM_CORRUPT: u64 = 0;
const STREAM_LINK_DOWN: u64 = 1;

/// How often a blocked sender re-probes a dead neighbour, in cycles.
pub const PROBE_INTERVAL: u64 = 8;

/// A scheduled permanent router failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterKill {
    /// Router to kill.
    pub router: u32,
    /// Cycle from which it no longer forwards, ejects or injects.
    pub at_cycle: u64,
}

/// Fault-injection knobs for one mesh instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshFaultConfig {
    /// Experiment seed; corruption and link-down streams derive from it.
    pub seed: u64,
    /// Per-traversal probability a payload flit is poisoned.
    pub corrupt_rate: f64,
    /// Per-traversal probability the link being crossed drops.
    pub link_down_rate: f64,
    /// Outage length of a transient link-down, in cycles.
    pub link_down_cycles: u64,
    /// Scheduled hard failures.
    pub router_kills: Vec<RouterKill>,
    /// Whether the memory interface NACKs poisoned elements for
    /// retransmission (false = detected data is simply dropped).
    pub retransmit: bool,
    /// Retransmissions per element before the data is declared lost.
    pub max_retransmits: u32,
    /// Cycles between a NACK at the interface and the source re-injecting.
    pub nack_delay: u64,
    /// No-progress watchdog: with traffic pending and no flit movement for
    /// this many cycles, the run aborts with a diagnostic.
    pub watchdog_cycles: u64,
}

impl Default for MeshFaultConfig {
    fn default() -> Self {
        MeshFaultConfig {
            seed: 0,
            corrupt_rate: 0.0,
            link_down_rate: 0.0,
            link_down_cycles: 16,
            router_kills: Vec::new(),
            retransmit: true,
            max_retransmits: 4,
            nack_delay: 8,
            watchdog_cycles: 10_000,
        }
    }
}

/// Counters the fault layer accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshFaultStats {
    /// Payload flits poisoned in flight.
    pub corrupted_flits: u64,
    /// Transient link outages triggered.
    pub link_down_events: u64,
    /// Poisoned elements detected (and NACKed) at memory interfaces.
    pub nacks: u64,
    /// Elements re-injected at their source after a NACK.
    pub retransmits: u64,
    /// Elements lost for good (retry budget spent, retransmit disabled, or
    /// poisoned delivery at a processor sink).
    pub dropped_elements: u64,
    /// Probes of dead neighbours by blocked senders.
    pub probes: u64,
}

/// Structured no-progress diagnostic, produced by the watchdog instead of a
/// hang (see [`crate::mesh::MeshError::NoProgress`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshDiagnostic {
    /// Routers dead at the time of the dump.
    pub killed_routers: Vec<u32>,
    /// Flits buffered in the network.
    pub in_flight: u64,
    /// Flits queued at injectors that never entered the network.
    pub pending_inject: u64,
    /// NACKed elements awaiting re-injection.
    pub pending_retransmits: u64,
    /// Routers still holding flits, with their buffer occupancy.
    pub stuck_routers: Vec<(u32, u32)>,
    /// Fault counters at the time of the dump.
    pub stats: MeshFaultStats,
}

/// A NACKed element awaiting re-injection at its source.
#[derive(Debug, Clone)]
pub(crate) struct Retransmit {
    /// Cycle the source re-injects.
    pub due: u64,
    /// Source node.
    pub src: u32,
    /// The element, re-packetised.
    pub packet: Packet,
}

/// Live fault state attached to a [`crate::mesh::Mesh`].
#[derive(Debug)]
pub struct FaultLayer {
    /// The configuration.
    pub cfg: MeshFaultConfig,
    /// Corruption process (consulted once per payload-flit traversal).
    pub(crate) corrupt: FaultSite,
    /// Link-outage process (consulted once per traversal).
    pub(crate) link_down: FaultSite,
    /// Per-(router, output-port) cycle until which the link is down.
    pub(crate) down_until: Vec<[u64; NUM_PORTS]>,
    /// Kill cycle per router (`None` = never dies).
    pub(crate) killed_at: Vec<Option<u64>>,
    /// NACKed elements in due order (dues are monotone: scheduled at
    /// `now + nack_delay` with `now` monotone, so a deque stays sorted).
    pub(crate) retx: VecDeque<Retransmit>,
    /// Retransmission attempts per (source, packet id).
    pub(crate) attempts: HashMap<(u32, u32), u32>,
    /// Counters.
    pub stats: MeshFaultStats,
}

impl FaultLayer {
    /// Build the layer for an `n`-router mesh.
    pub fn new(cfg: MeshFaultConfig, n: usize) -> Self {
        let mut killed_at = vec![None; n];
        for k in &cfg.router_kills {
            assert!((k.router as usize) < n, "kill targets router {}", k.router);
            let slot = &mut killed_at[k.router as usize];
            *slot = Some(slot.map_or(k.at_cycle, |c: u64| c.min(k.at_cycle)));
        }
        FaultLayer {
            corrupt: FaultSite::new(cfg.seed, STREAM_CORRUPT, cfg.corrupt_rate),
            link_down: FaultSite::new(cfg.seed, STREAM_LINK_DOWN, cfg.link_down_rate),
            down_until: vec![[0; NUM_PORTS]; n],
            killed_at,
            retx: VecDeque::new(),
            attempts: HashMap::new(),
            cfg,
            stats: MeshFaultStats::default(),
        }
    }

    /// Whether `router` is dead at `cycle`.
    pub fn is_dead(&self, router: u32, cycle: u64) -> bool {
        self.killed_at[router as usize].is_some_and(|at| at <= cycle)
    }

    /// Routers dead at `cycle`.
    pub fn dead_routers(&self, cycle: u64) -> Vec<u32> {
        (0..self.killed_at.len() as u32)
            .filter(|&r| self.is_dead(r, cycle))
            .collect()
    }

    /// Due cycle of the next pending retransmission, if any.
    pub(crate) fn next_retx_due(&self) -> Option<u64> {
        self.retx.front().map(|r| r.due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_schedule_takes_the_earliest_cycle() {
        let layer = FaultLayer::new(
            MeshFaultConfig {
                router_kills: vec![
                    RouterKill {
                        router: 3,
                        at_cycle: 100,
                    },
                    RouterKill {
                        router: 3,
                        at_cycle: 40,
                    },
                ],
                ..Default::default()
            },
            8,
        );
        assert!(!layer.is_dead(3, 39));
        assert!(layer.is_dead(3, 40));
        assert!(layer.is_dead(3, 1000));
        assert!(!layer.is_dead(2, 1000));
        assert_eq!(layer.dead_routers(50), vec![3]);
    }

    #[test]
    fn zero_rate_layer_never_fires() {
        let mut layer = FaultLayer::new(MeshFaultConfig::default(), 4);
        for _ in 0..1000 {
            assert!(!layer.corrupt.fire());
            assert!(!layer.link_down.fire());
        }
        assert_eq!(layer.stats, MeshFaultStats::default());
    }
}
