//! Fault injection and resilience for the electronic mesh.
//!
//! Three fault classes, all deterministic under the config seed:
//!
//! * **Transient corruption** — a per-traversal Bernoulli process poisons a
//!   payload flit (modelled as a failed-ECC flag; the clean word is retained
//!   so a retransmission carries good data). The memory interface detects
//!   poisoned payloads at ejection, refuses to stage them, and NACKs the
//!   source, which retransmits the element after a bounded delay, up to
//!   `max_retransmits` attempts.
//! * **Transient link-down** — a per-traversal Bernoulli process takes one
//!   router output out of service for `link_down_cycles`; flits wait (the
//!   wormhole holds) and resume when the link recovers.
//! * **Hard router kill** — scheduled [`RouterKill`]s permanently silence a
//!   router at a given cycle. Neighbours with traffic for it re-probe every
//!   few cycles, which turns an unrecoverable loss into a *livelock* that
//!   the no-progress watchdog converts into a structured
//!   [`crate::mesh::MeshError::NoProgress`] diagnostic instead of a hang.
//!
//! The Bernoulli processes are *per-site counter-hashed* streams
//! ([`sim_core::faults::hash_bernoulli`]): each router owns its corruption
//! stream and each directed link owns its outage stream, advanced by a
//! plain trial counter. A trial's outcome is a pure function of
//! `(seed, site, trial index)`, so it does not depend on when any *other*
//! site is consulted — which is exactly what lets the epoch-parallel
//! scheduler (DESIGN.md §11) evaluate faults inside concurrent waves and
//! still match the sequential scheduler bit for bit.
//!
//! The layer is attached with [`crate::mesh::Mesh::enable_faults`]; a mesh
//! without it (or with all rates zero and no kills) is bit-identical to the
//! fault-free simulator — enforced by the golden transpose tests.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::flit::Packet;
use crate::router::NUM_PORTS;

/// Site-space tags under the config seed (see [`corrupt_site`] /
/// [`link_site`]).
const STREAM_CORRUPT: u64 = 0;
const STREAM_LINK_DOWN: u64 = 1;

/// Fault-site id of router `ri`'s corruption stream.
#[inline]
pub(crate) fn corrupt_site(ri: usize) -> u64 {
    (STREAM_CORRUPT << 40) | ri as u64
}

/// Fault-site id of the outage stream of output `o` of router `ri`.
#[inline]
pub(crate) fn link_site(ri: usize, o: usize) -> u64 {
    (STREAM_LINK_DOWN << 40) | (ri * NUM_PORTS + o) as u64
}

/// How often a blocked sender re-probes a dead neighbour, in cycles.
pub const PROBE_INTERVAL: u64 = 8;

/// A scheduled permanent router failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterKill {
    /// Router to kill.
    pub router: u32,
    /// Cycle from which it no longer forwards, ejects or injects.
    pub at_cycle: u64,
}

/// Fault-injection knobs for one mesh instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshFaultConfig {
    /// Experiment seed; corruption and link-down streams derive from it.
    pub seed: u64,
    /// Per-traversal probability a payload flit is poisoned.
    pub corrupt_rate: f64,
    /// Per-traversal probability the link being crossed drops.
    pub link_down_rate: f64,
    /// Outage length of a transient link-down, in cycles.
    pub link_down_cycles: u64,
    /// Scheduled hard failures.
    pub router_kills: Vec<RouterKill>,
    /// Whether the memory interface NACKs poisoned elements for
    /// retransmission (false = detected data is simply dropped).
    pub retransmit: bool,
    /// Retransmissions per element before the data is declared lost.
    pub max_retransmits: u32,
    /// Cycles between a NACK at the interface and the source re-injecting.
    pub nack_delay: u64,
    /// No-progress watchdog: with traffic pending and no flit movement for
    /// this many cycles, the run aborts with a diagnostic.
    pub watchdog_cycles: u64,
}

impl Default for MeshFaultConfig {
    fn default() -> Self {
        MeshFaultConfig {
            seed: 0,
            corrupt_rate: 0.0,
            link_down_rate: 0.0,
            link_down_cycles: 16,
            router_kills: Vec::new(),
            retransmit: true,
            max_retransmits: 4,
            nack_delay: 8,
            watchdog_cycles: 10_000,
        }
    }
}

/// Counters the fault layer accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshFaultStats {
    /// Payload flits poisoned in flight.
    pub corrupted_flits: u64,
    /// Transient link outages triggered.
    pub link_down_events: u64,
    /// Poisoned elements detected (and NACKed) at memory interfaces.
    pub nacks: u64,
    /// Elements re-injected at their source after a NACK.
    pub retransmits: u64,
    /// Elements lost for good (retry budget spent, retransmit disabled, or
    /// poisoned delivery at a processor sink).
    pub dropped_elements: u64,
    /// Probes of dead neighbours by blocked senders.
    pub probes: u64,
}

/// Structured no-progress diagnostic, produced by the watchdog instead of a
/// hang (see [`crate::mesh::MeshError::NoProgress`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshDiagnostic {
    /// Routers dead at the time of the dump.
    pub killed_routers: Vec<u32>,
    /// Flits buffered in the network.
    pub in_flight: u64,
    /// Flits queued at injectors that never entered the network.
    pub pending_inject: u64,
    /// NACKed elements awaiting re-injection.
    pub pending_retransmits: u64,
    /// Routers still holding flits, with their buffer occupancy.
    pub stuck_routers: Vec<(u32, u32)>,
    /// Fault counters at the time of the dump.
    pub stats: MeshFaultStats,
}

/// A NACKed element awaiting re-injection at its source.
#[derive(Debug, Clone)]
pub(crate) struct Retransmit {
    /// Cycle the source re-injects.
    pub due: u64,
    /// Source node.
    pub src: u32,
    /// The element, re-packetised.
    pub packet: Packet,
}

/// Entry-owned fault state a router's service step reads **and writes**.
///
/// Everything here is indexed by router (or router × port), and a service
/// step for router `r` touches only `r`'s slots — which makes the whole
/// struct shardable across an epoch wave behind
/// [`sim_core::parallel::SyncCell`] without locks. Trial counters advance
/// the per-site counter-hash streams; `down_until` is written by the owning
/// router when its own outage stream fires.
#[derive(Debug)]
pub(crate) struct FaultHot {
    /// Config seed (site streams derive from it).
    pub seed: u64,
    /// Per-traversal corruption probability.
    pub corrupt_rate: f64,
    /// Per-traversal link-outage probability.
    pub link_down_rate: f64,
    /// Outage length in cycles.
    pub link_down_cycles: u64,
    /// Trials consumed so far on each router's corruption stream.
    pub corrupt_trials: Vec<u64>,
    /// Trials consumed so far on each `router * NUM_PORTS + port` outage
    /// stream.
    pub link_trials: Vec<u64>,
    /// Cycle until which `router * NUM_PORTS + port` is down.
    pub down_until: Vec<u64>,
    /// Kill cycle per router (`None` = never dies). Read-only during a run.
    pub killed_at: Vec<Option<u64>>,
}

impl FaultHot {
    /// Whether `router` is dead at `cycle`.
    #[inline]
    pub fn is_dead(&self, router: u32, cycle: u64) -> bool {
        self.killed_at[router as usize].is_some_and(|at| at <= cycle)
    }
}

/// Live fault state attached to a [`crate::mesh::Mesh`].
///
/// Split in two: `FaultHot` (entry-owned, touched inside service steps,
/// safe to share across a wave) and the master half below (stats and the
/// retransmission queue, mutated only via deferred effects committed in
/// service order by the scheduler's master thread).
#[derive(Debug)]
pub struct FaultLayer {
    /// The configuration.
    pub cfg: MeshFaultConfig,
    /// Entry-owned state serviced routers read and write directly.
    pub(crate) hot: FaultHot,
    /// NACKed elements in due order (dues are monotone: scheduled at
    /// `now + nack_delay` with `now` monotone, so a deque stays sorted).
    pub(crate) retx: VecDeque<Retransmit>,
    /// Retransmission attempts per (source, packet id).
    pub(crate) attempts: HashMap<(u32, u64), u32>,
    /// Counters.
    pub stats: MeshFaultStats,
}

/// The master-owned half of a [`FaultLayer`] during a run: statistics, the
/// retransmission machinery, and the (copied) retransmit policy knobs.
/// Mutated only through `FxSink` effects (see `mesh/exec.rs`), which the
/// scheduler commits in service order.
pub(crate) struct FaultMasterView<'m> {
    pub stats: &'m mut MeshFaultStats,
    pub retx: &'m mut VecDeque<Retransmit>,
    pub attempts: &'m mut HashMap<(u32, u64), u32>,
    pub retransmit: bool,
    pub max_retransmits: u32,
    pub nack_delay: u64,
}

impl FaultLayer {
    /// Build the layer for an `n`-router mesh.
    pub fn new(cfg: MeshFaultConfig, n: usize) -> Self {
        let mut killed_at = vec![None; n];
        for k in &cfg.router_kills {
            assert!((k.router as usize) < n, "kill targets router {}", k.router);
            let slot = &mut killed_at[k.router as usize];
            *slot = Some(slot.map_or(k.at_cycle, |c: u64| c.min(k.at_cycle)));
        }
        FaultLayer {
            hot: FaultHot {
                seed: cfg.seed,
                corrupt_rate: cfg.corrupt_rate,
                link_down_rate: cfg.link_down_rate,
                link_down_cycles: cfg.link_down_cycles,
                corrupt_trials: vec![0; n],
                link_trials: vec![0; n * NUM_PORTS],
                down_until: vec![0; n * NUM_PORTS],
                killed_at,
            },
            retx: VecDeque::new(),
            attempts: HashMap::new(),
            cfg,
            stats: MeshFaultStats::default(),
        }
    }

    /// Whether `router` is dead at `cycle`.
    pub fn is_dead(&self, router: u32, cycle: u64) -> bool {
        self.hot.is_dead(router, cycle)
    }

    /// Routers dead at `cycle`.
    pub fn dead_routers(&self, cycle: u64) -> Vec<u32> {
        (0..self.hot.killed_at.len() as u32)
            .filter(|&r| self.is_dead(r, cycle))
            .collect()
    }

    /// Due cycle of the next pending retransmission, if any.
    pub(crate) fn next_retx_due(&self) -> Option<u64> {
        self.retx.front().map(|r| r.due)
    }

    /// Split into the entry-owned hot half and the master half — the borrow
    /// boundary the epoch-parallel scheduler is built on.
    pub(crate) fn split_views(&mut self) -> (&mut FaultHot, FaultMasterView<'_>) {
        (
            &mut self.hot,
            FaultMasterView {
                stats: &mut self.stats,
                retx: &mut self.retx,
                attempts: &mut self.attempts,
                retransmit: self.cfg.retransmit,
                max_retransmits: self.cfg.max_retransmits,
                nack_delay: self.cfg.nack_delay,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_schedule_takes_the_earliest_cycle() {
        let layer = FaultLayer::new(
            MeshFaultConfig {
                router_kills: vec![
                    RouterKill {
                        router: 3,
                        at_cycle: 100,
                    },
                    RouterKill {
                        router: 3,
                        at_cycle: 40,
                    },
                ],
                ..Default::default()
            },
            8,
        );
        assert!(!layer.is_dead(3, 39));
        assert!(layer.is_dead(3, 40));
        assert!(layer.is_dead(3, 1000));
        assert!(!layer.is_dead(2, 1000));
        assert_eq!(layer.dead_routers(50), vec![3]);
    }

    #[test]
    fn zero_rate_layer_never_fires() {
        use sim_core::faults::hash_bernoulli;
        let layer = FaultLayer::new(MeshFaultConfig::default(), 4);
        for ri in 0..4 {
            for t in 0..1000 {
                assert!(!hash_bernoulli(
                    layer.hot.seed,
                    corrupt_site(ri),
                    t,
                    layer.hot.corrupt_rate
                ));
                for o in 0..NUM_PORTS {
                    assert!(!hash_bernoulli(
                        layer.hot.seed,
                        link_site(ri, o),
                        t,
                        layer.hot.link_down_rate
                    ));
                }
            }
        }
        assert_eq!(layer.stats, MeshFaultStats::default());
    }

    #[test]
    fn fault_sites_are_disjoint_across_streams_and_indices() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for ri in 0..64 {
            assert!(seen.insert(corrupt_site(ri)), "corrupt site collision");
            for o in 0..NUM_PORTS {
                assert!(seen.insert(link_site(ri, o)), "link site collision");
            }
        }
    }
}
