//! Collective-operation traffic generators for the mesh fabric.
//!
//! Each builder turns one [`Collective`] into deterministic mesh packet
//! schedules between the *processing* nodes (memory-interface nodes host
//! memory, not compute, so they neither send nor receive collective
//! traffic):
//!
//! * **all-to-all** — a personalized exchange: every participant sends a
//!   distinct `words`-word packet to every other participant.
//! * **all-gather** — every participant broadcasts its own `words`-word
//!   block, the classic ring all-gather schedule.
//! * **all-reduce** — reduce-scatter of `⌈words/P⌉`-word shards followed by
//!   a ring all-gather of the reduced shards: two sequential mesh phases
//!   whose cycles sum.
//!
//! Execution is **bulk-synchronous by ring round**: a phase runs as `P − 1`
//! rounds, round `k` being the shift permutation "participant `i` sends to
//! participant `(i + k) mod P`", each round draining on a fresh [`Mesh`]
//! before the next starts (cycles sum). The wormhole fabric has no virtual
//! channels, so on tori the wrap-link rings can still deadlock even under a
//! permutation (a directional ring holds 2·width flits; one 5-flit packet
//! per sender overfills it). The runner recovers deterministically: a round
//! that trips the structured deadlock detector is bisected into sub-batches
//! and retried, down to single packets, which route deadlock-free. Splits
//! are counted in [`MeshCollectiveResult::deadlock_splits`] and the
//! `collective.deadlock_splits` telemetry counter; XY-routed meshes never
//! split (see DESIGN.md §16).
//!
//! With a telemetry registry attached the runner emits one
//! `collective.<op>.<phase>` span per phase (process `emesh`, track
//! `collectives`, one trace microsecond per mesh cycle) plus
//! `collective.*` counters, mirroring the `psync.phase.*` convention on
//! the photonic side (`psync::collectives`).

use sim_core::collective::Collective;
use sim_core::telemetry::Registry;

use crate::flit::Packet;
use crate::mesh::{Mesh, MeshConfig, MeshError};

/// One executed mesh phase of a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshPhase {
    /// Telemetry phase name, `collective.<op>.<phase>`.
    pub name: String,
    /// Cycles summed over the phase's ring rounds.
    pub cycles: u64,
    /// Ring rounds the phase ran (`P − 1`).
    pub rounds: u64,
    /// Packets injected for the phase.
    pub packets: u64,
    /// Payload words delivered to processor sinks.
    pub delivered_words: u64,
}

/// Result of running one collective on the mesh fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshCollectiveResult {
    /// Which collective ran.
    pub collective: Collective,
    /// Participating (non-memif) nodes.
    pub participants: u64,
    /// Total cycles across all phases (phases are sequential).
    pub cycles: u64,
    /// Total packets injected across phases.
    pub packets: u64,
    /// Total payload words delivered across phases.
    pub delivered_words: u64,
    /// Times a deadlocked round was bisected and retried (0 on meshes;
    /// tori without virtual channels may need splits).
    pub deadlock_splits: u64,
    /// Per-phase breakdown.
    pub phases: Vec<MeshPhase>,
}

impl MeshCollectiveResult {
    /// Order-sensitive FNV-1a fingerprint of every observable — the
    /// golden-determinism handle the collective identity tests pin.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, bytes: impl IntoIterator<Item = u8>) {
            for b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        eat(&mut h, self.participants.to_le_bytes());
        eat(&mut h, self.cycles.to_le_bytes());
        eat(&mut h, self.packets.to_le_bytes());
        eat(&mut h, self.delivered_words.to_le_bytes());
        eat(&mut h, self.deadlock_splits.to_le_bytes());
        for p in &self.phases {
            eat(&mut h, p.name.bytes());
            eat(&mut h, p.cycles.to_le_bytes());
            eat(&mut h, p.rounds.to_le_bytes());
            eat(&mut h, p.packets.to_le_bytes());
            eat(&mut h, p.delivered_words.to_le_bytes());
        }
        h
    }
}

/// One bulk-synchronous ring round: the packets to inject this round as
/// `(source node, packet)` pairs.
type Round = Vec<(u32, Packet)>;

/// The collective's phase schedules: each entry is a phase name plus its
/// ring rounds. Split out from the runner so tests can inspect schedules
/// without simulating.
fn phase_schedules(
    collective: Collective,
    cfg: &MeshConfig,
    words: usize,
) -> Vec<(String, Vec<Round>)> {
    let memifs = cfg.topology.memif_nodes();
    let participants: Vec<u32> = (0..cfg.topology.nodes() as u32)
        .filter(|n| !memifs.contains(n))
        .collect();
    let p = participants.len();
    assert!(
        p >= 2,
        "collective needs at least two participating (non-memif) nodes, \
         got {p} on a {} topology",
        cfg.topology.label()
    );
    assert!(words >= 1, "collective payload must be at least one word");
    let mut id = 0u64;
    let mut rounds = |tag: &dyn Fn(usize, usize) -> u64, payload_words: usize| -> Vec<Round> {
        // Round k is the shift permutation i → (i + k) mod P over
        // participant indices; `tag` maps (src index, round) to the
        // payload word. The packet-id counter spans rounds and phases.
        (1..p)
            .map(|k| {
                participants
                    .iter()
                    .enumerate()
                    .map(|(i, &src)| {
                        let dst = participants[(i + k) % p];
                        let pkt = Packet::with_header(dst, id, vec![tag(i, k); payload_words]);
                        id += 1;
                        (src, pkt)
                    })
                    .collect()
            })
            .collect()
    };
    match collective {
        Collective::AllToAll => {
            // Personalized: the block for (src i, round k) is unique.
            let tag = |i: usize, k: usize| (i * p + (i + k) % p) as u64;
            vec![(collective.phase_name("exchange"), rounds(&tag, words))]
        }
        Collective::AllGather => {
            // Broadcast: every round carries src's own block.
            let tag = |i: usize, _k: usize| i as u64;
            vec![(collective.phase_name("ring"), rounds(&tag, words))]
        }
        Collective::AllReduce => {
            let shard = words.div_ceil(p);
            let scatter_tag = |i: usize, k: usize| (i * p + (i + k) % p) as u64;
            let gather_tag = |i: usize, _k: usize| i as u64;
            vec![
                (
                    collective.phase_name("reduce_scatter"),
                    rounds(&scatter_tag, shard),
                ),
                (
                    collective.phase_name("all_gather"),
                    rounds(&gather_tag, shard),
                ),
            ]
        }
    }
}

/// Drain one batch of packets on a fresh mesh, bisecting deterministically
/// on ring deadlock (a single packet always routes through). Returns
/// `(cycles, delivered words, splits)`.
fn drain_batch(cfg: &MeshConfig, batch: &[(u32, Packet)]) -> Result<(u64, u64, u64), MeshError> {
    let mut mesh = Mesh::new(*cfg);
    for (src, packet) in batch {
        mesh.inject_packet(*src, packet);
    }
    match mesh.run() {
        Ok(res) => Ok((res.cycles, res.sink_delivered.iter().sum(), 0)),
        Err(MeshError::Deadlock { .. }) if batch.len() > 1 => {
            let (a, b) = batch.split_at(batch.len() / 2);
            let (ca, da, sa) = drain_batch(cfg, a)?;
            let (cb, db, sb) = drain_batch(cfg, b)?;
            Ok((ca + cb, da + db, sa + sb + 1))
        }
        Err(e) => Err(e),
    }
}

/// Run `collective` over the mesh described by `cfg`, `words` payload words
/// per block, bulk-synchronously: each ring round drains on a fresh mesh
/// before the next starts, phases are sequential, cycles sum. With
/// `telemetry` attached, emits one `collective.<op>.<phase>` span per phase
/// and `collective.*` counters.
///
/// # Panics
/// Panics if the topology leaves fewer than two non-memif participants or
/// `words` is zero; mesh-level failures surface as [`MeshError`].
pub fn run_mesh_collective(
    collective: Collective,
    cfg: MeshConfig,
    words: usize,
    telemetry: Option<&Registry>,
) -> Result<MeshCollectiveResult, MeshError> {
    let memif_count = cfg.topology.memif_nodes().len() as u64;
    let participants = cfg.topology.nodes() as u64 - memif_count;
    let mut result = MeshCollectiveResult {
        collective,
        participants,
        cycles: 0,
        packets: 0,
        delivered_words: 0,
        deadlock_splits: 0,
        phases: Vec::new(),
    };
    for (name, rounds) in phase_schedules(collective, &cfg, words) {
        let mut phase = MeshPhase {
            name,
            cycles: 0,
            rounds: rounds.len() as u64,
            packets: 0,
            delivered_words: 0,
        };
        let mut phase_splits = 0u64;
        for round in rounds {
            phase.packets += round.len() as u64;
            let (cycles, delivered, splits) = drain_batch(&cfg, &round)?;
            phase.cycles += cycles;
            phase.delivered_words += delivered;
            phase_splits += splits;
        }
        result.deadlock_splits += phase_splits;
        if let Some(reg) = telemetry {
            reg.span(
                "emesh",
                "collectives",
                &phase.name,
                result.cycles as f64,
                phase.cycles as f64,
                &[
                    ("rounds", phase.rounds.to_string()),
                    ("packets", phase.packets.to_string()),
                    ("delivered_words", phase.delivered_words.to_string()),
                ],
            );
            reg.counter_add("collective.phase.count", 1);
            reg.counter_add("collective.rounds", phase.rounds);
            reg.counter_add("collective.packets", phase.packets);
            reg.counter_add("collective.cycles", phase.cycles);
            reg.counter_add("collective.delivered_words", phase.delivered_words);
            reg.counter_add("collective.deadlock_splits", phase_splits);
        }
        result.cycles += phase.cycles;
        result.packets += phase.packets;
        result.delivered_words += phase.delivered_words;
        result.phases.push(phase);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::RoutingPolicy;
    use crate::topology::{MemifPlacement, Topology};

    fn cfg(topology: Topology) -> MeshConfig {
        MeshConfig {
            topology,
            t_r: 1,
            policy: RoutingPolicy::Xy,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 24,
            threads: 1,
        }
    }

    #[test]
    fn all_to_all_counts_on_square_mesh() {
        let c = cfg(Topology::square(16, MemifPlacement::SingleCorner));
        let r = run_mesh_collective(Collective::AllToAll, c, 4, None).unwrap();
        // 15 participants, personalized exchange: 15·14 packets of 4 words.
        assert_eq!(r.participants, 15);
        assert_eq!(r.packets, 15 * 14);
        assert_eq!(r.delivered_words, 15 * 14 * 4);
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].name, "collective.alltoall.exchange");
    }

    #[test]
    fn all_gather_volume_matches_all_to_all() {
        // Same per-pair block size ⇒ same wire volume, different payload
        // contents and schedule label.
        let c = cfg(Topology::rect(8, 2, MemifPlacement::SingleCorner));
        let a2a = run_mesh_collective(Collective::AllToAll, c, 3, None).unwrap();
        let ag = run_mesh_collective(Collective::AllGather, c, 3, None).unwrap();
        assert_eq!(a2a.packets, ag.packets);
        assert_eq!(a2a.delivered_words, ag.delivered_words);
        assert_eq!(ag.phases[0].name, "collective.allgather.ring");
    }

    #[test]
    fn all_reduce_runs_two_phases_of_shards() {
        let c = cfg(Topology::square(16, MemifPlacement::FourCorners));
        // 12 participants, 24 words ⇒ 2-word shards.
        let r = run_mesh_collective(Collective::AllReduce, c, 24, None).unwrap();
        assert_eq!(r.participants, 12);
        assert_eq!(r.phases.len(), 2);
        assert_eq!(r.phases[0].name, "collective.allreduce.reduce_scatter");
        assert_eq!(r.phases[1].name, "collective.allreduce.all_gather");
        assert_eq!(r.packets, 2 * 12 * 11);
        assert_eq!(r.delivered_words, 2 * 12 * 11 * 2);
        assert_eq!(r.cycles, r.phases[0].cycles + r.phases[1].cycles);
    }

    #[test]
    fn torus_completes_via_deterministic_deadlock_splits() {
        // The VC-less wrap rings deadlock under a full shift permutation;
        // the runner must recover by bisecting rounds — deterministically —
        // while the XY-routed mesh never needs to split.
        let mesh = cfg(Topology::square(16, MemifPlacement::SingleCorner));
        let torus = cfg(Topology::torus(4, 4, MemifPlacement::SingleCorner));
        let rm = run_mesh_collective(Collective::AllToAll, mesh, 4, None).unwrap();
        let rt = run_mesh_collective(Collective::AllToAll, torus, 4, None).unwrap();
        assert_eq!(rm.deadlock_splits, 0);
        assert!(rt.deadlock_splits > 0, "expected wrap-ring deadlock splits");
        assert_eq!(rt.packets, rm.packets);
        assert_eq!(rt.delivered_words, rm.delivered_words);
        let again = run_mesh_collective(Collective::AllToAll, torus, 4, None).unwrap();
        assert_eq!(again.fingerprint(), rt.fingerprint());
    }

    #[test]
    fn telemetry_spans_and_counters_cover_every_phase() {
        let reg = Registry::new();
        let c = cfg(Topology::square(9, MemifPlacement::SingleCorner));
        let r = run_mesh_collective(Collective::AllReduce, c, 8, Some(&reg)).unwrap();
        let metrics = reg.metrics_json();
        assert!(metrics.contains("\"collective.phase.count\""));
        assert!(metrics.contains("\"collective.cycles\""));
        let trace = reg.chrome_trace_json();
        assert!(trace.contains("collective.allreduce.reduce_scatter"));
        assert!(trace.contains("collective.allreduce.all_gather"));
        assert!(r.cycles > 0);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let c = cfg(Topology::square(16, MemifPlacement::SingleCorner));
        let a = run_mesh_collective(Collective::AllGather, c, 4, None).unwrap();
        let b = run_mesh_collective(Collective::AllGather, c, 4, None).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = run_mesh_collective(Collective::AllGather, c, 5, None).unwrap();
        assert_ne!(a.fingerprint(), other.fingerprint());
    }

    #[test]
    #[should_panic(expected = "at least two participating")]
    fn top_edge_on_one_row_leaves_no_participants() {
        // Every node of a 4×1 TopEdge grid is a memif: nothing to collect.
        let c = cfg(Topology::rect(4, 1, MemifPlacement::TopEdge));
        let _ = run_mesh_collective(Collective::AllGather, c, 4, None);
    }
}
