//! The memory-interface node: ejection, reorder staging, DRAM writeback.
//!
//! §V-C-2: arriving transpose elements are spatially scrambled by the
//! network, but DRAM wants full linear rows. The interface therefore
//! *reassembles rows in staging buffers* ("reassembled at the output node
//! using buffers (preferred)") and spends `t_p` cycles per element on
//! "address decode, transport to staging buffers and time for storage".
//! Completed rows are written to the DRAM model behind the port.

use std::collections::HashMap;

use memory::{AccessKind, DramConfig, DramController, DramStats};
use serde::{Deserialize, Serialize};
use sim_core::invariant;
use sim_core::telemetry::SeriesHistogram;

use crate::flit::Flit;

/// Cap on retained row-write spans per interface: trace mode targets small
/// runs, and an unbounded log would dominate memory on the 2^20 sweeps.
const MAX_ROW_SPANS: usize = 4096;

/// Memory-interface configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemifConfig {
    /// Reorder cycles per element (the paper's `t_p`).
    pub t_p: u64,
    /// DRAM behind the port.
    pub dram: DramConfig,
    /// Bits per element (`S_s`; 64 for FFT samples).
    pub element_bits: u64,
    /// Extra header beats charged per row transaction (`S_h / S_b`).
    pub header_beats: u64,
}

impl Default for MemifConfig {
    fn default() -> Self {
        MemifConfig {
            t_p: 1,
            dram: DramConfig::ideal_paper(),
            element_bits: 64,
            header_beats: 1,
        }
    }
}

/// Statistics from one memory interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemifStats {
    /// Flits ejected into this interface.
    pub flits_accepted: u64,
    /// Elements (payload flits of completed packets) staged.
    pub elements: u64,
    /// Row transactions written to DRAM.
    pub rows_written: u64,
    /// Cycle the last DRAM write completed.
    pub dram_done: u64,
    /// Cycle the last flit was accepted.
    pub last_accept: u64,
    /// Poisoned flits detected and refused staging (NACKed upstream).
    pub nacked: u64,
}

/// One memory interface instance.
#[derive(Debug)]
pub struct MemIf {
    cfg: MemifConfig,
    /// Next cycle the ejection port can accept a flit.
    free_at: u64,
    /// Staging: DRAM row index -> elements collected so far.
    staging: HashMap<u64, u32>,
    words_per_row: u64,
    dram: DramController,
    /// DRAM bus timeline (cycle the bus frees).
    dram_free_at: u64,
    /// Partial rows forced out by [`MemIf::flush`], and the elements they
    /// held — the two terms that close the staging conservation identity
    /// checked by [`MemIf::check_conservation`].
    flushed_rows: u64,
    flushed_elements: u64,
    stats: MemifStats,
    /// Telemetry (None = no per-event work): staging-buffer depth sampled
    /// at each staged element, and `(start, done, row)` spans of row
    /// writebacks (capped at [`MAX_ROW_SPANS`]).
    telemetry: Option<MemifTelemetry>,
}

/// Raw telemetry accumulated by one interface; flushed into a
/// [`sim_core::telemetry::Registry`] by the owning mesh after a run.
#[derive(Debug, Clone, Default)]
pub struct MemifTelemetry {
    /// Staging-buffer depth (distinct partial rows) at each staged element.
    pub staging_depth: SeriesHistogram,
    /// Row writeback spans `(start_cycle, done_cycle, row)`.
    pub row_spans: Vec<(u64, u64, u64)>,
    /// Row spans dropped once the per-memif span cap was reached.
    pub row_spans_dropped: u64,
}

impl MemIf {
    /// A fresh interface.
    pub fn new(cfg: MemifConfig) -> Self {
        let words_per_row = cfg.dram.row_bits / cfg.element_bits;
        MemIf {
            cfg,
            free_at: 0,
            staging: HashMap::new(),
            words_per_row,
            dram: DramController::new(cfg.dram, cfg.element_bits),
            dram_free_at: 0,
            flushed_rows: 0,
            flushed_elements: 0,
            stats: MemifStats::default(),
            telemetry: None,
        }
    }

    /// Start accumulating staging-depth samples and row-write spans.
    pub fn enable_telemetry(&mut self) {
        self.telemetry = Some(MemifTelemetry::default());
    }

    /// The accumulated telemetry, if enabled.
    pub fn telemetry(&self) -> Option<&MemifTelemetry> {
        self.telemetry.as_ref()
    }

    /// Whether the ejection port can take a flit at `cycle`.
    pub fn can_accept(&self, cycle: u64) -> bool {
        cycle >= self.free_at
    }

    /// Accept one flit at `cycle`. Payload flits carry the element's linear
    /// word address. Tail flits additionally occupy the reorder unit for
    /// `t_p` cycles, during which the port cannot eject.
    pub fn accept(&mut self, cycle: u64, flit: &Flit) {
        debug_assert!(self.can_accept(cycle));
        self.stats.flits_accepted += 1;
        self.stats.last_accept = cycle;
        self.free_at = cycle + 1;

        let is_payload = !flit.kind.is_head() || !self.has_explicit_headers(flit);
        if is_payload {
            self.stage_element(cycle, flit.payload);
        }
        if flit.kind.is_tail() {
            // Reorder/staging occupancy blocks the next ejection.
            self.free_at = cycle + 1 + self.cfg.t_p;
        }
    }

    /// Accept a *poisoned* flit at `cycle`: it occupies the ejection port
    /// and reorder unit exactly like a clean flit (the corruption is only
    /// detected once the element reaches the interface) but is refused
    /// staging — the caller NACKs the source instead.
    pub fn accept_nack(&mut self, cycle: u64, flit: &Flit) {
        debug_assert!(self.can_accept(cycle));
        self.stats.flits_accepted += 1;
        self.stats.last_accept = cycle;
        self.stats.nacked += 1;
        self.free_at = cycle + 1;
        if flit.kind.is_tail() {
            self.free_at = cycle + 1 + self.cfg.t_p;
        }
    }

    /// Whether `flit`'s packet used an explicit header flit: heads of
    /// multi-flit packets are headers; a HeadTail flit carries payload.
    fn has_explicit_headers(&self, flit: &Flit) -> bool {
        flit.kind == crate::flit::FlitKind::Head
    }

    fn stage_element(&mut self, cycle: u64, addr: u64) {
        self.stats.elements += 1;
        let row = addr / self.words_per_row;
        let count = self.staging.entry(row).or_insert(0);
        *count += 1;
        // Staged rows are strictly partial: the words_per_row-th element
        // completes the row below, so a larger count means an element was
        // double-staged or a completed row was never written back.
        invariant!(
            u64::from(*count) <= self.words_per_row,
            "memif staging: row {row} holds {count} > words_per_row {} elements",
            self.words_per_row
        );
        let full = u64::from(*count) == self.words_per_row;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.staging_depth.record(self.staging.len() as u64);
        }
        if full {
            self.staging.remove(&row);
            self.write_row(cycle, row);
        }
    }

    fn write_row(&mut self, cycle: u64, row: u64) {
        let start = cycle.max(self.dram_free_at);
        let first_word = row * self.words_per_row;
        let mut done =
            self.dram
                .access_burst(start, first_word, self.words_per_row, AccessKind::Write);
        done += self.cfg.header_beats;
        self.dram_free_at = done;
        self.stats.rows_written += 1;
        self.stats.dram_done = self.stats.dram_done.max(done);
        if let Some(tel) = self.telemetry.as_mut() {
            if tel.row_spans.len() < MAX_ROW_SPANS {
                tel.row_spans.push((start, done, row));
            } else {
                tel.row_spans_dropped += 1;
            }
        }
    }

    /// Force out any incomplete rows (end of workload). Returns the number
    /// of partial rows flushed.
    pub fn flush(&mut self, cycle: u64) -> usize {
        let rows: Vec<(u64, u32)> = self.staging.drain().collect();
        let n = rows.len();
        for (row, count) in rows {
            self.flushed_rows += 1;
            self.flushed_elements += u64::from(count);
            self.write_row(cycle, row);
        }
        n
    }

    /// Staging conservation (DESIGN.md §12): every element this interface
    /// ever staged is in exactly one of three places — a full row written
    /// back, a partial row forced out by [`MemIf::flush`], or a partial row
    /// still staged. Compiled out unless [`sim_core::invariants::ENABLED`].
    pub fn check_conservation(&self) {
        if !sim_core::invariants::ENABLED {
            return;
        }
        let staged: u64 = self.staging.values().map(|&c| u64::from(c)).sum();
        let full_rows = self.stats.rows_written - self.flushed_rows;
        invariant!(
            self.stats.elements == full_rows * self.words_per_row + self.flushed_elements + staged,
            "memif staging accounting: {} elements != {} full-row + {} flushed + {} staged",
            self.stats.elements,
            full_rows * self.words_per_row,
            self.flushed_elements,
            staged
        );
    }

    /// True when nothing is staged and the DRAM bus has drained by `cycle`.
    pub fn is_drained(&self, cycle: u64) -> bool {
        self.staging.is_empty() && cycle >= self.dram_free_at
    }

    /// Interface statistics.
    pub fn stats(&self) -> MemifStats {
        self.stats
    }

    /// DRAM controller statistics (hit/conflict mix of the writeback).
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// The configuration.
    pub fn config(&self) -> &MemifConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, Packet};

    fn element_flits(addr: u64) -> Vec<Flit> {
        Packet::with_header(0, 0, vec![addr]).flits()
    }

    #[test]
    fn accepts_one_flit_per_cycle_plus_tp() {
        let mut m = MemIf::new(MemifConfig {
            t_p: 4,
            ..Default::default()
        });
        let fs = element_flits(0);
        assert!(m.can_accept(0));
        m.accept(0, &fs[0]); // header
        assert!(m.can_accept(1));
        m.accept(1, &fs[1]); // payload tail -> +t_p
        assert!(!m.can_accept(2));
        assert!(!m.can_accept(5));
        assert!(m.can_accept(6)); // 1 + 1 + 4
    }

    #[test]
    fn per_element_period_is_2_plus_tp() {
        // Saturated ejection: each 2-flit element occupies the port for
        // exactly 2 + t_p cycles.
        for t_p in [1u64, 4] {
            let mut m = MemIf::new(MemifConfig {
                t_p,
                ..Default::default()
            });
            let mut cycle = 0;
            for addr in 0..64u64 {
                let fs = element_flits(addr);
                while !m.can_accept(cycle) {
                    cycle += 1;
                }
                m.accept(cycle, &fs[0]);
                cycle += 1;
                m.accept(cycle, &fs[1]);
                cycle += 1;
            }
            // Element i's header lands at i·(2 + t_p); its payload one later.
            assert_eq!(m.stats().last_accept, 63 * (2 + t_p) + 1);
            assert_eq!(m.stats().elements, 64);
        }
    }

    #[test]
    fn rows_complete_after_words_per_row_elements() {
        let mut m = MemIf::new(MemifConfig::default());
        // 32 elements of row 0 (addresses 0..32) in scrambled order.
        let order: Vec<u64> = (0..32).rev().collect();
        let mut cycle = 0;
        for addr in order {
            let fs = element_flits(addr);
            while !m.can_accept(cycle) {
                cycle += 1;
            }
            m.accept(cycle, &fs[0]);
            cycle += 1;
            m.accept(cycle, &fs[1]);
            cycle += 1;
        }
        assert_eq!(m.stats().rows_written, 1);
        assert!(m.is_drained(m.stats().dram_done));
    }

    #[test]
    fn row_write_cost_matches_paper_tt() {
        // t_t = (S_r + S_h)/S_b = (2048 + 64)/64 = 33 cycles per row on the
        // ideal DRAM (32 beats + 1 header beat).
        let mut m = MemIf::new(MemifConfig::default());
        let start_cycle = 1000;
        let mut cycle = start_cycle;
        for addr in 0..32u64 {
            let fs = element_flits(addr);
            while !m.can_accept(cycle) {
                cycle += 1;
            }
            m.accept(cycle, &fs[0]);
            cycle += 1;
            m.accept(cycle, &fs[1]);
            cycle += 1;
        }
        let s = m.stats();
        assert_eq!(s.rows_written, 1);
        // The write started when the row completed (last accept) and took 33.
        assert_eq!(s.dram_done, s.last_accept + 33);
    }

    #[test]
    fn flush_handles_partial_rows() {
        let mut m = MemIf::new(MemifConfig::default());
        let fs = element_flits(5);
        m.accept(0, &fs[0]);
        m.accept(1, &fs[1]);
        assert_eq!(m.stats().rows_written, 0);
        assert_eq!(m.flush(10), 1);
        assert_eq!(m.stats().rows_written, 1);
    }

    #[test]
    fn headerless_single_flit_carries_payload() {
        let mut m = MemIf::new(MemifConfig::default());
        let p = Packet::headerless(0, 0, vec![7]);
        let f = p.flits()[0];
        assert_eq!(f.kind, FlitKind::HeadTail);
        m.accept(0, &f);
        assert_eq!(m.stats().elements, 1);
    }
}
