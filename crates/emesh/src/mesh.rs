//! The clocked mesh fabric: injection, wormhole forwarding, ejection.
//!
//! Semantics are cycle-accurate at flit granularity:
//!
//! * a flit crosses one link per cycle;
//! * a head flit additionally waits `t_r` cycles at *every* router it
//!   encounters (route computation, §V-C-2);
//! * each output channel carries ≤ 1 flit/cycle and is owned wormhole-style
//!   by one packet between head and tail;
//! * each input buffer holds ≤ 2 flits and pops ≤ 1 flit/cycle;
//! * ejection into a memory interface respects the interface's reorder
//!   occupancy (`t_p`).
//!
//! Execution is **event-driven over wakeups** rather than a dense sweep of
//! every router every cycle: a blocked flit sleeps until the condition that
//! blocks it (downstream space, channel release, reorder unit, `ready_at`)
//! can have changed. This makes the 2²⁰-element Table III transpose run in
//! seconds while preserving exact cycle semantics. Determinism: wakeups pop
//! in (cycle, insertion) order and port service order rotates with the
//! cycle number.
//!
//! Wakeups live in a bucketed timing wheel (`WakeWheel`): near-future
//! cycles map to a ring of per-cycle vectors (push/pop are O(1) appends in
//! insertion order), far-future cycles spill to a small overflow heap.
//! Redundant wakeups are suppressed at *push* time via a per-router
//! `next_wake` array: a wake for router `r` at cycle `c` is dropped when a
//! wake at some cycle ≤ `c` is already pending, because servicing `r` at
//! the earlier cycle re-derives every later wake condition (a still-future
//! `ready_at`, a busy reorder unit, a held channel each re-arm their own
//! wakeup). This preserves the heap scheduler's exact (cycle, insertion)
//! service order — enforced bit-for-bit by the golden transpose tests —
//! while skipping most of its queue traffic.

//! A deterministic *epoch-parallel* mode (DESIGN.md §11) partitions each
//! cycle's service list into conflict-free waves and fans them across an
//! [`sim_core::parallel::EpochPool`]; it is selected by
//! [`MeshConfig::with_threads`] and is bit-identical to single-threaded
//! execution — enforced by the same golden tests. Both run on one unified
//! cycle loop (`mesh/exec.rs`): the sequential path *is* the parallel
//! path's commit step, so faults, telemetry and latency tracking all work
//! at any thread count with no fallback.

mod exec;
mod par;
mod soa;

use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};
use sim_core::cancel::{CancelCause, Interrupt};
use sim_core::invariant;
use sim_core::stats::Histogram;
use sim_core::telemetry::{Registry, SeriesHistogram};

use crate::energy::EnergyCounters;
use crate::faults::{FaultLayer, MeshDiagnostic, MeshFaultConfig, MeshFaultStats};
use crate::flit::{Flit, Packet};
use crate::memif::{MemIf, MemifConfig, MemifStats};
use crate::router::NUM_PORTS;
use crate::topology::Topology;

/// Routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Dimension-order: X first, then Y. Deadlock-free.
    Xy,
    /// Minimal adaptive under the west-first turn model: westward packets
    /// route west first; otherwise the less-occupied minimal port is chosen.
    /// Deadlock-free (west-first) and the paper's "minimal adaptive".
    MinimalAdaptive,
}

/// Mesh configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Topology and memory-interface placement.
    pub topology: Topology,
    /// Cycles to route a header in each router (`t_r`; paper: 1).
    pub t_r: u64,
    /// Routing policy.
    pub policy: RoutingPolicy,
    /// Memory-interface configuration (shared by all interfaces).
    pub memif: MemifConfig,
    /// Input buffer depth in flits (paper: 2).
    pub buffer_depth: usize,
    /// Watchdog: abort after this many cycles.
    pub max_cycles: u64,
    /// Worker threads for the deterministic epoch-parallel scheduler
    /// (1 = single-threaded; see DESIGN.md §11). Every configuration —
    /// faults, telemetry, latency tracking included — runs the same
    /// unified loop bit-identically at any thread count, so results never
    /// depend on this knob; it only trades wall clock. Requests beyond the
    /// node count are clamped and reported in
    /// [`MeshRunResult::warnings`].
    pub threads: usize,
}

impl MeshConfig {
    /// The paper's baseline mesh parameters over a 64-node single-corner
    /// square: `t_r = 1`, XY-capable minimal adaptive routing, 2-flit
    /// buffers, ideal DRAM. Refine with the `with_*` builders:
    ///
    /// ```
    /// use emesh::mesh::{MeshConfig, RoutingPolicy};
    /// let cfg = MeshConfig::paper_default()
    ///     .with_buffers(4)
    ///     .with_policy(RoutingPolicy::Xy);
    /// assert_eq!(cfg.buffer_depth, 4);
    /// ```
    pub fn paper_default() -> Self {
        MeshConfig {
            topology: Topology::square(64, crate::topology::MemifPlacement::SingleCorner),
            t_r: 1,
            policy: RoutingPolicy::MinimalAdaptive,
            memif: MemifConfig::default(),
            buffer_depth: crate::router::Router::BUFFER_DEPTH,
            max_cycles: 1 << 36,
            threads: 1,
        }
    }

    /// The paper's Table III setup for `n` processors: minimal adaptive,
    /// `t_r = 1`, single memory port, ideal DRAM, given `t_p`.
    pub fn table3(n: usize, t_p: u64) -> Self {
        MeshConfig::paper_default()
            .with_topology(Topology::square(
                n,
                crate::topology::MemifPlacement::SingleCorner,
            ))
            .with_memif(MemifConfig {
                t_p,
                ..Default::default()
            })
    }

    /// Replace the topology (and memory-interface placement).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Set the per-router header routing latency `t_r`.
    #[must_use]
    pub fn with_t_r(mut self, t_r: u64) -> Self {
        self.t_r = t_r;
        self
    }

    /// Set the routing policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RoutingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the memory-interface configuration.
    #[must_use]
    pub fn with_memif(mut self, memif: MemifConfig) -> Self {
        self.memif = memif;
        self
    }

    /// Set the input buffer depth in flits.
    #[must_use]
    pub fn with_buffers(mut self, buffer_depth: usize) -> Self {
        self.buffer_depth = buffer_depth;
        self
    }

    /// Set the watchdog cycle limit.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Set the worker-thread count for the deterministic epoch-parallel
    /// scheduler (clamped to ≥ 1; 1 selects single-threaded execution).
    /// Any value produces bit-identical results — threads only trade wall
    /// clock.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Errors from a mesh run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// No wakeups pending but traffic remains: a routing deadlock.
    Deadlock {
        /// Cycle at which progress stopped.
        at_cycle: u64,
        /// Flits still buffered in the network.
        in_flight: u64,
    },
    /// The watchdog cycle limit was exceeded.
    CycleLimit {
        /// The limit.
        limit: u64,
    },
    /// Traffic is pending and wakeups keep firing, but no flit has moved
    /// for the fault layer's watchdog window: a livelock (e.g. senders
    /// probing a hard-killed router forever). Carries a structured dump of
    /// where everything is stuck instead of hanging.
    NoProgress {
        /// Cycle at which the watchdog gave up.
        at_cycle: u64,
        /// The diagnostic dump.
        report: Box<MeshDiagnostic>,
    },
    /// A packet was injected at a node id outside the topology.
    BadInjection {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the mesh.
        nodes: usize,
    },
    /// A packet was injected at a hard-killed router.
    DeadNode {
        /// The offending node id.
        node: u32,
        /// Cycle the router died.
        killed_at: u64,
    },
    /// The run was interrupted by the installed [`sim_core::cancel::Interrupt`]
    /// (token, deadline, or deterministic cycle bound). Carries the partial
    /// progress reached, so a supervisor can report how far the run got.
    /// The mesh itself is left mid-flight; cancelled runs are not resumable
    /// — re-run from a fresh mesh (determinism makes the rerun exact).
    Cancelled {
        /// The serviced cycle the interrupt fired at.
        at_cycle: u64,
        /// Which interrupt source fired.
        cause: CancelCause,
        /// Flits still buffered in the network at cancellation.
        in_flight: u64,
        /// Flits still queued for injection at cancellation.
        pending_inject: u64,
        /// Energy counters accumulated up to cancellation.
        energy: EnergyCounters,
    },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::Deadlock {
                at_cycle,
                in_flight,
            } => {
                write!(
                    f,
                    "mesh deadlocked at cycle {at_cycle} with {in_flight} flits in flight"
                )
            }
            MeshError::CycleLimit { limit } => write!(f, "mesh exceeded {limit} cycles"),
            MeshError::NoProgress { at_cycle, report } => {
                write!(
                    f,
                    "mesh livelocked (no flit movement) at cycle {at_cycle}: \
                     {} in flight, {} pending injection, {} pending retransmits, \
                     killed routers {:?}; stuck routers (id, flits): {:?}; \
                     fault stats: {:?}",
                    report.in_flight,
                    report.pending_inject,
                    report.pending_retransmits,
                    report.killed_routers,
                    report.stuck_routers,
                    report.stats,
                )
            }
            MeshError::BadInjection { node, nodes } => {
                write!(f, "injection at node {node} outside the {nodes}-node mesh")
            }
            MeshError::DeadNode { node, killed_at } => {
                write!(
                    f,
                    "injection at node {node}, which was hard-killed at cycle {killed_at}"
                )
            }
            MeshError::Cancelled {
                at_cycle,
                cause,
                in_flight,
                pending_inject,
                ..
            } => write!(
                f,
                "mesh run Cancelled at cycle {at_cycle} ({cause}); \
                 {in_flight} flits in flight, {pending_inject} pending injection"
            ),
        }
    }
}

impl std::error::Error for MeshError {}

/// A non-fatal condition the scheduler wants the caller to know about.
/// Warnings are deterministic functions of the configuration (never of the
/// host machine), so they are safe to include in golden fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunWarning {
    /// More worker threads were requested than the mesh has routers; the
    /// run executed with one worker per router instead (extra workers
    /// could never have a wave entry to service).
    ThreadsExceedNodes {
        /// Threads requested via [`MeshConfig::threads`].
        requested: usize,
        /// Routers in the mesh (= the thread count actually used).
        nodes: usize,
    },
}

impl std::fmt::Display for RunWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunWarning::ThreadsExceedNodes { requested, nodes } => write!(
                f,
                "requested {requested} threads for a {nodes}-router mesh; \
                 clamped to {nodes}"
            ),
        }
    }
}

/// Result of running a mesh workload to completion.
#[derive(Debug, Clone)]
pub struct MeshRunResult {
    /// Cycle at which everything (network + staging + DRAM) drained.
    pub cycles: u64,
    /// Energy counters accumulated over the run.
    pub energy: EnergyCounters,
    /// Per-memory-interface statistics.
    pub memif_stats: Vec<MemifStats>,
    /// Per-node count of payload words delivered to processor sinks.
    pub sink_delivered: Vec<u64>,
    /// Per-node cycle of last sink delivery (0 if none).
    pub sink_last_cycle: Vec<u64>,
    /// Packet latency histogram (inject→tail-eject, cycles), if tracking
    /// was enabled with [`Mesh::track_latency`].
    pub latency: Option<Histogram>,
    /// Per-router flit-forward counts — a congestion heatmap. The hotspot
    /// (§V-C: "an unavoidable bottleneck at the memory interface") shows up
    /// as the maximum, at the memory-interface router.
    pub router_forwards: Vec<u64>,
    /// Fault-layer counters, if a fault layer was attached.
    pub faults: Option<MeshFaultStats>,
    /// Non-fatal scheduler warnings (e.g. a clamped thread count). Always
    /// deterministic for a given configuration.
    pub warnings: Vec<RunWarning>,
}

#[derive(PartialEq, Eq)]
struct Wake {
    cycle: u64,
    seq: u64,
    router: u32,
}

impl Ord for Wake {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (cycle, seq).
        other
            .cycle
            .cmp(&self.cycle)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Wake {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bucketed timing wheel of router wakeups.
///
/// Cycles within [`WakeWheel::WINDOW`] of the wheel cursor land in a ring
/// of per-cycle buckets; each bucket is a plain `Vec<u32>` of router ids in
/// insertion order, so draining a bucket front-to-back reproduces the
/// (cycle, seq) order the old global `BinaryHeap` produced — with O(1)
/// unordered appends instead of O(log n) sift-ups. Cycles at or beyond the
/// window (rare: nothing in the simulator wakes more than `t_r`/`t_p` + 1
/// cycles ahead) spill into a seq-stamped overflow heap and are merged to
/// the *front* of their bucket on arrival; front is correct because the
/// cursor is monotone, so every overflow push for a cycle predates every
/// direct push for it.
struct WakeWheel {
    buckets: Vec<Vec<u32>>,
    /// Cycle the wheel is positioned at; bucket `cursor % WINDOW` holds it.
    cursor: u64,
    /// Total entries across all buckets (not counting the overflow heap).
    bucket_pending: u64,
    overflow: BinaryHeap<Wake>,
    seq: u64,
}

impl WakeWheel {
    /// Ring size in cycles. Power of two; must exceed the longest
    /// self-rearm distance (`1 + max(t_r, t_p)` in practice — the overflow
    /// heap keeps correctness for configs beyond it).
    const WINDOW: u64 = 64;

    fn new() -> Self {
        WakeWheel {
            buckets: (0..Self::WINDOW).map(|_| Vec::new()).collect(),
            cursor: 0,
            bucket_pending: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, router: u32, cycle: u64) {
        debug_assert!(cycle >= self.cursor, "wakeup in the past");
        if cycle - self.cursor < Self::WINDOW {
            self.buckets[(cycle % Self::WINDOW) as usize].push(router);
            self.bucket_pending += 1;
        } else {
            self.overflow.push(Wake {
                cycle,
                seq: self.seq,
                router,
            });
            self.seq += 1;
        }
    }

    /// Earliest cycle ≥ cursor holding any wakeup, or `None` when drained.
    fn next_cycle(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        if self.bucket_pending > 0 {
            for off in 0..Self::WINDOW {
                let c = self.cursor + off;
                if !self.buckets[(c % Self::WINDOW) as usize].is_empty() {
                    best = Some(c);
                    break;
                }
            }
            debug_assert!(best.is_some(), "pending entries must be in-window");
        }
        if let Some(w) = self.overflow.peek() {
            best = Some(best.map_or(w.cycle, |b| b.min(w.cycle)));
        }
        best
    }

    /// Move the cursor to `c` and merge any overflow entries for `c` in
    /// front of the direct-push entries already bucketed for it.
    fn advance_to(&mut self, c: u64) {
        debug_assert!(c >= self.cursor);
        self.cursor = c;
        if self.overflow.peek().is_none_or(|w| w.cycle != c) {
            return;
        }
        let b = (c % Self::WINDOW) as usize;
        let mut merged: Vec<u32> = Vec::new();
        while let Some(w) = self.overflow.peek() {
            debug_assert!(w.cycle >= c, "overflow entry skipped");
            if w.cycle != c {
                break;
            }
            merged.push(self.overflow.pop().expect("peeked").router);
        }
        self.bucket_pending += merged.len() as u64;
        merged.append(&mut self.buckets[b]);
        self.buckets[b] = merged;
    }
}

/// The mesh simulator.
pub struct Mesh {
    cfg: MeshConfig,
    /// All router port state, structure-of-arrays (see `mesh/soa.rs`).
    slab: soa::RouterSlab,
    /// Pre-flitted injection stream per node.
    inject: Vec<VecDeque<Flit>>,
    last_inject: Vec<u64>,
    /// Pop stamps, flattened `router * NUM_PORTS + port`.
    last_pop: Vec<u64>,
    memif_slot: Vec<Option<u32>>,
    memifs: Vec<MemIf>,
    sink_delivered: Vec<u64>,
    sink_last_cycle: Vec<u64>,
    sink_words: Vec<Vec<u64>>,
    /// Whether sinks retain delivered payload words (tests) or just count.
    collect_sink_words: bool,
    /// Packet-latency tracking: inject cycle indexed by packet id
    /// ([`NEVER`] = not in flight), grown on demand.
    inject_cycle: Option<Vec<u64>>,
    latency: Option<Histogram>,
    wheel: WakeWheel,
    /// Last cycle each router was processed (a router runs at most once per
    /// cycle; stale wheel entries pop as no-ops).
    processed_at: Vec<u64>,
    /// Earliest pending wakeup per router ([`NEVER`] = none). Push-time
    /// dedup: a wake at cycle ≥ this is redundant.
    next_wake: Vec<u64>,
    in_flight: u64,
    pending_inject: u64,
    energy: EnergyCounters,
    router_forwards: Vec<u64>,
    now: u64,
    /// Fault-injection layer; `None` (the default) leaves every hot path
    /// untouched and the simulation bit-identical to the fault-free build.
    faults: Option<FaultLayer>,
    /// Telemetry layer; `None` (the default) costs one hoisted `is_some()`
    /// per service batch and nothing per flit. Boxed so the hot struct
    /// stays small and the mesh stays `Send` for rayon'd sweeps.
    telemetry: Option<Box<MeshTelemetry>>,
    /// Watchdog: flit-movement odometer at the last observed change, and
    /// the cycle it changed.
    progress_metric: u64,
    progress_cycle: u64,
    /// Warnings accumulated by the current run (cleared at run start).
    run_warnings: Vec<RunWarning>,
    /// Cooperative interrupt, polled once per serviced cycle on the master
    /// loop (which both the sequential path and the epoch-parallel waves
    /// run through). `None` (the default) costs one branch per serviced
    /// cycle and keeps the run bit-identical to a build without the
    /// feature.
    interrupt: Option<Interrupt>,
}

const NEVER: u64 = u64::MAX;

/// Serviced cycles between throttled flit-conservation audits (the audit
/// is O(nodes); hot-site checks are O(1) every cycle).
const AUDIT_INTERVAL: u64 = 1024;

/// Telemetry scratch carried by an instrumented mesh: the registry plus
/// raw per-router accumulators flushed into it at the end of each run.
///
/// Timebase: trace timestamps render one mesh cycle as one microsecond.
#[derive(Debug)]
struct MeshTelemetry {
    registry: Registry,
    /// First cycle each router was serviced ([`NEVER`] = never).
    first_active: Vec<u64>,
    /// Last cycle each router was serviced.
    last_active: Vec<u64>,
    /// Input-buffer occupancy (flits across all ports) sampled at each
    /// router service.
    occupancy: SeriesHistogram,
}

impl Mesh {
    /// Build an idle mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        let n = cfg.topology.nodes();
        let mut memif_slot = vec![None; n];
        let mut memifs = Vec::new();
        for m in cfg.topology.memif_nodes() {
            memif_slot[m as usize] = Some(memifs.len() as u32);
            memifs.push(MemIf::new(cfg.memif));
        }
        Mesh {
            slab: soa::RouterSlab::new(n, cfg.buffer_depth),
            cfg,
            inject: vec![VecDeque::new(); n],
            last_inject: vec![NEVER; n],
            last_pop: vec![NEVER; n * NUM_PORTS],
            memif_slot,
            memifs,
            sink_delivered: vec![0; n],
            sink_last_cycle: vec![0; n],
            sink_words: vec![Vec::new(); n],
            collect_sink_words: false,
            inject_cycle: None,
            latency: None,
            wheel: WakeWheel::new(),
            processed_at: vec![NEVER; n],
            next_wake: vec![NEVER; n],
            in_flight: 0,
            pending_inject: 0,
            energy: EnergyCounters::default(),
            router_forwards: vec![0; n],
            now: 0,
            faults: None,
            telemetry: None,
            progress_metric: 0,
            progress_cycle: 0,
            run_warnings: Vec::new(),
            interrupt: None,
        }
    }

    /// Install a cooperative [`Interrupt`]: the run loop polls it once per
    /// serviced cycle and aborts with [`MeshError::Cancelled`] (carrying
    /// the cycle reached and partial progress counters) when a source
    /// fires. Replaces any earlier interrupt. With no interrupt installed
    /// the poll site is a single `None` branch — results stay
    /// bit-identical and the perf gate sees no regression.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.interrupt = Some(interrupt);
    }

    /// Remove the installed interrupt, restoring the zero-cost path.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
    }

    /// Attach (or replace) a telemetry registry. Costs nothing on the hot
    /// path beyond one `is_some()` per service batch; all series and spans
    /// are flushed into the registry when [`Mesh::run`] completes. Metric
    /// names follow `emesh.component.metric`; trace timestamps map one
    /// cycle to one microsecond.
    pub fn enable_telemetry(&mut self) {
        let n = self.cfg.topology.nodes();
        self.telemetry = Some(Box::new(MeshTelemetry {
            registry: Registry::new(),
            first_active: vec![NEVER; n],
            last_active: vec![0; n],
            occupancy: SeriesHistogram::default(),
        }));
        for m in &mut self.memifs {
            m.enable_telemetry();
        }
    }

    /// The telemetry registry, if attached (populated after [`Mesh::run`]).
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// Detach and return the telemetry registry (e.g. to merge it into an
    /// experiment-wide registry).
    pub fn take_telemetry(&mut self) -> Option<Registry> {
        self.telemetry.take().map(|t| t.registry)
    }

    /// Attach (or replace) the fault-injection layer. With all rates zero
    /// and no kills the attached layer never perturbs the simulation.
    pub fn enable_faults(&mut self, cfg: MeshFaultConfig) {
        self.faults = Some(FaultLayer::new(cfg, self.cfg.topology.nodes()));
    }

    /// The fault layer, if attached.
    pub fn faults(&self) -> Option<&FaultLayer> {
        self.faults.as_ref()
    }

    /// Retain delivered payload words at processor sinks (for tests /
    /// correctness checks; costs memory on large runs).
    pub fn collect_sink_words(&mut self, yes: bool) {
        self.collect_sink_words = yes;
    }

    /// Record per-packet inject→eject latency into a histogram
    /// (`bucket_width` cycles per bucket).
    pub fn track_latency(&mut self, bucket_width: u64, buckets: usize) {
        self.inject_cycle = Some(Vec::new());
        self.latency = Some(Histogram::new(bucket_width, buckets));
    }

    /// Queue `packet` for injection at `node` (flits leave in FIFO order,
    /// one per cycle at best).
    ///
    /// Asserting wrapper over [`Mesh::try_inject_packet`].
    ///
    /// # Panics
    /// Panics on an out-of-range or hard-killed node id; use
    /// [`Mesh::try_inject_packet`] for a structured error instead.
    pub fn inject_packet(&mut self, node: u32, packet: &Packet) {
        self.try_inject_packet(node, packet)
            .expect("inject_packet: invalid or dead node");
    }

    /// Queue `packet` for injection at `node`, rejecting invalid targets.
    ///
    /// Injection may happen between [`Mesh::run`] calls: the node wakes at
    /// the *current* cycle, or the next one if it was already serviced this
    /// cycle (a same-cycle wake would pop as already-processed and the new
    /// traffic would falsely deadlock).
    ///
    /// # Errors
    /// [`MeshError::BadInjection`] if `node` is outside the topology;
    /// [`MeshError::DeadNode`] if `node` is a router already hard-killed
    /// (its injector will never run, so the packet would silently wedge
    /// the mesh).
    pub fn try_inject_packet(&mut self, node: u32, packet: &Packet) -> Result<(), MeshError> {
        let nodes = self.cfg.topology.nodes();
        if node as usize >= nodes {
            return Err(MeshError::BadInjection { node, nodes });
        }
        if let Some(fl) = &self.faults {
            if let Some(at) = fl.hot.killed_at[node as usize] {
                if at <= self.now {
                    return Err(MeshError::DeadNode {
                        node,
                        killed_at: at,
                    });
                }
            }
        }
        let flits = packet.flits();
        self.pending_inject += flits.len() as u64;
        self.inject[node as usize].extend(flits);
        let at = if self.processed_at[node as usize] == self.now {
            self.now + 1
        } else {
            self.now
        };
        self.wake(node, at);
        Ok(())
    }

    /// The configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Payload words delivered to node sinks (only if collection enabled).
    pub fn sink_words(&self, node: u32) -> &[u64] {
        &self.sink_words[node as usize]
    }

    fn wake(&mut self, router: u32, cycle: u64) {
        wake_raw(&mut self.wheel, &mut self.next_wake, router, cycle);
    }

    /// Flit conservation (DESIGN.md §12): `in_flight` counts exactly the
    /// flits resident in router input buffers — every injected flit is in
    /// some buffer until ejected, nowhere else, and never twice. Compiled
    /// out unless [`sim_core::invariants::ENABLED`].
    fn check_flit_conservation(&self) {
        if !sim_core::invariants::ENABLED {
            return;
        }
        let resident: u64 = (0..self.slab.routers())
            .map(|r| self.slab.occupancy(r) as u64)
            .sum();
        invariant!(
            resident == self.in_flight,
            "flit conservation: {resident} flits resident in buffers vs in_flight {}",
            self.in_flight
        );
    }

    /// Re-inject every NACKed element whose turnaround has elapsed by `c`.
    fn drain_due_retransmits(&mut self, c: u64) {
        loop {
            let Some(fl) = self.faults.as_mut() else {
                return;
            };
            if fl.retx.front().is_none_or(|rt| rt.due > c) {
                return;
            }
            let rt = fl.retx.pop_front().expect("checked");
            if fl.is_dead(rt.src, c) {
                // The source died while the NACK was in flight.
                fl.stats.dropped_elements += 1;
                continue;
            }
            self.try_inject_packet(rt.src, &rt.packet)
                .expect("liveness just checked");
        }
    }

    /// Watchdog: with traffic pending and no flit movement for the
    /// configured window, abort with a structured diagnostic. Only called
    /// when a fault layer is attached.
    fn watchdog_check(&mut self, c: u64) -> Result<(), MeshError> {
        let metric = self.energy.injections + self.energy.router_traversals + self.energy.ejections;
        if metric != self.progress_metric {
            self.progress_metric = metric;
            self.progress_cycle = c;
            return Ok(());
        }
        let fl = self.faults.as_ref().expect("gated on faults");
        let pending = self.pending_inject + self.in_flight + fl.retx.len() as u64;
        if pending > 0 && c - self.progress_cycle >= fl.cfg.watchdog_cycles {
            return Err(MeshError::NoProgress {
                at_cycle: c,
                report: Box::new(self.diagnostic(c)),
            });
        }
        Ok(())
    }

    /// Structured dump of where traffic is stuck.
    fn diagnostic(&self, c: u64) -> MeshDiagnostic {
        let fl = self.faults.as_ref().expect("fault layer attached");
        MeshDiagnostic {
            killed_routers: fl.dead_routers(c),
            in_flight: self.in_flight,
            pending_inject: self.pending_inject,
            pending_retransmits: fl.retx.len() as u64,
            stuck_routers: (0..self.slab.routers())
                .filter(|&i| !self.slab.is_empty(i))
                .map(|i| (i as u32, self.slab.occupancy(i) as u32))
                .collect(),
            stats: fl.stats,
        }
    }

    /// Drive the simulation until all traffic drains. Returns completion
    /// cycle and statistics.
    ///
    /// One unified cycle loop serves every configuration (`mesh/exec.rs`):
    /// with [`MeshConfig::threads`] > 1 dense cycles fan out across the
    /// deterministic epoch-parallel scheduler (DESIGN.md §11), and sparse
    /// cycles run inline on the master — bit-identically to a
    /// single-threaded run in all cases, faults, telemetry and latency
    /// tracking included. Non-fatal scheduler conditions (e.g. a thread
    /// count clamped to the node count) are reported in
    /// [`MeshRunResult::warnings`].
    pub fn run(&mut self) -> Result<MeshRunResult, MeshError> {
        self.run_core()
    }

    /// Shared end-of-run epilogue: deadlock detection, DRAM drain
    /// accounting, telemetry flush, result assembly.
    fn finish(&mut self) -> Result<MeshRunResult, MeshError> {
        let pending_retx = self.faults.as_ref().map_or(0, |fl| fl.retx.len() as u64);
        if self.pending_inject > 0 || self.in_flight > 0 || pending_retx > 0 {
            return Err(MeshError::Deadlock {
                at_cycle: self.now,
                in_flight: self.in_flight + self.pending_inject + pending_retx,
            });
        }
        // Full end-of-run audit: with in_flight = 0, conservation means
        // every router buffer drained; and every staged element is
        // accounted for at each memory interface.
        self.check_flit_conservation();
        if sim_core::invariants::ENABLED {
            for m in &self.memifs {
                m.check_conservation();
            }
        }
        // Account DRAM drain beyond the last network event.
        let mut done = self.now;
        let memif_stats: Vec<MemifStats> = self.memifs.iter().map(|m| m.stats()).collect();
        for s in &memif_stats {
            done = done.max(s.dram_done);
        }
        if self.telemetry.is_some() {
            self.flush_telemetry(done);
        }
        Ok(MeshRunResult {
            cycles: done,
            energy: self.energy,
            memif_stats,
            sink_delivered: self.sink_delivered.clone(),
            sink_last_cycle: self.sink_last_cycle.clone(),
            latency: self.latency.clone(),
            router_forwards: self.router_forwards.clone(),
            faults: self.faults.as_ref().map(|fl| fl.stats),
            warnings: self.run_warnings.clone(),
        })
    }

    /// Publish end-of-run series and spans into the attached registry.
    /// Counters are written with absolute `counter_set` semantics so a
    /// repeated `run()` (mid-run injection workloads) republishes totals
    /// instead of double-counting.
    fn flush_telemetry(&mut self, done: u64) {
        let tel = self.telemetry.as_ref().expect("checked by caller");
        let reg = &tel.registry;
        let n = self.cfg.topology.nodes();
        reg.counter_set("emesh.mesh.cycles", done);
        reg.counter_set("emesh.mesh.injections", self.energy.injections);
        reg.counter_set("emesh.mesh.ejections", self.energy.ejections);
        reg.counter_set("emesh.mesh.link_hops", self.energy.link_hops);
        reg.counter_set(
            "emesh.mesh.router_traversals",
            self.energy.router_traversals,
        );
        // Mean fraction of the mesh's directed links (4 per router) busy
        // per cycle — the aggregate the paper's §V-C contention argument
        // is about.
        let util = if done == 0 {
            0.0
        } else {
            self.energy.link_hops as f64 / (done as f64 * n as f64 * 4.0)
        };
        reg.gauge_set("emesh.link.utilization", util);
        reg.histogram_set_labeled("emesh.router.occupancy", &[], tel.occupancy.clone());
        for (i, &fwd) in self.router_forwards.iter().enumerate() {
            let label = [("node", i.to_string())];
            reg.counter_set_labeled("emesh.router.forwards", &label, fwd);
            if tel.first_active[i] != NEVER {
                reg.span(
                    "emesh",
                    &format!("router {i}"),
                    "active",
                    tel.first_active[i] as f64,
                    (tel.last_active[i] - tel.first_active[i] + 1) as f64,
                    &[("forwards", fwd.to_string())],
                );
            }
        }
        for (slot, node) in self.cfg.topology.memif_nodes().iter().enumerate() {
            let m = &self.memifs[slot];
            let label = [("node", node.to_string())];
            let s = m.stats();
            reg.counter_set_labeled("emesh.memif.flits_accepted", &label, s.flits_accepted);
            reg.counter_set_labeled("emesh.memif.elements", &label, s.elements);
            reg.counter_set_labeled("emesh.memif.rows_written", &label, s.rows_written);
            reg.counter_set_labeled("emesh.memif.nacks", &label, s.nacked);
            let d = m.dram_stats();
            reg.counter_set_labeled("emesh.dram.row_hits", &label, d.hits);
            reg.counter_set_labeled("emesh.dram.row_misses", &label, d.misses);
            reg.counter_set_labeled("emesh.dram.row_conflicts", &label, d.conflicts);
            if let Some(mt) = m.telemetry() {
                reg.histogram_set_labeled(
                    "emesh.memif.staging_depth",
                    &label,
                    mt.staging_depth.clone(),
                );
                let track = format!("memif {node}");
                for &(start, end, row) in &mt.row_spans {
                    reg.span(
                        "emesh",
                        &track,
                        "row_write",
                        start as f64,
                        (end - start) as f64,
                        &[("row", row.to_string())],
                    );
                }
                if mt.row_spans_dropped > 0 {
                    reg.counter_set_labeled(
                        "emesh.memif.row_spans_dropped",
                        &label,
                        mt.row_spans_dropped,
                    );
                }
            }
        }
        if let Some(fl) = &self.faults {
            reg.counter_set("emesh.fault.corrupted_flits", fl.stats.corrupted_flits);
            reg.counter_set("emesh.fault.nacks", fl.stats.nacks);
            reg.counter_set("emesh.fault.retransmits", fl.stats.retransmits);
            reg.counter_set("emesh.fault.link_down_events", fl.stats.link_down_events);
            reg.counter_set("emesh.fault.dropped_elements", fl.stats.dropped_elements);
        }
    }

    /// Access a memory interface by slot for post-run inspection.
    pub fn memif(&self, slot: usize) -> &MemIf {
        &self.memifs[slot]
    }

    /// Mutable access (e.g. to flush partial rows after a run).
    pub fn memif_mut(&mut self, slot: usize) -> &mut MemIf {
        &mut self.memifs[slot]
    }

    /// Number of memory interfaces.
    pub fn memif_count(&self) -> usize {
        self.memifs.len()
    }
}

/// Schedule a wakeup for `router` at `cycle`, deduplicating at push time.
/// Free function so the epoch-parallel effect replay (which holds the
/// router state behind a disjoint borrow) shares the exact dedup rule with
/// [`Mesh::wake`].
fn wake_raw(wheel: &mut WakeWheel, next_wake: &mut [u64], router: u32, cycle: u64) {
    let ri = router as usize;
    if next_wake[ri] == cycle {
        // A wake for this router at this exact cycle is already
        // pending; the duplicate would pop as a no-op (the first entry
        // services the router, `processed_at` skips the rest). Dropping
        // *only* exact duplicates keeps every surviving entry at the
        // seed scheduler's (cycle, insertion) position — a
        // stronger-looking "skip if any earlier wake is pending" rule
        // re-pushes the pair later and reorders same-cycle service.
        return;
    }
    if cycle < next_wake[ri] {
        next_wake[ri] = cycle;
    }
    wheel.push(router, cycle);
}

fn m_free_at(m: &MemIf, c: u64) -> u64 {
    // MemIf does not expose free_at directly; probe forward. The reorder
    // occupancy is bounded by t_p + 1, so this loop is O(t_p).
    let mut t = c + 1;
    while !m.can_accept(t) {
        t += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Packet;
    use crate::topology::MemifPlacement;

    fn small_cfg(policy: RoutingPolicy) -> MeshConfig {
        MeshConfig {
            topology: Topology::square(16, MemifPlacement::SingleCorner),
            t_r: 1,
            policy,
            memif: MemifConfig::default(),
            buffer_depth: 2,
            max_cycles: 1 << 24,
            threads: 1,
        }
    }

    #[test]
    fn single_packet_latency_matches_hand_count() {
        // Node 15 (3,3) sends a 2-flit packet to a sink at node 12 (0,3):
        // 3 hops west. Head: inject at 0 (ready 2), then per hop 1 cycle
        // link + 1 cycle route. XY routing, empty network.
        let mut cfg = small_cfg(RoutingPolicy::Xy);
        cfg.topology = Topology::square(16, MemifPlacement::SingleCorner);
        let mut m = Mesh::new(cfg);
        m.collect_sink_words(true);
        m.inject_packet(15, &Packet::with_header(12, 0, vec![0xBEEF]));
        let res = m.run().unwrap();
        assert_eq!(m.sink_words(12), &[0xBEEF]);
        assert_eq!(res.sink_delivered[12], 1);
        // Head: ready at 2 after injection; each of 3 forwards lands with
        // +1 link +1 route; final ejection via local port. Tail follows one
        // cycle behind. Bound the latency tightly rather than over-specify.
        assert!(
            (6..=12).contains(&res.cycles),
            "completion at {} cycles",
            res.cycles
        );
    }

    #[test]
    fn all_nodes_to_corner_memif_drains() {
        for policy in [RoutingPolicy::Xy, RoutingPolicy::MinimalAdaptive] {
            let mut m = Mesh::new(small_cfg(policy));
            // Each node sends 32 elements covering addresses so rows fill:
            // node n sends addresses n*32..(n+1)*32 (its own row).
            for n in 0..16u32 {
                for e in 0..32u64 {
                    m.inject_packet(
                        n,
                        &Packet::with_header(0, n as u64 * 32 + e, vec![n as u64 * 32 + e]),
                    );
                }
            }
            let res = m.run().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
            let s = res.memif_stats[0];
            assert_eq!(s.elements, 16 * 32, "{policy:?}");
            assert_eq!(s.rows_written, 16, "{policy:?}");
            assert!(res.cycles > 0);
        }
    }

    #[test]
    fn ejection_throughput_bounds_completion() {
        // 16 nodes x 64 elements to one corner: ejection accepts one
        // 2-flit element per (2 + t_p) cycles, so completion >= elements *
        // (2 + t_p) roughly.
        let mut m = Mesh::new(small_cfg(RoutingPolicy::MinimalAdaptive));
        for n in 0..16u32 {
            for e in 0..64u64 {
                let addr = n as u64 * 64 + e;
                m.inject_packet(n, &Packet::with_header(0, (n as u64) << 8 | e, vec![addr]));
            }
        }
        let res = m.run().unwrap();
        let elements = 16 * 64;
        assert!(res.cycles >= elements * 3 - 3);
        // And the network shouldn't be grossly slower than the port bound.
        assert!(res.cycles <= elements * 3 + 2000, "cycles = {}", res.cycles);
    }

    #[test]
    fn sink_delivery_to_all_nodes() {
        // Scatter-like: corner node 0 sends one 4-payload packet to every
        // other node (sinks). All must arrive intact.
        let mut m = Mesh::new(small_cfg(RoutingPolicy::Xy));
        m.collect_sink_words(true);
        for n in 1..16u32 {
            m.inject_packet(0, &Packet::with_header(n, n as u64, vec![n as u64; 4]));
        }
        let res = m.run().unwrap();
        for n in 1..16usize {
            assert_eq!(res.sink_delivered[n], 4, "node {n}");
            assert_eq!(m.sink_words(n as u32), &[n as u64; 4][..]);
        }
    }

    #[test]
    fn xy_and_adaptive_both_complete_under_contention() {
        // Cross traffic: every node sends to the diagonally opposite node.
        for policy in [RoutingPolicy::Xy, RoutingPolicy::MinimalAdaptive] {
            let mut cfg = small_cfg(policy);
            cfg.topology = Topology::square(16, MemifPlacement::SingleCorner);
            let mut m = Mesh::new(cfg);
            for n in 1..16u32 {
                // skip node 0 (memif)
                let dest = 15 - n;
                if dest != 0 {
                    m.inject_packet(n, &Packet::with_header(dest, n as u64, vec![n as u64; 3]));
                }
            }
            let res = m.run().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
            let total: u64 = res.sink_delivered.iter().sum();
            assert_eq!(total, 14 * 3, "{policy:?}");
        }
    }

    #[test]
    fn energy_counters_accumulate() {
        let mut m = Mesh::new(small_cfg(RoutingPolicy::Xy));
        m.inject_packet(15, &Packet::with_header(0, 0, vec![1]));
        let res = m.run().unwrap();
        assert_eq!(res.energy.injections, 2);
        assert_eq!(res.energy.ejections, 2);
        // 6 hops x 2 flits inter-router, plus 2 ejection traversals.
        assert_eq!(res.energy.link_hops, 12);
        assert_eq!(res.energy.router_traversals, 14);
    }

    #[test]
    fn congestion_heatmap_peaks_at_the_memory_corner() {
        // "there is an unavoidable bottleneck at the memory interface" —
        // the memif router must forward more flits than anyone else.
        let mut m = Mesh::new(small_cfg(RoutingPolicy::MinimalAdaptive));
        for n in 1..16u32 {
            for e in 0..8u64 {
                m.inject_packet(n, &Packet::with_header(0, n as u64 * 8 + e, vec![e]));
            }
        }
        let res = m.run().unwrap();
        let max_idx = res
            .router_forwards
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .unwrap()
            .0;
        assert_eq!(
            max_idx, 0,
            "hotspot must be the memif corner: {:?}",
            res.router_forwards
        );
        // And the far corner is far cooler than the hotspot.
        assert!(res.router_forwards[0] > res.router_forwards[15] * 3);
    }

    #[test]
    fn latency_histogram_counts_every_packet() {
        let mut m = Mesh::new(small_cfg(RoutingPolicy::Xy));
        m.track_latency(10, 100);
        for n in 1..16u32 {
            m.inject_packet(n, &Packet::with_header(0, n as u64, vec![n as u64]));
        }
        let res = m.run().unwrap();
        let h = res.latency.expect("tracking enabled");
        assert_eq!(h.count(), 15);
        // Far corners take longer than adjacent nodes: spread > 0.
        assert!(h.max().unwrap() > h.min().unwrap());
        // Congestion toward one corner: worst latency well above the
        // uncontended 2-flit minimum.
        assert!(h.max().unwrap() >= 6);
    }

    #[test]
    fn mid_run_injection_wakes_at_current_cycle() {
        // Inject, drain, then inject again: the second wave must wake at
        // the mesh's current cycle (not cycle 0, which is in the past once
        // the mesh has advanced) and drain to the same sinks.
        let mut m = Mesh::new(small_cfg(RoutingPolicy::Xy));
        m.collect_sink_words(true);
        m.inject_packet(15, &Packet::with_header(12, 0, vec![0xAAAA]));
        let first = m.run().unwrap();
        assert_eq!(m.sink_words(12), &[0xAAAA]);

        m.inject_packet(15, &Packet::with_header(12, 1, vec![0xBBBB]));
        m.inject_packet(3, &Packet::with_header(12, 2, vec![0xCCCC]));
        let second = m.run().unwrap();
        assert_eq!(second.sink_delivered[12], 3);
        assert!(m.sink_words(12).contains(&0xBBBB));
        assert!(m.sink_words(12).contains(&0xCCCC));
        // Time moved forward, never backward.
        assert!(second.cycles > first.cycles);
    }

    #[test]
    fn injection_after_wave_completes_does_not_deadlock() {
        // Many repeated inject+run rounds on the same node: each round's
        // wake must land at the current cycle even though the node's
        // processed_at stamp equals `now` right after a run.
        let mut m = Mesh::new(small_cfg(RoutingPolicy::MinimalAdaptive));
        let mut last = 0;
        for round in 0..5u32 {
            m.inject_packet(
                15,
                &Packet::with_header(0, round as u64, vec![round as u64]),
            );
            let res = m.run().unwrap();
            assert!(res.cycles > last, "round {round} did not advance");
            last = res.cycles;
            assert_eq!(res.memif_stats[0].flits_accepted, 2 * (round as u64 + 1));
        }
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = || {
            let mut m = Mesh::new(small_cfg(RoutingPolicy::MinimalAdaptive));
            for n in 0..16u32 {
                for e in 0..8u64 {
                    m.inject_packet(
                        n,
                        &Packet::with_header(0, n as u64 * 8 + e, vec![n as u64 * 8 + e]),
                    );
                }
            }
            m.run().unwrap().cycles
        };
        assert_eq!(run(), run());
    }
}
