//! Flits and packets.
//!
//! The paper's transpose analysis uses 64-bit flits, one FFT element per
//! payload flit, and a 64-bit address header per transaction (`S_h`). A
//! simulator flit carries some metadata a real flit would not (destination,
//! readiness stamp) purely for bookkeeping; the *timed* width is 64 bits.

use serde::{Deserialize, Serialize};

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit: carries routing info, pays `t_r` at each router.
    Head,
    /// Interior payload flit.
    Body,
    /// Last flit: releases the wormhole channel behind it.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Does this flit open a wormhole channel?
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Does this flit close a wormhole channel?
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One 64-bit flit in flight.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Flit {
    /// Destination node index.
    pub dest: u32,
    /// Source node index (stamped by the mesh at injection; the NACK path
    /// retransmits to it).
    pub src: u32,
    /// Payload: for transpose traffic, the linear DRAM word address of the
    /// element; for delivery traffic, a data word.
    pub payload: u64,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Packet id (for wormhole bookkeeping and debugging). 64-bit: at
    /// 16k–64k-node scale the per-run packet count overflows a `u32`.
    pub packet: u64,
    /// Earliest cycle this flit may next be forwarded (set on arrival:
    /// `cycle + 1` for body/tail, `cycle + 1 + t_r` for heads).
    pub ready_at: u64,
    /// Poisoned by fault injection (a failed-ECC flag; the payload word is
    /// retained so a retransmission carries clean data).
    pub corrupted: bool,
}

/// A whole packet, pre-flitted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Packet {
    /// Destination node index.
    pub dest: u32,
    /// Packet id.
    pub id: u64,
    /// Payload words, one per payload flit.
    pub payload: Vec<u64>,
    /// Whether a separate header flit is prepended (the paper's `S_h`).
    pub explicit_header: bool,
}

impl Packet {
    /// A packet with a header flit plus one payload flit per word.
    pub fn with_header(dest: u32, id: u64, payload: Vec<u64>) -> Self {
        Packet {
            dest,
            id,
            payload,
            explicit_header: true,
        }
    }

    /// A headerless packet (the head flit carries the first payload word),
    /// used where the paper folds the header into the data ("Flit Size =
    /// FFT element size").
    pub fn headerless(dest: u32, id: u64, payload: Vec<u64>) -> Self {
        assert!(!payload.is_empty(), "headerless packet needs payload");
        Packet {
            dest,
            id,
            payload,
            explicit_header: false,
        }
    }

    /// Total flits on the wire.
    pub fn flit_count(&self) -> usize {
        self.payload.len() + usize::from(self.explicit_header)
    }

    /// Expand into wire flits (with `ready_at` = 0; the mesh stamps it on
    /// injection).
    pub fn flits(&self) -> Vec<Flit> {
        let n = self.flit_count();
        assert!(n > 0, "empty packet");
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let kind = match (i, n) {
                (0, 1) => FlitKind::HeadTail,
                (0, _) => FlitKind::Head,
                (i, n) if i == n - 1 => FlitKind::Tail,
                _ => FlitKind::Body,
            };
            let payload = if self.explicit_header {
                if i == 0 {
                    0
                } else {
                    self.payload[i - 1]
                }
            } else {
                self.payload[i]
            };
            out.push(Flit {
                dest: self.dest,
                src: 0,
                payload,
                kind,
                packet: self.id,
                ready_at: 0,
                corrupted: false,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_flit_element_packet() {
        // The transpose wire format: header + one 64-bit element.
        let p = Packet::with_header(7, 1, vec![0xDEAD]);
        let f = p.flits();
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].kind, FlitKind::Head);
        assert_eq!(f[1].kind, FlitKind::Tail);
        assert_eq!(f[1].payload, 0xDEAD);
        assert!(f.iter().all(|x| x.dest == 7));
    }

    #[test]
    fn single_flit_packet_is_headtail() {
        let p = Packet::headerless(3, 9, vec![42]);
        let f = p.flits();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FlitKind::HeadTail);
        assert!(f[0].kind.is_head() && f[0].kind.is_tail());
    }

    #[test]
    fn long_packet_structure() {
        let p = Packet::with_header(0, 0, (0..32).collect());
        let f = p.flits();
        assert_eq!(f.len(), 33);
        assert_eq!(f[0].kind, FlitKind::Head);
        assert!(f[1..32].iter().all(|x| x.kind == FlitKind::Body));
        assert_eq!(f[32].kind, FlitKind::Tail);
        // Payload words preserved in order.
        assert_eq!(f[1].payload, 0);
        assert_eq!(f[32].payload, 31);
    }

    #[test]
    fn kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
    }
}
