//! ORION-style electronic network energy accounting — the mesh side of the
//! Fig. 5 comparison.
//!
//! The paper: "The number of link repeater stages is calculated based on the
//! ORION router model ... The chip size was fixed to 2 cm × 2 cm in all
//! simulations. Therefore, the link-repeater stages are inversely related to
//! the number of network nodes." We charge each flit a per-router traversal
//! energy (buffer write + read, crossbar, arbitration) and a per-link energy
//! proportional to the physical hop length — which shrinks as the node count
//! grows on the fixed die, exactly the inverse relation the paper notes.

use serde::{Deserialize, Serialize};

/// Raw event counts accumulated by the mesh simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyCounters {
    /// Flits injected at source NIs.
    pub injections: u64,
    /// Flits ejected at sinks / memory interfaces.
    pub ejections: u64,
    /// Inter-router link traversals (flit-hops).
    pub link_hops: u64,
    /// Router datapath traversals (buffer r/w + crossbar + arbiter), which
    /// includes ejection passes.
    pub router_traversals: u64,
}

impl EnergyCounters {
    /// Element-wise accumulate.
    pub fn add(&mut self, other: &EnergyCounters) {
        self.injections += other.injections;
        self.ejections += other.ejections;
        self.link_hops += other.link_hops;
        self.router_traversals += other.router_traversals;
    }
}

/// ORION-flavoured energy parameters (45 nm-era constants).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OrionParams {
    /// Buffer write energy, pJ per bit.
    pub buf_write_pj_per_bit: f64,
    /// Buffer read energy, pJ per bit.
    pub buf_read_pj_per_bit: f64,
    /// Crossbar traversal energy, pJ per bit.
    pub xbar_pj_per_bit: f64,
    /// Arbitration energy, pJ per bit (amortized over the flit).
    pub arb_pj_per_bit: f64,
    /// Repeatered global link energy, pJ per bit per millimetre.
    pub link_pj_per_bit_mm: f64,
    /// Flit width in bits (paper mesh: 32-bit router datapath; Table III
    /// uses 64-bit flits — both supported via this field).
    pub flit_bits: u64,
    /// Die edge in millimetres (fixed 20 mm).
    pub die_mm: f64,
}

impl Default for OrionParams {
    fn default() -> Self {
        OrionParams {
            buf_write_pj_per_bit: 0.12,
            buf_read_pj_per_bit: 0.10,
            xbar_pj_per_bit: 0.10,
            arb_pj_per_bit: 0.02,
            link_pj_per_bit_mm: 0.25,
            flit_bits: 64,
            die_mm: 20.0,
        }
    }
}

impl OrionParams {
    /// Per-flit router traversal energy in pJ.
    pub fn router_pj_per_flit(&self) -> f64 {
        (self.buf_write_pj_per_bit
            + self.buf_read_pj_per_bit
            + self.xbar_pj_per_bit
            + self.arb_pj_per_bit)
            * self.flit_bits as f64
    }

    /// Physical hop length on a fixed die with `nodes` routers: die edge /
    /// mesh side. More nodes → shorter hops → fewer repeater stages.
    pub fn hop_mm(&self, nodes: usize) -> f64 {
        let side = (nodes as f64).sqrt();
        self.die_mm / side
    }

    /// Per-flit link traversal energy in pJ for a mesh of `nodes`.
    pub fn link_pj_per_flit(&self, nodes: usize) -> f64 {
        self.link_pj_per_bit_mm * self.hop_mm(nodes) * self.flit_bits as f64
    }

    /// Total energy in joules for a run's counters on a mesh of `nodes`.
    pub fn total_j(&self, c: &EnergyCounters, nodes: usize) -> f64 {
        let router = self.router_pj_per_flit() * c.router_traversals as f64;
        let link = self.link_pj_per_flit(nodes) * c.link_hops as f64;
        // Injection charges one buffer write.
        let inj = self.buf_write_pj_per_bit * self.flit_bits as f64 * c.injections as f64;
        (router + link + inj) * 1e-12
    }

    /// Energy per *payload* bit in pJ, given the payload bits actually
    /// delivered (headers and hop counts are overhead, which is the point).
    pub fn pj_per_payload_bit(&self, c: &EnergyCounters, nodes: usize, payload_bits: u64) -> f64 {
        assert!(payload_bits > 0, "no payload delivered");
        self.total_j(c, nodes) * 1e12 / payload_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_energy_is_sum_of_stages() {
        let p = OrionParams::default();
        let per_bit = 0.12 + 0.10 + 0.10 + 0.02;
        assert!((p.router_pj_per_flit() - per_bit * 64.0).abs() < 1e-9);
    }

    #[test]
    fn hops_shrink_with_node_count() {
        let p = OrionParams::default();
        assert!((p.hop_mm(16) - 5.0).abs() < 1e-12); // 20 mm / 4
        assert!((p.hop_mm(1024) - 0.625).abs() < 1e-12); // 20 mm / 32
        assert!(p.link_pj_per_flit(1024) < p.link_pj_per_flit(16));
    }

    #[test]
    fn total_energy_scales_with_traffic() {
        let p = OrionParams::default();
        let c1 = EnergyCounters {
            router_traversals: 100,
            link_hops: 100,
            ..Default::default()
        };
        let e1 = p.total_j(&c1, 64);
        let c2 = EnergyCounters {
            router_traversals: 200,
            link_hops: 200,
            ..Default::default()
        };
        let e2 = p.total_j(&c2, 64);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_payload_bit_includes_overhead() {
        // Two flits moved but only one is payload: energy/payload-bit must
        // exceed energy/flit-bit.
        let p = OrionParams::default();
        let c = EnergyCounters {
            injections: 2,
            ejections: 2,
            link_hops: 12,
            router_traversals: 14,
        };
        let per_payload = p.pj_per_payload_bit(&c, 16, 64);
        let per_all_bits = p.total_j(&c, 16) * 1e12 / 128.0;
        assert!(per_payload > per_all_bits);
    }

    #[test]
    fn counters_accumulate() {
        let mut a = EnergyCounters {
            injections: 1,
            ejections: 2,
            link_hops: 3,
            router_traversals: 4,
        };
        a.add(&a.clone());
        assert_eq!(a.link_hops, 6);
        assert_eq!(a.router_traversals, 8);
    }
}
