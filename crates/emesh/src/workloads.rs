//! The paper's traffic patterns, as mesh workload builders.
//!
//! Each builder loads injection queues into a fresh [`Mesh`]; call
//! [`Mesh::run`] to execute. Addressing follows §V-C: a `P × N` matrix of
//! `S_s`-bit samples lives row-major in DRAM before the transpose and
//! column-major after, so the element at (row `r`, col `c`) written back by
//! processor `r` targets linear word address `c · P + r`.

use crate::flit::Packet;
use crate::mesh::{Mesh, MeshConfig};

/// Build the Table III transpose-writeback workload: each of `procs`
/// processors holds one `row_len`-element FFT row and writes it back
/// transposed, one element per 2-flit packet (64-bit header `S_h` + 64-bit
/// element `S_s`), to its nearest memory interface.
pub fn load_transpose(cfg: MeshConfig, procs: usize, row_len: usize) -> Mesh {
    let mut mesh = Mesh::new(cfg);
    let nodes = cfg.topology.nodes();
    assert!(procs <= nodes, "more processors than mesh nodes");
    let mut packet_id = 0u64;
    for r in 0..procs as u32 {
        let memif = cfg.topology.nearest_memif(r);
        for c in 0..row_len as u64 {
            let addr = c * procs as u64 + r as u64;
            mesh.inject_packet(r, &Packet::with_header(memif, packet_id, vec![addr]));
            packet_id = packet_id.wrapping_add(1);
        }
    }
    mesh
}

/// Build a blocked scatter-delivery workload (Model I / Model II, Figs. 8–9):
/// the memory node at the single corner serially injects `k` rounds of
/// `block_words`-word packets to each of the other nodes in round-robin
/// order. Used to measure delivery time against Eq. (21).
pub fn load_scatter(cfg: MeshConfig, block_words: usize, k: usize) -> Mesh {
    let mut mesh = Mesh::new(cfg);
    let memif = cfg.topology.memif_nodes()[0];
    let mut id = 0u64;
    for _round in 0..k {
        for n in 0..cfg.topology.nodes() as u32 {
            if n == memif {
                continue;
            }
            mesh.inject_packet(memif, &Packet::with_header(n, id, vec![0; block_words]));
            id = id.wrapping_add(1);
        }
    }
    mesh
}

/// Build the Fig. 5 energy workload: every node contributes `words` elements
/// to its nearest memory interface (the electronic equivalent of an SCA).
/// Addresses are laid out so each interface receives whole DRAM rows.
pub fn load_gather_energy(cfg: MeshConfig, words: usize) -> Mesh {
    let mut mesh = Mesh::new(cfg);
    let mut id = 0u64;
    for n in 0..cfg.topology.nodes() as u32 {
        let memif = cfg.topology.nearest_memif(n);
        for w in 0..words as u64 {
            // Node-blocked addressing: rows fill from single nodes.
            let addr = n as u64 * words as u64 + w;
            mesh.inject_packet(n, &Packet::with_header(memif, id, vec![addr]));
            id = id.wrapping_add(1);
        }
    }
    mesh
}

/// Closed-form Eq. (21): mesh scatter delivery time in cycles,
/// `P·F + P·⌊√P⌋·t_r`, for `p` processors receiving `f` flits each.
///
/// The truncating `⌊√P⌋` is only meaningful for the paper's square-mesh
/// cases: `p` a perfect square (all nodes receive) or `p + 1` a perfect
/// square (every node but the memory corner receives, e.g. `p = 63` on an
/// 8×8 mesh, where `⌊√63⌋ = 7` is exactly the mesh's mean corner
/// distance). For any other `p` the truncation silently undercounts hops.
///
/// # Panics
/// Panics when neither `p` nor `p + 1` is a perfect square — use
/// [`eq21_delivery_cycles_dims`] with the actual topology dimensions.
pub fn eq21_delivery_cycles(p: u64, f: u64, t_r: u64) -> u64 {
    let s = p.isqrt();
    assert!(
        s * s == p || (p + 1).isqrt().pow(2) == p + 1,
        "Eq. 21 truncated sqrt is only exact when p or p + 1 is a perfect \
         square, got p = {p}; use eq21_delivery_cycles_dims for rectangular \
         or torus geometries"
    );
    p * f + p * s * t_r
}

/// Closed-form Eq. (21) generalized to a `width × height` rectangle (or
/// torus): `P·F + P·H̄·t_r`, where `P = width·height − 1` receivers (every
/// node but the memory corner) and `H̄` is the truncating mean hop distance
/// from the corner interface to all nodes. Per dimension the distance sum
/// is `w(w−1)/2` on a mesh and `⌊w²/4⌋` on a torus (wrap links halve the
/// ring); on a square `W × W` mesh `H̄ = W − 1 = ⌊√(W²−1)⌋`, so this
/// agrees exactly with [`eq21_delivery_cycles`] on the paper's geometries.
pub fn eq21_delivery_cycles_dims(width: u64, height: u64, f: u64, t_r: u64, torus: bool) -> u64 {
    assert!(
        width >= 1 && height >= 1 && width * height >= 2,
        "Eq. 21 needs at least one receiver, got {width}x{height}"
    );
    let dim_sum = |w: u64| if torus { w * w / 4 } else { w * (w - 1) / 2 };
    let mean_hops = (dim_sum(width) * height + dim_sum(height) * width) / (width * height);
    let p = width * height - 1;
    p * f + p * mean_hops * t_r
}

/// Build a uniform-random permutation workload: every node sends up to
/// `packets_per_node` packets of `payload_words` words to destinations
/// drawn from a seeded random permutation stream (no self-traffic, no
/// memif endpoints). The classic NoC characterization load, used to
/// validate that the baseline mesh saturates like a mesh should.
///
/// Returns the loaded mesh **and the number of packets actually
/// injected** — self-pairs and pairs touching a memory interface are
/// skipped, so the injected count is below
/// `nodes × packets_per_node` and callers must not assume otherwise.
pub fn load_uniform_random(
    cfg: MeshConfig,
    packets_per_node: usize,
    payload_words: usize,
    seed: u64,
) -> (Mesh, u64) {
    let mut mesh = Mesh::new(cfg);
    let n = cfg.topology.nodes();
    let memifs = cfg.topology.memif_nodes();
    let mut id = 0u64;
    for round in 0..packets_per_node {
        let perm = sim_core::rng::permutation(n, sim_core::rng::child_seed(seed, round as u64));
        #[allow(clippy::needless_range_loop)] // src is also the injection id
        for src in 0..n {
            let dst = perm[src];
            if dst == src || memifs.contains(&(dst as u32)) || memifs.contains(&(src as u32)) {
                continue;
            }
            mesh.inject_packet(
                src as u32,
                &Packet::with_header(dst as u32, id, vec![round as u64; payload_words]),
            );
            id = id.wrapping_add(1);
        }
    }
    (mesh, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::RoutingPolicy;
    use crate::topology::{MemifPlacement, Topology};

    #[test]
    fn small_transpose_completes_and_covers_all_rows() {
        // 16 procs x 16-element rows = 256 elements = 8 DRAM rows of 32.
        let cfg = MeshConfig::table3(16, 1);
        let mut mesh = load_transpose(cfg, 16, 16);
        let res = mesh.run().unwrap();
        let s = res.memif_stats[0];
        assert_eq!(s.elements, 256);
        assert_eq!(s.rows_written, 8);
        assert_eq!(mesh.memif(0).dram_stats().accesses, 256);
    }

    #[test]
    fn transpose_time_grows_with_tp() {
        let t1 = {
            let mut m = load_transpose(MeshConfig::table3(16, 1), 16, 16);
            m.run().unwrap().cycles
        };
        let t4 = {
            let mut m = load_transpose(MeshConfig::table3(16, 4), 16, 16);
            m.run().unwrap().cycles
        };
        assert!(t4 > t1, "t_p=4 ({t4}) must exceed t_p=1 ({t1})");
        // The port-bound model: per element ~(2 + t_p) cycles.
        let ratio = t4 as f64 / t1 as f64;
        assert!((1.4..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scatter_delivery_close_to_eq21() {
        // 8x8 mesh minus the memory corner: 63 receivers x 16-word blocks.
        let cfg = MeshConfig {
            topology: Topology::square(64, MemifPlacement::SingleCorner),
            t_r: 1,
            policy: RoutingPolicy::Xy,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 24,
            threads: 1,
        };
        let mut mesh = load_scatter(cfg, 16, 1);
        let res = mesh.run().unwrap();
        let delivered: u64 = res.sink_delivered.iter().sum();
        assert_eq!(delivered, 63 * 16);
        // Eq. 21 with P = 63, F = 17 flits (16 + header).
        let predicted = eq21_delivery_cycles(63, 17, 1);
        let actual = res.cycles;
        let err = (actual as f64 - predicted as f64).abs() / predicted as f64;
        assert!(
            err < 0.35,
            "sim {actual} vs Eq.21 {predicted} ({:.0}% off)",
            err * 100.0
        );
    }

    #[test]
    fn gather_energy_workload_counts_hops() {
        let cfg = MeshConfig {
            topology: Topology::square(16, MemifPlacement::FourCorners),
            t_r: 1,
            policy: RoutingPolicy::Xy,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 24,
            threads: 1,
        };
        let mut mesh = load_gather_energy(cfg, 32);
        let res = mesh.run().unwrap();
        let total_elements: u64 = res.memif_stats.iter().map(|s| s.elements).sum();
        assert_eq!(total_elements, 16 * 32);
        assert!(res.energy.link_hops > 0);
        // Four corners balance the load: every interface sees traffic.
        assert!(res.memif_stats.iter().all(|s| s.elements > 0));
    }

    #[test]
    fn uniform_random_delivers_everything_and_is_deterministic() {
        let cfg = MeshConfig {
            topology: Topology::square(16, MemifPlacement::SingleCorner),
            t_r: 1,
            policy: RoutingPolicy::Xy,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 24,
            threads: 1,
        };
        let run = || {
            let (mut mesh, injected) = load_uniform_random(cfg, 8, 3, 42);
            let res = mesh.run().unwrap();
            (res.cycles, res.sink_delivered.iter().sum::<u64>(), injected)
        };
        let (c1, d1, i1) = run();
        let (c2, d2, i2) = run();
        assert_eq!((c1, d1, i1), (c2, d2, i2));
        assert!(d1 > 0);
        // Every injected packet delivers its payload, and the reported
        // injected count reflects the skipped self/memif pairs: below the
        // nominal 16 × 8 but not by the whole memif row.
        assert_eq!(d1, i1 * 3);
        assert!(i1 < 16 * 8 && i1 > 8 * 8, "injected {i1}");
    }

    #[test]
    fn random_traffic_outperforms_hotspot_traffic_per_flit() {
        // Same flit volume, spread destinations vs one corner: the mesh's
        // path diversity should finish the spread load much faster.
        let cfg = MeshConfig {
            topology: Topology::square(16, MemifPlacement::SingleCorner),
            t_r: 1,
            policy: RoutingPolicy::Xy,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 24,
            threads: 1,
        };
        let spread = {
            let (mut m, _) = load_uniform_random(cfg, 16, 1, 7);
            m.run().unwrap()
        };
        let spread_flits: u64 = spread.sink_delivered.iter().sum::<u64>() * 2;
        let hotspot = {
            let mut m = Mesh::new(cfg);
            let per_node = (spread_flits / 2 / 15).max(1);
            for n in 1..16u32 {
                for e in 0..per_node {
                    m.inject_packet(n, &Packet::with_header(0, n as u64 * 1000 + e, vec![e]));
                }
            }
            m.run().unwrap()
        };
        let spread_rate = spread_flits as f64 / spread.cycles as f64;
        let hotspot_flits: u64 = hotspot.memif_stats[0].flits_accepted;
        let hotspot_rate = hotspot_flits as f64 / hotspot.cycles as f64;
        assert!(
            spread_rate > hotspot_rate * 1.5,
            "spread {spread_rate:.2} vs hotspot {hotspot_rate:.2} flits/cycle"
        );
    }

    #[test]
    fn eq21_shape() {
        assert_eq!(eq21_delivery_cycles(256, 1024, 1), 256 * 1024 + 256 * 16);
        // Routing overhead matches payload when F = √P (the Table II story:
        // small packets drown in per-packet routing).
        let small_f = eq21_delivery_cycles(256, 16, 1);
        assert_eq!(small_f, 2 * 256 * 16);
        // Square-minus-corner still accepted with the legacy value.
        assert_eq!(eq21_delivery_cycles(63, 17, 1), 63 * 17 + 63 * 7);
    }

    #[test]
    #[should_panic(expected = "perfect")]
    fn eq21_rejects_non_square_p() {
        // 8×4 = 32 receivers: neither 32 nor 33 is a perfect square, so the
        // truncated ⌊√32⌋ = 5 would silently undercount the real mean
        // corner distance. Pre-fix this returned a wrong-silent number.
        eq21_delivery_cycles(32, 17, 1);
    }

    #[test]
    fn eq21_dims_matches_legacy_on_squares() {
        // 8×8 mesh: P = 63, H̄ = 7 = ⌊√63⌋.
        assert_eq!(
            eq21_delivery_cycles_dims(8, 8, 17, 1, false),
            eq21_delivery_cycles(63, 17, 1)
        );
        // 16×16 mesh: P = 255, H̄ = 15 = ⌊√255⌋.
        assert_eq!(
            eq21_delivery_cycles_dims(16, 16, 1025, 1, false),
            eq21_delivery_cycles(255, 1025, 1)
        );
    }

    #[test]
    fn eq21_dims_rectangle_and_torus() {
        // 8×4 mesh: dim sums 28 and 6, H̄ = (28·4 + 6·8)/32 = 5. The
        // legacy truncated form would also give ⌊√31⌋ = 5 here, but e.g.
        // 16×4 gives H̄ = (120·4 + 6·16)/64 = 9 vs ⌊√63⌋ = 7.
        assert_eq!(
            eq21_delivery_cycles_dims(8, 4, 17, 1, false),
            31 * 17 + 31 * 5
        );
        assert_eq!(
            eq21_delivery_cycles_dims(16, 4, 17, 1, false),
            63 * 17 + 63 * 9
        );
        // Torus wrap links halve the per-dimension distances: 8×8 torus
        // H̄ = (16·8 + 16·8)/64 = 4 (vs 7 on the mesh).
        assert_eq!(
            eq21_delivery_cycles_dims(8, 8, 17, 1, true),
            63 * 17 + 63 * 4
        );
    }

    #[test]
    fn eq21_dims_mean_matches_topology_mean() {
        // The closed-form truncating mean equals the simulator topology's
        // exact mean corner distance, truncated, on every tested geometry.
        for (w, h, torus) in [
            (8usize, 8usize, false),
            (8, 4, false),
            (5, 3, false),
            (8, 8, true),
            (4, 6, true),
            (5, 5, true),
        ] {
            let base = Topology::rect(w, h, MemifPlacement::SingleCorner).with_torus(torus);
            let exact: u64 = (0..base.nodes() as u32)
                .map(|n| base.hops(0, n) as u64)
                .sum();
            let expect = exact / (w * h) as u64;
            let p = (w * h - 1) as u64;
            // Extract the hop term: (value − P·F) / (P·t_r) with F = 0.
            let got = eq21_delivery_cycles_dims(w as u64, h as u64, 0, 1, torus) / p;
            assert_eq!(got, expect, "{w}x{h} torus={torus}");
        }
    }
}
