//! Deterministic epoch-parallel execution of the mesh cycle loop.
//!
//! [`super::Mesh::run_parallel`] replays the sequential scheduler's exact
//! semantics across an [`EpochPool`]: every cycle (= epoch, the 1-cycle
//! link latency being the conservative lookahead bound) the due wakeup
//! bucket is split into *waves* of mutually independent routers, each wave
//! is fanned across the pool, and all side effects that the sequential
//! scheduler applies in service order are either router-local or deferred
//! into per-entry [`EntryFx`] buffers (the double-buffered exchange) and
//! committed in service order at the end of the cycle. The result is
//! bit-identical to [`super::Mesh::run_serial`] — the golden transpose
//! tests and `tests/parallel_identity.rs` enforce it.
//!
//! # Why waves of radius-1-independent routers suffice
//!
//! Servicing router `r` at cycle `c` touches, besides `r`'s own state
//! (router, injection queue, stamps, memory interface, sink, forward
//! counter — all indexed by `r`):
//!
//! * the input port of each candidate downstream neighbour *facing `r`*
//!   (`inputs[out.opposite()]`): occupancy reads for the adaptive route
//!   choice and the space check, and the committed `push_back`;
//! * nothing else of any other router.
//!
//! Two distinct routers at Manhattan distance ≥ 2 therefore touch
//! *disjoint* state: they may share a neighbour `n`, but each only
//! accesses the port of `n` on its own side, and `n` itself (the only
//! writer of `n`'s remaining state) is adjacent to both and thus excluded
//! from their wave. So a wave may run in parallel iff no two of its
//! routers are equal or von-Neumann-adjacent; conflicting pairs must keep
//! their sequential relative order. [`WavePlanner`] guarantees both with a
//! greedy earliest-wave assignment scanned in service order: an entry
//! lands one wave after the latest already-planned entry within its
//! radius, so conflicting entries are ordered exactly as the sequential
//! drain ordered them, and independent entries merely race — commutative
//! because their footprints are disjoint and their non-local effects are
//! deferred.
//!
//! # Why deferring wakes to the end of the cycle is exact
//!
//! The sequential drain interleaves `wake()` calls with the per-entry
//! `next_wake` bucket bookkeeping; the parallel path runs all bookkeeping
//! first, then services, then replays every emitted wake in service order.
//! No wake ever targets the cycle being drained (everything re-arms at
//! `≥ c + 1`), so the bucket under drain is unaffected. The replayed wake
//! *sequence* is the sequential one; only the `next_wake` dedup snapshots
//! differ, and a push is dropped by dedup only when `next_wake[r]` already
//! equals the target cycle — which (invariantly) means an entry for that
//! exact `(router, cycle)` pair is already pending. Hence the two
//! executions' wheels can differ only in *duplicate* entries for pairs
//! already present earlier in the same bucket. Duplicates pop as no-ops
//! (`processed_at` dedup) and never precede the first occurrence, so the
//! per-cycle first-occurrence service order — the thing the golden tests
//! pin — is identical, and by induction over cycles so is every simulator
//! observable.
//!
//! Fault injection, telemetry, and latency tracking observe *processing
//! order* (a shared RNG stream, service-order taps); their runs stay on
//! the sequential path — [`super::Mesh::run`] dispatches here only when
//! none are attached.

use std::cell::UnsafeCell;
use std::collections::VecDeque;

use sim_core::parallel::{chunk_range, EpochPool};

use super::{m_free_at, wake_raw, Mesh, MeshConfig, MeshError, MeshRunResult, WakeWheel, NEVER};
use crate::flit::{Flit, FlitKind};
use crate::memif::MemIf;
use crate::router::{Port, Router, NUM_PORTS};
use crate::topology::Topology;

/// Dispatch threshold: cycles servicing fewer than `threads ×` this many
/// routers run inline on the master (identical results — the pool only
/// trades wall clock), keeping the long drain tail of corner-bound
/// workloads off the barrier overhead.
const DISPATCH_GRAIN: usize = 4;

/// Interior-mutable cell that the wave scheduler may touch from several
/// threads. All access goes through raw-pointer place projections; the
/// planner's independence guarantee (see module docs) is what makes the
/// disjointness real.
#[repr(transparent)]
struct SyncCell<T>(UnsafeCell<T>);

// Safety: SyncCell only hands out raw pointers; every dereference site is
// inside a wave whose entries have pairwise-disjoint footprints.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    fn get(&self) -> *mut T {
        self.0.get()
    }

    /// View a uniquely-borrowed slice as a slice of cells (the inverse
    /// projection of `Cell::as_slice_of_cells`; sound because the unique
    /// borrow is held for the cells' whole lifetime).
    fn from_mut(v: &mut [T]) -> &[SyncCell<T>] {
        let ptr = v as *mut [T] as *const [SyncCell<T>];
        unsafe { &*ptr }
    }
}

/// Deferred side effects of servicing one router for one cycle: everything
/// the sequential scheduler applies to *shared* scheduler state, buffered
/// here and committed in service order. This is the epoch boundary
/// exchange — each entry writes its own buffer during the wave and the
/// master drains them after the barrier.
#[derive(Default)]
struct EntryFx {
    /// Emitted wakeups `(router, cycle)` in emission order.
    wakes: Vec<(u32, u64)>,
    /// Flits injected (`pending_inject` −, `in_flight` +, energy).
    injected: u64,
    /// Flits ejected (`in_flight` −, energy).
    ejected: u64,
    /// Router datapath traversals (energy).
    traversals: u64,
    /// Inter-router link hops (energy).
    hops: u64,
}

impl EntryFx {
    fn reset(&mut self) {
        self.wakes.clear();
        self.injected = 0;
        self.ejected = 0;
        self.traversals = 0;
        self.hops = 0;
    }

    fn wake(&mut self, router: u32, cycle: u64) {
        self.wakes.push((router, cycle));
    }
}

/// Shared, wave-scheduler-facing view of the per-router mesh state. The
/// scheduler fields (wheel, `next_wake`, `processed_at`, global counters)
/// stay behind the master's exclusive borrows.
struct ParView<'a> {
    cfg: &'a MeshConfig,
    routers: &'a [SyncCell<Router>],
    inject: &'a [SyncCell<VecDeque<Flit>>],
    last_inject: &'a [SyncCell<u64>],
    last_pop: &'a [SyncCell<[u64; NUM_PORTS]>],
    memif_slot: &'a [Option<u32>],
    memifs: &'a [SyncCell<MemIf>],
    sink_delivered: &'a [SyncCell<u64>],
    sink_last_cycle: &'a [SyncCell<u64>],
    sink_words: &'a [SyncCell<Vec<u64>>],
    router_forwards: &'a [SyncCell<u64>],
    collect_sink_words: bool,
}

impl ParView<'_> {
    /// Mirror of [`Mesh::neighbor`].
    fn neighbor(&self, node: u32, port: Port) -> u32 {
        let c = self.cfg.topology.coord(node);
        let (x, y) = match port {
            Port::North => (c.x, c.y - 1),
            Port::South => (c.x, c.y + 1),
            Port::East => (c.x + 1, c.y),
            Port::West => (c.x - 1, c.y),
            Port::Local => unreachable!("local has no neighbor"),
        };
        self.cfg.topology.id(crate::topology::NodeCoord { x, y })
    }

    /// Occupancy of neighbour `n`'s input port `q` — a narrow projection
    /// that never materializes a reference to the whole neighbour router.
    ///
    /// Safety: `q` faces the router under service, so no wave-mate touches
    /// it (module docs).
    fn neighbor_occupancy(&self, n: u32, q: usize) -> usize {
        unsafe { (*self.routers[n as usize].get()).inputs[q].buf.len() }
    }

    /// Mirror of [`Mesh::route`]; the adaptive arm reads the candidate
    /// neighbours' facing ports through [`ParView::neighbor_occupancy`].
    fn route(&self, node: u32, dest: u32) -> Port {
        if node == dest {
            return Port::Local;
        }
        let c = self.cfg.topology.coord(node);
        let d = self.cfg.topology.coord(dest);
        let want_x = if d.x < c.x {
            Some(Port::West)
        } else if d.x > c.x {
            Some(Port::East)
        } else {
            None
        };
        let want_y = if d.y < c.y {
            Some(Port::North)
        } else if d.y > c.y {
            Some(Port::South)
        } else {
            None
        };
        match (want_x, want_y, self.cfg.policy) {
            (Some(x), None, _) => x,
            (None, Some(y), _) => y,
            (Some(x), Some(_), super::RoutingPolicy::Xy) => x,
            (Some(x), Some(y), super::RoutingPolicy::MinimalAdaptive) => {
                if x == Port::West {
                    return x;
                }
                let nx = self.neighbor(node, x);
                let ny = self.neighbor(node, y);
                let ox = self.neighbor_occupancy(nx, x.opposite() as usize);
                let oy = self.neighbor_occupancy(ny, y.opposite() as usize);
                if oy < ox {
                    y
                } else {
                    x
                }
            }
            (None, None, _) => unreachable!("handled by node == dest"),
        }
    }
}

/// Mirror of [`Mesh::process`] for the fault-free, uninstrumented
/// configuration the parallel path is restricted to: injection then port
/// service, with all shared-state effects deferred into `fx`.
fn service_router(view: &ParView<'_>, r: u32, c: u64, fx: &mut EntryFx) {
    try_inject(view, r, c, fx);
    for k in 0..NUM_PORTS {
        let p = (k + c as usize) % NUM_PORTS;
        try_forward(view, r, p, c, fx);
    }
}

/// Mirror of [`Mesh::try_inject`] (latency tracking is never attached
/// here).
fn try_inject(view: &ParView<'_>, r: u32, c: u64, fx: &mut EntryFx) {
    let ri = r as usize;
    // Safety: entry `r` owns all `r`-indexed state for its wave.
    let inject = unsafe { &mut *view.inject[ri].get() };
    if inject.is_empty() {
        return;
    }
    let last_inject = unsafe { &mut *view.last_inject[ri].get() };
    if *last_inject == c {
        fx.wake(r, c + 1);
        return;
    }
    let router = unsafe { &mut *view.routers[ri].get() };
    if !router.has_space_depth(Port::Local as usize, view.cfg.buffer_depth) {
        return;
    }
    let mut flit = inject.pop_front().expect("non-empty");
    flit.src = r;
    flit.ready_at = c + 1 + if flit.kind.is_head() { view.cfg.t_r } else { 0 };
    let ready = flit.ready_at;
    router.inputs[Port::Local as usize].buf.push_back(flit);
    *last_inject = c;
    fx.injected += 1;
    fx.wake(r, ready);
    if !inject.is_empty() {
        fx.wake(r, c + 1);
    }
}

/// Mirror of [`Mesh::try_forward`] minus the fault-layer arms (the
/// dispatch precondition makes them statically dead here).
fn try_forward(view: &ParView<'_>, r: u32, p: usize, c: u64, fx: &mut EntryFx) {
    let ri = r as usize;
    let popped_at = unsafe { (*view.last_pop[ri].get())[p] };
    if popped_at == c {
        return;
    }
    // Safety: own-router state; wave-mates are non-adjacent and never
    // reference this router at all.
    let router = unsafe { &mut *view.routers[ri].get() };
    let Some(&head) = router.inputs[p].buf.front() else {
        return;
    };
    if head.ready_at > c {
        fx.wake(r, head.ready_at);
        return;
    }
    let out = match router.inputs[p].route {
        Some(o) => Port::from_index(o as usize),
        None => {
            debug_assert!(head.kind.is_head(), "body flit without a route");
            view.route(r, head.dest)
        }
    };
    let o = out as usize;
    if !router.output_available(o, p, c) {
        if router.outputs[o].last_used == c {
            fx.wake(r, c + 1);
        }
        return;
    }

    if out == Port::Local {
        eject(view, router, r, p, c, fx);
        return;
    }

    let n = view.neighbor(r, out);
    let q = out.opposite() as usize;
    if view.neighbor_occupancy(n, q) >= view.cfg.buffer_depth {
        // Woken when (n, q) pops.
        return;
    }

    // Commit the move.
    let mut flit = router.inputs[p].buf.pop_front().expect("head");
    after_pop(view, router, r, p, c, fx);
    flit.ready_at = c + 1 + if flit.kind.is_head() { view.cfg.t_r } else { 0 };
    let ready = flit.ready_at;
    update_channel_state(router, r, p, o, &flit, c, fx);
    // Safety: narrow projection of the facing port only (module docs).
    unsafe {
        (*view.routers[n as usize].get()).inputs[q]
            .buf
            .push_back(flit);
    }
    fx.traversals += 1;
    fx.hops += 1;
    unsafe {
        *view.router_forwards[ri].get() += 1;
    }
    fx.wake(n, ready);
}

/// Mirror of [`Mesh::eject`]; corruption is impossible without a fault
/// layer, so the NACK arms are dead.
fn eject(view: &ParView<'_>, router: &mut Router, r: u32, p: usize, c: u64, fx: &mut EntryFx) {
    let ri = r as usize;
    if let Some(slot) = view.memif_slot[ri] {
        // Safety: a memif belongs to exactly one router.
        let m = unsafe { &mut *view.memifs[slot as usize].get() };
        if !m.can_accept(c) {
            fx.wake(r, m_free_at(m, c));
            return;
        }
        let flit = router.inputs[p].buf.pop_front().expect("head");
        after_pop(view, router, r, p, c, fx);
        update_channel_state(router, r, p, Port::Local as usize, &flit, c, fx);
        debug_assert!(!flit.corrupted, "corruption implies a fault layer");
        m.accept(c, &flit);
        fx.ejected += 1;
        fx.traversals += 1;
        unsafe {
            *view.router_forwards[ri].get() += 1;
        }
    } else {
        let flit = router.inputs[p].buf.pop_front().expect("head");
        after_pop(view, router, r, p, c, fx);
        update_channel_state(router, r, p, Port::Local as usize, &flit, c, fx);
        let is_payload = !matches!(flit.kind, FlitKind::Head);
        debug_assert!(!flit.corrupted, "corruption implies a fault layer");
        if is_payload {
            // Safety: sink state is own-router-indexed.
            unsafe {
                *view.sink_delivered[ri].get() += 1;
                *view.sink_last_cycle[ri].get() = c;
                if view.collect_sink_words {
                    (*view.sink_words[ri].get()).push(flit.payload);
                }
            }
        }
        fx.ejected += 1;
        fx.traversals += 1;
        unsafe {
            *view.router_forwards[ri].get() += 1;
        }
    }
}

/// Mirror of [`Mesh::after_pop`].
fn after_pop(view: &ParView<'_>, router: &Router, r: u32, p: usize, c: u64, fx: &mut EntryFx) {
    let ri = r as usize;
    unsafe {
        (*view.last_pop[ri].get())[p] = c;
    }
    if !router.inputs[p].buf.is_empty() {
        fx.wake(r, c + 1);
    }
    if p == Port::Local as usize {
        let more = unsafe { !(*view.inject[ri].get()).is_empty() };
        if more {
            fx.wake(r, c + 1);
        }
    } else {
        fx.wake(view.neighbor(r, Port::from_index(p)), c + 1);
    }
}

/// Mirror of [`Mesh::update_channel_state`].
fn update_channel_state(
    router: &mut Router,
    r: u32,
    p: usize,
    o: usize,
    flit: &Flit,
    c: u64,
    fx: &mut EntryFx,
) {
    router.outputs[o].last_used = c;
    if flit.kind.is_head() {
        router.outputs[o].owner = Some(p as u8);
        router.inputs[p].route = Some(o as u8);
    }
    if flit.kind.is_tail() {
        router.outputs[o].owner = None;
        router.inputs[p].route = None;
        fx.wake(r, c + 1);
    }
}

/// Greedy earliest-wave colouring of a cycle's service list under the
/// radius-1 conflict relation, preserving service order between
/// conflicting entries (module docs). Scratch arrays are cycle-tagged so
/// nothing is cleared between cycles.
struct WavePlanner {
    /// Wave number (1-based) assigned to a node this cycle.
    wave_of: Vec<u32>,
    /// Cycle `wave_of` is valid for (`NEVER` = stale).
    tag: Vec<u64>,
    /// Waves of indices into the service list; `used` are live.
    waves: Vec<Vec<u32>>,
    used: usize,
}

impl WavePlanner {
    fn new(n: usize) -> Self {
        WavePlanner {
            wave_of: vec![0; n],
            tag: vec![NEVER; n],
            waves: Vec::new(),
            used: 0,
        }
    }

    fn plan(&mut self, topo: &Topology, service: &[u32], c: u64) -> &[Vec<u32>] {
        for w in &mut self.waves[..self.used] {
            w.clear();
        }
        self.used = 0;
        for (i, &r) in service.iter().enumerate() {
            let ri = r as usize;
            debug_assert!(self.tag[ri] != c, "duplicate service entry");
            let cd = topo.coord(r);
            let mut nbrs = [0u32; 4];
            let mut nn = 0;
            if cd.y > 0 {
                nbrs[nn] = r - topo.width;
                nn += 1;
            }
            if cd.y + 1 < topo.height {
                nbrs[nn] = r + topo.width;
                nn += 1;
            }
            if cd.x > 0 {
                nbrs[nn] = r - 1;
                nn += 1;
            }
            if cd.x + 1 < topo.width {
                nbrs[nn] = r + 1;
                nn += 1;
            }
            let mut latest = 0u32;
            for &id in &nbrs[..nn] {
                let id = id as usize;
                if self.tag[id] == c {
                    latest = latest.max(self.wave_of[id]);
                }
            }
            let w = latest + 1;
            self.wave_of[ri] = w;
            self.tag[ri] = c;
            let wi = (w - 1) as usize;
            debug_assert!(wi <= self.waves.len(), "wave index gap");
            if wi >= self.waves.len() {
                self.waves.push(Vec::new());
            }
            self.used = self.used.max(wi + 1);
            self.waves[wi].push(i as u32);
        }
        &self.waves[..self.used]
    }
}

impl Mesh {
    /// The deterministic epoch-parallel cycle loop. Preconditions (checked
    /// by [`Mesh::run`]): no fault layer, no telemetry, no latency
    /// tracking.
    pub(super) fn run_parallel(&mut self) -> Result<MeshRunResult, MeshError> {
        debug_assert!(
            self.faults.is_none() && self.telemetry.is_none() && self.latency.is_none(),
            "parallel path precondition"
        );
        let n = self.cfg.topology.nodes();
        let pool = EpochPool::new(self.cfg.threads);
        let threads = pool.threads();
        let mut planner = WavePlanner::new(n);
        let mut service: Vec<u32> = Vec::new();
        let mut fx: Vec<EntryFx> = Vec::new();
        {
            // Split borrows: the view covers per-router state (shared with
            // workers through SyncCell), the scheduler fields stay under
            // the master's exclusive borrows.
            let Mesh {
                cfg,
                routers,
                inject,
                last_inject,
                last_pop,
                memif_slot,
                memifs,
                sink_delivered,
                sink_last_cycle,
                sink_words,
                collect_sink_words,
                wheel,
                processed_at,
                next_wake,
                in_flight,
                pending_inject,
                energy,
                router_forwards,
                now,
                ..
            } = self;
            let cfg: &MeshConfig = cfg;
            let view = ParView {
                cfg,
                routers: SyncCell::from_mut(routers),
                inject: SyncCell::from_mut(inject),
                last_inject: SyncCell::from_mut(last_inject),
                last_pop: SyncCell::from_mut(last_pop),
                memif_slot,
                memifs: SyncCell::from_mut(memifs),
                sink_delivered: SyncCell::from_mut(sink_delivered),
                sink_last_cycle: SyncCell::from_mut(sink_last_cycle),
                sink_words: SyncCell::from_mut(sink_words),
                router_forwards: SyncCell::from_mut(router_forwards),
                collect_sink_words: *collect_sink_words,
            };
            while let Some(c) = wheel.next_cycle() {
                if c > cfg.max_cycles {
                    return Err(MeshError::CycleLimit {
                        limit: cfg.max_cycles,
                    });
                }
                debug_assert!(c >= *now, "wakeup in the past");
                *now = c;
                wheel.advance_to(c);
                let b = (c % WakeWheel::WINDOW) as usize;
                let mut ids = std::mem::take(&mut wheel.buckets[b]);
                wheel.bucket_pending -= ids.len() as u64;
                // Bookkeeping prefix of the sequential drain, in bucket
                // order: next_wake clears and processed_at dedup. Safe to
                // hoist before servicing — nothing in a cycle's processing
                // reads either array (module docs).
                service.clear();
                for &r in &ids {
                    let ri = r as usize;
                    if next_wake[ri] == c {
                        next_wake[ri] = NEVER;
                    }
                    if processed_at[ri] == c {
                        continue;
                    }
                    processed_at[ri] = c;
                    service.push(r);
                }
                ids.clear();
                wheel.buckets[b] = ids;
                if service.is_empty() {
                    continue;
                }
                if fx.len() < service.len() {
                    fx.resize_with(service.len(), EntryFx::default);
                }
                for f in &mut fx[..service.len()] {
                    f.reset();
                }
                if threads > 1 && service.len() >= threads * DISPATCH_GRAIN {
                    let fx_cells = SyncCell::from_mut(&mut fx[..service.len()]);
                    let service = &service;
                    for wave in planner.plan(&cfg.topology, service, c) {
                        if wave.len() < threads * 2 {
                            // Pool overhead beats the win; same results
                            // either way.
                            for &wi in wave {
                                let i = wi as usize;
                                let f = unsafe { &mut *fx_cells[i].get() };
                                service_router(&view, service[i], c, f);
                            }
                        } else {
                            pool.run(&|part| {
                                for k in chunk_range(wave.len(), threads, part) {
                                    let i = wave[k] as usize;
                                    // Safety: wave entries are pairwise
                                    // independent and each `i` is unique,
                                    // so all cell accesses are disjoint.
                                    let f = unsafe { &mut *fx_cells[i].get() };
                                    service_router(&view, service[i], c, f);
                                }
                            });
                        }
                    }
                } else {
                    for (i, &r) in service.iter().enumerate() {
                        service_router(&view, r, c, &mut fx[i]);
                    }
                }
                // Commit deferred effects in service (= sequential) order.
                for (i, _) in service.iter().enumerate() {
                    let f = &fx[i];
                    *pending_inject -= f.injected;
                    *in_flight += f.injected;
                    *in_flight -= f.ejected;
                    energy.injections += f.injected;
                    energy.ejections += f.ejected;
                    energy.router_traversals += f.traversals;
                    energy.link_hops += f.hops;
                    for &(wr, wc) in &f.wakes {
                        debug_assert!(wc > c, "same-cycle wake");
                        wake_raw(wheel, next_wake, wr, wc);
                    }
                }
            }
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MemifPlacement;

    #[test]
    fn waves_are_independent_sets_in_service_order() {
        let topo = Topology::square(16, MemifPlacement::SingleCorner);
        let mut planner = WavePlanner::new(16);
        // A service list with adjacent runs: 0,1 adjacent; 4 adjacent to 0;
        // 10 isolated.
        let service = [0u32, 1, 4, 10, 5];
        let waves = planner.plan(&topo, &service, 7);
        // Wave 1: 0 (idx 0), 10 (idx 3). Wave 2: 1 (idx 1), 4 (idx 2).
        // Wave 3: 5 (idx 4, adjacent to both 1 and 4).
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0], vec![0, 3]);
        assert_eq!(waves[1], vec![1, 2]);
        assert_eq!(waves[2], vec![4]);
        // Conflicting pairs keep service order across waves.
        let hops = |a: u32, b: u32| topo.hops(service[a as usize], service[b as usize]);
        for (wi, wave) in waves.iter().enumerate() {
            for (a, &ia) in wave.iter().enumerate() {
                for &ib in &wave[a + 1..] {
                    assert!(hops(ia, ib) >= 2, "wave {wi}: {ia} vs {ib}");
                }
            }
        }
    }

    #[test]
    fn planner_scratch_survives_cycle_reuse() {
        let topo = Topology::square(16, MemifPlacement::SingleCorner);
        let mut planner = WavePlanner::new(16);
        let first = planner.plan(&topo, &[0, 1], 3).to_vec();
        // Same nodes, later cycle: stamps from cycle 3 must be stale.
        let second = planner.plan(&topo, &[1, 0], 9).to_vec();
        assert_eq!(first, vec![vec![0], vec![1]]);
        assert_eq!(second, vec![vec![0], vec![1]]);
    }
}
