//! Deterministic epoch-parallel execution of the mesh cycle loop: the wave
//! planner, the deferred-effect buffer, and the fan-out across an
//! [`EpochPool`].
//!
//! [`super::Mesh::run_core`] (see `mesh/exec.rs`) replays the sequential
//! scheduler's exact semantics in parallel: every dense cycle (= epoch, the
//! 1-cycle link latency being the conservative lookahead bound) the due
//! wakeup bucket is split into *waves* of mutually independent routers, the
//! whole wave sequence is fanned across the pool in a **single** epoch
//! dispatch with lock-free [`Arrivals`] hand-offs between waves, and every
//! side effect the sequential scheduler applies to shared scheduler state
//! in service order is deferred into per-entry [`EntryFx`] buffers and
//! replayed — through the very same [`MasterFx`] sink the sequential path
//! executes against — in service order after the cycle. The result is
//! bit-identical to a single-threaded run at *any* configuration: faults,
//! telemetry and latency tracking included. The golden transpose tests,
//! `tests/parallel_identity.rs` and the workspace parallel proptests
//! enforce it.
//!
//! # Why waves of radius-1-independent routers suffice
//!
//! Servicing router `r` at cycle `c` touches, besides `r`'s own state
//! (slab rows, injection queue, stamps, memory interface, sink, forward
//! counter, fault trial counters and outage windows — all indexed by `r`):
//!
//! * the input port of each candidate downstream neighbour *facing `r`*
//!   (`(n, out.opposite())`): occupancy reads for the adaptive route choice
//!   and the space check, and the committed `push_back`;
//! * nothing else of any other router.
//!
//! Two distinct routers at Manhattan distance ≥ 2 therefore touch
//! *disjoint* state: they may share a neighbour `n`, but each only accesses
//! the port of `n` on its own side, and `n` itself (the only writer of
//! `n`'s remaining state) is adjacent to both and thus excluded from their
//! wave. So a wave may run in parallel iff no two of its routers are equal
//! or von-Neumann-adjacent; conflicting pairs must keep their sequential
//! relative order. [`WavePlanner`] guarantees both with a greedy
//! earliest-wave assignment scanned in service order: an entry lands one
//! wave after the latest already-planned entry within its radius, so
//! conflicting entries are ordered exactly as the sequential drain ordered
//! them, and independent entries merely race — commutative because their
//! footprints are disjoint and their non-local effects are deferred.
//!
//! The fault layer keeps this footprint honest: each Bernoulli site's trial
//! counter is owned by the serviced router (corruption: per router; link
//! outage: per *directed* link, keyed by the sender), the kill schedule is
//! read-only, and [`sim_core::faults::hash_bernoulli`] makes every trial a
//! pure function of `(seed, site, trial)` — so fault outcomes cannot
//! observe wave interleaving at all.
//!
//! # Why deferring wakes to the end of the cycle is exact
//!
//! The sequential drain interleaves `wake()` calls with the per-entry
//! `next_wake` bucket bookkeeping; the parallel path runs all bookkeeping
//! first, then services, then replays every emitted wake in service order.
//! No wake ever targets the cycle being drained (everything re-arms at
//! `≥ c + 1`), so the bucket under drain is unaffected. The replayed wake
//! *sequence* is the sequential one; only the `next_wake` dedup snapshots
//! differ, and a push is dropped by dedup only when `next_wake[r]` already
//! equals the target cycle — which (invariantly) means an entry for that
//! exact `(router, cycle)` pair is already pending. Hence the two
//! executions' wheels can differ only in *duplicate* entries for pairs
//! already present earlier in the same bucket. Duplicates pop as no-ops
//! (`processed_at` dedup) and never precede the first occurrence, so the
//! per-cycle first-occurrence service order — the thing the golden tests
//! pin — is identical, and by induction over cycles so is every simulator
//! observable.
//!
//! # Why the remaining deferred effects commute within an entry
//!
//! [`EntryFx`] holds scalar counters (energy, conservation, fault stats),
//! the wake list, and at most **one** of each order-sensitive record per
//! entry-cycle: one occupancy sample (taken at service start), one
//! head-injection timestamp (≤ 1 injection per router-cycle, enforced by
//! `last_inject`), one tail-ejection timestamp (≤ 1 ejection per
//! router-cycle, enforced by the local output channel's `last_used` stamp)
//! and one NACK (ejection-bound likewise). Counters commute; the ≤ 1
//! records cannot interleave *within* an entry, so replaying buffers whole,
//! in service order, reproduces the sequential effect stream exactly.
//!
//! [`MasterFx`]: super::exec::MasterFx
//! [`Arrivals`]: sim_core::parallel::Arrivals

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use sim_core::parallel::{chunk_range, Arrivals, EpochPool, SyncCell};

use super::exec::{service_entry, CoreView, FxSink};
use super::NEVER;
use crate::topology::Topology;

/// Dispatch threshold: cycles servicing fewer than `threads ×` this many
/// routers run inline on the master through the direct sink (identical
/// results — the pool only trades wall clock), keeping the long drain tail
/// of corner-bound workloads off planning and barrier overhead entirely.
pub(super) const DISPATCH_GRAIN: usize = 4;

/// A deferred NACK: everything [`super::exec::FxSink::nack`] needs to
/// account and (budget permitting) schedule the retransmission at commit.
#[derive(Debug, Clone, Copy)]
pub(super) struct NackFx {
    pub router: u32,
    pub src: u32,
    pub packet: u64,
    pub payload: u64,
    pub cycle: u64,
}

/// Deferred side effects of servicing one router for one cycle: everything
/// the sequential scheduler applies to *shared* scheduler state, buffered
/// here during the wave and replayed in service order by the master through
/// [`super::exec::MasterFx`]. See the module docs for why one buffer per
/// entry-cycle loses no ordering.
#[derive(Debug, Default)]
pub(super) struct EntryFx {
    /// Emitted wakeups `(router, cycle)` in emission order.
    pub wakes: Vec<(u32, u64)>,
    /// Flits injected (`pending_inject` −, `in_flight` +, energy).
    pub injected: u64,
    /// Flits ejected (`in_flight` −, energy).
    pub ejected: u64,
    /// Router datapath traversals (energy).
    pub traversals: u64,
    /// Inter-router link hops (energy).
    pub hops: u64,
    /// Payload flits poisoned in flight.
    pub corrupted: u64,
    /// Transient link outages fired.
    pub link_down_events: u64,
    /// Dead-neighbour probes.
    pub probes: u64,
    /// Elements lost for good.
    pub dropped_elements: u64,
    /// Pre-service occupancy sample (telemetry attached).
    pub occ: Option<u64>,
    /// Head-flit injection timestamp (latency attached; ≤ 1 per cycle).
    pub head_injected: Option<(u64, u64)>,
    /// Tail-flit ejection timestamp (latency attached; ≤ 1 per cycle).
    pub tail_ejected: Option<(u64, u64)>,
    /// Poisoned-element NACK at a memory interface (≤ 1 per cycle).
    pub nack: Option<NackFx>,
}

impl EntryFx {
    pub(super) fn reset(&mut self) {
        self.wakes.clear();
        self.injected = 0;
        self.ejected = 0;
        self.traversals = 0;
        self.hops = 0;
        self.corrupted = 0;
        self.link_down_events = 0;
        self.probes = 0;
        self.dropped_elements = 0;
        self.occ = None;
        self.head_injected = None;
        self.tail_ejected = None;
        self.nack = None;
    }
}

impl FxSink for EntryFx {
    #[inline]
    fn wake(&mut self, router: u32, cycle: u64) {
        self.wakes.push((router, cycle));
    }

    #[inline]
    fn injected(&mut self) {
        self.injected += 1;
    }

    #[inline]
    fn ejected(&mut self) {
        self.ejected += 1;
    }

    #[inline]
    fn traversal(&mut self) {
        self.traversals += 1;
    }

    #[inline]
    fn hop(&mut self) {
        self.hops += 1;
    }

    #[inline]
    fn occ_sample(&mut self, occ: u64) {
        debug_assert!(self.occ.is_none(), "one occupancy sample per entry");
        self.occ = Some(occ);
    }

    #[inline]
    fn head_injected(&mut self, packet: u64, cycle: u64) {
        debug_assert!(self.head_injected.is_none(), "one injection per cycle");
        self.head_injected = Some((packet, cycle));
    }

    #[inline]
    fn tail_ejected(&mut self, packet: u64, cycle: u64) {
        debug_assert!(self.tail_ejected.is_none(), "one ejection per cycle");
        self.tail_ejected = Some((packet, cycle));
    }

    #[inline]
    fn corrupted(&mut self) {
        self.corrupted += 1;
    }

    #[inline]
    fn link_down_event(&mut self) {
        self.link_down_events += 1;
    }

    #[inline]
    fn probe(&mut self) {
        self.probes += 1;
    }

    #[inline]
    fn dropped_element(&mut self) {
        self.dropped_elements += 1;
    }

    #[inline]
    fn nack(&mut self, router: u32, src: u32, packet: u64, payload: u64, cycle: u64) {
        debug_assert!(self.nack.is_none(), "one NACK per entry-cycle");
        self.nack = Some(NackFx {
            router,
            src,
            packet,
            payload,
            cycle,
        });
    }
}

/// Greedy earliest-wave colouring of a cycle's service list under the
/// radius-1 conflict relation, preserving service order between
/// conflicting entries (module docs). Scratch arrays are cycle-tagged so
/// nothing is cleared between cycles.
pub(super) struct WavePlanner {
    /// Wave number (1-based) assigned to a node this cycle.
    wave_of: Vec<u32>,
    /// Cycle `wave_of` is valid for (`NEVER` = stale).
    tag: Vec<u64>,
    /// Waves of indices into the service list; `used` are live.
    waves: Vec<Vec<u32>>,
    used: usize,
}

impl WavePlanner {
    pub(super) fn new(n: usize) -> Self {
        WavePlanner {
            wave_of: vec![0; n],
            tag: vec![NEVER; n],
            waves: Vec::new(),
            used: 0,
        }
    }

    pub(super) fn plan(&mut self, topo: &Topology, service: &[u32], c: u64) -> &[Vec<u32>] {
        for w in &mut self.waves[..self.used] {
            w.clear();
        }
        self.used = 0;
        for (i, &r) in service.iter().enumerate() {
            let ri = r as usize;
            debug_assert!(self.tag[ri] != c, "duplicate service entry");
            let cd = topo.coord(r);
            let mut nbrs = [0u32; 4];
            let mut nn = 0;
            let push_nbr = |nbrs: &mut [u32; 4], nn: &mut usize, id: u32| {
                // On a 1- or 2-wide torus dimension, wrap and direct
                // neighbours coincide; dedupe so the conflict set stays
                // exact (a duplicate would be harmless but wasteful).
                if id != r && !nbrs[..*nn].contains(&id) {
                    nbrs[*nn] = id;
                    *nn += 1;
                }
            };
            if cd.y > 0 {
                push_nbr(&mut nbrs, &mut nn, r - topo.width);
            } else if topo.torus {
                push_nbr(&mut nbrs, &mut nn, r + (topo.height - 1) * topo.width);
            }
            if cd.y + 1 < topo.height {
                push_nbr(&mut nbrs, &mut nn, r + topo.width);
            } else if topo.torus {
                push_nbr(&mut nbrs, &mut nn, cd.x);
            }
            if cd.x > 0 {
                push_nbr(&mut nbrs, &mut nn, r - 1);
            } else if topo.torus {
                push_nbr(&mut nbrs, &mut nn, r + topo.width - 1);
            }
            if cd.x + 1 < topo.width {
                push_nbr(&mut nbrs, &mut nn, r + 1);
            } else if topo.torus {
                push_nbr(&mut nbrs, &mut nn, r - (topo.width - 1));
            }
            let mut latest = 0u32;
            for &id in &nbrs[..nn] {
                let id = id as usize;
                if self.tag[id] == c {
                    latest = latest.max(self.wave_of[id]);
                }
            }
            let w = latest + 1;
            self.wave_of[ri] = w;
            self.tag[ri] = c;
            let wi = (w - 1) as usize;
            debug_assert!(wi <= self.waves.len(), "wave index gap");
            if wi >= self.waves.len() {
                self.waves.push(Vec::new());
            }
            self.used = self.used.max(wi + 1);
            self.waves[wi].push(i as u32);
        }
        &self.waves[..self.used]
    }
}

/// Fan one planned cycle across the pool: a **single** epoch dispatch for
/// the whole wave sequence, with [`Arrivals`] hand-offs between waves (an
/// atomic increment and a short spin — far cheaper than one pool round-trip
/// per wave, which is what made the old scheduler slower than sequential).
/// The pool's own done-barrier covers the last wave. Chunk assignment is
/// deterministic; results cannot depend on it anyway, since wave entries
/// are pairwise independent and write disjoint `fx` slots.
///
/// Panic safety: a participant that panics mid-wave first announces every
/// arrival it still owed, so surviving participants drain their remaining
/// waves (on state the master will never observe — [`EpochPool::run`]
/// re-raises the panic after its done-barrier) instead of spinning forever
/// at a barrier the panicker never reached.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_waves(
    pool: &EpochPool,
    arrivals: &Arrivals,
    threads: usize,
    view: &CoreView<'_>,
    service: &[u32],
    waves: &[Vec<u32>],
    fx: &mut [EntryFx],
    c: u64,
) {
    let fx_cells = SyncCell::from_mut(fx);
    // Barriers sit *between* waves; the last wave ends at the pool's
    // done-barrier instead.
    let barriers = waves.len().saturating_sub(1);
    let base = arrivals.current();
    pool.run(&|part| {
        let crossed = Cell::new(0usize);
        let run = catch_unwind(AssertUnwindSafe(|| {
            for (w, wave) in waves.iter().enumerate() {
                for k in chunk_range(wave.len(), threads, part) {
                    let i = wave[k] as usize;
                    // Safety: wave entries are pairwise independent and
                    // each `i` is unique, so all cell accesses are
                    // disjoint (module docs).
                    let f = unsafe { &mut *fx_cells[i].get() };
                    service_entry(view, service[i], c, f);
                }
                if w < barriers {
                    arrivals.arrive();
                    arrivals.wait(base + (threads * (w + 1)) as u64);
                    crossed.set(w + 1);
                }
            }
        }));
        if let Err(p) = run {
            for _ in crossed.get()..barriers {
                arrivals.arrive();
            }
            resume_unwind(p);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MemifPlacement;

    #[test]
    fn waves_are_independent_sets_in_service_order() {
        let topo = Topology::square(16, MemifPlacement::SingleCorner);
        let mut planner = WavePlanner::new(16);
        // A service list with adjacent runs: 0,1 adjacent; 4 adjacent to 0;
        // 10 isolated.
        let service = [0u32, 1, 4, 10, 5];
        let waves = planner.plan(&topo, &service, 7);
        // Wave 1: 0 (idx 0), 10 (idx 3). Wave 2: 1 (idx 1), 4 (idx 2).
        // Wave 3: 5 (idx 4, adjacent to both 1 and 4).
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0], vec![0, 3]);
        assert_eq!(waves[1], vec![1, 2]);
        assert_eq!(waves[2], vec![4]);
        // Conflicting pairs keep service order across waves.
        let hops = |a: u32, b: u32| topo.hops(service[a as usize], service[b as usize]);
        for (wi, wave) in waves.iter().enumerate() {
            for (a, &ia) in wave.iter().enumerate() {
                for &ib in &wave[a + 1..] {
                    assert!(hops(ia, ib) >= 2, "wave {wi}: {ia} vs {ib}");
                }
            }
        }
    }

    #[test]
    fn planner_scratch_survives_cycle_reuse() {
        let topo = Topology::square(16, MemifPlacement::SingleCorner);
        let mut planner = WavePlanner::new(16);
        let first = planner.plan(&topo, &[0, 1], 3).to_vec();
        // Same nodes, later cycle: stamps from cycle 3 must be stale.
        let second = planner.plan(&topo, &[1, 0], 9).to_vec();
        assert_eq!(first, vec![vec![0], vec![1]]);
        assert_eq!(second, vec![vec![0], vec![1]]);
    }

    #[test]
    fn entry_fx_reset_clears_every_field() {
        let mut fx = EntryFx::default();
        FxSink::wake(&mut fx, 3, 10);
        FxSink::injected(&mut fx);
        FxSink::ejected(&mut fx);
        FxSink::traversal(&mut fx);
        FxSink::hop(&mut fx);
        FxSink::occ_sample(&mut fx, 2);
        FxSink::head_injected(&mut fx, 7, 10);
        FxSink::tail_ejected(&mut fx, 7, 12);
        FxSink::corrupted(&mut fx);
        FxSink::link_down_event(&mut fx);
        FxSink::probe(&mut fx);
        FxSink::dropped_element(&mut fx);
        FxSink::nack(&mut fx, 0, 1, 2, 3, 4);
        fx.reset();
        let clean = format!("{:?}", EntryFx::default());
        assert_eq!(format!("{fx:?}"), clean);
    }
}
