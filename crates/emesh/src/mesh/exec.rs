//! The unified mesh executor: one service implementation, two sinks.
//!
//! Every router service step — injection, wormhole forwarding, ejection,
//! fault evaluation, latency and telemetry taps — lives here exactly once,
//! generic over an [`FxSink`]. The sink is where a step's effects on
//! *shared* scheduler state go:
//!
//! * **Sequential execution** (and the parallel scheduler's sparse-cycle
//!   fast path) uses [`MasterFx`], which applies every effect directly —
//!   this *is* the seed scheduler whose exact observable order the golden
//!   tests pin, at the seed scheduler's cost.
//! * **Parallel waves** use [`super::par::EntryFx`], which buffers the
//!   effects; the master replays each buffer **in service order** through
//!   the same [`MasterFx`] methods after the wave barrier, so the commit
//!   path is literally the sequential path.
//!
//! State touched *inside* a service step is split by ownership
//! (DESIGN.md §11):
//!
//! * **Entry-owned** state is indexed by the serviced router (or, for the
//!   committed flit hand-off and the adaptive-route occupancy read, by the
//!   neighbour port facing it): the SoA router slab, injection queues,
//!   stamps, memory interfaces, sinks, forward counters, fault trial
//!   counters and link-outage windows. The wave planner's radius-1
//!   independence guarantee (see `mesh/par.rs`) makes concurrent access
//!   disjoint, so [`CoreView`] exposes it through
//!   [`sim_core::parallel::SyncCell`] slices, lock-free.
//! * **Master-owned** state is global and order-sensitive: the wake wheel,
//!   flit conservation counters, energy, fault statistics, the NACK
//!   retransmission queue, the latency table and telemetry histograms.
//!   Only [`FxSink`] methods reach it.
//!
//! Fault-schedule evaluation is thread-safe *by construction*: each
//! Bernoulli site (a router's corruption stream, a directed link's outage
//! stream) owns a plain trial counter in entry-owned state, and
//! [`sim_core::faults::hash_bernoulli`] makes a trial's outcome a pure
//! function of `(seed, site, trial)`. No cross-site RNG stream exists, so
//! the schedule cannot depend on service interleaving.

use sim_core::invariant;
use sim_core::parallel::{Arrivals, EpochPool, SyncCell};
use sim_core::stats::Histogram;
use sim_core::telemetry::SeriesHistogram;

use super::soa::SlabView;
use super::{
    m_free_at, wake_raw, Mesh, MeshConfig, MeshError, MeshRunResult, RoutingPolicy, WakeWheel,
    NEVER,
};
use crate::energy::EnergyCounters;
use crate::faults::{corrupt_site, link_site, FaultMasterView, Retransmit, PROBE_INTERVAL};
use crate::flit::{Flit, FlitKind, Packet};
use crate::memif::MemIf;
use crate::router::{Port, NUM_PORTS};

use super::par::{run_waves, EntryFx, WavePlanner, DISPATCH_GRAIN};

const LOCAL: usize = Port::Local as usize;

/// Where a service step's master-owned effects go. See the module docs;
/// methods mirror the seed scheduler's shared-state writes one-to-one.
pub(crate) trait FxSink {
    /// Schedule a wakeup of `router` at `cycle` (> the cycle under
    /// service).
    fn wake(&mut self, router: u32, cycle: u64);
    /// A flit left an injection queue into the network.
    fn injected(&mut self);
    /// A flit left the network (memory interface or processor sink).
    fn ejected(&mut self);
    /// A router datapath traversal (energy).
    fn traversal(&mut self);
    /// An inter-router link hop (energy).
    fn hop(&mut self);
    /// Pre-service input-buffer occupancy sample (telemetry attached).
    fn occ_sample(&mut self, occ: u64);
    /// A head flit of `packet` entered the network at `cycle` (latency
    /// tracking attached).
    fn head_injected(&mut self, packet: u64, cycle: u64);
    /// A tail flit of `packet` left the network at `cycle` (latency
    /// tracking attached).
    fn tail_ejected(&mut self, packet: u64, cycle: u64);
    /// A payload flit was poisoned in flight.
    fn corrupted(&mut self);
    /// A transient link outage fired.
    fn link_down_event(&mut self);
    /// A blocked sender probed a dead neighbour.
    fn probe(&mut self);
    /// An element was lost for good.
    fn dropped_element(&mut self);
    /// Memory interface at `router` detected a poisoned element from
    /// `src`: account the NACK and (budget permitting) schedule the
    /// retransmission.
    fn nack(&mut self, router: u32, src: u32, packet: u64, payload: u64, cycle: u64);
}

/// Entry-owned fault state as seen from inside a service step.
#[derive(Clone, Copy)]
pub(crate) struct FaultHotView<'a> {
    seed: u64,
    corrupt_rate: f64,
    link_down_rate: f64,
    /// Outage length in cycles.
    pub link_down_cycles: u64,
    corrupt_trials: &'a [SyncCell<u64>],
    link_trials: &'a [SyncCell<u64>],
    down_until: &'a [SyncCell<u64>],
    killed_at: &'a [Option<u64>],
}

impl FaultHotView<'_> {
    /// Whether `router` is dead at `cycle` (read-only schedule).
    #[inline]
    pub fn is_dead(&self, router: u32, cycle: u64) -> bool {
        self.killed_at[router as usize].is_some_and(|at| at <= cycle)
    }

    /// One trial of router `ri`'s corruption stream.
    ///
    /// Safety contract: `ri` is the router under service (entry-owned).
    #[inline]
    pub fn corrupt_fire(&self, ri: usize) -> bool {
        let t = unsafe { &mut *self.corrupt_trials[ri].get() };
        let trial = *t;
        *t += 1;
        sim_core::faults::hash_bernoulli(self.seed, corrupt_site(ri), trial, self.corrupt_rate)
    }

    /// One trial of output `o` of router `ri`'s link-outage stream.
    #[inline]
    pub fn link_fire(&self, ri: usize, o: usize) -> bool {
        let t = unsafe { &mut *self.link_trials[ri * NUM_PORTS + o].get() };
        let trial = *t;
        *t += 1;
        sim_core::faults::hash_bernoulli(self.seed, link_site(ri, o), trial, self.link_down_rate)
    }

    /// Cycle until which output `o` of router `ri` is down.
    #[inline]
    pub fn down_until(&self, ri: usize, o: usize) -> u64 {
        unsafe { *self.down_until[ri * NUM_PORTS + o].get() }
    }

    /// Take output `o` of router `ri` down until `cycle`.
    #[inline]
    pub fn set_down_until(&self, ri: usize, o: usize, cycle: u64) {
        unsafe { *self.down_until[ri * NUM_PORTS + o].get() = cycle }
    }
}

/// Shared view of all entry-owned mesh state: what a service step may read
/// and write directly, for both the sequential path and wave workers. The
/// master-owned scheduler state stays behind [`MasterFx`].
pub(crate) struct CoreView<'a> {
    pub cfg: &'a MeshConfig,
    pub slab: SlabView<'a>,
    inject: &'a [SyncCell<std::collections::VecDeque<Flit>>],
    last_inject: &'a [SyncCell<u64>],
    /// Flattened `router * NUM_PORTS + port` pop stamps.
    last_pop: &'a [SyncCell<u64>],
    memif_slot: &'a [Option<u32>],
    memifs: &'a [SyncCell<MemIf>],
    sink_delivered: &'a [SyncCell<u64>],
    sink_last_cycle: &'a [SyncCell<u64>],
    sink_words: &'a [SyncCell<Vec<u64>>],
    router_forwards: &'a [SyncCell<u64>],
    collect_sink_words: bool,
    pub fault: Option<FaultHotView<'a>>,
    /// Latency tracking attached: emit head/tail packet timestamps.
    latency_on: bool,
    /// Telemetry attached: emit pre-service occupancy samples.
    tel_on: bool,
}

/// Master-owned scheduler state, directly applying every [`FxSink`]
/// effect. This is both the sequential path's sink and the commit target
/// the parallel path replays [`EntryFx`] buffers into.
pub(crate) struct MasterFx<'m> {
    wheel: &'m mut WakeWheel,
    next_wake: &'m mut [u64],
    processed_at: &'m mut [u64],
    in_flight: &'m mut u64,
    pending_inject: &'m mut u64,
    energy: &'m mut EnergyCounters,
    fault: Option<FaultMasterView<'m>>,
    /// Packet-id-indexed inject cycle table and the latency histogram.
    lat: Option<(&'m mut Vec<u64>, &'m mut Histogram)>,
    occupancy: Option<&'m mut SeriesHistogram>,
    /// Telemetry activity bounds: (first_active, last_active) per router.
    activity: Option<(&'m mut [u64], &'m mut [u64])>,
}

impl MasterFx<'_> {
    /// The seed scheduler's drain bookkeeping for one bucket entry:
    /// clear the `next_wake` stamp, dedup via `processed_at`, and stamp
    /// the telemetry activity bounds (functions of `(router, c)` only).
    /// Returns whether the entry should actually be serviced.
    #[inline]
    fn bookkeep(&mut self, ri: usize, c: u64) -> bool {
        if self.next_wake[ri] == c {
            // This entry is the router's earliest pending wake; clear it
            // so wakes derived while processing re-arm the wheel.
            // (`next_wake > c` means this entry is stale — a later pending
            // wake exists and must stay tracked.)
            self.next_wake[ri] = NEVER;
        }
        if self.processed_at[ri] == c {
            return false; // redundant wakeup for a cycle already serviced
        }
        self.processed_at[ri] = c;
        if let Some((first, last)) = self.activity.as_mut() {
            if first[ri] == NEVER {
                first[ri] = c;
            }
            last[ri] = c;
        }
        true
    }
}

impl FxSink for MasterFx<'_> {
    #[inline]
    fn wake(&mut self, router: u32, cycle: u64) {
        wake_raw(self.wheel, self.next_wake, router, cycle);
    }

    #[inline]
    fn injected(&mut self) {
        *self.pending_inject -= 1;
        *self.in_flight += 1;
        self.energy.injections += 1;
    }

    #[inline]
    fn ejected(&mut self) {
        invariant!(
            *self.in_flight > 0,
            "flit conservation: eject with in_flight = 0"
        );
        *self.in_flight -= 1;
        self.energy.ejections += 1;
    }

    #[inline]
    fn traversal(&mut self) {
        self.energy.router_traversals += 1;
    }

    #[inline]
    fn hop(&mut self) {
        self.energy.link_hops += 1;
    }

    #[inline]
    fn occ_sample(&mut self, occ: u64) {
        if let Some(h) = self.occupancy.as_mut() {
            h.record(occ);
        }
    }

    #[inline]
    fn head_injected(&mut self, packet: u64, cycle: u64) {
        if let Some((t0, _)) = self.lat.as_mut() {
            let id = packet as usize;
            if t0.len() <= id {
                t0.resize(id + 1, NEVER);
            }
            t0[id] = cycle;
        }
    }

    #[inline]
    fn tail_ejected(&mut self, packet: u64, cycle: u64) {
        if let Some((t0, h)) = self.lat.as_mut() {
            if let Some(slot) = t0.get_mut(packet as usize) {
                if *slot != NEVER {
                    h.record(cycle - *slot);
                    *slot = NEVER;
                }
            }
        }
    }

    #[inline]
    fn corrupted(&mut self) {
        self.fault
            .as_mut()
            .expect("corruption implies faults")
            .stats
            .corrupted_flits += 1;
    }

    #[inline]
    fn link_down_event(&mut self) {
        self.fault
            .as_mut()
            .expect("outage implies faults")
            .stats
            .link_down_events += 1;
    }

    #[inline]
    fn probe(&mut self) {
        self.fault
            .as_mut()
            .expect("probe implies faults")
            .stats
            .probes += 1;
    }

    #[inline]
    fn dropped_element(&mut self) {
        self.fault
            .as_mut()
            .expect("drop implies faults")
            .stats
            .dropped_elements += 1;
    }

    fn nack(&mut self, router: u32, src: u32, packet: u64, payload: u64, cycle: u64) {
        let fl = self.fault.as_mut().expect("corrupted implies faults");
        fl.stats.nacks += 1;
        if !fl.retransmit {
            fl.stats.dropped_elements += 1;
            return;
        }
        let attempts = fl.attempts.entry((src, packet)).or_insert(0);
        if *attempts >= fl.max_retransmits {
            fl.stats.dropped_elements += 1;
            return;
        }
        *attempts += 1;
        fl.stats.retransmits += 1;
        fl.retx.push_back(Retransmit {
            due: cycle + fl.nack_delay,
            src,
            packet: Packet::with_header(router, packet, vec![payload]),
        });
    }
}

impl MasterFx<'_> {
    /// Replay one entry's deferred effects — the parallel commit step. The
    /// within-entry interleaving of effect *kinds* is immaterial (each kind
    /// targets disjoint master state; see `mesh/par.rs`), but wakes replay
    /// in emission order and entries replay in service order.
    pub(super) fn apply(&mut self, fx: &EntryFx) {
        if let Some(occ) = fx.occ {
            self.occ_sample(occ);
        }
        for _ in 0..fx.injected {
            self.injected();
        }
        if let Some((packet, cycle)) = fx.head_injected {
            self.head_injected(packet, cycle);
        }
        for _ in 0..fx.corrupted {
            self.corrupted();
        }
        for _ in 0..fx.link_down_events {
            self.link_down_event();
        }
        for _ in 0..fx.probes {
            self.probe();
        }
        for _ in 0..fx.dropped_elements {
            self.dropped_element();
        }
        if let Some(n) = &fx.nack {
            self.nack(n.router, n.src, n.packet, n.payload, n.cycle);
        }
        if let Some((packet, cycle)) = fx.tail_ejected {
            self.tail_ejected(packet, cycle);
        }
        for _ in 0..fx.ejected {
            self.ejected();
        }
        for _ in 0..fx.traversals {
            self.traversal();
        }
        for _ in 0..fx.hops {
            self.hop();
        }
        for &(wr, wc) in &fx.wakes {
            self.wake(wr, wc);
        }
    }
}

impl CoreView<'_> {
    /// Mirror of the mesh's neighbour map.
    #[inline]
    fn neighbor(&self, node: u32, port: Port) -> u32 {
        let t = &self.cfg.topology;
        let c = t.coord(node);
        let (x, y) = if t.torus {
            match port {
                Port::North => (c.x, (c.y + t.height - 1) % t.height),
                Port::South => (c.x, (c.y + 1) % t.height),
                Port::East => ((c.x + 1) % t.width, c.y),
                Port::West => ((c.x + t.width - 1) % t.width, c.y),
                Port::Local => unreachable!("local has no neighbor"),
            }
        } else {
            match port {
                Port::North => (c.x, c.y - 1),
                Port::South => (c.x, c.y + 1),
                Port::East => (c.x + 1, c.y),
                Port::West => (c.x - 1, c.y),
                Port::Local => unreachable!("local has no neighbor"),
            }
        };
        t.id(crate::topology::NodeCoord { x, y })
    }

    /// Route a head flit at `node` toward `dest`. The adaptive arm reads
    /// only the candidate neighbours' *facing* input-port lengths — a
    /// narrow, entry-owned projection under the wave independence rule.
    #[inline]
    fn route(&self, node: u32, dest: u32) -> Port {
        if node == dest {
            return Port::Local;
        }
        let c = self.cfg.topology.coord(node);
        let d = self.cfg.topology.coord(dest);
        if self.cfg.topology.torus {
            // Shortest-direction dimension-order routing over the wrap
            // links: x resolves first, and an equidistant tie goes East /
            // South so every hop is deterministic. The west-first turn
            // model the adaptive arm relies on is unsound on a ring, so
            // `MinimalAdaptive` also takes this deterministic path on a
            // torus (documented limitation, DESIGN.md §16: no VCs, so
            // torus configs rely on the structured deadlock detector).
            let (w, h) = (self.cfg.topology.width, self.cfg.topology.height);
            if d.x != c.x {
                let east = (d.x + w - c.x) % w;
                return if east <= w - east {
                    Port::East
                } else {
                    Port::West
                };
            }
            let south = (d.y + h - c.y) % h;
            return if south <= h - south {
                Port::South
            } else {
                Port::North
            };
        }
        let want_x = if d.x < c.x {
            Some(Port::West)
        } else if d.x > c.x {
            Some(Port::East)
        } else {
            None
        };
        let want_y = if d.y < c.y {
            Some(Port::North)
        } else if d.y > c.y {
            Some(Port::South)
        } else {
            None
        };
        match (want_x, want_y, self.cfg.policy) {
            (Some(x), None, _) => x,
            (None, Some(y), _) => y,
            (Some(x), Some(_), RoutingPolicy::Xy) => x,
            (Some(x), Some(y), RoutingPolicy::MinimalAdaptive) => {
                // West-first turn model: westward hops must happen first.
                if x == Port::West {
                    return x;
                }
                // Adaptive between x and y: pick the emptier downstream
                // buffer; tie prefers x (dimension order).
                let nx = self.neighbor(node, x);
                let ny = self.neighbor(node, y);
                let ox = self.slab.input_len(nx as usize, x.opposite() as usize);
                let oy = self.slab.input_len(ny as usize, y.opposite() as usize);
                if oy < ox {
                    y
                } else {
                    x
                }
            }
            (None, None, _) => unreachable!("handled by node == dest"),
        }
    }
}

/// Service router `r` at cycle `c`: telemetry tap, dead check, injection,
/// then port service rotated by the cycle number. The seed scheduler's
/// per-router step, verbatim — only the effect destination varies by sink.
#[inline]
pub(crate) fn service_entry<S: FxSink>(view: &CoreView<'_>, r: u32, c: u64, sink: &mut S) {
    if view.tel_on {
        // Pre-service occupancy, sampled before the dead check exactly as
        // the seed scheduler's service loop did.
        sink.occ_sample(view.slab.occupancy(r as usize) as u64);
    }
    if view.fault.as_ref().is_some_and(|f| f.is_dead(r, c)) {
        return; // a hard-killed router does nothing, forever
    }
    try_inject(view, r, c, sink);
    for k in 0..NUM_PORTS {
        let p = (k + c as usize) % NUM_PORTS;
        try_forward(view, r, p, c, sink);
    }
}

fn try_inject<S: FxSink>(view: &CoreView<'_>, r: u32, c: u64, sink: &mut S) {
    let ri = r as usize;
    // Safety: entry `r` owns all `r`-indexed state for its wave.
    let inject = unsafe { &mut *view.inject[ri].get() };
    if inject.is_empty() {
        return;
    }
    let last_inject = unsafe { &mut *view.last_inject[ri].get() };
    if *last_inject == c {
        sink.wake(r, c + 1);
        return;
    }
    if !view.slab.has_space_depth(ri, LOCAL, view.cfg.buffer_depth) {
        // Woken when the local input pops.
        return;
    }
    let mut flit = inject.pop_front().expect("non-empty");
    flit.src = r;
    flit.ready_at = c + 1 + if flit.kind.is_head() { view.cfg.t_r } else { 0 };
    let ready = flit.ready_at;
    if view.latency_on && flit.kind.is_head() {
        sink.head_injected(flit.packet, c);
    }
    view.slab.push_back(ri, LOCAL, flit);
    invariant!(
        view.slab.input_len(ri, LOCAL) <= view.cfg.buffer_depth,
        "buffer bound: router {r} local input exceeds depth {} after inject",
        view.cfg.buffer_depth
    );
    *last_inject = c;
    sink.injected();
    sink.wake(r, ready);
    if !inject.is_empty() {
        sink.wake(r, c + 1);
    }
}

fn try_forward<S: FxSink>(view: &CoreView<'_>, r: u32, p: usize, c: u64, sink: &mut S) {
    let ri = r as usize;
    let popped_at = unsafe { *view.last_pop[ri * NUM_PORTS + p].get() };
    if popped_at == c {
        return; // this input already popped this cycle
    }
    let Some(head) = view.slab.front(ri, p) else {
        return;
    };
    if head.ready_at > c {
        sink.wake(r, head.ready_at);
        return;
    }
    // Output port: continuation of an open wormhole, or fresh route.
    let out = match view.slab.route(ri, p) {
        Some(o) => Port::from_index(o as usize),
        None => {
            debug_assert!(head.kind.is_head(), "body flit without a route");
            view.route(r, head.dest)
        }
    };
    let o = out as usize;
    if !view.slab.output_available(ri, o, p, c) {
        // Channel owned by another packet (woken on release) or used
        // this cycle (retry next).
        if view.slab.last_used(ri, o) == c {
            sink.wake(r, c + 1);
        }
        return;
    }

    if out == Port::Local {
        eject(view, r, p, c, sink);
        return;
    }

    let n = view.neighbor(r, out);
    let q = out.opposite() as usize;
    if let Some(f) = &view.fault {
        if f.is_dead(n, c) {
            // Dead neighbour: hold the flit and re-probe. Nothing will
            // ever answer, so this is a livelock by design — the
            // watchdog converts it into a structured diagnostic.
            sink.probe();
            sink.wake(r, c + PROBE_INTERVAL);
            return;
        }
        let until = f.down_until(ri, o);
        if until > c {
            // Link still down from an earlier outage; resume then.
            sink.wake(r, until);
            return;
        }
    }
    if !view
        .slab
        .has_space_depth(n as usize, q, view.cfg.buffer_depth)
    {
        // Woken when (n, q) pops.
        return;
    }
    if let Some(f) = &view.fault {
        // One outage trial per committed traversal of link (r, out).
        if f.link_fire(ri, o) {
            let until = c + f.link_down_cycles;
            f.set_down_until(ri, o, until);
            sink.link_down_event();
            sink.wake(r, until);
            return;
        }
    }

    // Commit the move.
    let mut flit = view.slab.pop_front(ri, p).expect("head");
    after_pop(view, r, p, c, sink);
    if let Some(f) = &view.fault {
        // Payload corruption in flight, modelled as a failed-ECC flag
        // (header flits are protected: corrupting routing state would
        // misdeliver rather than degrade).
        if !matches!(flit.kind, FlitKind::Head) && f.corrupt_fire(ri) {
            flit.corrupted = true;
            sink.corrupted();
        }
    }
    flit.ready_at = c + 1 + if flit.kind.is_head() { view.cfg.t_r } else { 0 };
    let ready = flit.ready_at;
    update_channel_state(view, r, p, o, &flit, c, sink);
    // Safety: narrow projection of the facing port only (wave rule).
    view.slab.push_back(n as usize, q, flit);
    invariant!(
        view.slab.input_len(n as usize, q) <= view.cfg.buffer_depth,
        "buffer bound: router {n} input port {q} exceeds depth {} after forward",
        view.cfg.buffer_depth
    );
    sink.traversal();
    sink.hop();
    unsafe {
        *view.router_forwards[ri].get() += 1;
    }
    sink.wake(n, ready);
}

fn eject<S: FxSink>(view: &CoreView<'_>, r: u32, p: usize, c: u64, sink: &mut S) {
    let ri = r as usize;
    if let Some(slot) = view.memif_slot[ri] {
        // Safety: a memif belongs to exactly one router.
        let m = unsafe { &mut *view.memifs[slot as usize].get() };
        if !m.can_accept(c) {
            sink.wake(r, m_free_at(m, c));
            return;
        }
        let flit = view.slab.pop_front(ri, p).expect("head");
        after_pop(view, r, p, c, sink);
        update_channel_state(view, r, p, LOCAL, &flit, c, sink);
        if flit.corrupted {
            // Poisoned element: charge port timing, refuse staging, NACK.
            m.accept_nack(c, &flit);
            sink.nack(r, flit.src, flit.packet, flit.payload, c);
        } else {
            m.accept(c, &flit);
        }
        if view.latency_on && flit.kind.is_tail() {
            sink.tail_ejected(flit.packet, c);
        }
        sink.ejected();
        sink.traversal();
        unsafe {
            *view.router_forwards[ri].get() += 1;
        }
    } else {
        // Processor sink: always ready, one flit per cycle (enforced by
        // the output channel's last_used stamp).
        let flit = view.slab.pop_front(ri, p).expect("head");
        after_pop(view, r, p, c, sink);
        update_channel_state(view, r, p, LOCAL, &flit, c, sink);
        let is_payload = !matches!(flit.kind, FlitKind::Head);
        if is_payload && flit.corrupted {
            // Sinks detect but do not NACK (the paper's retransmit sits
            // at the memory interface); the word is lost.
            sink.dropped_element();
        } else if is_payload {
            // Safety: sink state is own-router-indexed.
            unsafe {
                *view.sink_delivered[ri].get() += 1;
                *view.sink_last_cycle[ri].get() = c;
                if view.collect_sink_words {
                    (*view.sink_words[ri].get()).push(flit.payload);
                }
            }
        }
        if view.latency_on && flit.kind.is_tail() {
            sink.tail_ejected(flit.packet, c);
        }
        sink.ejected();
        sink.traversal();
        unsafe {
            *view.router_forwards[ri].get() += 1;
        }
    }
}

/// Book-keeping after popping from input (r, p) at cycle c: stamp the
/// pop, wake the feeder (space freed) and ourselves (next flit).
fn after_pop<S: FxSink>(view: &CoreView<'_>, r: u32, p: usize, c: u64, sink: &mut S) {
    let ri = r as usize;
    unsafe {
        *view.last_pop[ri * NUM_PORTS + p].get() = c;
    }
    if view.slab.input_len(ri, p) > 0 {
        sink.wake(r, c + 1);
    }
    if p == LOCAL {
        // Feeder is the local injector.
        let more = unsafe { !(*view.inject[ri].get()).is_empty() };
        if more {
            sink.wake(r, c + 1);
        }
    } else {
        sink.wake(view.neighbor(r, Port::from_index(p)), c + 1);
    }
}

/// Update wormhole ownership and per-input route state for a forwarded
/// flit, and stamp the output as used this cycle.
fn update_channel_state<S: FxSink>(
    view: &CoreView<'_>,
    r: u32,
    p: usize,
    o: usize,
    flit: &Flit,
    c: u64,
    sink: &mut S,
) {
    let ri = r as usize;
    view.slab.set_last_used(ri, o, c);
    if flit.kind.is_head() {
        view.slab.set_owner_raw(ri, o, p as u8);
        view.slab.set_route_raw(ri, p, o as u8);
    }
    if flit.kind.is_tail() {
        view.slab.set_owner_raw(ri, o, super::soa::NO_PORT);
        view.slab.set_route_raw(ri, p, super::soa::NO_PORT);
        // Channel released: contenders at this router may proceed.
        sink.wake(r, c + 1);
    }
}

impl Mesh {
    /// Build the per-cycle execution views: the shared entry-owned
    /// [`CoreView`] and the exclusive master sink. Disjoint field borrows —
    /// the split that makes one service implementation serve both paths.
    fn exec_views(&mut self) -> (CoreView<'_>, MasterFx<'_>) {
        let Mesh {
            cfg,
            slab,
            inject,
            last_inject,
            last_pop,
            memif_slot,
            memifs,
            sink_delivered,
            sink_last_cycle,
            sink_words,
            collect_sink_words,
            inject_cycle,
            latency,
            wheel,
            next_wake,
            processed_at,
            in_flight,
            pending_inject,
            energy,
            router_forwards,
            faults,
            telemetry,
            ..
        } = self;
        let (fault_hot, fault_master) = match faults {
            Some(fl) => {
                let (hot, master) = fl.split_views();
                (
                    Some(FaultHotView {
                        seed: hot.seed,
                        corrupt_rate: hot.corrupt_rate,
                        link_down_rate: hot.link_down_rate,
                        link_down_cycles: hot.link_down_cycles,
                        corrupt_trials: SyncCell::from_mut(&mut hot.corrupt_trials),
                        link_trials: SyncCell::from_mut(&mut hot.link_trials),
                        down_until: SyncCell::from_mut(&mut hot.down_until),
                        killed_at: &hot.killed_at,
                    }),
                    Some(master),
                )
            }
            None => (None, None),
        };
        let lat = match (inject_cycle.as_mut(), latency.as_mut()) {
            (Some(t0), Some(h)) => Some((t0, h)),
            _ => None,
        };
        let latency_on = lat.is_some();
        let (occupancy, activity) = match telemetry.as_mut() {
            Some(t) => (
                Some(&mut t.occupancy),
                Some((t.first_active.as_mut_slice(), t.last_active.as_mut_slice())),
            ),
            None => (None, None),
        };
        let tel_on = occupancy.is_some();
        (
            CoreView {
                cfg,
                slab: slab.view(),
                inject: SyncCell::from_mut(inject),
                last_inject: SyncCell::from_mut(last_inject),
                last_pop: SyncCell::from_mut(last_pop),
                memif_slot,
                memifs: SyncCell::from_mut(memifs),
                sink_delivered: SyncCell::from_mut(sink_delivered),
                sink_last_cycle: SyncCell::from_mut(sink_last_cycle),
                sink_words: SyncCell::from_mut(sink_words),
                router_forwards: SyncCell::from_mut(router_forwards),
                collect_sink_words: *collect_sink_words,
                fault: fault_hot,
                latency_on,
                tel_on,
            },
            MasterFx {
                wheel,
                next_wake,
                processed_at,
                in_flight,
                pending_inject,
                energy,
                fault: fault_master,
                lat,
                occupancy,
                activity,
            },
        )
    }

    /// The unified cycle loop: sequential when `threads == 1`, otherwise
    /// the deterministic epoch-parallel scheduler — same service code, same
    /// observables, bit for bit (DESIGN.md §11). There is no configuration
    /// fallback: faults, telemetry and latency tracking all run on this
    /// loop at any thread count.
    pub(super) fn run_core(&mut self) -> Result<MeshRunResult, MeshError> {
        let n = self.cfg.topology.nodes();
        self.run_warnings.clear();
        let requested = self.cfg.threads.max(1);
        let threads = if requested > n {
            // More workers than routers can never all be busy; clamp and
            // say so in the run summary rather than silently degrading.
            self.run_warnings
                .push(super::RunWarning::ThreadsExceedNodes {
                    requested,
                    nodes: n,
                });
            n
        } else {
            requested
        };
        let pool = (threads > 1).then(|| EpochPool::new(threads));
        let threads = pool.as_ref().map_or(1, EpochPool::threads);
        let arrivals = Arrivals::new();
        let mut planner = WavePlanner::new(n);
        let mut service: Vec<u32> = Vec::new();
        let mut fx: Vec<EntryFx> = Vec::new();
        let mut audit_countdown = super::AUDIT_INTERVAL;
        loop {
            // Next service cycle: earliest wheel wakeup or NACK-retransmit
            // turnaround, whichever comes first.
            let mut next = self.wheel.next_cycle();
            if let Some(due) = self.faults.as_ref().and_then(|fl| fl.next_retx_due()) {
                next = Some(next.map_or(due, |n| n.min(due)));
            }
            let Some(c) = next else { break };
            // Cooperative cancellation: one branch per serviced cycle when
            // no interrupt is installed. Sits on the master loop, so it
            // covers the sequential path and the parallel waves alike —
            // a wave is never torn mid-cycle.
            if let Some(intr) = self.interrupt.as_mut() {
                if let Some(cause) = intr.check(c) {
                    return Err(MeshError::Cancelled {
                        at_cycle: c,
                        cause,
                        in_flight: self.in_flight,
                        pending_inject: self.pending_inject,
                        energy: self.energy,
                    });
                }
            }
            if c > self.cfg.max_cycles {
                return Err(MeshError::CycleLimit {
                    limit: self.cfg.max_cycles,
                });
            }
            debug_assert!(c >= self.now, "wakeup in the past");
            self.now = c;
            self.wheel.advance_to(c);
            self.drain_due_retransmits(c);
            // Drain the bucket for cycle `c` in insertion order. Every wake
            // pushed while processing cycle `c` targets a cycle ≥ c + 1, so
            // the bucket cannot grow (or be reused — c + WINDOW is spilled
            // to the overflow heap) underneath this loop; take it out
            // wholesale and hand its allocation back afterwards.
            let b = (c % WakeWheel::WINDOW) as usize;
            let mut ids = std::mem::take(&mut self.wheel.buckets[b]);
            self.wheel.bucket_pending -= ids.len() as u64;
            {
                // Dense cycles fan out across the pool; sparse ones (the
                // long corner-bound drain tail) run inline on the master at
                // exactly the sequential scheduler's cost — no planning, no
                // effect buffering, no barriers. Identical results either
                // way; the gate only trades wall clock. (The pre-dedup
                // bucket length is a fine dispatch proxy: redundant wakes
                // are rare and the threshold is a heuristic.)
                let dispatch = threads > 1 && ids.len() >= threads * DISPATCH_GRAIN;
                let (view, mut master) = self.exec_views();
                if dispatch {
                    // Bookkeeping prefix of the seed scheduler's drain, in
                    // bucket order. Hoisting it before servicing is exact —
                    // nothing in a cycle's processing reads these arrays
                    // (see mesh/par.rs).
                    service.clear();
                    for &r in &ids {
                        if master.bookkeep(r as usize, c) {
                            service.push(r);
                        }
                    }
                    if fx.len() < service.len() {
                        fx.resize_with(service.len(), EntryFx::default);
                    }
                    for f in &mut fx[..service.len()] {
                        f.reset();
                    }
                    let waves = planner.plan(&view.cfg.topology, &service, c);
                    run_waves(
                        pool.as_ref().expect("dispatch implies pool"),
                        &arrivals,
                        threads,
                        &view,
                        &service,
                        waves,
                        &mut fx[..service.len()],
                        c,
                    );
                    // Commit deferred effects in service (= seed) order.
                    for f in &fx[..service.len()] {
                        master.apply(f);
                    }
                } else {
                    // Single fused pass, exactly the seed drain loop.
                    for &r in &ids {
                        if master.bookkeep(r as usize, c) {
                            service_entry(&view, r, c, &mut master);
                        }
                    }
                }
            }
            ids.clear();
            debug_assert!(
                self.wheel.buckets[b].is_empty(),
                "same-cycle wake pushed while draining"
            );
            self.wheel.buckets[b] = ids;
            if sim_core::invariants::ENABLED {
                audit_countdown -= 1;
                if audit_countdown == 0 {
                    audit_countdown = super::AUDIT_INTERVAL;
                    self.check_flit_conservation();
                }
            }
            if self.faults.is_some() {
                self.watchdog_check(c)?;
            }
        }
        self.finish()
    }
}
