//! Structure-of-Arrays router storage for the mesh hot path.
//!
//! [`crate::router::Router`] is the *specification* of one router — inline
//! 64-slot rings, `Option` route/owner fields — and stays the unit under
//! test for port semantics. The simulator, however, services thousands of
//! routers per cycle, and an array-of-structs `Vec<Router>` pays for the
//! specification's generality twice over:
//!
//! * each router is ~10 KiB (five 64-slot inline rings) even though the
//!   paper's default depth is **2**, so two routers never share a cache
//!   line and the working set is ~50× larger than the live data;
//! * the scheduler's per-cycle bookkeeping reads only a few scalar fields
//!   (lengths, routes, owners, stamps) but drags whole rings through the
//!   cache to get them.
//!
//! [`RouterSlab`] stores the same state as dense parallel arrays sized to
//! the *configured* buffer depth: all ring lengths adjacent, all routes
//! adjacent, and the flit slots packed at `cap` per input port where `cap`
//! is the depth rounded up to a power of two (minimum 2). `Option<u8>`
//! fields are packed as `0xFF = None`, `last_used` keeps the
//! `u64::MAX = never` convention of [`crate::router::OutputPort`].
//!
//! [`SlabView`] is the shared-slice form handed to the epoch-parallel
//! scheduler: the same arrays behind [`sim_core::parallel::SyncCell`], so
//! concurrent wave entries can mutate *disjoint* routers without locks.
//! The sequential path uses the identical view (built from `&mut self`),
//! keeping one implementation of every port operation.
//!
//! # Safety contract
//!
//! `SlabView` methods are safe to *call* but rely on the scheduler-level
//! invariant proved in `mesh/par.rs`: within one wave, entries touch
//! disjoint routers' input state and only their neighbours' facing input
//! ports, and no two conflicting entries share a wave. All slab accessors
//! take `(router, port)` coordinates, so the data-race freedom argument is
//! exactly the wave-independence argument.

use sim_core::parallel::SyncCell;

use crate::flit::{Flit, FlitKind};
use crate::router::NUM_PORTS;

/// Packed `None` for route/owner bytes.
pub(crate) const NO_PORT: u8 = 0xFF;

/// Packed `never used` for output stamps (matches
/// [`crate::router::OutputPort::last_used`]'s default).
pub(crate) const NEVER_USED: u64 = u64::MAX;

const EMPTY_FLIT: Flit = Flit {
    dest: 0,
    src: 0,
    payload: 0,
    kind: FlitKind::HeadTail,
    packet: 0,
    ready_at: 0,
    corrupted: false,
};

/// Dense SoA storage for every router in the mesh.
#[derive(Debug)]
pub(crate) struct RouterSlab {
    /// Routers.
    n: usize,
    /// Ring capacity per input port (power of two ≥ 2, ≥ buffer depth).
    cap: usize,
    /// Flit slots: `cap` per input port, `NUM_PORTS` ports per router.
    flits: Vec<Flit>,
    /// Ring head index per input port (free-running, masked by `cap - 1`).
    head: Vec<u32>,
    /// Buffered flit count per input port.
    len: Vec<u32>,
    /// Assigned output per input port (`NO_PORT` = none).
    route: Vec<u8>,
    /// Owning input per output port (`NO_PORT` = none).
    owner: Vec<u8>,
    /// Last-forward cycle stamp per output port (`NEVER_USED` = never).
    last_used: Vec<u64>,
}

impl RouterSlab {
    /// Storage for `n` routers with the given logical buffer depth.
    pub fn new(n: usize, buffer_depth: usize) -> Self {
        assert!(buffer_depth >= 1, "buffer depth must be at least 1");
        let cap = buffer_depth.next_power_of_two().max(2);
        RouterSlab {
            n,
            cap,
            flits: vec![EMPTY_FLIT; n * NUM_PORTS * cap],
            head: vec![0; n * NUM_PORTS],
            len: vec![0; n * NUM_PORTS],
            route: vec![NO_PORT; n * NUM_PORTS],
            owner: vec![NO_PORT; n * NUM_PORTS],
            last_used: vec![NEVER_USED; n * NUM_PORTS],
        }
    }

    /// Ring capacity per input port.
    #[cfg(test)]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The shared-slice view; the only way state is read or written during
    /// a run (sequential and parallel alike).
    pub fn view(&mut self) -> SlabView<'_> {
        SlabView {
            cap: self.cap,
            flits: SyncCell::from_mut(&mut self.flits),
            head: SyncCell::from_mut(&mut self.head),
            len: SyncCell::from_mut(&mut self.len),
            route: SyncCell::from_mut(&mut self.route),
            owner: SyncCell::from_mut(&mut self.owner),
            last_used: SyncCell::from_mut(&mut self.last_used),
        }
    }

    /// Buffered flits across all of router `r`'s inputs (master-side, for
    /// audits and diagnostics).
    pub fn occupancy(&self, r: usize) -> usize {
        self.len[r * NUM_PORTS..(r + 1) * NUM_PORTS]
            .iter()
            .map(|&l| l as usize)
            .sum()
    }

    /// True when router `r` buffers nothing.
    pub fn is_empty(&self, r: usize) -> bool {
        self.occupancy(r) == 0
    }

    /// Routers in the slab.
    pub fn routers(&self) -> usize {
        self.n
    }
}

/// Shared-slice window over a [`RouterSlab`].
///
/// Copyable so each wave entry captures it by value; see the module-level
/// safety contract.
#[derive(Clone, Copy)]
pub(crate) struct SlabView<'a> {
    cap: usize,
    flits: &'a [SyncCell<Flit>],
    head: &'a [SyncCell<u32>],
    len: &'a [SyncCell<u32>],
    route: &'a [SyncCell<u8>],
    owner: &'a [SyncCell<u8>],
    last_used: &'a [SyncCell<u64>],
}

impl SlabView<'_> {
    #[inline]
    fn port(r: usize, p: usize) -> usize {
        debug_assert!(p < NUM_PORTS);
        r * NUM_PORTS + p
    }

    /// Buffered flit count of input `p` of router `r`.
    #[inline]
    pub fn input_len(&self, r: usize, p: usize) -> usize {
        unsafe { *self.len[Self::port(r, p)].get() as usize }
    }

    /// Oldest buffered flit of input `p` of router `r`, if any (copied —
    /// flits are small and `Copy`).
    #[inline]
    pub fn front(&self, r: usize, p: usize) -> Option<Flit> {
        let i = Self::port(r, p);
        unsafe {
            let len = *self.len[i].get();
            if len == 0 {
                return None;
            }
            let head = *self.head[i].get();
            let slot = i * self.cap + (head as usize & (self.cap - 1));
            Some(*self.flits[slot].get())
        }
    }

    /// Append a flit to input `p` of router `r`. Panics if the ring's
    /// physical capacity is exceeded (the mesh checks logical space first,
    /// exactly as it did against [`crate::router::FlitRing`]).
    #[inline]
    pub fn push_back(&self, r: usize, p: usize, flit: Flit) {
        let i = Self::port(r, p);
        unsafe {
            let len = &mut *self.len[i].get();
            assert!((*len as usize) < self.cap, "input ring overflow");
            let head = *self.head[i].get();
            let slot = i * self.cap + ((head as usize + *len as usize) & (self.cap - 1));
            *self.flits[slot].get() = flit;
            *len += 1;
        }
    }

    /// Remove and return the oldest buffered flit of input `p` of router
    /// `r`.
    #[inline]
    pub fn pop_front(&self, r: usize, p: usize) -> Option<Flit> {
        let i = Self::port(r, p);
        unsafe {
            let len = &mut *self.len[i].get();
            if *len == 0 {
                return None;
            }
            let head = &mut *self.head[i].get();
            let slot = i * self.cap + (*head as usize & (self.cap - 1));
            *head = head.wrapping_add(1);
            *len -= 1;
            Some(*self.flits[slot].get())
        }
    }

    /// Assigned output of input `p` of router `r`.
    #[inline]
    pub fn route(&self, r: usize, p: usize) -> Option<u8> {
        let v = unsafe { *self.route[Self::port(r, p)].get() };
        (v != NO_PORT).then_some(v)
    }

    /// Assign (or clear, with `NO_PORT`) the route of input `p`.
    #[inline]
    pub fn set_route_raw(&self, r: usize, p: usize, v: u8) {
        unsafe { *self.route[Self::port(r, p)].get() = v }
    }

    /// Owning input of output `o` of router `r` (the hot path reads it
    /// only through [`SlabView::output_available`]).
    #[cfg(test)]
    pub fn owner(&self, r: usize, o: usize) -> Option<u8> {
        let v = unsafe { *self.owner[Self::port(r, o)].get() };
        (v != NO_PORT).then_some(v)
    }

    /// Set (or clear, with `NO_PORT`) the owner of output `o`.
    #[inline]
    pub fn set_owner_raw(&self, r: usize, o: usize, v: u8) {
        unsafe { *self.owner[Self::port(r, o)].get() = v }
    }

    /// Last-forward stamp of output `o` of router `r`.
    #[inline]
    pub fn last_used(&self, r: usize, o: usize) -> u64 {
        unsafe { *self.last_used[Self::port(r, o)].get() }
    }

    /// Stamp output `o` as used at `cycle`.
    #[inline]
    pub fn set_last_used(&self, r: usize, o: usize, cycle: u64) {
        unsafe { *self.last_used[Self::port(r, o)].get() = cycle }
    }

    /// Whether input `p` of router `r` can accept another flit under a
    /// logical buffer depth of `depth` flits
    /// ([`crate::router::Router::has_space_depth`]).
    #[inline]
    pub fn has_space_depth(&self, r: usize, p: usize, depth: usize) -> bool {
        self.input_len(r, p) < depth
    }

    /// Whether output `o` of router `r` is free this cycle for input `p`:
    /// channel un-owned or owned by `p`, and not already used at `cycle`
    /// ([`crate::router::Router::output_available`]).
    #[inline]
    pub fn output_available(&self, r: usize, o: usize, p: usize, cycle: u64) -> bool {
        let i = Self::port(r, o);
        unsafe {
            let owner = *self.owner[i].get();
            let owned_ok = owner == NO_PORT || owner as usize == p;
            let last = *self.last_used[i].get();
            owned_ok && (last == NEVER_USED || last < cycle)
        }
    }

    /// Buffered flits across all of router `r`'s inputs.
    #[inline]
    pub fn occupancy(&self, r: usize) -> usize {
        (0..NUM_PORTS).map(|p| self.input_len(r, p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Packet;
    use crate::router::Router;

    fn some_flit(payload: u64) -> Flit {
        let mut f = Packet::headerless(0, 0, vec![1]).flits()[0];
        f.payload = payload;
        f
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two_with_floor_two() {
        assert_eq!(RouterSlab::new(1, 1).cap(), 2);
        assert_eq!(RouterSlab::new(1, 2).cap(), 2);
        assert_eq!(RouterSlab::new(1, 3).cap(), 4);
        assert_eq!(RouterSlab::new(1, 64).cap(), 64);
    }

    #[test]
    fn fifo_order_and_wraparound_match_flit_ring() {
        let mut slab = RouterSlab::new(2, 2);
        let v = slab.view();
        let mut next = 0u64;
        let mut expect = 0u64;
        // Push/pop far past the ring capacity so the head wraps, on a
        // non-zero router/port to exercise the indexing.
        for _ in 0..(64 * 3) {
            v.push_back(1, 3, some_flit(next));
            next += 1;
            v.push_back(1, 3, some_flit(next));
            next += 1;
            assert_eq!(v.input_len(1, 3), 2);
            assert!(!v.has_space_depth(1, 3, 2));
            assert_eq!(v.front(1, 3).unwrap().payload, expect);
            assert_eq!(v.pop_front(1, 3).unwrap().payload, expect);
            assert_eq!(v.pop_front(1, 3).unwrap().payload, expect + 1);
            expect += 2;
            assert!(v.pop_front(1, 3).is_none());
        }
        // Router 0 was never touched.
        assert_eq!(v.input_len(0, 3), 0);
        assert!(slab.is_empty(0));
    }

    #[test]
    fn output_availability_matches_router_semantics() {
        let mut slab = RouterSlab::new(1, 2);
        let mut reference = Router::default();
        let v = slab.view();
        // Fresh output: available to anyone.
        assert!(v.output_available(0, 2, 0, 10));
        assert!(reference.output_available(2, 0, 10));
        // Owned by input 1: only input 1 may use it.
        v.set_owner_raw(0, 2, 1);
        reference.outputs[2].owner = Some(1);
        assert_eq!(
            v.output_available(0, 2, 0, 10),
            reference.output_available(2, 0, 10)
        );
        assert_eq!(
            v.output_available(0, 2, 1, 10),
            reference.output_available(2, 1, 10)
        );
        // Used this cycle: nobody may use it again until the next one.
        v.set_last_used(0, 2, 10);
        reference.outputs[2].last_used = 10;
        assert_eq!(
            v.output_available(0, 2, 1, 10),
            reference.output_available(2, 1, 10)
        );
        assert_eq!(
            v.output_available(0, 2, 1, 11),
            reference.output_available(2, 1, 11)
        );
        assert!(v.output_available(0, 2, 1, 11));
    }

    #[test]
    fn route_and_owner_pack_none_as_sentinel() {
        let mut slab = RouterSlab::new(3, 2);
        let v = slab.view();
        assert_eq!(v.route(2, 4), None);
        v.set_route_raw(2, 4, 2);
        assert_eq!(v.route(2, 4), Some(2));
        v.set_route_raw(2, 4, NO_PORT);
        assert_eq!(v.route(2, 4), None);
        assert_eq!(v.owner(1, 0), None);
        v.set_owner_raw(1, 0, 4);
        assert_eq!(v.owner(1, 0), Some(4));
        assert_eq!(v.last_used(1, 0), NEVER_USED);
    }

    #[test]
    fn occupancy_sums_all_inputs() {
        let mut slab = RouterSlab::new(2, 4);
        let v = slab.view();
        v.push_back(1, 0, some_flit(0));
        v.push_back(1, 2, some_flit(1));
        v.push_back(1, 2, some_flit(2));
        assert_eq!(v.occupancy(1), 3);
        assert_eq!(v.occupancy(0), 0);
        assert_eq!(slab.occupancy(1), 3);
        assert!(!slab.is_empty(1));
    }
}
