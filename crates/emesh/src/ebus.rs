//! The electronic TDM bus of paper Fig. 1 — the strawman the PSCAN fixes.
//!
//! "Four frequency-locked clocks with phase offsets φ0–φ3 are used to drive
//! a shared bus ... However, two problems prevent this circuit from scaling
//! in size and bandwidth. First, the differently phased clocks require
//! low-skew distribution ... Second, at high clock rates, the bus will not
//! scale effectively beyond tens of nodes because timing in that bus would
//! be highly variable depending on the location of the driving node
//! relative to the terminus."
//!
//! This module models those two limits quantitatively: (1) an RC-limited
//! shared wire whose settling time grows with bus length (distributed RC:
//! ~0.38·R·C per Elmore), and (2) a skew budget consumed by the spread of
//! driver-to-terminus flight differences. Both shrink the usable clock as
//! nodes are added — in contrast to the PSCAN, whose slot rate is
//! length-independent.

use serde::{Deserialize, Serialize};

/// Electrical parameters of a repeater-less shared bus wire.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EbusParams {
    /// Wire resistance per millimetre, ohms (global-layer Cu, ~25 Ω/mm).
    pub r_ohm_per_mm: f64,
    /// Wire capacitance per millimetre, femtofarads (~200 fF/mm).
    pub c_ff_per_mm: f64,
    /// Capacitive load per attached driver/receiver, femtofarads (~5 fF).
    pub c_tap_ff: f64,
    /// Fraction of the cycle the bus may spend settling (rest is margin,
    /// setup/hold, and jitter). Typical: 0.5.
    pub timing_fraction: f64,
    /// Skew budget as a fraction of the cycle for the phased clocks.
    pub skew_fraction: f64,
    /// Achievable clock distribution skew, picoseconds (low-skew H-tree
    /// over a large die: ~20 ps).
    pub clock_skew_ps: f64,
}

impl Default for EbusParams {
    fn default() -> Self {
        EbusParams {
            r_ohm_per_mm: 25.0,
            c_ff_per_mm: 200.0,
            c_tap_ff: 5.0,
            timing_fraction: 0.5,
            skew_fraction: 0.25,
            clock_skew_ps: 20.0,
        }
    }
}

impl EbusParams {
    /// Elmore settling time of the full bus with `nodes` taps over
    /// `length_mm`, in picoseconds: `0.38·R_total·C_total` for the
    /// distributed wire plus lumped tap loading.
    pub fn settle_ps(&self, length_mm: f64, nodes: usize) -> f64 {
        let r_total = self.r_ohm_per_mm * length_mm;
        let c_wire = self.c_ff_per_mm * length_mm;
        let c_taps = self.c_tap_ff * nodes as f64;
        // fF * Ω = 1e-15 s * 1e... R[Ω]·C[fF] = R·C·1e-15 s = R·C·1e-3 ps.
        0.38 * r_total * (c_wire + c_taps) * 1e-3
    }

    /// Maximum bus clock in GHz for a given geometry: the cycle must cover
    /// the settling time within `timing_fraction`, and the phased-clock
    /// skew must fit in `skew_fraction`.
    pub fn max_clock_ghz(&self, length_mm: f64, nodes: usize) -> f64 {
        let settle_limit = self.timing_fraction / (self.settle_ps(length_mm, nodes) * 1e-3);
        let skew_limit = self.skew_fraction / (self.clock_skew_ps * 1e-3);
        settle_limit.min(skew_limit)
    }

    /// Aggregate bandwidth in Gb/s for a `width`-bit bus at the maximum
    /// feasible clock.
    pub fn max_bandwidth_gbps(&self, length_mm: f64, nodes: usize, width: u64) -> f64 {
        self.max_clock_ghz(length_mm, nodes) * width as f64
    }

    /// Largest node count on a serpentine of `mm_per_node` per tap that
    /// still sustains `target_ghz` — the "tens of nodes" scaling wall.
    pub fn max_nodes_at(&self, target_ghz: f64, mm_per_node: f64) -> usize {
        let mut n = 1usize;
        while n < 1 << 20 {
            let next = n + 1;
            if self.max_clock_ghz(mm_per_node * next as f64, next) < target_ghz {
                return n;
            }
            n = next;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settling_grows_quadratically_with_length() {
        let p = EbusParams::default();
        let short = p.settle_ps(5.0, 4);
        let long = p.settle_ps(50.0, 4);
        // Wire RC dominates: 10x length -> ~100x settling.
        assert!(long > short * 50.0, "{short} vs {long}");
    }

    #[test]
    fn clock_collapses_with_bus_length() {
        let p = EbusParams::default();
        let f5 = p.max_clock_ghz(5.0, 8);
        let f40 = p.max_clock_ghz(40.0, 64);
        assert!(f5 > 2.0, "short bus should run GHz-class: {f5}");
        assert!(f40 < 0.2, "long bus collapses: {f40}");
    }

    #[test]
    fn tens_of_nodes_wall_at_2_5_ghz() {
        // The paper's claim: "the bus will not scale effectively beyond
        // tens of nodes" at high clock rates. At the mesh's 2.5 GHz with
        // ~0.6 mm tap pitch (1024-node die), the wall is tens of taps.
        let p = EbusParams::default();
        let wall = p.max_nodes_at(2.5, 0.625);
        assert!(
            (4..100).contains(&wall),
            "expected a tens-of-nodes wall, got {wall}"
        );
    }

    #[test]
    fn skew_limit_caps_even_short_busses() {
        // With a 20 ps skew and a 25% budget, no bus exceeds 12.5 GHz no
        // matter how short.
        let p = EbusParams::default();
        assert!(p.max_clock_ghz(0.1, 2) <= 12.5 + 1e-9);
    }

    #[test]
    fn pscan_comparison_point() {
        // At the PSCAN's full 64-node/2-cm-die geometry (bus ~16 cm), the
        // electronic bus cannot even reach 100 MHz — while the photonic bus
        // runs its full 10 GHz slot rate regardless of length. This is
        // Fig. 1 vs Fig. 2 in one assertion.
        let p = EbusParams::default();
        let layout = photonics::waveguide::ChipLayout::square(20.0, 64);
        let f = p.max_clock_ghz(layout.bus_length_mm(), 64);
        assert!(f < 0.1, "electronic shared bus at 16 cm: {f} GHz");
    }
}
