//! The five-port wormhole router.
//!
//! Ports: Local (0), North (1), East (2), South (3), West (4). Each input
//! port has a 2-flit buffer (the paper's "2-flit deep buffers output to
//! inter-processor channels"); each output port is a wormhole channel owned
//! by at most one in-flight packet between its head and tail flits, and
//! carries at most one flit per cycle.
//!
//! Input buffers are fixed-capacity inline rings ([`FlitRing`]) rather than
//! `VecDeque`s: a flit move touches one cache line of the router it lives
//! in instead of a separately heap-allocated block, which matters because
//! buffer push/pop is the hottest operation in the mesh simulator.

use crate::flit::{Flit, FlitKind};

/// Port indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Port {
    /// Processor / memory-interface attachment.
    Local = 0,
    /// Toward y − 1.
    North = 1,
    /// Toward x + 1.
    East = 2,
    /// Toward y + 1.
    South = 3,
    /// Toward x − 1.
    West = 4,
}

/// All ports, in arbitration order.
pub const PORTS: [Port; 5] = [
    Port::Local,
    Port::North,
    Port::East,
    Port::South,
    Port::West,
];

/// Number of ports.
pub const NUM_PORTS: usize = 5;

impl Port {
    /// Port from its index.
    pub fn from_index(i: usize) -> Port {
        PORTS[i]
    }

    /// The opposite direction (where a flit sent out `self` arrives).
    pub fn opposite(self) -> Port {
        match self {
            Port::Local => Port::Local,
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
        }
    }
}

/// Fixed-capacity inline FIFO of flits.
///
/// Capacity is [`FlitRing::MAX_DEPTH`]; the *logical* buffer depth is
/// enforced by the mesh via [`Router::has_space_depth`], so one ring type
/// serves every depth the buffer-ablation sweeps (2..=64). Storage is
/// inline — no heap allocation, no pointer chase on the hot path.
#[derive(Debug, Clone)]
pub struct FlitRing {
    slots: [Flit; Self::MAX_DEPTH],
    head: u32,
    len: u32,
}

impl Default for FlitRing {
    fn default() -> Self {
        const EMPTY: Flit = Flit {
            dest: 0,
            src: 0,
            payload: 0,
            kind: FlitKind::HeadTail,
            packet: 0,
            ready_at: 0,
            corrupted: false,
        };
        FlitRing {
            slots: [EMPTY; Self::MAX_DEPTH],
            head: 0,
            len: 0,
        }
    }
}

impl FlitRing {
    /// Physical ring capacity; the deepest buffer any experiment configures.
    pub const MAX_DEPTH: usize = 64;

    const MASK: u32 = Self::MAX_DEPTH as u32 - 1;

    /// Buffered flit count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The oldest buffered flit, if any.
    #[inline]
    pub fn front(&self) -> Option<&Flit> {
        if self.len == 0 {
            None
        } else {
            Some(&self.slots[(self.head & Self::MASK) as usize])
        }
    }

    /// Append a flit. Panics if the physical capacity is exceeded (the mesh
    /// checks logical space via [`Router::has_space_depth`] first).
    #[inline]
    pub fn push_back(&mut self, flit: Flit) {
        assert!(self.len() < Self::MAX_DEPTH, "FlitRing overflow");
        self.slots[((self.head + self.len) & Self::MASK) as usize] = flit;
        self.len += 1;
    }

    /// Remove and return the oldest buffered flit.
    #[inline]
    pub fn pop_front(&mut self) -> Option<Flit> {
        if self.len == 0 {
            return None;
        }
        let f = self.slots[(self.head & Self::MASK) as usize];
        self.head = self.head.wrapping_add(1);
        self.len -= 1;
        Some(f)
    }
}

/// Per-input-port state.
#[derive(Debug, Clone, Default)]
pub struct InputPort {
    /// The buffer (logical capacity enforced by [`Router::BUFFER_DEPTH`] /
    /// the configured depth; physical capacity [`FlitRing::MAX_DEPTH`]).
    pub buf: FlitRing,
    /// Output port assigned to the packet currently flowing through this
    /// input (set when its head is forwarded, cleared at its tail).
    pub route: Option<u8>,
}

/// Per-output-port state.
#[derive(Debug, Clone, Default)]
pub struct OutputPort {
    /// Input port currently owning this wormhole channel.
    pub owner: Option<u8>,
    /// Cycle stamp of the last forward through this output (≤ 1 flit/cycle).
    pub last_used: u64,
    /// Round-robin arbitration pointer.
    pub rr: u8,
}

/// One router.
#[derive(Debug, Clone)]
pub struct Router {
    /// Input side, indexed by [`Port`].
    pub inputs: [InputPort; NUM_PORTS],
    /// Output side, indexed by [`Port`].
    pub outputs: [OutputPort; NUM_PORTS],
}

impl Default for Router {
    fn default() -> Self {
        Router {
            inputs: Default::default(),
            outputs: [
                OutputPort {
                    last_used: u64::MAX,
                    ..Default::default()
                },
                OutputPort {
                    last_used: u64::MAX,
                    ..Default::default()
                },
                OutputPort {
                    last_used: u64::MAX,
                    ..Default::default()
                },
                OutputPort {
                    last_used: u64::MAX,
                    ..Default::default()
                },
                OutputPort {
                    last_used: u64::MAX,
                    ..Default::default()
                },
            ],
        }
    }
}

impl Router {
    /// Default input buffer depth in flits (§V-C-2: two).
    pub const BUFFER_DEPTH: usize = 2;

    /// Whether input `p` can accept another flit under a buffer depth of
    /// `depth` flits.
    pub fn has_space_depth(&self, p: usize, depth: usize) -> bool {
        self.inputs[p].buf.len() < depth
    }

    /// Whether input `p` can accept another flit at the paper's default
    /// 2-flit depth.
    pub fn has_space(&self, p: usize) -> bool {
        self.has_space_depth(p, Self::BUFFER_DEPTH)
    }

    /// Total buffered flits across all inputs.
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(|i| i.buf.len()).sum()
    }

    /// True when nothing is buffered anywhere in this router.
    pub fn is_empty(&self) -> bool {
        self.inputs.iter().all(|i| i.buf.is_empty())
    }

    /// Whether output `o` is free this cycle for input `p`:
    /// channel un-owned or owned by `p`, and not already used at `cycle`.
    pub fn output_available(&self, o: usize, p: usize, cycle: u64) -> bool {
        let out = &self.outputs[o];
        let owned_ok = match out.owner {
            None => true,
            Some(owner) => owner as usize == p,
        };
        owned_ok && (out.last_used == u64::MAX || out.last_used < cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, Packet};

    fn some_flit() -> Flit {
        Packet::headerless(0, 0, vec![1]).flits()[0]
    }

    #[test]
    fn opposite_ports() {
        assert_eq!(Port::North.opposite(), Port::South);
        assert_eq!(Port::East.opposite(), Port::West);
        assert_eq!(Port::Local.opposite(), Port::Local);
    }

    #[test]
    fn buffer_depth_enforced_via_has_space() {
        let mut r = Router::default();
        assert!(r.has_space(0));
        r.inputs[0].buf.push_back(some_flit());
        assert!(r.has_space(0));
        r.inputs[0].buf.push_back(some_flit());
        assert!(!r.has_space(0));
        assert_eq!(r.occupancy(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn output_availability_rules() {
        let mut r = Router::default();
        // Fresh output: available to anyone.
        assert!(r.output_available(2, 0, 10));
        // Owned by input 1: only input 1 may use it.
        r.outputs[2].owner = Some(1);
        assert!(!r.output_available(2, 0, 10));
        assert!(r.output_available(2, 1, 10));
        // Used this cycle: nobody may use it again.
        r.outputs[2].last_used = 10;
        assert!(!r.output_available(2, 1, 10));
        assert!(r.output_available(2, 1, 11));
    }

    #[test]
    fn flit_kind_roundtrip_via_packet() {
        let f = some_flit();
        assert_eq!(f.kind, FlitKind::HeadTail);
    }

    #[test]
    fn flit_ring_fifo_order_and_wraparound() {
        let mut ring = FlitRing::default();
        assert!(ring.is_empty());
        assert!(ring.front().is_none());
        // Push/pop more than MAX_DEPTH total so head wraps the ring.
        let mut next = 0u64;
        let mut expect = 0u64;
        for _ in 0..(FlitRing::MAX_DEPTH * 3) {
            let mut f = some_flit();
            f.payload = next;
            next += 1;
            ring.push_back(f);
            let mut g = some_flit();
            g.payload = next;
            next += 1;
            ring.push_back(g);
            assert_eq!(ring.len(), 2);
            assert_eq!(ring.front().unwrap().payload, expect);
            assert_eq!(ring.pop_front().unwrap().payload, expect);
            assert_eq!(ring.pop_front().unwrap().payload, expect + 1);
            expect += 2;
            assert!(ring.is_empty());
        }
    }

    #[test]
    fn flit_ring_holds_max_depth() {
        let mut ring = FlitRing::default();
        for i in 0..FlitRing::MAX_DEPTH as u64 {
            let mut f = some_flit();
            f.payload = i;
            ring.push_back(f);
        }
        assert_eq!(ring.len(), FlitRing::MAX_DEPTH);
        for i in 0..FlitRing::MAX_DEPTH as u64 {
            assert_eq!(ring.pop_front().unwrap().payload, i);
        }
        assert!(ring.is_empty());
    }
}
