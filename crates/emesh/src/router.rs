//! The five-port wormhole router.
//!
//! Ports: Local (0), North (1), East (2), South (3), West (4). Each input
//! port has a 2-flit buffer (the paper's "2-flit deep buffers output to
//! inter-processor channels"); each output port is a wormhole channel owned
//! by at most one in-flight packet between its head and tail flits, and
//! carries at most one flit per cycle.

use std::collections::VecDeque;

use crate::flit::Flit;

/// Port indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Port {
    /// Processor / memory-interface attachment.
    Local = 0,
    /// Toward y − 1.
    North = 1,
    /// Toward x + 1.
    East = 2,
    /// Toward y + 1.
    South = 3,
    /// Toward x − 1.
    West = 4,
}

/// All ports, in arbitration order.
pub const PORTS: [Port; 5] = [Port::Local, Port::North, Port::East, Port::South, Port::West];

/// Number of ports.
pub const NUM_PORTS: usize = 5;

impl Port {
    /// Port from its index.
    pub fn from_index(i: usize) -> Port {
        PORTS[i]
    }

    /// The opposite direction (where a flit sent out `self` arrives).
    pub fn opposite(self) -> Port {
        match self {
            Port::Local => Port::Local,
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
        }
    }
}

/// Per-input-port state.
#[derive(Debug, Clone, Default)]
pub struct InputPort {
    /// The buffer (capacity enforced by [`Router::BUFFER_DEPTH`]).
    pub buf: VecDeque<Flit>,
    /// Output port assigned to the packet currently flowing through this
    /// input (set when its head is forwarded, cleared at its tail).
    pub route: Option<u8>,
}

/// Per-output-port state.
#[derive(Debug, Clone, Default)]
pub struct OutputPort {
    /// Input port currently owning this wormhole channel.
    pub owner: Option<u8>,
    /// Cycle stamp of the last forward through this output (≤ 1 flit/cycle).
    pub last_used: u64,
    /// Round-robin arbitration pointer.
    pub rr: u8,
}

/// One router.
#[derive(Debug, Clone)]
pub struct Router {
    /// Input side, indexed by [`Port`].
    pub inputs: [InputPort; NUM_PORTS],
    /// Output side, indexed by [`Port`].
    pub outputs: [OutputPort; NUM_PORTS],
}

impl Default for Router {
    fn default() -> Self {
        Router {
            inputs: Default::default(),
            outputs: [
                OutputPort { last_used: u64::MAX, ..Default::default() },
                OutputPort { last_used: u64::MAX, ..Default::default() },
                OutputPort { last_used: u64::MAX, ..Default::default() },
                OutputPort { last_used: u64::MAX, ..Default::default() },
                OutputPort { last_used: u64::MAX, ..Default::default() },
            ],
        }
    }
}

impl Router {
    /// Default input buffer depth in flits (§V-C-2: two).
    pub const BUFFER_DEPTH: usize = 2;

    /// Whether input `p` can accept another flit under a buffer depth of
    /// `depth` flits.
    pub fn has_space_depth(&self, p: usize, depth: usize) -> bool {
        self.inputs[p].buf.len() < depth
    }

    /// Whether input `p` can accept another flit at the paper's default
    /// 2-flit depth.
    pub fn has_space(&self, p: usize) -> bool {
        self.has_space_depth(p, Self::BUFFER_DEPTH)
    }

    /// Total buffered flits across all inputs.
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(|i| i.buf.len()).sum()
    }

    /// True when nothing is buffered anywhere in this router.
    pub fn is_empty(&self) -> bool {
        self.inputs.iter().all(|i| i.buf.is_empty())
    }

    /// Whether output `o` is free this cycle for input `p`:
    /// channel un-owned or owned by `p`, and not already used at `cycle`.
    pub fn output_available(&self, o: usize, p: usize, cycle: u64) -> bool {
        let out = &self.outputs[o];
        let owned_ok = match out.owner {
            None => true,
            Some(owner) => owner as usize == p,
        };
        owned_ok && (out.last_used == u64::MAX || out.last_used < cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, Packet};

    fn some_flit() -> Flit {
        Packet::headerless(0, 0, vec![1]).flits()[0]
    }

    #[test]
    fn opposite_ports() {
        assert_eq!(Port::North.opposite(), Port::South);
        assert_eq!(Port::East.opposite(), Port::West);
        assert_eq!(Port::Local.opposite(), Port::Local);
    }

    #[test]
    fn buffer_depth_enforced_via_has_space() {
        let mut r = Router::default();
        assert!(r.has_space(0));
        r.inputs[0].buf.push_back(some_flit());
        assert!(r.has_space(0));
        r.inputs[0].buf.push_back(some_flit());
        assert!(!r.has_space(0));
        assert_eq!(r.occupancy(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn output_availability_rules() {
        let mut r = Router::default();
        // Fresh output: available to anyone.
        assert!(r.output_available(2, 0, 10));
        // Owned by input 1: only input 1 may use it.
        r.outputs[2].owner = Some(1);
        assert!(!r.output_available(2, 0, 10));
        assert!(r.output_available(2, 1, 10));
        // Used this cycle: nobody may use it again.
        r.outputs[2].last_used = 10;
        assert!(!r.output_available(2, 1, 10));
        assert!(r.output_available(2, 1, 11));
    }

    #[test]
    fn flit_kind_roundtrip_via_packet() {
        let f = some_flit();
        assert_eq!(f.kind, FlitKind::HeadTail);
    }
}
