//! # emesh
//!
//! The electronic baseline of the paper: a wormhole-routed 2-D mesh with the
//! §V-C-2 microarchitecture —
//!
//! * minimal (XY or minimal-adaptive) wormhole routing,
//! * 1-cycle delay to route a packet header in each encountered router
//!   (`t_r`),
//! * 2-flit-deep buffers on inter-processor channels,
//! * 64-bit flits moving between adjacent routers in 1 cycle,
//! * memory-interface nodes that must *reorder* arriving elements into DRAM
//!   rows, spending `t_p` cycles per element (§V-C-2's staging cost),
//!   backed by the [`memory`] crate's DRAM model.
//!
//! The simulator is cycle-accurate at flit granularity and deterministic.
//!
//! * [`flit`] — flits, packets and their wire format.
//! * [`topology`] — mesh coordinates and memory-interface placement.
//! * [`router`] — the five-port wormhole router.
//! * [`mesh`] — the clocked mesh fabric: injection, forwarding, ejection.
//! * [`memif`] — the memory-interface model with reorder staging + DRAM.
//! * [`workloads`] — the paper's traffic patterns: transpose gather
//!   (Table III), blocked scatter delivery (Tables I/II context, Fig. 11),
//!   and an SCA-equivalent gather for the Fig. 5 energy comparison.
//! * [`collectives`] — all-to-all / all-gather / all-reduce packet
//!   schedules over any mesh or torus geometry, phase-by-phase.
//! * [`faults`] — deterministic fault injection and resilience: transient
//!   corruption with NACK/retransmit at the memory interface, transient
//!   link outages, hard router kills, and a no-progress watchdog.
//! * [`energy`] — ORION-style per-flit router/link energy on a fixed
//!   2 cm × 2 cm die where the link-repeater count is inversely related to
//!   the number of network nodes (§III-C).

pub mod collectives;
pub mod ebus;
pub mod energy;
pub mod faults;
pub mod flit;
pub mod memif;
pub mod mesh;
pub mod router;
pub mod topology;
pub mod workloads;

pub use collectives::{run_mesh_collective, MeshCollectiveResult, MeshPhase};
pub use ebus::EbusParams;
pub use energy::{EnergyCounters, OrionParams};
pub use faults::{MeshDiagnostic, MeshFaultConfig, MeshFaultStats, RouterKill};
pub use flit::{Flit, FlitKind, Packet};
pub use mesh::{Mesh, MeshConfig, MeshError, RoutingPolicy};
pub use topology::{MemifPlacement, NodeCoord, Topology};

/// One-stop import for mesh experiments:
/// `use emesh::prelude::*;`.
pub mod prelude {
    pub use crate::energy::OrionParams;
    pub use crate::faults::{MeshFaultConfig, MeshFaultStats};
    pub use crate::flit::Packet;
    pub use crate::mesh::{Mesh, MeshConfig, MeshError, MeshRunResult, RoutingPolicy};
    pub use crate::topology::{MemifPlacement, Topology};
    pub use crate::workloads::{load_gather_energy, load_transpose};
}
