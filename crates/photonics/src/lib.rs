//! # photonics
//!
//! The chip-scale silicon-photonic physical layer underlying the PSCAN
//! (paper §III). This crate models everything below the network layer:
//!
//! * [`units`] — optical power in dBm/mW and loss in dB, with exact
//!   log-domain arithmetic.
//! * [`waveguide`] — propagation (≈7 cm/ns at λ = 1550 nm in silicon,
//!   paper §III), serpentine chip layouts, and per-position flight times.
//! * [`devices`] — ring resonators, modulators and photodiodes with their
//!   insertion losses, off-resonance losses and per-bit energies.
//! * [`budget`] — the link loss budget of Eqs. (1)–(3): segment loss
//!   `L_ws = L_r-off + D_m·L_w` and the maximum segment count
//!   `N ≤ (P_i − P_min-pd) / L_ws`.
//! * [`wdm`] — wavelength-division multiplexing plans (the paper's PSCAN
//!   link is 32 λ × 10 Gb/s = 320 Gb/s).
//! * [`clock`] — open-loop photonic clock distribution with *deliberate*
//!   per-node phase skew equal to the optical flight time (paper §III-A).
//! * [`energy`] — the photonic energy-per-bit model used for the Fig. 5
//!   comparison against the electronic mesh.

pub mod ber;
pub mod budget;
pub mod clock;
pub mod devices;
pub mod energy;
pub mod spectrum;
pub mod thermal;
pub mod units;
pub mod waveguide;
pub mod wdm;

pub use ber::ReceiverModel;
pub use budget::{LinkBudget, SegmentLoss};
pub use clock::PhotonicClock;
pub use devices::{Modulator, Photodiode, RingResonator};
pub use energy::PhotonicEnergyModel;
pub use spectrum::{check_plan, PlanCheck, RingSpectrum};
pub use thermal::ThermalModel;
pub use units::{DbLoss, OpticalPower};
pub use waveguide::{ChipLayout, Waveguide};
pub use wdm::WavelengthPlan;
