//! Optical power and loss units.
//!
//! Optical link budgets are naturally additive in the log (dB) domain:
//! a link closes iff `P_i [dBm] − ΣL [dB] ≥ P_min-pd [dBm]` (paper Eq. 1).
//! We keep power in dBm and loss in dB and convert to linear milliwatts only
//! at the edges.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Optical power referenced to 1 mW, in dBm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct OpticalPower(pub f64);

/// Attenuation in dB (non-negative).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct DbLoss(pub f64);

impl OpticalPower {
    /// Power from a dBm value.
    pub const fn from_dbm(dbm: f64) -> Self {
        OpticalPower(dbm)
    }

    /// Power from linear milliwatts (must be positive).
    pub fn from_mw(mw: f64) -> Self {
        assert!(mw > 0.0, "optical power must be positive, got {mw} mW");
        OpticalPower(10.0 * mw.log10())
    }

    /// dBm value.
    pub const fn dbm(self) -> f64 {
        self.0
    }

    /// Linear milliwatts.
    pub fn mw(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Linear watts.
    pub fn watts(self) -> f64 {
        self.mw() * 1e-3
    }
}

impl DbLoss {
    /// Zero attenuation.
    pub const ZERO: DbLoss = DbLoss(0.0);

    /// Loss from a dB value.
    ///
    /// # Panics
    /// Panics on negative values: gain is modeled separately (repeaters),
    /// never as negative loss.
    pub fn from_db(db: f64) -> Self {
        assert!(db >= 0.0, "loss must be non-negative, got {db} dB");
        DbLoss(db)
    }

    /// dB value.
    pub const fn db(self) -> f64 {
        self.0
    }

    /// Linear transmission factor in (0, 1].
    pub fn transmission(self) -> f64 {
        10f64.powf(-self.0 / 10.0)
    }
}

impl Sub<DbLoss> for OpticalPower {
    type Output = OpticalPower;
    fn sub(self, rhs: DbLoss) -> OpticalPower {
        OpticalPower(self.0 - rhs.0)
    }
}

impl Sub for OpticalPower {
    /// Power ratio between two levels, as a loss (`self` must be ≥ `rhs`).
    type Output = DbLoss;
    fn sub(self, rhs: OpticalPower) -> DbLoss {
        DbLoss::from_db(self.0 - rhs.0)
    }
}

impl Add for DbLoss {
    type Output = DbLoss;
    fn add(self, rhs: DbLoss) -> DbLoss {
        DbLoss(self.0 + rhs.0)
    }
}

impl AddAssign for DbLoss {
    fn add_assign(&mut self, rhs: DbLoss) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for DbLoss {
    type Output = DbLoss;
    fn mul(self, rhs: f64) -> DbLoss {
        assert!(rhs >= 0.0, "loss scale factor must be non-negative");
        DbLoss(self.0 * rhs)
    }
}

impl Sum for DbLoss {
    fn sum<I: Iterator<Item = DbLoss>>(iter: I) -> DbLoss {
        iter.fold(DbLoss::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for OpticalPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl fmt::Display for DbLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn dbm_mw_roundtrip() {
        close(OpticalPower::from_dbm(0.0).mw(), 1.0);
        close(OpticalPower::from_dbm(10.0).mw(), 10.0);
        close(OpticalPower::from_dbm(-20.0).mw(), 0.01);
        close(OpticalPower::from_mw(2.0).dbm(), 10.0 * 2f64.log10());
    }

    #[test]
    fn loss_subtraction() {
        let p = OpticalPower::from_dbm(10.0) - DbLoss::from_db(13.0);
        close(p.dbm(), -3.0);
    }

    #[test]
    fn loss_halves_power_at_3db() {
        let t = DbLoss::from_db(3.0103).transmission();
        assert!((t - 0.5).abs() < 1e-4, "3 dB should halve power, got {t}");
    }

    #[test]
    fn losses_accumulate() {
        let total: DbLoss = [1.0, 0.5, 0.25].iter().map(|&d| DbLoss::from_db(d)).sum();
        close(total.db(), 1.75);
    }

    #[test]
    fn power_difference_is_loss() {
        let l = OpticalPower::from_dbm(5.0) - OpticalPower::from_dbm(-20.0);
        close(l.db(), 25.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_loss_rejected() {
        let _ = DbLoss::from_db(-1.0);
    }

    #[test]
    fn watts_conversion() {
        close(OpticalPower::from_dbm(0.0).watts(), 1e-3);
    }
}
