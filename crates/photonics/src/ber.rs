//! Receiver bit-error-rate model: where `P_min-pd` comes from.
//!
//! Eq. (1) treats the photodiode's minimum detectable power as a given.
//! Physically it falls out of a BER target: the received photocurrent must
//! stand far enough above the receiver's input-referred noise that the
//! Gaussian tail past the decision threshold is below, say, 10⁻¹². With
//! OOK and equal 0/1 likelihoods, `BER = ½·erfc(Q/√2)` and the required
//! average optical power is `P = Q·σ_I / R` (responsivity `R`), halved
//! because the average of full-swing OOK is half the peak.
//!
//! This module derives the sensitivity so the link budget's −20 dBm default
//! is a *consequence*, not an assumption.

use serde::{Deserialize, Serialize};

use crate::units::OpticalPower;

/// Receiver front-end parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReceiverModel {
    /// Photodiode responsivity, amperes per watt (≈ 1.0 A/W at 1550 nm).
    pub responsivity_a_per_w: f64,
    /// Input-referred noise current spectral density, pA/√Hz
    /// (TIA-dominated: ~20 pA/√Hz for a 10 Gb/s front end of the era).
    pub noise_pa_per_sqrt_hz: f64,
    /// Receiver electrical bandwidth as a fraction of the bit rate (~0.7).
    pub bandwidth_fraction: f64,
}

impl Default for ReceiverModel {
    fn default() -> Self {
        ReceiverModel {
            responsivity_a_per_w: 1.0,
            noise_pa_per_sqrt_hz: 20.0,
            bandwidth_fraction: 0.7,
        }
    }
}

/// `erfc` via the Abramowitz–Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7 — far tighter than any BER target we set).
fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let y = poly * (-x * x).exp();
    if sign_negative {
        2.0 - y
    } else {
        y
    }
}

impl ReceiverModel {
    /// RMS noise current in amperes at a given bit rate.
    pub fn noise_rms_a(&self, rate_gbps: f64) -> f64 {
        let bw_hz = self.bandwidth_fraction * rate_gbps * 1e9;
        self.noise_pa_per_sqrt_hz * 1e-12 * bw_hz.sqrt()
    }

    /// BER for a received *average* OOK power at a bit rate.
    pub fn ber(&self, power: OpticalPower, rate_gbps: f64) -> f64 {
        // Peak current = 2 × average (full-extinction OOK); Q = I_peak/2σ
        // ... signal distance between levels is I_peak, each level sees σ:
        // Q = I_peak / (2σ) with I_peak = 2·R·P_avg.
        let i_peak = 2.0 * self.responsivity_a_per_w * power.watts();
        let q = i_peak / (2.0 * self.noise_rms_a(rate_gbps));
        0.5 * erfc(q / std::f64::consts::SQRT_2)
    }

    /// Minimum average optical power for a BER target — the physically
    /// derived `P_min-pd` of Eq. (1).
    pub fn sensitivity(&self, rate_gbps: f64, ber_target: f64) -> OpticalPower {
        assert!((0.0..0.5).contains(&ber_target), "BER target in (0, 0.5)");
        // Invert numerically: Q grows monotonically as power rises.
        let (mut lo, mut hi): (f64, f64) = (1e-9, 1.0); // watts
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.ber(OpticalPower::from_mw(mid * 1e3), rate_gbps) > ber_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        OpticalPower::from_mw(hi * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn sensitivity_near_minus_20_dbm_at_10g() {
        // The crate's default Photodiode sensitivity (−20 dBm at 10 Gb/s)
        // should emerge from this receiver at a 1e-12 BER within a few dB.
        let rx = ReceiverModel::default();
        let s = rx.sensitivity(10.0, 1e-12);
        assert!(
            (-24.0..=-16.0).contains(&s.dbm()),
            "derived sensitivity {s} should be near -20 dBm"
        );
    }

    #[test]
    fn faster_rates_need_more_power() {
        let rx = ReceiverModel::default();
        let s10 = rx.sensitivity(10.0, 1e-12);
        let s40 = rx.sensitivity(40.0, 1e-12);
        // 4x bandwidth -> 2x noise -> +3 dB sensitivity.
        assert!((s40.dbm() - s10.dbm() - 3.0).abs() < 0.3);
    }

    #[test]
    fn ber_falls_monotonically_with_power() {
        let rx = ReceiverModel::default();
        let mut last = 1.0;
        for dbm in [-30.0, -25.0, -20.0, -15.0] {
            let b = rx.ber(OpticalPower::from_dbm(dbm), 10.0);
            assert!(b < last, "{dbm} dBm: {b}");
            last = b;
        }
        assert!(last < 1e-15);
    }

    #[test]
    fn tighter_ber_targets_cost_power() {
        let rx = ReceiverModel::default();
        let loose = rx.sensitivity(10.0, 1e-9);
        let tight = rx.sensitivity(10.0, 1e-15);
        assert!(tight.dbm() > loose.dbm());
        assert!(tight.dbm() - loose.dbm() < 2.0, "but only by a dB or so");
    }
}
