//! Open-loop photonic clock distribution — paper §III-A.
//!
//! Unlike an electronic H-tree, which fights to deliver *zero* skew, the
//! PSCAN clock travels down the waveguide and is detected at each tap with
//! a skew exactly equal to the optical flight time to that tap. That skew is
//! the mechanism that makes the SCA work: a node that modulates data aligned
//! to its *locally observed* clock produces light that is globally aligned
//! with the clock wavefront, because clock and data co-propagate at the same
//! speed. No PLL/DLL is used ("open-loop distribution").

use serde::{Deserialize, Serialize};
use sim_core::time::{Duration, Time};

use crate::waveguide::ChipLayout;

/// The photonic clock generator at the head of a PSCAN bus and the resulting
/// per-tap timing frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhotonicClock {
    /// Clock (= bit slot) period.
    pub period: Duration,
    /// Time the generator launches edge 0 into the waveguide.
    pub origin: Time,
    /// Fixed electrical response delay between a tap detecting a clock edge
    /// and its modulator acting on it ("a short delay for P0 to sense and
    /// respond to the clock" — §III, Fig. 4). Identical at every tap, so it
    /// cancels out of inter-node alignment.
    pub response_delay: Duration,
    /// Flight times from the generator to each tap.
    tap_flight: Vec<Duration>,
}

impl PhotonicClock {
    /// Clock for a given layout, launching edge 0 at `origin`.
    pub fn new(layout: &ChipLayout, period: Duration, origin: Time) -> Self {
        assert!(period.as_ps() > 0, "clock period must be positive");
        let tap_flight = (0..layout.nodes).map(|i| layout.flight_to_tap(i)).collect();
        PhotonicClock {
            period,
            origin,
            response_delay: Duration::from_ps(20),
            tap_flight,
        }
    }

    /// Number of taps this clock serves.
    pub fn taps(&self) -> usize {
        self.tap_flight.len()
    }

    /// Flight time from the generator to tap `i` (the tap's fixed skew).
    pub fn skew(&self, tap: usize) -> Duration {
        self.tap_flight[tap]
    }

    /// Absolute time at which tap `i` *detects* clock edge `k`.
    pub fn edge_at_tap(&self, tap: usize, k: u64) -> Time {
        self.origin + self.period * k + self.skew(tap)
    }

    /// Absolute time at which tap `i`'s modulator can first *drive* data for
    /// clock edge `k` (detection + response delay).
    pub fn drive_time(&self, tap: usize, k: u64) -> Time {
        self.edge_at_tap(tap, k) + self.response_delay
    }

    /// Absolute time at which light driven at tap `i` for edge `k` passes a
    /// downstream position with flight-time offset `extra` from tap `i`.
    pub fn wavefront_downstream(&self, tap: usize, k: u64, extra: Duration) -> Time {
        self.drive_time(tap, k) + extra
    }

    /// The clock edge index whose wavefront is at the bus head at time `t`
    /// (saturating to 0 before the origin).
    pub fn edge_index_at_origin(&self, t: Time) -> u64 {
        t.saturating_since(self.origin).as_ps() / self.period.as_ps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock16() -> PhotonicClock {
        let layout = ChipLayout::square(20.0, 16);
        PhotonicClock::new(&layout, Duration::from_ps(100), Time::ZERO)
    }

    #[test]
    fn skew_grows_downstream() {
        let c = clock16();
        for i in 1..c.taps() {
            assert!(c.skew(i) > c.skew(i - 1));
        }
    }

    #[test]
    fn edge_times_are_periodic_per_tap() {
        let c = clock16();
        let d = c.edge_at_tap(5, 7).since(c.edge_at_tap(5, 3));
        assert_eq!(d, Duration::from_ps(400));
    }

    #[test]
    fn same_edge_reaches_taps_in_position_order() {
        // "a particular clock cycle will be detected at different times by
        // each processor" — and strictly in downstream order.
        let c = clock16();
        for i in 1..c.taps() {
            assert!(c.edge_at_tap(i, 0) > c.edge_at_tap(i - 1, 0));
        }
    }

    #[test]
    fn cophasal_alignment_downstream() {
        // THE key property (§III, Fig. 4): if tap A drives data on its local
        // edge k, the data wavefront arrives at downstream tap B exactly when
        // B observes edge k (+ the common response delay). So B's slot k and
        // A's slot k coincide on the wire.
        let layout = ChipLayout::square(20.0, 16);
        let c = PhotonicClock::new(&layout, Duration::from_ps(100), Time::ZERO);
        let (a, b) = (3usize, 11usize);
        let flight_ab = layout.flight_between(a, b);
        let arrival = c.wavefront_downstream(a, 9, flight_ab);
        let local_edge_b = c.edge_at_tap(b, 9) + c.response_delay;
        // Equal up to the 1 ps rounding of independent flight legs.
        assert!(
            arrival.as_ps().abs_diff(local_edge_b.as_ps()) <= 1,
            "arrival {arrival:?} vs local edge {local_edge_b:?}"
        );
    }

    #[test]
    fn edge_index_at_origin_counts_periods() {
        let c = clock16();
        assert_eq!(c.edge_index_at_origin(Time::ZERO), 0);
        assert_eq!(c.edge_index_at_origin(Time::from_ps(99)), 0);
        assert_eq!(c.edge_index_at_origin(Time::from_ps(100)), 1);
        assert_eq!(c.edge_index_at_origin(Time::from_ps(1050)), 10);
    }
}
