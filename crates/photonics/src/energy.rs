//! Photonic energy-per-bit model — the PSCAN side of the Fig. 5 comparison.
//!
//! Energy per transported bit decomposes into:
//!
//! * **Laser**: continuous-wave electrical power (optical output scaled by
//!   wall-plug efficiency), sized so the link budget closes for the given
//!   node count, amortized over the aggregate data rate;
//! * **Thermal tuning**: static microheater power holding every ring on its
//!   resonance, also amortized over the data rate;
//! * **Modulator**: dynamic energy per modulated bit;
//! * **Receiver**: dynamic energy per detected bit;
//! * **SerDes/clocking**: per-bit energy of the dual-clock FIFO and
//!   serializer at each active tap.
//!
//! This mirrors the PhoenixSim decomposition the paper used (§III-C), with
//! constants from the same era of device literature.

use serde::{Deserialize, Serialize};

use crate::devices::{Laser, Modulator, Photodiode};
use crate::units::OpticalPower;
use crate::waveguide::ChipLayout;
use crate::wdm::WavelengthPlan;

/// Per-component energy/power breakdown for a PSCAN configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Laser electrical power amortized per bit, in picojoules.
    pub laser_pj_per_bit: f64,
    /// Ring thermal tuning amortized per bit, in picojoules.
    pub tuning_pj_per_bit: f64,
    /// Modulator dynamic energy per bit, in picojoules.
    pub modulator_pj_per_bit: f64,
    /// Receiver dynamic energy per bit, in picojoules.
    pub receiver_pj_per_bit: f64,
    /// SerDes + dual-clock FIFO energy per bit, in picojoules.
    pub serdes_pj_per_bit: f64,
}

impl EnergyBreakdown {
    /// Total energy per bit in picojoules.
    pub fn total_pj_per_bit(&self) -> f64 {
        self.laser_pj_per_bit
            + self.tuning_pj_per_bit
            + self.modulator_pj_per_bit
            + self.receiver_pj_per_bit
            + self.serdes_pj_per_bit
    }
}

/// Energy model for a full PSCAN bus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhotonicEnergyModel {
    /// Device models.
    pub modulator: Modulator,
    /// Receiver model.
    pub photodiode: Photodiode,
    /// Laser wall-plug efficiency (output power is solved from the budget).
    pub laser_efficiency: f64,
    /// Waveguide loss model.
    pub waveguide_loss_db_per_cm: f64,
    /// WDM plan (per-wavelength rate, lambda count).
    pub plan: WavelengthPlan,
    /// SerDes + FIFO electrical energy per bit at each active tap, pJ.
    /// Representative of a 10 Gb/s SerDes lane: ~0.3 pJ/bit.
    pub serdes_pj_per_bit: f64,
    /// Optical power margin added above exact closure, in dB.
    pub margin_db: f64,
}

impl Default for PhotonicEnergyModel {
    fn default() -> Self {
        PhotonicEnergyModel {
            modulator: Modulator::default(),
            photodiode: Photodiode::default(),
            laser_efficiency: 0.1,
            waveguide_loss_db_per_cm: 0.3,
            plan: WavelengthPlan::paper_320g(),
            serdes_pj_per_bit: 0.3,
            margin_db: 3.0,
        }
    }
}

impl PhotonicEnergyModel {
    /// Per-wavelength laser output needed to close one span when the bus is
    /// divided by `repeaters` O-E-O repeaters, or `None` if it would exceed
    /// a practical +15 dBm on-chip launch ceiling. Loss grows linearly in
    /// dB (exponentially in watts) with span length, so splitting a long
    /// bus can *reduce* total laser power.
    fn span_laser(&self, layout: &ChipLayout, repeaters: usize) -> Option<OpticalPower> {
        const MAX_LAUNCH_DBM: f64 = 15.0;
        let span_nodes = layout.nodes.div_ceil(repeaters + 1);
        let span_mm = layout.bus_length_mm() / (repeaters + 1) as f64;
        let span_loss = self.modulator.pass_loss().db() * span_nodes as f64
            + self.waveguide_loss_db_per_cm * span_mm / 10.0;
        let fixed = self.modulator.insertion_loss.db() + self.modulator.ring.drop_loss.db() + 1.0; // coupler
        let need = self.photodiode.sensitivity.dbm() + span_loss + fixed + self.margin_db;
        (need <= MAX_LAUNCH_DBM).then(|| OpticalPower::from_dbm(need))
    }

    /// The energy-optimal repeater count and per-wavelength laser output:
    /// repeaters trade O-E-O conversion energy against the exponential
    /// laser-power cost of a long unrepeatered span. Minimizes total
    /// energy/bit over 0..=8 repeaters.
    pub fn required_laser(&self, layout: &ChipLayout) -> (OpticalPower, usize) {
        (0..=8usize)
            .filter_map(|r| {
                self.span_laser(layout, r).map(|p| {
                    let e = self.breakdown_for(layout, p, r).total_pj_per_bit();
                    (p, r, e)
                })
            })
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite energies"))
            .map(|(p, r, _)| (p, r))
            .unwrap_or_else(|| {
                panic!(
                    "no feasible laser power for {} nodes on {} mm bus",
                    layout.nodes,
                    layout.bus_length_mm()
                )
            })
    }

    /// Energy breakdown for a gather (SCA) in which every tap contributes and
    /// the head-end receiver detects the full aggregate stream, at the
    /// energy-optimal repeater count.
    pub fn sca_energy(&self, layout: &ChipLayout) -> EnergyBreakdown {
        let (laser_per_lambda, repeaters) = self.required_laser(layout);
        self.breakdown_for(layout, laser_per_lambda, repeaters)
    }

    fn breakdown_for(
        &self,
        layout: &ChipLayout,
        laser_per_lambda: OpticalPower,
        repeaters: usize,
    ) -> EnergyBreakdown {
        let lambdas = self.plan.data_lambdas as f64;
        let agg_bps = self.plan.aggregate_gbps() * 1e9;

        // Continuous powers (watts).
        let laser_elec_w = Laser {
            output: laser_per_lambda,
            wall_plug_efficiency: self.laser_efficiency,
        }
        .electrical_watts()
            * lambdas
            * (repeaters + 1) as f64;

        let total_rings = layout.nodes * self.plan.rings_per_tap();
        let tuning_w = total_rings as f64 * self.modulator.ring.tuning_power_uw * 1e-6;

        // Dynamic, already per-bit (convert fJ -> pJ).
        let modulator_pj = self.modulator.energy_fj_per_bit * 1e-3;
        // Receiver energy: final detector plus one extra O-E-O per repeater.
        let receiver_pj = self.photodiode.energy_fj_per_bit * 1e-3 * (1.0 + repeaters as f64);

        EnergyBreakdown {
            laser_pj_per_bit: laser_elec_w / agg_bps * 1e12,
            tuning_pj_per_bit: tuning_w / agg_bps * 1e12,
            modulator_pj_per_bit: modulator_pj,
            receiver_pj_per_bit: receiver_pj,
            serdes_pj_per_bit: self.serdes_pj_per_bit * (1.0 + repeaters as f64),
        }
    }

    /// Convenience: total pJ/bit for an SCA on a square die of `die_mm` with
    /// `nodes` taps.
    pub fn sca_pj_per_bit(&self, die_mm: f64, nodes: usize) -> f64 {
        self.sca_energy(&ChipLayout::square(die_mm, nodes))
            .total_pj_per_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums() {
        let b = EnergyBreakdown {
            laser_pj_per_bit: 0.1,
            tuning_pj_per_bit: 0.2,
            modulator_pj_per_bit: 0.3,
            receiver_pj_per_bit: 0.4,
            serdes_pj_per_bit: 0.5,
        };
        assert!((b.total_pj_per_bit() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn laser_power_feasible_for_paper_sizes() {
        let m = PhotonicEnergyModel::default();
        for nodes in [16, 64, 256, 1024] {
            let layout = ChipLayout::square(20.0, nodes);
            let (p, reps) = m.required_laser(&layout);
            assert!(p.dbm() <= 15.0, "launch {p} for {nodes} nodes");
            assert!(reps <= 3, "{reps} repeaters for {nodes} nodes");
        }
    }

    #[test]
    fn energy_stays_sub_pj_scale() {
        // The PSCAN energy/bit in Fig. 5 is order ~1 pJ/bit; sanity-band it.
        let m = PhotonicEnergyModel::default();
        for nodes in [16, 64, 256, 1024] {
            let e = m.sca_pj_per_bit(20.0, nodes);
            assert!(
                (0.05..10.0).contains(&e),
                "energy/bit {e} pJ out of band for {nodes} nodes"
            );
        }
    }

    #[test]
    fn more_nodes_cost_more_tuning() {
        let m = PhotonicEnergyModel::default();
        let e64 = m.sca_energy(&ChipLayout::square(20.0, 64));
        let e1024 = m.sca_energy(&ChipLayout::square(20.0, 1024));
        assert!(e1024.tuning_pj_per_bit > e64.tuning_pj_per_bit);
    }

    #[test]
    fn dynamic_terms_are_node_count_independent() {
        let m = PhotonicEnergyModel::default();
        let a = m.sca_energy(&ChipLayout::square(20.0, 16));
        let b = m.sca_energy(&ChipLayout::square(20.0, 256));
        assert_eq!(a.modulator_pj_per_bit, b.modulator_pj_per_bit);
    }
}
