//! Waveguide propagation and chip layout.
//!
//! The paper (§III) gives the one physical fact the whole architecture rests
//! on: 1550 nm light travels ≈ 7 cm/ns in a silicon waveguide and the speed
//! is **independent of the waveguide length** — only loss accumulates with
//! distance. [`Waveguide`] converts positions to flight times exactly (in
//! integer picoseconds via a rational mm-per-ps representation), and
//! [`ChipLayout`] places `n` evenly pitched node taps along a serpentine bus
//! on a fixed-size die, which is how the PSCAN reaches every processor.

use serde::{Deserialize, Serialize};
use sim_core::time::Duration;

use crate::units::DbLoss;

/// Propagation speed of light in a silicon waveguide, in mm per ns.
///
/// The paper's figure: "Light with a wavelength of 1550 nm ... will travel
/// approximately 7 cm/ns in a silicon waveguide" (group index ≈ 4.3).
pub const SPEED_MM_PER_NS: f64 = 70.0;

/// A straight run of waveguide with a length and a per-length loss.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Waveguide {
    /// Physical length in millimetres.
    pub length_mm: f64,
    /// Propagation loss in dB per centimetre (≈ 1 dB/cm for typical
    /// early-2010s silicon strip waveguides).
    pub loss_db_per_cm: f64,
}

impl Waveguide {
    /// A waveguide of `length_mm` with the default 1 dB/cm loss.
    pub fn new(length_mm: f64) -> Self {
        assert!(length_mm >= 0.0, "waveguide length must be non-negative");
        Waveguide {
            length_mm,
            loss_db_per_cm: 1.0,
        }
    }

    /// Same geometry, different propagation loss.
    pub fn with_loss(mut self, db_per_cm: f64) -> Self {
        assert!(db_per_cm >= 0.0);
        self.loss_db_per_cm = db_per_cm;
        self
    }

    /// One-way flight time over the full length.
    pub fn flight_time(&self) -> Duration {
        flight_time_mm(self.length_mm)
    }

    /// Total propagation loss over the full length.
    pub fn loss(&self) -> DbLoss {
        DbLoss::from_db(self.loss_db_per_cm * self.length_mm / 10.0)
    }

    /// Loss over a partial run of `mm` millimetres.
    pub fn loss_over(&self, mm: f64) -> DbLoss {
        assert!(
            (0.0..=self.length_mm + 1e-9).contains(&mm),
            "position {mm} mm outside waveguide of {} mm",
            self.length_mm
        );
        DbLoss::from_db(self.loss_db_per_cm * mm / 10.0)
    }
}

/// Flight time for a distance along a silicon waveguide.
///
/// 70 mm/ns = 0.070 mm/ps, so `t_ps = mm / 0.070`. Rounded to the nearest
/// picosecond; at a 100 ps bit slot (10 Gb/s) this rounding is < 1 % of a
/// slot and absorbed by the per-node constant skew the paper describes.
pub fn flight_time_mm(mm: f64) -> Duration {
    assert!(mm >= 0.0, "distance must be non-negative");
    Duration::from_ps((mm / SPEED_MM_PER_NS * 1e3).round() as u64)
}

/// Placement of `n` node taps along a serpentine waveguide crossing a die.
///
/// The PSCAN "must traverse a chip in a serpentine pattern" (§III-B). We
/// model the serpentine as `rows` horizontal passes of the die width joined
/// by short turns; taps are evenly pitched along the unrolled length, which
/// is the paper's "modulators are evenly spaced along the waveguide"
/// assumption.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipLayout {
    /// Die edge in millimetres (paper fixes 2 cm × 2 cm for Fig. 5).
    pub die_mm: f64,
    /// Number of serpentine passes across the die.
    pub rows: usize,
    /// Number of node taps.
    pub nodes: usize,
    /// Extra waveguide length per 180° turn, in millimetres.
    pub turn_mm: f64,
}

impl ChipLayout {
    /// Serpentine layout for `nodes` taps on a square die of `die_mm`,
    /// using √nodes passes (one per processor row of a square array).
    pub fn square(die_mm: f64, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        let rows = (nodes as f64).sqrt().ceil() as usize;
        ChipLayout {
            die_mm,
            rows: rows.max(1),
            nodes,
            turn_mm: 0.1,
        }
    }

    /// Total unrolled bus length in millimetres.
    pub fn bus_length_mm(&self) -> f64 {
        let straight = self.die_mm * self.rows as f64;
        let turns = self.turn_mm * self.rows.saturating_sub(1) as f64;
        straight + turns
    }

    /// Position of tap `i` (0-based) along the unrolled bus, in millimetres.
    ///
    /// Taps are evenly pitched with half-pitch margins at both ends, so the
    /// inter-tap pitch equals `bus_length / nodes` — the `D_m` of Eq. (2).
    pub fn tap_position_mm(&self, i: usize) -> f64 {
        assert!(
            i < self.nodes,
            "tap {i} out of range ({} nodes)",
            self.nodes
        );
        let pitch = self.pitch_mm();
        pitch * (i as f64 + 0.5)
    }

    /// Inter-tap pitch `D_m` in millimetres.
    pub fn pitch_mm(&self) -> f64 {
        self.bus_length_mm() / self.nodes as f64
    }

    /// Flight time from the bus head (position 0) to tap `i`.
    pub fn flight_to_tap(&self, i: usize) -> Duration {
        flight_time_mm(self.tap_position_mm(i))
    }

    /// Flight time between taps `i` and `j` (i ≤ j).
    pub fn flight_between(&self, i: usize, j: usize) -> Duration {
        assert!(i <= j, "flight_between expects i <= j");
        flight_time_mm(self.tap_position_mm(j) - self.tap_position_mm(i))
    }

    /// Flight time over the entire bus.
    pub fn end_to_end(&self) -> Duration {
        flight_time_mm(self.bus_length_mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_cm_per_ns() {
        // 70 mm should take exactly 1 ns.
        assert_eq!(flight_time_mm(70.0), Duration::from_ns(1));
        // 7 mm -> 100 ps, one 10 Gb/s bit slot.
        assert_eq!(flight_time_mm(7.0), Duration::from_ps(100));
    }

    #[test]
    fn waveguide_loss_scales_with_length() {
        let wg = Waveguide::new(20.0); // 2 cm at 1 dB/cm
        assert!((wg.loss().db() - 2.0).abs() < 1e-12);
        assert!((wg.loss_over(10.0).db() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn waveguide_custom_loss() {
        let wg = Waveguide::new(10.0).with_loss(0.5);
        assert!((wg.loss().db() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serpentine_length() {
        let l = ChipLayout::square(20.0, 16); // 4 passes of 20 mm + 3 turns
        assert_eq!(l.rows, 4);
        assert!((l.bus_length_mm() - (80.0 + 0.3)).abs() < 1e-9);
    }

    #[test]
    fn taps_are_evenly_pitched_and_ordered() {
        let l = ChipLayout::square(20.0, 64);
        let pitch = l.pitch_mm();
        for i in 0..64 {
            let p = l.tap_position_mm(i);
            assert!((p - pitch * (i as f64 + 0.5)).abs() < 1e-9);
            if i > 0 {
                assert!(p > l.tap_position_mm(i - 1));
            }
        }
        // Last tap is inside the bus.
        assert!(l.tap_position_mm(63) < l.bus_length_mm());
    }

    #[test]
    fn flight_between_is_consistent() {
        let l = ChipLayout::square(20.0, 16);
        let a = l.flight_to_tap(3).as_ps();
        let b = l.flight_to_tap(9).as_ps();
        let d = l.flight_between(3, 9).as_ps();
        // Rounding each leg independently can differ by at most 1 ps.
        assert!((b - a).abs_diff(d) <= 1);
    }

    #[test]
    fn single_node_layout() {
        let l = ChipLayout::square(20.0, 1);
        assert_eq!(l.rows, 1);
        assert!((l.tap_position_mm(0) - l.bus_length_mm() / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tap_bounds_checked() {
        ChipLayout::square(20.0, 4).tap_position_mm(4);
    }
}
