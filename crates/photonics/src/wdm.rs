//! Wavelength-division multiplexing plans.
//!
//! The paper's PSCAN link is "composed of 32 wavelengths each modulated at
//! 10 Gb/s" for 320 Gb/s aggregate (§III-C). A [`WavelengthPlan`] assigns
//! roles to wavelengths: one clock wavelength `λ_c` plus a set of data
//! wavelengths `λ_d` (paper §III, Fig. 4), and converts between bit slots,
//! bus words and wall-clock time.

use serde::{Deserialize, Serialize};
use sim_core::time::Duration;

/// Role a wavelength plays on the PSCAN bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WavelengthRole {
    /// Carries the modulated global clock (`λ_c`).
    Clock,
    /// Carries data (`λ_d`).
    Data,
}

/// A WDM channel plan for one PSCAN bus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WavelengthPlan {
    /// Number of data wavelengths.
    pub data_lambdas: usize,
    /// Modulation rate per wavelength in Gb/s.
    pub rate_gbps_per_lambda: f64,
    /// Whether the clock rides the data waveguide (single-waveguide design)
    /// or a path-length-matched parallel waveguide (§III-A discusses both).
    pub clock_on_same_waveguide: bool,
}

impl WavelengthPlan {
    /// The paper's evaluation plan: 32 λ × 10 Gb/s = 320 Gb/s, clock on a
    /// parallel path-length-matched waveguide.
    pub fn paper_320g() -> Self {
        WavelengthPlan {
            data_lambdas: 32,
            rate_gbps_per_lambda: 10.0,
            clock_on_same_waveguide: false,
        }
    }

    /// A plan with `n` data wavelengths at `rate` Gb/s each.
    pub fn new(n: usize, rate: f64) -> Self {
        assert!(n > 0, "need at least one data wavelength");
        assert!(rate > 0.0, "rate must be positive");
        WavelengthPlan {
            data_lambdas: n,
            rate_gbps_per_lambda: rate,
            clock_on_same_waveguide: false,
        }
    }

    /// Aggregate bandwidth in Gb/s.
    pub fn aggregate_gbps(&self) -> f64 {
        self.data_lambdas as f64 * self.rate_gbps_per_lambda
    }

    /// Duration of one bit slot on a single wavelength.
    pub fn slot(&self) -> Duration {
        Duration::from_freq_ghz(self.rate_gbps_per_lambda)
    }

    /// Bits carried across all data wavelengths in one slot (a "bus word").
    pub fn bits_per_slot(&self) -> u64 {
        self.data_lambdas as u64
    }

    /// Number of slots (bus cycles) to carry `bits` bits, rounded up.
    pub fn slots_for_bits(&self, bits: u64) -> u64 {
        bits.div_ceil(self.bits_per_slot())
    }

    /// Time to carry `bits` bits at full utilization.
    pub fn time_for_bits(&self, bits: u64) -> Duration {
        self.slot() * self.slots_for_bits(bits)
    }

    /// Total rings per node tap: one modulator ring per data wavelength plus
    /// one clock drop filter.
    pub fn rings_per_tap(&self) -> usize {
        self.data_lambdas + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_is_320_gbps() {
        let p = WavelengthPlan::paper_320g();
        assert_eq!(p.data_lambdas, 32);
        assert!((p.aggregate_gbps() - 320.0).abs() < 1e-12);
        assert_eq!(p.slot().as_ps(), 100);
        assert_eq!(p.bits_per_slot(), 32);
    }

    #[test]
    fn slots_round_up() {
        let p = WavelengthPlan::paper_320g();
        assert_eq!(p.slots_for_bits(0), 0);
        assert_eq!(p.slots_for_bits(1), 1);
        assert_eq!(p.slots_for_bits(32), 1);
        assert_eq!(p.slots_for_bits(33), 2);
        // A 64-bit FFT sample takes 2 slots = 200 ps.
        assert_eq!(p.time_for_bits(64).as_ps(), 200);
    }

    #[test]
    fn a_2048_bit_dram_row_takes_64_slots() {
        // Cross-check with the Table III parameters: S_r = 2048 bits on a
        // 32-bit-wide bus word -> 64 bus cycles of payload.
        let p = WavelengthPlan::paper_320g();
        assert_eq!(p.slots_for_bits(2048), 64);
    }

    #[test]
    fn rings_include_clock_filter() {
        assert_eq!(WavelengthPlan::paper_320g().rings_per_tap(), 33);
    }

    #[test]
    fn custom_plan() {
        let p = WavelengthPlan::new(64, 10.0);
        assert!((p.aggregate_gbps() - 640.0).abs() < 1e-12);
    }
}
