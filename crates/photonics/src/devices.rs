//! Photonic devices: ring resonators, modulators, photodiodes.
//!
//! A PSCAN node tap consists of a ring-resonator modulator (to drive data
//! onto the bus) and a drop filter + photodiode (to detect the clock and,
//! on SCA⁻¹, the data). Device parameters default to values representative
//! of the 2010–2013 silicon-photonics literature the paper builds on
//! (PhoenixSim-era device models).

use serde::{Deserialize, Serialize};

use crate::units::{DbLoss, OpticalPower};

/// A ring resonator used as a filter or as the tuned element of a modulator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RingResonator {
    /// Loss imposed on *passing* light when the ring is off-resonance
    /// (`L_r-off` of Eq. 2). Typical: 0.01 dB.
    pub off_resonance_loss: DbLoss,
    /// Loss imposed on light dropped *through* the ring when on-resonance.
    /// Typical: 0.5 dB.
    pub drop_loss: DbLoss,
    /// Static thermal-tuning power required to hold resonance, in
    /// microwatts. 10 µW/ring, in line with the 2010–2013 photonic-NoC
    /// literature's assumptions (e.g. the Clos/Corona-era studies).
    pub tuning_power_uw: f64,
}

impl Default for RingResonator {
    fn default() -> Self {
        RingResonator {
            off_resonance_loss: DbLoss::from_db(0.01),
            drop_loss: DbLoss::from_db(0.5),
            tuning_power_uw: 10.0,
        }
    }
}

/// An electro-optic ring modulator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Modulator {
    /// The ring element (contributes `L_r-off` when idle).
    pub ring: RingResonator,
    /// Insertion loss while actively modulating, in dB. Typical: 1 dB.
    pub insertion_loss: DbLoss,
    /// Dynamic energy per modulated bit, in femtojoules. Typical: 85 fJ/bit.
    pub energy_fj_per_bit: f64,
    /// Maximum modulation rate in Gb/s. Paper: 10 Gb/s per wavelength.
    pub max_rate_gbps: f64,
    /// Extinction ratio in dB (logic-1 vs logic-0 optical power).
    pub extinction_db: f64,
}

impl Default for Modulator {
    fn default() -> Self {
        Modulator {
            ring: RingResonator::default(),
            insertion_loss: DbLoss::from_db(1.0),
            energy_fj_per_bit: 85.0,
            max_rate_gbps: 10.0,
            extinction_db: 10.0,
        }
    }
}

impl Modulator {
    /// Loss seen by light passing this tap while the modulator is *idle*.
    pub fn pass_loss(&self) -> DbLoss {
        self.ring.off_resonance_loss
    }

    /// Dynamic energy in joules to modulate `bits` bits.
    pub fn dynamic_energy_j(&self, bits: u64) -> f64 {
        self.energy_fj_per_bit * 1e-15 * bits as f64
    }
}

/// A photodiode receiver (including its TIA front-end).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Photodiode {
    /// Minimum detectable power `P_min-pd` at the design bit rate.
    /// Typical: −20 dBm at 10 Gb/s.
    pub sensitivity: OpticalPower,
    /// Receiver energy per bit, in femtojoules. Typical: 100 fJ/bit
    /// (photodiode + TIA + clocked sampler).
    pub energy_fj_per_bit: f64,
}

impl Default for Photodiode {
    fn default() -> Self {
        Photodiode {
            sensitivity: OpticalPower::from_dbm(-20.0),
            energy_fj_per_bit: 100.0,
        }
    }
}

impl Photodiode {
    /// Whether an incident power level is detectable.
    pub fn detects(&self, incident: OpticalPower) -> bool {
        incident.dbm() >= self.sensitivity.dbm()
    }

    /// Dynamic energy in joules to receive `bits` bits.
    pub fn dynamic_energy_j(&self, bits: u64) -> f64 {
        self.energy_fj_per_bit * 1e-15 * bits as f64
    }
}

/// A continuous-wave laser source driving one wavelength.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Laser {
    /// Optical power coupled onto the waveguide, per wavelength.
    pub output: OpticalPower,
    /// Wall-plug efficiency: optical watts out per electrical watt in.
    /// Typical for off-chip DFB + coupler: 0.1 (10 %).
    pub wall_plug_efficiency: f64,
}

impl Default for Laser {
    fn default() -> Self {
        Laser {
            output: OpticalPower::from_dbm(10.0),
            wall_plug_efficiency: 0.1,
        }
    }
}

impl Laser {
    /// Electrical power drawn, in watts.
    pub fn electrical_watts(&self) -> f64 {
        assert!(
            self.wall_plug_efficiency > 0.0,
            "wall-plug efficiency must be positive"
        );
        self.output.watts() / self.wall_plug_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulator_pass_loss_is_off_resonance() {
        let m = Modulator::default();
        assert!((m.pass_loss().db() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn modulator_energy_scales_with_bits() {
        let m = Modulator::default();
        let e = m.dynamic_energy_j(1_000_000);
        assert!((e - 85.0e-15 * 1e6).abs() < 1e-18);
    }

    #[test]
    fn photodiode_threshold() {
        let pd = Photodiode::default();
        assert!(pd.detects(OpticalPower::from_dbm(-19.9)));
        assert!(pd.detects(OpticalPower::from_dbm(-20.0)));
        assert!(!pd.detects(OpticalPower::from_dbm(-20.1)));
    }

    #[test]
    fn laser_wall_plug() {
        let l = Laser {
            output: OpticalPower::from_dbm(0.0), // 1 mW optical
            wall_plug_efficiency: 0.1,
        };
        assert!((l.electrical_watts() - 0.01).abs() < 1e-12); // 10 mW electrical
    }

    #[test]
    fn defaults_are_sane() {
        let r = RingResonator::default();
        assert!(r.off_resonance_loss.db() < r.drop_loss.db());
        let m = Modulator::default();
        assert!(m.max_rate_gbps > 0.0 && m.extinction_db > 0.0);
    }
}
