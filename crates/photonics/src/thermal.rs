//! Thermal tuning of ring resonators.
//!
//! Rings drift ~10 GHz/K in silicon; microheaters hold each ring on its
//! channel. Tuning power therefore depends on the die's temperature
//! non-uniformity, and — as the Fig. 5 energy results show — at a thousand
//! taps × 33 rings the heater budget becomes a first-order term of the
//! PSCAN's energy per bit. This module models that budget.

use serde::{Deserialize, Serialize};

/// Thermal tuning model for one ring.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Resonance drift per kelvin, GHz/K (silicon: ≈ 10).
    pub drift_ghz_per_k: f64,
    /// Heater efficiency: microwatts of heater power per GHz of shift.
    /// Typical undercut heaters: ~1–3 µW/GHz.
    pub heater_uw_per_ghz: f64,
    /// Worst-case fabrication detuning to trim out, GHz.
    pub fab_detuning_ghz: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel {
            drift_ghz_per_k: 10.0,
            heater_uw_per_ghz: 2.0,
            fab_detuning_ghz: 50.0,
        }
    }
}

impl ThermalModel {
    /// Heater power (µW) to hold one ring on channel given a local
    /// temperature offset of `delta_t_k` kelvin from the calibration point.
    ///
    /// Heaters can only shift one way (red), so the budget covers the
    /// fabrication trim plus the worst-case thermal swing.
    pub fn per_ring_uw(&self, delta_t_k: f64) -> f64 {
        let thermal_shift = self.drift_ghz_per_k * delta_t_k.abs();
        (self.fab_detuning_ghz + thermal_shift) * self.heater_uw_per_ghz
    }

    /// Total tuning power in watts for a PSCAN with `taps` taps of
    /// `rings_per_tap` rings under a die temperature spread of
    /// `spread_k` kelvin (rings see offsets up to the full spread).
    pub fn bus_tuning_watts(&self, taps: usize, rings_per_tap: usize, spread_k: f64) -> f64 {
        taps as f64 * rings_per_tap as f64 * self.per_ring_uw(spread_k) * 1e-6
    }

    /// Tuning energy per bit in picojoules for an aggregate data rate.
    pub fn tuning_pj_per_bit(
        &self,
        taps: usize,
        rings_per_tap: usize,
        spread_k: f64,
        aggregate_gbps: f64,
    ) -> f64 {
        assert!(aggregate_gbps > 0.0);
        self.bus_tuning_watts(taps, rings_per_tap, spread_k) / (aggregate_gbps * 1e9) * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_ring_power_scales_with_temperature() {
        let m = ThermalModel::default();
        let cold = m.per_ring_uw(0.0); // trim only: 50 GHz x 2 uW/GHz
        assert!((cold - 100.0).abs() < 1e-9);
        let hot = m.per_ring_uw(10.0); // + 100 GHz thermal
        assert!((hot - 300.0).abs() < 1e-9);
        assert_eq!(m.per_ring_uw(-10.0), hot, "symmetric in |dT|");
    }

    #[test]
    fn bus_budget_at_paper_scale() {
        // 1024 taps x 33 rings, 5 K spread: each ring 200 uW ->
        // ~6.8 W of heaters. This is why Fig. 5's advantage erodes at
        // 1024 nodes.
        let m = ThermalModel::default();
        let w = m.bus_tuning_watts(1024, 33, 5.0);
        assert!((w - 1024.0 * 33.0 * 200e-6).abs() < 1e-9);
        let pj = m.tuning_pj_per_bit(1024, 33, 5.0, 320.0);
        assert!(pj > 10.0, "tuning dominates at scale: {pj} pJ/bit");
    }

    #[test]
    fn small_bus_is_cheap() {
        let m = ThermalModel::default();
        let pj = m.tuning_pj_per_bit(16, 33, 2.0, 320.0);
        assert!(pj < 0.5, "{pj}");
    }

    #[test]
    fn athermal_trim_free_limit() {
        // A perfectly trimmed, temperature-stabilized design costs nothing.
        let m = ThermalModel {
            fab_detuning_ghz: 0.0,
            ..Default::default()
        };
        assert_eq!(m.per_ring_uw(0.0), 0.0);
    }
}
