//! Link loss budget and scalability — paper §III-B, Eqs. (1)–(3).
//!
//! A PSCAN segment is "a ring resonator and a section of waveguide equivalent
//! in length to the modulator pitch" (Eq. 2):
//!
//! ```text
//! L_ws = L_r-off + D_m · L_w                      (2)
//! ```
//!
//! The link closes iff `P_i − L ≥ P_min-pd` (Eq. 1), and the maximum number
//! of segments a single PSCAN can span is (Eq. 3):
//!
//! ```text
//! N ≤ (P_i − P_min-pd) / L_ws                     (3)
//! ```
//!
//! Individual segments can be chained via repeaters to form larger networks;
//! [`LinkBudget::segments_with_repeaters`] accounts for that.

use serde::{Deserialize, Serialize};

use crate::devices::{Modulator, Photodiode};
use crate::units::{DbLoss, OpticalPower};
use crate::waveguide::Waveguide;

/// Per-segment loss `L_ws` of Eq. (2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SegmentLoss {
    /// Off-resonance ring loss `L_r-off`.
    pub ring_off: DbLoss,
    /// Waveguide loss over one modulator pitch, `D_m · L_w`.
    pub pitch_waveguide: DbLoss,
}

impl SegmentLoss {
    /// Segment loss from a modulator pitch (mm) and a waveguide loss model.
    pub fn from_pitch(modulator: &Modulator, waveguide: &Waveguide, pitch_mm: f64) -> Self {
        SegmentLoss {
            ring_off: modulator.pass_loss(),
            pitch_waveguide: DbLoss::from_db(waveguide.loss_db_per_cm * pitch_mm / 10.0),
        }
    }

    /// Total loss per segment, `L_ws`.
    pub fn total(&self) -> DbLoss {
        self.ring_off + self.pitch_waveguide
    }
}

/// Full link budget for a PSCAN bus.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Incident power at the head of the waveguide, `P_i`.
    pub input_power: OpticalPower,
    /// Receiver sensitivity, `P_min-pd`.
    pub sensitivity: OpticalPower,
    /// Per-segment loss, `L_ws`.
    pub segment: SegmentLoss,
    /// Fixed overhead: coupler + active modulator insertion + drop filter.
    pub fixed_overhead: DbLoss,
}

impl LinkBudget {
    /// Budget from device models and a layout pitch.
    pub fn new(
        laser_output: OpticalPower,
        modulator: &Modulator,
        photodiode: &Photodiode,
        waveguide: &Waveguide,
        pitch_mm: f64,
    ) -> Self {
        // One active modulator (the sender) and one drop filter (the
        // receiver) are always in the path, plus ~1 dB of coupling.
        let fixed = modulator.insertion_loss + modulator.ring.drop_loss + DbLoss::from_db(1.0);
        LinkBudget {
            input_power: laser_output,
            sensitivity: photodiode.sensitivity,
            segment: SegmentLoss::from_pitch(modulator, waveguide, pitch_mm),
            fixed_overhead: fixed,
        }
    }

    /// Total margin available for segment losses, `P_i − P_min-pd − fixed`.
    pub fn margin(&self) -> DbLoss {
        let raw = self.input_power.dbm() - self.sensitivity.dbm() - self.fixed_overhead.db();
        DbLoss::from_db(raw.max(0.0))
    }

    /// Maximum number of segments on a single (unrepeatered) PSCAN — Eq. (3).
    pub fn max_segments(&self) -> usize {
        let per = self.segment.total().db();
        if per <= 0.0 {
            return usize::MAX;
        }
        (self.margin().db() / per).floor() as usize
    }

    /// Whether a bus of `n` segments closes the link — Eq. (1).
    pub fn closes(&self, n: usize) -> bool {
        let total = self.fixed_overhead + self.segment.total() * n as f64;
        self.input_power - total >= self.sensitivity
    }

    /// Received power after `n` segments.
    pub fn received_power(&self, n: usize) -> OpticalPower {
        self.input_power - (self.fixed_overhead + self.segment.total() * n as f64)
    }

    /// Number of O-E-O repeaters needed to span `n` segments, given the
    /// unrepeatered reach from [`Self::max_segments`]. Zero when the bus
    /// closes on its own. §III-B: "individual PSCAN segments can be linked
    /// via repeaters to form larger networks."
    pub fn segments_with_repeaters(&self, n: usize) -> usize {
        let reach = self.max_segments();
        if reach == 0 {
            panic!("link budget cannot close even a single segment");
        }
        if n <= reach {
            0
        } else {
            // Each repeater restores full power for another `reach` segments.
            n.div_ceil(reach) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Laser;

    fn default_budget(pitch_mm: f64) -> LinkBudget {
        LinkBudget::new(
            Laser::default().output,
            &Modulator::default(),
            &Photodiode::default(),
            &Waveguide::new(100.0),
            pitch_mm,
        )
    }

    #[test]
    fn margin_is_input_minus_sensitivity_minus_fixed() {
        let b = default_budget(1.0);
        // 10 dBm − (−20 dBm) − (1 + 0.5 + 1) dB = 27.5 dB
        assert!((b.margin().db() - 27.5).abs() < 1e-9);
    }

    #[test]
    fn segment_loss_eq2() {
        // L_ws = L_r-off + D_m · L_w = 0.01 + 0.1 cm × 1 dB/cm = 0.11 dB
        let b = default_budget(1.0);
        assert!((b.segment.total().db() - 0.11).abs() < 1e-9);
    }

    #[test]
    fn max_segments_eq3() {
        let b = default_budget(1.0);
        // 27.5 / 0.11 = 250
        assert_eq!(b.max_segments(), 250);
        assert!(b.closes(250));
        assert!(!b.closes(251));
    }

    #[test]
    fn received_power_monotonically_decreases() {
        let b = default_budget(1.0);
        let mut last = f64::INFINITY;
        for n in [0, 10, 100, 250] {
            let p = b.received_power(n).dbm();
            assert!(p < last);
            last = p;
        }
    }

    #[test]
    fn longer_pitch_means_fewer_segments() {
        assert!(default_budget(2.0).max_segments() < default_budget(1.0).max_segments());
    }

    #[test]
    fn repeaters_extend_reach() {
        let b = default_budget(1.0);
        assert_eq!(b.segments_with_repeaters(250), 0);
        assert_eq!(b.segments_with_repeaters(251), 1);
        assert_eq!(b.segments_with_repeaters(500), 1);
        assert_eq!(b.segments_with_repeaters(501), 2);
    }

    #[test]
    fn thousand_node_bus_on_2cm_die() {
        // The Fig. 5 / Table III configuration: 1024 nodes serpentined over a
        // 2 cm × 2 cm die (~64 cm of bus). At a pessimistic 1 dB/cm the link
        // needs a couple of repeaters; at a demonstrated low-loss 0.2 dB/cm
        // it closes unrepeatered — exactly the §III-B trade the paper notes
        // ("the primary loss mechanism is attenuation in the waveguide").
        let layout = crate::waveguide::ChipLayout::square(20.0, 1024);

        let lossy = default_budget(layout.pitch_mm());
        let reps = lossy.segments_with_repeaters(1024);
        assert!(
            (1..=3).contains(&reps),
            "expected 1-3 repeaters, got {reps}"
        );

        let low_loss = LinkBudget::new(
            Laser::default().output,
            &Modulator::default(),
            &Photodiode::default(),
            &Waveguide::new(layout.bus_length_mm()).with_loss(0.2),
            layout.pitch_mm(),
        );
        assert!(
            low_loss.max_segments() >= 1024,
            "low-loss 1024-node PSCAN should close unrepeatered: reach = {}",
            low_loss.max_segments()
        );
    }
}
