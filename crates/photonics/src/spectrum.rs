//! Ring spectral response and WDM channel-plan validation.
//!
//! The PSCAN's 32-wavelength plan only works if 32 ring filters fit inside
//! one free spectral range with acceptable inter-channel crosstalk. This
//! module models the add–drop ring's Lorentzian response and checks a
//! [`crate::wdm::WavelengthPlan`] against it — the physical-design check
//! behind the paper's "32 wavelengths each modulated at 10 Gb/s".

use serde::{Deserialize, Serialize};

use crate::units::DbLoss;

/// Speed of light in vacuum, m/s.
pub const C_M_PER_S: f64 = 299_792_458.0;

/// Spectral model of one add–drop ring resonator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RingSpectrum {
    /// Resonance (centre) wavelength in nm. The paper's band: 1550 nm.
    pub center_nm: f64,
    /// Loaded quality factor. Typical WDM channel filter: ~20 000
    /// (≈ 10 GHz linewidth at 1550 nm, matched to 10 Gb/s OOK).
    pub q: f64,
    /// Ring circumference in µm (sets the FSR). Typical: ~30 µm.
    pub circumference_um: f64,
    /// Group index of the ring waveguide (≈ 4.3 in silicon).
    pub group_index: f64,
}

impl Default for RingSpectrum {
    fn default() -> Self {
        RingSpectrum {
            center_nm: 1550.0,
            q: 20_000.0,
            circumference_um: 30.0,
            group_index: 4.3,
        }
    }
}

impl RingSpectrum {
    /// Full width at half maximum of the resonance, in GHz.
    /// `FWHM = f₀ / Q`.
    pub fn fwhm_ghz(&self) -> f64 {
        self.center_freq_ghz() / self.q
    }

    /// Centre frequency in GHz.
    pub fn center_freq_ghz(&self) -> f64 {
        C_M_PER_S / (self.center_nm * 1e-9) / 1e9
    }

    /// Free spectral range in GHz: `FSR = c / (n_g · L)`.
    pub fn fsr_ghz(&self) -> f64 {
        C_M_PER_S / (self.group_index * self.circumference_um * 1e-6) / 1e9
    }

    /// Drop-port power transmission at a detuning of `delta_ghz` from
    /// resonance — a Lorentzian: `D(δ) = 1 / (1 + (2δ/FWHM)²)`.
    pub fn drop_transmission(&self, delta_ghz: f64) -> f64 {
        let x = 2.0 * delta_ghz / self.fwhm_ghz();
        1.0 / (1.0 + x * x)
    }

    /// Through-port power transmission at detuning `delta_ghz`
    /// (energy conservation for the ideal lossless add–drop ring).
    pub fn through_transmission(&self, delta_ghz: f64) -> f64 {
        1.0 - self.drop_transmission(delta_ghz)
    }

    /// Crosstalk picked up from a neighbour channel `spacing_ghz` away, as
    /// a (positive) suppression in dB — bigger is better.
    pub fn crosstalk_suppression_db(&self, spacing_ghz: f64) -> f64 {
        -10.0 * self.drop_transmission(spacing_ghz).log10()
    }
}

/// Result of validating a WDM plan against a ring design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanCheck {
    /// Channel spacing in GHz.
    pub spacing_ghz: f64,
    /// Total plan width vs one FSR (must be < 1.0 to avoid aliasing).
    pub fsr_occupancy: f64,
    /// Worst-case adjacent-channel crosstalk suppression, dB.
    pub adjacent_suppression_db: f64,
    /// Aggregate crosstalk from *all* other channels at the worst channel,
    /// as a power ratio.
    pub aggregate_crosstalk: f64,
    /// Whether the plan is feasible: fits in an FSR and keeps aggregate
    /// crosstalk below −15 dB.
    pub feasible: bool,
}

/// Check `channels` equally spaced channels of `spacing_ghz` against `ring`.
pub fn check_plan(ring: &RingSpectrum, channels: usize, spacing_ghz: f64) -> PlanCheck {
    assert!(channels >= 1 && spacing_ghz > 0.0);
    let width = spacing_ghz * channels as f64;
    let fsr_occupancy = width / ring.fsr_ghz();
    // Worst channel is in the middle: neighbours on both sides.
    let mid = channels / 2;
    let mut aggregate = 0.0;
    for ch in 0..channels {
        if ch == mid {
            continue;
        }
        let delta = (ch as f64 - mid as f64).abs() * spacing_ghz;
        aggregate += ring.drop_transmission(delta);
    }
    PlanCheck {
        spacing_ghz,
        fsr_occupancy,
        adjacent_suppression_db: ring.crosstalk_suppression_db(spacing_ghz),
        aggregate_crosstalk: aggregate,
        feasible: fsr_occupancy < 1.0 && aggregate < 10f64.powf(-1.5),
    }
}

/// The extra optical power (dB) needed to overcome aggregate crosstalk — a
/// simple power penalty `−10·log₁₀(1 − Σxtalk)`.
pub fn crosstalk_power_penalty(check: &PlanCheck) -> DbLoss {
    let arg: f64 = 1.0 - check.aggregate_crosstalk;
    assert!(arg > 0.0, "crosstalk exceeds unity: infeasible plan");
    DbLoss::from_db(-10.0 * arg.log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonance_numbers_are_physical() {
        let r = RingSpectrum::default();
        // 1550 nm -> ~193 THz.
        assert!((r.center_freq_ghz() - 193_414.0).abs() < 100.0);
        // Q = 20k -> FWHM ~ 9.7 GHz.
        assert!((r.fwhm_ghz() - 9.67).abs() < 0.05);
        // 30 um ring at ng 4.3 -> FSR ~ 2.3 THz.
        assert!((r.fsr_ghz() - 2324.0).abs() < 10.0);
    }

    #[test]
    fn lorentzian_shape() {
        let r = RingSpectrum::default();
        assert!((r.drop_transmission(0.0) - 1.0).abs() < 1e-12);
        // At half-width detuning, transmission is 1/2.
        let hw = r.fwhm_ghz() / 2.0;
        assert!((r.drop_transmission(hw) - 0.5).abs() < 1e-12);
        // Through + drop = 1.
        assert!((r.through_transmission(7.0) + r.drop_transmission(7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_32_channel_plan_is_feasible() {
        // 32 channels on a 2.3 THz FSR -> up to ~72 GHz spacing; take a
        // standard 50 GHz grid (plenty for 10 Gb/s modulation).
        let r = RingSpectrum::default();
        let check = check_plan(&r, 32, 50.0);
        assert!(
            check.fsr_occupancy < 0.7,
            "occupancy {}",
            check.fsr_occupancy
        );
        assert!(
            check.adjacent_suppression_db > 13.0,
            "adjacent suppression {}",
            check.adjacent_suppression_db
        );
        assert!(check.feasible, "{check:?}");
        // The power penalty is a fraction of a dB.
        assert!(crosstalk_power_penalty(&check).db() < 0.5);
    }

    #[test]
    fn dense_plans_become_infeasible() {
        let r = RingSpectrum::default();
        // 5 GHz spacing: neighbours sit inside the resonance linewidth.
        let check = check_plan(&r, 32, 5.0);
        assert!(!check.feasible);
        assert!(check.aggregate_crosstalk > 0.1);
    }

    #[test]
    fn too_many_channels_overflow_the_fsr() {
        let r = RingSpectrum::default();
        let check = check_plan(&r, 64, 40.0);
        assert!(check.fsr_occupancy > 1.0);
        assert!(!check.feasible);
    }

    #[test]
    fn suppression_grows_with_spacing() {
        let r = RingSpectrum::default();
        let near = r.crosstalk_suppression_db(25.0);
        let far = r.crosstalk_suppression_db(100.0);
        assert!(far > near + 10.0);
    }
}
