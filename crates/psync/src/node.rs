//! The P-sync processing element — paper Fig. 7.
//!
//! "The computation core ... consists of a local Data Memory, an Execution
//! Unit, and a Computation Instruction Memory. ... The Waveguide Interface
//! coordinates in-flight data reorganizations based upon a program stored in
//! the Communication Instruction Memory."
//!
//! The Execution Unit computes *real* FFT numerics (via the [`fft`] crate)
//! and accounts time at the paper's rate (2 ns per floating-point multiply,
//! 4 multiplies per butterfly). The Waveguide Interface's dual-clock FIFO is
//! sized with [`pscan::fifo::required_depth`] during machine assembly.

use fft::{Complex64, Radix2Plan};
use pscan::cp::CommProgram;
use serde::{Deserialize, Serialize};

/// Execution-unit timing parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExecParams {
    /// Nanoseconds per floating-point multiply (paper: 2 ns).
    pub mult_ns: f64,
}

impl Default for ExecParams {
    fn default() -> Self {
        ExecParams { mult_ns: 2.0 }
    }
}

/// One processing element.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node id = its tap position on the bus.
    pub id: usize,
    /// Local data memory (samples).
    pub data: Vec<Complex64>,
    /// Communication Instruction Memory: the currently loaded CP.
    pub comm_program: CommProgram,
    /// Execution-unit parameters.
    pub exec: ExecParams,
    /// Accumulated compute time in nanoseconds.
    pub compute_ns: f64,
    /// Total multiplies executed (for efficiency accounting).
    pub multiplies: u64,
}

impl Node {
    /// A fresh node with empty memories.
    pub fn new(id: usize, exec: ExecParams) -> Self {
        Node {
            id,
            data: Vec::new(),
            comm_program: CommProgram::empty(),
            exec,
            compute_ns: 0.0,
            multiplies: 0,
        }
    }

    /// Load a communication program (normally arrives via a CP chain).
    pub fn load_cp(&mut self, cp: CommProgram) {
        self.comm_program = cp;
    }

    /// Load data memory (normally arrives via SCA⁻¹ delivery).
    pub fn load_data(&mut self, samples: Vec<Complex64>) {
        self.data = samples;
    }

    /// Run in-place FFTs over the data memory, treating it as consecutive
    /// rows of `row_len`. Returns the compute time in ns for this call.
    pub fn fft_rows(&mut self, row_len: usize) -> f64 {
        assert!(
            row_len > 0 && self.data.len().is_multiple_of(row_len),
            "data memory ({}) must hold whole rows of {row_len}",
            self.data.len()
        );
        let rows = self.data.len() / row_len;
        let plan = Radix2Plan::new(row_len);
        for r in 0..rows {
            plan.forward(&mut self.data[r * row_len..(r + 1) * row_len]);
        }
        let mults = rows as u64 * fft::ops::multiplies(row_len as u64);
        self.multiplies += mults;
        let t = mults as f64 * self.exec.mult_ns;
        self.compute_ns += t;
        t
    }

    /// Drain the data memory for an SCA writeback (the waveguide interface
    /// consumes it in CP order).
    pub fn take_data(&mut self) -> Vec<Complex64> {
        std::mem::take(&mut self.data)
    }

    /// Execute a compiled Computation Program (Fig. 7's Computation
    /// Instruction Memory path) against the data memory. Returns the
    /// compute time in ns for this run.
    pub fn run_program(&mut self, prog: &crate::isa::CompProgram) -> f64 {
        let stats = prog.execute(&mut self.data);
        self.multiplies += stats.multiplies;
        let t = stats.time_ns(self.exec.mult_ns);
        self.compute_ns += t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::complex::max_error;
    use fft::dft_reference;

    #[test]
    fn fft_rows_computes_and_accounts_time() {
        let mut n = Node::new(0, ExecParams::default());
        let row: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        n.load_data(row.repeat(4)); // 4 rows of 16
        let t = n.fft_rows(16);
        // 4 rows x 2*16*4 = 512 multiplies x 2 ns = 1024 ns.
        assert_eq!(n.multiplies, 4 * fft::ops::multiplies(16));
        assert!((t - n.multiplies as f64 * 2.0).abs() < 1e-9);
        // Numerics: each row matches the reference DFT.
        let reference = dft_reference(&row);
        for r in 0..4 {
            assert!(max_error(&n.data[r * 16..(r + 1) * 16], &reference) < 1e-9);
        }
    }

    #[test]
    fn compute_time_accumulates() {
        let mut n = Node::new(3, ExecParams::default());
        n.load_data(vec![Complex64::ONE; 8]);
        n.fft_rows(8);
        let after_one = n.compute_ns;
        n.load_data(vec![Complex64::ONE; 8]);
        n.fft_rows(8);
        assert!((n.compute_ns - 2.0 * after_one).abs() < 1e-9);
    }

    #[test]
    fn take_data_empties_memory() {
        let mut n = Node::new(1, ExecParams::default());
        n.load_data(vec![Complex64::ONE; 4]);
        let d = n.take_data();
        assert_eq!(d.len(), 4);
        assert!(n.data.is_empty());
    }

    #[test]
    fn isa_path_equals_library_path() {
        // The same row FFT via the Computation Program interpreter and via
        // the direct library call: identical numerics, identical multiply
        // accounting.
        let row: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new(i as f64 * 0.1, -(i as f64) * 0.2))
            .collect();
        let mut via_lib = Node::new(0, ExecParams::default());
        via_lib.load_data(row.clone());
        let t_lib = via_lib.fft_rows(32);

        let mut via_isa = Node::new(1, ExecParams::default());
        via_isa.load_data(row);
        let prog = crate::isa::compile_fft(32);
        let t_isa = via_isa.run_program(&prog);

        assert!((t_lib - t_isa).abs() < 1e-9);
        assert_eq!(via_lib.multiplies, via_isa.multiplies);
        assert!(max_error(&via_lib.data, &via_isa.data) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn partial_rows_rejected() {
        let mut n = Node::new(0, ExecParams::default());
        n.load_data(vec![Complex64::ONE; 10]);
        n.fft_rows(8);
    }
}
