//! The Head Node — paper Fig. 6.
//!
//! "The Head Node is a processor that understands the memory layout (via
//! its own program) and performs requests to the memory such that data is
//! streamed out on the SCA⁻¹ waveguide." It owns the DRAM controller; its
//! CP is a schedule of read (scatter source) or write (gather sink)
//! requests aligned with the bus slots.

use memory::{AccessKind, DramConfig, DramController, DramStats};

/// The head node: DRAM + request engine.
#[derive(Debug)]
pub struct HeadNode {
    dram: DramController,
    /// DRAM cycles consumed so far.
    pub cycles: u64,
    /// Backing store contents by word address (samples in wire format).
    store: Vec<u64>,
}

impl HeadNode {
    /// A head node over `words` 64-bit words of DRAM.
    pub fn new(cfg: DramConfig, words: usize) -> Self {
        HeadNode {
            dram: DramController::new(cfg, 64),
            cycles: 0,
            store: vec![0; words],
        }
    }

    /// Pre-load the backing store (initial problem data).
    pub fn fill(&mut self, base: usize, words: &[u64]) {
        self.store[base..base + words.len()].copy_from_slice(words);
    }

    /// Read back a region (final result inspection).
    pub fn read_region(&self, base: usize, len: usize) -> &[u64] {
        &self.store[base..base + len]
    }

    /// Stream `addrs` out of DRAM in order, producing the SCA⁻¹ burst.
    /// Returns `(burst, dram_cycles_for_this_stream)`.
    pub fn stream_out(&mut self, addrs: impl IntoIterator<Item = u64>) -> (Vec<u64>, u64) {
        let start = self.cycles;
        let mut burst = Vec::new();
        let mut t = start;
        for a in addrs {
            t = self.dram.access(t, a, AccessKind::Read);
            burst.push(self.store[a as usize]);
        }
        self.cycles = t;
        (burst, t - start)
    }

    /// Absorb an SCA gather: write `words` to consecutive addresses given
    /// by `addrs`, in arrival order. Returns DRAM cycles consumed.
    pub fn stream_in(&mut self, addrs_words: impl IntoIterator<Item = (u64, u64)>) -> u64 {
        let start = self.cycles;
        let mut t = start;
        for (a, w) in addrs_words {
            t = self.dram.access(t, a, AccessKind::Write);
            self.store[a as usize] = w;
        }
        self.cycles = t;
        t - start
    }

    /// DRAM statistics (row hit/conflict mix).
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_out_reads_in_order() {
        let mut h = HeadNode::new(DramConfig::ideal_paper(), 64);
        h.fill(0, &(100..164u64).collect::<Vec<_>>());
        let (burst, cycles) = h.stream_out(0..64u64);
        assert_eq!(burst[0], 100);
        assert_eq!(burst[63], 163);
        // Ideal DRAM: 64 words x 1 beat.
        assert_eq!(cycles, 64);
    }

    #[test]
    fn stream_in_writes_and_costs_cycles() {
        let mut h = HeadNode::new(DramConfig::ideal_paper(), 32);
        let cycles = h.stream_in((0..32u64).map(|a| (a, a * 10)));
        assert_eq!(cycles, 32);
        assert_eq!(h.read_region(5, 1), &[50]);
    }

    #[test]
    fn linear_stream_is_row_friendly_on_real_dram() {
        let mut h = HeadNode::new(DramConfig::default(), 1024);
        h.fill(0, &vec![7u64; 1024]);
        let (_, _) = h.stream_out(0..1024u64);
        assert!(h.dram_stats().hit_rate() > 0.9);
    }

    #[test]
    fn strided_stream_thrashes_on_real_dram() {
        let mut h = HeadNode::new(DramConfig::default(), 1 << 15);
        let (_, _) = h.stream_out((0..32u64).map(|i| i * 1024));
        assert_eq!(h.dram_stats().hits, 0);
    }

    #[test]
    fn cycles_accumulate_across_streams() {
        let mut h = HeadNode::new(DramConfig::ideal_paper(), 64);
        h.stream_out(0..32u64);
        h.stream_out(32..64u64);
        assert_eq!(h.cycles, 64);
    }
}
