//! Model II (blocked, overlapped) delivery on the P-sync machine.
//!
//! §VI notes the LLMORE runs used Model I and that "it is likely that the
//! performance would improve further under P-sync if a Model II delivery
//! mode was used". This module implements that future-work mode: row FFTs
//! whose data arrives in `k` round-robin blocks (Fig. 9), each block's
//! sub-FFT starting the moment its SCA⁻¹ round lands — overlapping
//! communication with computation per Eqs. (11)–(16).
//!
//! The delivered blocks are the Fig. 10 decimated subsequences, so the head
//! node's CP reads DRAM with stride `k` — a *strided* gather served at full
//! line rate by the pre-scheduled SCA⁻¹, which is the whole point.

use fft::{BlockedFft, Complex64};
use pscan::compiler::ScatterSpec;
use serde::{Deserialize, Serialize};

use crate::machine::{Machine, MachineConfig};
use crate::sample::{decode_all, encode_sample};

/// Result of a Model II row-FFT phase.
#[derive(Debug)]
pub struct Model2Run {
    /// Spectra, one per processor's row.
    pub spectra: Vec<Vec<Complex64>>,
    /// Wall-clock seconds with delivery/compute overlap (Model II).
    pub overlapped_seconds: f64,
    /// Wall-clock seconds the same work would take serialized (Model I).
    pub serialized_seconds: f64,
    /// Compute efficiency: total per-node compute / overlapped wall clock.
    pub efficiency: f64,
    /// Blocks per row used.
    pub k: usize,
}

/// Serializable summary for the ablation harness.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Model2Summary {
    /// Blocks per row.
    pub k: usize,
    /// Overlapped (Model II) seconds.
    pub overlapped_seconds: f64,
    /// Serialized (Model I) seconds.
    pub serialized_seconds: f64,
    /// Efficiency.
    pub efficiency: f64,
}

impl Model2Run {
    /// Summarize.
    pub fn summary(&self) -> Model2Summary {
        Model2Summary {
            k: self.k,
            overlapped_seconds: self.overlapped_seconds,
            serialized_seconds: self.serialized_seconds,
            efficiency: self.efficiency,
        }
    }
}

/// Run one row-FFT phase under Model II: `procs` processors, each owning one
/// `n`-point row of `rows`, delivered in `k` blocks.
pub fn run_model2_rows(procs: usize, n: usize, k: usize, rows: &[Vec<Complex64>]) -> Model2Run {
    assert_eq!(rows.len(), procs, "one row per processor");
    assert!(rows.iter().all(|r| r.len() == n));
    let bf = BlockedFft::new(n, k);
    let block_len = bf.block_len();

    let mut machine = Machine::new(MachineConfig::paper_default(procs, procs * n));
    // DRAM layout: row p at base p*n, natural order.
    for (p, row) in rows.iter().enumerate() {
        let wire: Vec<u64> = row.iter().map(|&c| encode_sample(c)).collect();
        machine.head.fill(p * n, &wire);
    }

    let mut states: Vec<_> = (0..procs).map(|_| bf.begin()).collect();
    let slot = machine.slot_secs();
    let t_ck = bf.multiplies_per_block() as f64 * machine.config().exec.mult_ns * 1e-9;
    let t_cf = bf.multiplies_final() as f64 * machine.config().exec.mult_ns * 1e-9;

    // Per-node compute-completion timeline (seconds).
    let mut finish = vec![0.0f64; procs];
    let mut comm_end = 0.0f64;

    for c in 0..k {
        // Round c: every node's block c, round-robin (Fig. 9). The head
        // node's addresses follow the Fig. 10 decimation within each row.
        let idx = bf.block_source_indices(c);
        let mut addrs = Vec::with_capacity(procs * block_len);
        for p in 0..procs {
            addrs.extend(idx.iter().map(|&i| (p * n + i) as u64));
        }
        let spec = ScatterSpec::blocked(procs, block_len);
        let delivered = machine.scatter_from_memory(&format!("deliver_block_{c}"), &addrs, &spec);

        // Timing: this round's bus occupancy follows the previous round.
        let round_secs = machine.phases.last().expect("phase logged").bus_slots as f64 * slot;
        let round_end = comm_end + round_secs;
        comm_end = round_end;

        for (p, words) in delivered.into_iter().enumerate() {
            states[p].deliver_block(c, &decode_all(&words));
            // Sub-FFT starts when the block is here and the previous block's
            // compute is done (Eq. 11's max term).
            finish[p] = round_end.max(finish[p]) + t_ck;
        }
    }

    // Final combine phase on every node.
    let spectra: Vec<Vec<Complex64>> = states.into_iter().map(|s| s.finish()).collect();
    let overlapped = finish.iter().fold(0.0f64, |a, &b| a.max(b)) + t_cf;

    // Model I reference: all delivery, then all compute.
    let serialized = comm_end + k as f64 * t_ck + t_cf;
    let compute_total = k as f64 * t_ck + t_cf;

    Model2Run {
        spectra,
        overlapped_seconds: overlapped,
        serialized_seconds: serialized,
        efficiency: compute_total / overlapped,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::complex::max_error;
    use fft::dft_reference;

    fn rows(procs: usize, n: usize) -> Vec<Vec<Complex64>> {
        (0..procs)
            .map(|p| {
                (0..n)
                    .map(|i| {
                        Complex64::new(
                            ((p * 31 + i) as f64 * 0.17).sin(),
                            ((p + i * 3) as f64 * 0.07).cos(),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn numerics_match_reference_for_all_k() {
        let (procs, n) = (4, 64);
        let data = rows(procs, n);
        for k in [1usize, 4, 16] {
            let run = run_model2_rows(procs, n, k, &data);
            for (p, row) in data.iter().enumerate() {
                let reference = dft_reference(row);
                let err = max_error(&run.spectra[p], &reference);
                assert!(err < 1e-3, "k={k} p={p}: {err}");
            }
        }
    }

    #[test]
    fn overlap_beats_serialization_for_k_greater_than_1() {
        let (procs, n) = (8, 256);
        let data = rows(procs, n);
        let run = run_model2_rows(procs, n, 8, &data);
        assert!(
            run.overlapped_seconds < run.serialized_seconds,
            "overlap {} vs serial {}",
            run.overlapped_seconds,
            run.serialized_seconds
        );
        assert!(run.efficiency > 0.0 && run.efficiency <= 1.0);
    }

    #[test]
    fn k1_has_nothing_to_overlap() {
        let (procs, n) = (4, 64);
        let data = rows(procs, n);
        let run = run_model2_rows(procs, n, 1, &data);
        assert!((run.overlapped_seconds - run.serialized_seconds).abs() < 1e-12);
    }

    #[test]
    fn efficiency_improves_with_k_when_compute_bound() {
        // Few processors on a fat bus: delivery is cheap, so blocking
        // steadily shrinks the start-up bubble.
        let (procs, n) = (4, 1024);
        let data = rows(procs, n);
        let e: Vec<f64> = [1usize, 4, 16]
            .iter()
            .map(|&k| run_model2_rows(procs, n, k, &data).efficiency)
            .collect();
        assert!(e[1] > e[0], "{e:?}");
        assert!(e[2] > e[1], "{e:?}");
    }
}
