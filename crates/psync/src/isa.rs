//! The Computation Program ISA — paper Fig. 7.
//!
//! A P-sync node's compute side is "a local Data Memory, an Execution Unit,
//! and a Computation Instruction Memory". Where the rest of this crate
//! calls the `fft` crate directly for convenience, this module makes the
//! architecture literal: computation is a *program* of butterfly-level
//! instructions compiled ahead of time (just as the Communication Program
//! schedules the waveguide), interpreted by the Execution Unit against the
//! Data Memory, with multiply counts — and therefore time — falling out of
//! execution rather than a formula.
//!
//! "The software generally is quite explicit about the computation
//! operations" (§IV) — here it is, explicitly.

use fft::Complex64;
use serde::{Deserialize, Serialize};

/// One computation instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Radix-2 DIT butterfly on data memory cells `a` and `b` with twiddle
    /// ROM entry `w`: `(x_a, x_b) ← (x_a + w·x_b, x_a − w·x_b)`.
    /// Costs 4 real multiplies (the paper's Table I costing).
    Butterfly {
        /// First operand cell.
        a: u32,
        /// Second operand cell.
        b: u32,
        /// Twiddle ROM index.
        w: u32,
    },
    /// Swap two data-memory cells (bit-reversal permutation step). Free of
    /// multiplies.
    Swap {
        /// One cell.
        i: u32,
        /// The other.
        j: u32,
    },
    /// Pointwise twiddle multiply `x_i ← x_i · rom[w]` (six-step's step 2).
    /// Costs 4 real multiplies.
    TwiddleMul {
        /// Target cell.
        i: u32,
        /// Twiddle ROM index.
        w: u32,
    },
    /// Stop execution.
    Halt,
}

/// A compiled computation program: instructions + twiddle ROM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompProgram {
    /// Instruction memory.
    pub instrs: Vec<Instr>,
    /// Twiddle ROM contents.
    pub rom: Vec<Complex64>,
}

/// Execution statistics from one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Instructions retired (including Halt).
    pub instructions: u64,
    /// Real multiplies performed.
    pub multiplies: u64,
}

impl ExecStats {
    /// Compute time in nanoseconds at `mult_ns` per multiply (the paper
    /// counts only multiplies).
    pub fn time_ns(&self, mult_ns: f64) -> f64 {
        self.multiplies as f64 * mult_ns
    }
}

impl CompProgram {
    /// Execute against a data memory. Returns statistics.
    ///
    /// # Panics
    /// Panics on out-of-range cell or ROM references (a miscompiled
    /// program) or on a missing `Halt`.
    pub fn execute(&self, data: &mut [Complex64]) -> ExecStats {
        let mut stats = ExecStats::default();
        for ins in &self.instrs {
            stats.instructions += 1;
            match *ins {
                Instr::Butterfly { a, b, w } => {
                    let wv = self.rom[w as usize];
                    let t = wv * data[b as usize];
                    let u = data[a as usize];
                    data[a as usize] = u + t;
                    data[b as usize] = u - t;
                    stats.multiplies += 4;
                }
                Instr::Swap { i, j } => data.swap(i as usize, j as usize),
                Instr::TwiddleMul { i, w } => {
                    data[i as usize] = data[i as usize] * self.rom[w as usize];
                    stats.multiplies += 4;
                }
                Instr::Halt => return stats,
            }
        }
        panic!("computation program fell off the end without Halt");
    }

    /// Program length in instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when only `Halt` remains.
    pub fn is_empty(&self) -> bool {
        self.instrs.len() <= 1
    }
}

impl Instr {
    /// Encode to the 64-bit instruction word: opcode in bits 62..64, three
    /// 20-bit operand fields below. This is the format that rides the
    /// SCA⁻¹ when computation programs are "delivered, along with
    /// operational code ... interleaved with data delivery" (§IV).
    pub fn encode(&self) -> u64 {
        const F: u64 = (1 << 20) - 1;
        match *self {
            Instr::Butterfly { a, b, w } => {
                ((a as u64 & F) << 40) | ((b as u64 & F) << 20) | (w as u64 & F)
            }
            Instr::Swap { i, j } => (1u64 << 62) | ((i as u64 & F) << 40) | ((j as u64 & F) << 20),
            Instr::TwiddleMul { i, w } => (2u64 << 62) | ((i as u64 & F) << 40) | (w as u64 & F),
            Instr::Halt => 3u64 << 62,
        }
    }

    /// Decode a 64-bit instruction word.
    pub fn decode(word: u64) -> Instr {
        const F: u64 = (1 << 20) - 1;
        let op = word >> 62;
        let x = ((word >> 40) & F) as u32;
        let y = ((word >> 20) & F) as u32;
        let z = (word & F) as u32;
        match op {
            0 => Instr::Butterfly { a: x, b: y, w: z },
            1 => Instr::Swap { i: x, j: y },
            2 => Instr::TwiddleMul { i: x, w: z },
            _ => Instr::Halt,
        }
    }
}

impl CompProgram {
    /// Serialize the whole program (instructions then ROM as 64-bit wire
    /// samples) for SCA⁻¹ delivery. Layout: `[n_instr][instrs...][rom...]`.
    pub fn encode_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(1 + self.instrs.len() + self.rom.len());
        out.push(self.instrs.len() as u64);
        out.extend(self.instrs.iter().map(Instr::encode));
        out.extend(self.rom.iter().map(|&c| crate::sample::encode_sample(c)));
        out
    }

    /// Deserialize from [`Self::encode_words`] output. ROM entries pass
    /// through the 64-bit (f32-pair) wire format, so twiddles round to f32
    /// — the precision a real 64-bit-sample machine would have.
    pub fn decode_words(words: &[u64]) -> CompProgram {
        let n_instr = words[0] as usize;
        let instrs = words[1..1 + n_instr]
            .iter()
            .map(|&w| Instr::decode(w))
            .collect();
        let rom = words[1 + n_instr..]
            .iter()
            .map(|&w| crate::sample::decode_sample(w))
            .collect();
        CompProgram { instrs, rom }
    }
}

/// Compile an in-place N-point radix-2 DIT FFT (including the bit-reversal
/// prologue) into a [`CompProgram`].
pub fn compile_fft(n: usize) -> CompProgram {
    assert!(
        n.is_power_of_two() && n >= 1,
        "radix-2 needs a power of two"
    );
    let bits = n.trailing_zeros();
    let mut instrs = Vec::new();

    // Bit-reversal prologue.
    if n > 2 {
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
            if j > i {
                instrs.push(Instr::Swap {
                    i: i as u32,
                    j: j as u32,
                });
            }
        }
    }

    // Twiddle ROM: w_N^j for j in 0..n/2 (stage strides index into it).
    let rom: Vec<Complex64> = (0..n.max(2) / 2)
        .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
        .collect();

    // Butterfly stages.
    for s in 0..bits {
        let half = 1usize << s;
        let block = half << 1;
        let stride = n / block;
        let mut base = 0;
        while base < n {
            for j in 0..half {
                instrs.push(Instr::Butterfly {
                    a: (base + j) as u32,
                    b: (base + j + half) as u32,
                    w: (j * stride) as u32,
                });
            }
            base += block;
        }
    }
    instrs.push(Instr::Halt);
    CompProgram {
        instrs,
        rom: if rom.is_empty() {
            vec![Complex64::ONE]
        } else {
            rom
        },
    }
}

/// Compile the six-step twiddle pass for an `n1 × n2` decomposition: cell
/// `(k1·n2 + j2)` multiplies by `W_N^{j2·k1}`.
pub fn compile_sixstep_twiddles(n1: usize, n2: usize) -> CompProgram {
    let n = n1 * n2;
    let mut rom = Vec::with_capacity(n);
    let mut instrs = Vec::with_capacity(n + 1);
    for k1 in 0..n1 {
        for j2 in 0..n2 {
            let theta = -2.0 * std::f64::consts::PI * (j2 * k1) as f64 / n as f64;
            rom.push(Complex64::cis(theta));
            instrs.push(Instr::TwiddleMul {
                i: (k1 * n2 + j2) as u32,
                w: (k1 * n2 + j2) as u32,
            });
        }
    }
    instrs.push(Instr::Halt);
    CompProgram { instrs, rom }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::complex::max_error;
    use fft::{dft_reference, fft_in_place};

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.41).sin(), (i as f64 * 0.13).cos()))
            .collect()
    }

    #[test]
    fn compiled_fft_matches_library_fft() {
        for n in [2usize, 4, 16, 64, 256, 1024] {
            let prog = compile_fft(n);
            let x = signal(n);
            let mut via_isa = x.clone();
            prog.execute(&mut via_isa);
            let mut via_lib = x.clone();
            fft_in_place(&mut via_lib);
            assert!(max_error(&via_isa, &via_lib) < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn executed_multiplies_match_table1_costing() {
        // The interpreter's counted multiplies must equal the closed form
        // 2N·log2 N the whole analysis rests on — measured, not assumed.
        for n in [16u64, 256, 1024] {
            let prog = compile_fft(n as usize);
            let mut x = signal(n as usize);
            let stats = prog.execute(&mut x);
            assert_eq!(stats.multiplies, fft::ops::multiplies(n), "n = {n}");
            // And the time at 2 ns/multiply reproduces Table I's t_c.
            if n == 1024 {
                assert_eq!(stats.time_ns(2.0), 40_960.0);
            }
        }
    }

    #[test]
    fn sixstep_twiddle_program_matches_plan() {
        let (n1, n2) = (8, 16);
        let plan = fft::SixStepPlan::new(n1, n2);
        let prog = compile_sixstep_twiddles(n1, n2);
        let mut m = fft::fft2d::Matrix {
            rows: n1,
            cols: n2,
            data: signal(n1 * n2),
        };
        let mut via_isa = m.data.clone();
        let stats = prog.execute(&mut via_isa);
        plan.apply_twiddles(&mut m);
        assert!(max_error(&via_isa, &m.data) < 1e-12);
        assert_eq!(stats.multiplies, 4 * (n1 * n2) as u64);
    }

    #[test]
    fn small_sizes_execute() {
        let prog = compile_fft(2);
        let mut x = signal(2);
        prog.execute(&mut x);
        let r = dft_reference(&signal(2));
        assert!(max_error(&x, &r) < 1e-12);
        // n = 1: nothing to do but Halt.
        let prog1 = compile_fft(1);
        let mut one = signal(1);
        let stats = prog1.execute(&mut one);
        assert_eq!(stats.multiplies, 0);
    }

    #[test]
    fn instruction_encoding_roundtrips() {
        for ins in [
            Instr::Butterfly {
                a: 12,
                b: 1_000_000 - 1,
                w: 511,
            },
            Instr::Swap { i: 0, j: 1023 },
            Instr::TwiddleMul { i: 7, w: 99 },
            Instr::Halt,
        ] {
            assert_eq!(Instr::decode(ins.encode()), ins);
        }
    }

    #[test]
    fn program_survives_the_wire_and_still_computes() {
        // Boot-over-photonics: the compiled FFT rides the 64-bit wire
        // format (twiddles quantize to f32) and still transforms correctly
        // to wire precision.
        let prog = compile_fft(256);
        let back = CompProgram::decode_words(&prog.encode_words());
        assert_eq!(back.instrs, prog.instrs);
        let x = signal(256);
        let mut via_wire = x.clone();
        back.execute(&mut via_wire);
        let mut exact = x.clone();
        fft_in_place(&mut exact);
        assert!(max_error(&via_wire, &exact) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "without Halt")]
    fn missing_halt_detected() {
        let prog = CompProgram {
            instrs: vec![Instr::Swap { i: 0, j: 1 }],
            rom: vec![Complex64::ONE],
        };
        prog.execute(&mut signal(2));
    }

    #[test]
    fn program_sizes_are_sane() {
        // 1024-pt FFT: 5120 butterflies + ~496 swaps + halt.
        let prog = compile_fft(1024);
        let butterflies = prog
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Butterfly { .. }))
            .count();
        assert_eq!(butterflies as u64, fft::ops::butterflies(1024));
        assert!(prog.len() > butterflies);
    }
}
