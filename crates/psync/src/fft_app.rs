//! End-to-end distributed 2-D FFT on the P-sync machine — §V-B's five-step
//! flow with real data through the simulated photonic bus:
//!
//! 1. SCA⁻¹ delivery of P row-blocks,
//! 2. parallel row FFTs,
//! 3. SCA transpose writeback into off-chip DRAM (the Table III operation),
//! 4. SCA⁻¹ delivery of the reorganized data,
//! 5. parallel column FFTs, then a final SCA writeback.
//!
//! The numerical result is bit-faithful to a monolithic 2-D FFT up to the
//! 64-bit wire format's f32 quantization.

use fft::fft2d::Matrix;
use pscan::compiler::{GatherSpec, ScatterSpec};
use serde::{Deserialize, Serialize};

use crate::machine::{Machine, MachineConfig, PhaseTiming};
use crate::sample::{decode_all, encode_sample};

/// Result of an end-to-end run.
#[derive(Debug)]
pub struct Fft2dRun {
    /// The computed 2-D spectrum (natural row-major orientation).
    pub output: Matrix,
    /// Phase log.
    pub phases: Vec<PhaseTiming>,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Bus slots of the SCA transpose writeback (Table III's quantity).
    pub transpose_bus_slots: u64,
    /// Compute fraction of total runtime (an efficiency measure).
    pub compute_fraction: f64,
}

/// Phase-name constants.
pub mod phase_names {
    /// Initial delivery.
    pub const DELIVER: &str = "deliver";
    /// Row FFT compute.
    pub const ROW_FFT: &str = "row_fft";
    /// SCA transpose writeback.
    pub const TRANSPOSE: &str = "transpose";
    /// Redelivery of transposed data.
    pub const REDELIVER: &str = "redeliver";
    /// Column FFT compute.
    pub const COL_FFT: &str = "col_fft";
    /// Final writeback.
    pub const WRITEBACK: &str = "writeback";
}

/// Serializable phase summary (for the bench harness).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Processors.
    pub procs: usize,
    /// Matrix edge.
    pub n: usize,
    /// Total seconds.
    pub total_seconds: f64,
    /// Transpose bus slots.
    pub transpose_bus_slots: u64,
    /// Compute fraction.
    pub compute_fraction: f64,
}

/// Run the distributed 2-D FFT of an `n × n` matrix on `procs` processors
/// (`procs` must divide `n`).
pub fn run_fft2d(procs: usize, input: &Matrix) -> Fft2dRun {
    let n = input.rows;
    assert_eq!(input.cols, n, "square matrices only");
    assert!(n.is_power_of_two(), "n must be a power of two");
    assert!(
        procs >= 1 && n.is_multiple_of(procs),
        "procs ({procs}) must divide n ({n})"
    );
    let rows_per = n / procs;
    let area = n * n;

    let mut m = Machine::new(MachineConfig::paper_default(procs, 2 * area));

    // Load the problem into DRAM region A (row-major wire samples).
    let wire: Vec<u64> = input.data.iter().map(|&c| encode_sample(c)).collect();
    m.head.fill(0, &wire);

    // --- Phase 1: SCA⁻¹ delivery of row blocks ---------------------------
    let addrs_a: Vec<u64> = (0..area as u64).collect();
    let deliver_spec = ScatterSpec::blocked(procs, rows_per * n);
    let delivered = m.scatter_from_memory(phase_names::DELIVER, &addrs_a, &deliver_spec);
    for (node, words) in delivered.into_iter().enumerate() {
        m.nodes[node].load_data(decode_all(&words));
    }

    // --- Phase 2: row FFTs ------------------------------------------------
    m.compute_phase(phase_names::ROW_FFT, |node| node.fft_rows(n));

    // --- Phase 3: SCA transpose writeback to region B ---------------------
    // Slot k = c·n + r of the transposed stream comes from the owner of
    // row r; its waveguide interface drains (r, c) in slot order.
    let slot_source: Vec<usize> = (0..area).map(|k| (k % n) / rows_per).collect();
    let gather_spec = GatherSpec { slot_source };
    let node_words: Vec<Vec<u64>> = (0..procs)
        .map(|p| {
            let r0 = p * rows_per;
            let mut words = Vec::with_capacity(rows_per * n);
            for c in 0..n {
                for r in r0..r0 + rows_per {
                    words.push(encode_sample(m.nodes[p].data[(r - r0) * n + c]));
                }
            }
            words
        })
        .collect();
    let addrs_b: Vec<u64> = (0..area as u64).map(|k| area as u64 + k).collect();
    m.gather_to_memory(phase_names::TRANSPOSE, &gather_spec, &node_words, &addrs_b);
    let transpose_bus_slots = m.phase(phase_names::TRANSPOSE).unwrap().bus_slots;

    // --- Phase 4: SCA⁻¹ redelivery of transposed rows ---------------------
    let redeliver = m.scatter_from_memory(phase_names::REDELIVER, &addrs_b, &deliver_spec);
    for (node, words) in redeliver.into_iter().enumerate() {
        m.nodes[node].load_data(decode_all(&words));
    }

    // --- Phase 5: column FFTs (rows of the transposed matrix) -------------
    m.compute_phase(phase_names::COL_FFT, |node| node.fft_rows(n));

    // --- Phase 6: final SCA writeback, un-transposing into region A -------
    // Slot k = r·n + c of the natural-orientation result comes from the
    // owner of transposed-row c.
    let final_source: Vec<usize> = (0..area).map(|k| (k % n) / rows_per).collect();
    let final_spec = GatherSpec {
        slot_source: final_source,
    };
    let final_words: Vec<Vec<u64>> = (0..procs)
        .map(|p| {
            let c0 = p * rows_per;
            let mut words = Vec::with_capacity(rows_per * n);
            for r in 0..n {
                for c in c0..c0 + rows_per {
                    words.push(encode_sample(m.nodes[p].data[(c - c0) * n + r]));
                }
            }
            words
        })
        .collect();
    m.gather_to_memory(phase_names::WRITEBACK, &final_spec, &final_words, &addrs_a);

    // Read the spectrum back out of DRAM.
    let out_words = m.head.read_region(0, area).to_vec();
    let output = Matrix {
        rows: n,
        cols: n,
        data: decode_all(&out_words),
    };

    let total_seconds = m.total_seconds();
    let compute_ns: f64 = m.phases.iter().map(|p| p.compute_ns).sum();
    Fft2dRun {
        output,
        total_seconds,
        transpose_bus_slots,
        compute_fraction: compute_ns * 1e-9 / total_seconds,
        phases: m.phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::complex::max_error;
    use fft::fft2d::Fft2d;
    use fft::Complex64;

    fn input(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            Complex64::new(
                ((r * 3 + c) as f64 * 0.21).sin(),
                ((r as f64) - 1.7 * c as f64).cos() * 0.3,
            )
        })
    }

    #[test]
    fn matches_monolithic_fft2d() {
        for (n, procs) in [(16, 4), (32, 8), (32, 32), (64, 16)] {
            let m = input(n);
            let run = run_fft2d(procs, &m);
            let reference = Fft2d::new(n, n).forward(&m);
            let err = max_error(&run.output.data, &reference.data);
            // Wire format quantizes to f32 at each of 4 transports.
            let scale = n as f64; // spectrum magnitudes grow with n
            assert!(err < 1e-3 * scale, "n={n} procs={procs}: err {err}");
        }
    }

    #[test]
    fn single_processor_degenerate_case() {
        let n = 16;
        let m = input(n);
        let run = run_fft2d(1, &m);
        let reference = Fft2d::new(n, n).forward(&m);
        assert!(max_error(&run.output.data, &reference.data) < 0.05);
    }

    #[test]
    fn phase_log_is_complete() {
        let run = run_fft2d(4, &input(16));
        let names: Vec<&str> = run.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "deliver",
                "row_fft",
                "transpose",
                "redeliver",
                "col_fft",
                "writeback"
            ]
        );
        assert!(run.total_seconds > 0.0);
        assert!(run.compute_fraction > 0.0 && run.compute_fraction < 1.0);
    }

    #[test]
    fn transpose_slots_match_table3_arithmetic() {
        // n = 64: payload 4096 slots + 4096/32 = 128 header slots.
        let run = run_fft2d(16, &input(64));
        assert_eq!(run.transpose_bus_slots, 4096 + 128);
    }

    #[test]
    fn more_processors_do_not_slow_the_bus() {
        // Bus phases are P-independent (same payload); compute shrinks.
        let n = 32;
        let a = run_fft2d(4, &input(n));
        let b = run_fft2d(32, &input(n));
        assert_eq!(
            a.phase_bus_slots("transpose"),
            b.phase_bus_slots("transpose")
        );
        let ca = a.phases.iter().map(|p| p.compute_ns).sum::<f64>();
        let cb = b.phases.iter().map(|p| p.compute_ns).sum::<f64>();
        assert!((ca / cb - 8.0).abs() < 1e-6);
    }

    impl Fft2dRun {
        fn phase_bus_slots(&self, name: &str) -> u64 {
            self.phases
                .iter()
                .find(|p| p.name == name)
                .unwrap()
                .bus_slots
        }
    }
}
