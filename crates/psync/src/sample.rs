//! FFT samples on the wire.
//!
//! The paper's samples are 64 bits (`S_s = 64`): a complex value carried as
//! two 32-bit halves. Nodes compute in f64 but the *wire and DRAM* format is
//! the 64-bit sample, so transport quantizes to f32 — exactly the fidelity a
//! real P-sync machine with 64-bit samples would have.

use fft::Complex64;

/// Pack a complex sample into its 64-bit wire format (re in the high half).
pub fn encode_sample(c: Complex64) -> u64 {
    let re = (c.re as f32).to_bits() as u64;
    let im = (c.im as f32).to_bits() as u64;
    (re << 32) | im
}

/// Unpack a 64-bit wire sample.
pub fn decode_sample(w: u64) -> Complex64 {
    let re = f32::from_bits((w >> 32) as u32) as f64;
    let im = f32::from_bits((w & 0xFFFF_FFFF) as u32) as f64;
    Complex64::new(re, im)
}

/// Encode a slice of samples.
pub fn encode_all(xs: &[Complex64]) -> Vec<u64> {
    xs.iter().copied().map(encode_sample).collect()
}

/// Decode a slice of wire words.
pub fn decode_all(ws: &[u64]) -> Vec<Complex64> {
    ws.iter().copied().map(decode_sample).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_f32_exact() {
        for (re, im) in [(0.0, 0.0), (1.5, -2.25), (3.0e8, -1.0e-8), (-0.1, 0.7)] {
            let c = Complex64::new(re, im);
            let back = decode_sample(encode_sample(c));
            assert_eq!(back.re, re as f32 as f64);
            assert_eq!(back.im, im as f32 as f64);
        }
    }

    #[test]
    fn quantization_error_is_small() {
        let c = Complex64::new(std::f64::consts::PI, -std::f64::consts::E);
        let back = decode_sample(encode_sample(c));
        assert!((back - c).abs() < 1e-6);
    }

    #[test]
    fn halves_are_independent() {
        let w = encode_sample(Complex64::new(1.0, -1.0));
        let re_only = decode_sample(w & 0xFFFF_FFFF_0000_0000);
        assert_eq!(re_only.re, 1.0);
        assert_eq!(re_only.im, 0.0);
    }

    #[test]
    fn bulk_roundtrip() {
        let xs: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new(i as f64 * 0.5, -(i as f64)))
            .collect();
        let back = decode_all(&encode_all(&xs));
        for (a, b) in xs.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }
}
