//! # psync
//!
//! The paper's primary contribution: the **P-sync architecture** (§IV),
//! built on the PSCAN. P-sync fuses computation with communication: every
//! processor runs a Computation Program against its local data memory and a
//! Communication Program against the shared waveguide, in tight synchrony
//! with the photonic clock; a head node drives DRAM so that data streams
//! onto the SCA⁻¹ waveguide "just-in-time".
//!
//! * [`sample`] — FFT samples on the wire: the 64-bit `S_s` format
//!   (32-bit real + 32-bit imaginary halves).
//! * [`node`] — the Fig. 7 processing element: Data Memory, Execution Unit
//!   (timed at the paper's 2 ns/multiply), Computation & Communication
//!   Instruction Memories, and the Waveguide Interface with its dual-clock
//!   FIFOs.
//! * [`head`] — the Head Node: "a processor that understands the memory
//!   layout and performs requests to the memory such that data is streamed
//!   out on the SCA⁻¹ waveguide", backed by the [`memory`] DRAM model.
//! * [`chain`] — CP chains: communication programs and code delivered over
//!   the SCA⁻¹ interleaved with data (§IV).
//! * [`isa`] — the Computation Program ISA: butterfly-level instructions
//!   compiled into the Computation Instruction Memory and interpreted by
//!   the Execution Unit, with multiply counts measured by execution.
//! * [`model2`] — Model II (blocked, overlapped) delivery, the paper's
//!   noted improvement over the Model I runs of §VI.
//! * [`machine`] — the whole machine: PSCAN + nodes + head node + DRAM;
//!   runs SCA/SCA⁻¹ phases and accounts bus cycles and wall-clock time.
//!   With a fault layer attached, gathers are CRC-checked with link-layer
//!   retry and whole-pass SCA re-issue; protocol failures surface as
//!   structured [`machine::MachineError`]s instead of panics.
//! * [`fft_app`] — the end-to-end distributed 2-D FFT of §V-B: deliver →
//!   row FFTs → SCA transpose → redeliver → column FFTs → writeback, with
//!   *real data* moving through the simulated photonic bus and numerics
//!   verified against the monolithic FFT.
//! * [`collectives`] — all-to-all / all-gather / all-reduce as SCA
//!   gather/scatter phase schedules through head-node DRAM, with real
//!   payload data and semantics checked end to end.

pub mod chain;
pub mod codegen;
pub mod collectives;
pub mod fft1d_app;
pub mod fft_app;
pub mod head;
pub mod isa;
pub mod machine;
pub mod model2;
pub mod node;
pub mod sample;

pub use collectives::{run_sca_collective, ScaCollectiveResult};
pub use fft1d_app::{run_fft1d, Fft1dRun};
pub use fft_app::{run_fft2d, Fft2dRun};
pub use machine::{Machine, MachineConfig, MachineError, PhaseTiming};
pub use model2::{run_model2_rows, Model2Run};
pub use node::Node;
pub use sample::{decode_sample, encode_sample};

/// One-stop import for P-sync machine experiments:
/// `use psync::prelude::*;`.
pub mod prelude {
    pub use crate::fft_app::run_fft2d;
    pub use crate::machine::{Machine, MachineConfig, MachineError, PhaseTiming};
    pub use pscan::compiler::{GatherSpec, ScatterSpec};
}
