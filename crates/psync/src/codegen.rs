//! Application code generation: the LLMORE-style back end that emits, per
//! node, *everything* the node needs — its Computation Program and its
//! Communication Programs — as one bundle, then boots the machine by
//! delivering the bundles **over the waveguide itself**.
//!
//! §IV: "In the P-sync architecture, all data, including communication
//! programs and computation programs can be delivered on the SCA⁻¹ PSCAN.
//! CPs are delivered, along with operational code to the processor on
//! SCA⁻¹ operations, interleaved with data delivery."

use pscan::compiler::{CpCompiler, GatherSpec, ScatterSpec};
use pscan::cp::CommProgram;

use crate::chain::{ChainBuilder, NodeSegment};
use crate::isa::{compile_fft, CompProgram};

/// Everything one node needs to run the distributed 2-D FFT.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBundle {
    /// Row-FFT computation program (also used for the column pass).
    pub comp_fft: CompProgram,
    /// Listen-CP for the initial data delivery.
    pub cp_deliver: CommProgram,
    /// Drive-CP for the transpose writeback.
    pub cp_transpose: CommProgram,
    /// Listen-CP for the redelivery of transposed data.
    pub cp_redeliver: CommProgram,
    /// Drive-CP for the final writeback.
    pub cp_writeback: CommProgram,
}

/// The compiled application: one bundle per node.
#[derive(Debug, Clone)]
pub struct AppBundle {
    /// Per-node bundles.
    pub nodes: Vec<NodeBundle>,
    /// Matrix edge.
    pub n: usize,
}

/// Compile the §V-B five-phase 2-D FFT for `procs` processors over an
/// `n × n` matrix.
pub fn compile_fft2d_app(procs: usize, n: usize) -> AppBundle {
    assert!(procs >= 1 && n.is_multiple_of(procs) && n.is_power_of_two());
    let rows_per = n / procs;
    let area = n * n;

    let deliver_spec = ScatterSpec::blocked(procs, rows_per * n);
    let cp_deliver = CpCompiler.compile_scatter(&deliver_spec, procs);
    let transpose_spec = GatherSpec {
        slot_source: (0..area).map(|k| (k % n) / rows_per).collect(),
    };
    let cp_transpose = CpCompiler.compile_gather(&transpose_spec, procs);
    // Redelivery is blocked over transposed rows; final writeback mirrors
    // the transpose interleave.
    let cp_redeliver = CpCompiler.compile_scatter(&deliver_spec, procs);
    let cp_writeback = CpCompiler.compile_gather(&transpose_spec, procs);

    let comp = compile_fft(n);
    let nodes = (0..procs)
        .map(|p| NodeBundle {
            comp_fft: comp.clone(),
            cp_deliver: cp_deliver[p].clone(),
            cp_transpose: cp_transpose[p].clone(),
            cp_redeliver: cp_redeliver[p].clone(),
            cp_writeback: cp_writeback[p].clone(),
        })
        .collect();
    AppBundle { nodes, n }
}

/// Pack an [`AppBundle`] into a boot chain: one SCA⁻¹ burst carrying every
/// node's CPs followed by its encoded computation program.
pub fn boot_chain(app: &AppBundle) -> crate::chain::Chain {
    let mut b = ChainBuilder::new(app.nodes.len());
    for (p, nb) in app.nodes.iter().enumerate() {
        b.segment(
            p,
            NodeSegment {
                programs: vec![
                    nb.cp_deliver.clone(),
                    nb.cp_transpose.clone(),
                    nb.cp_redeliver.clone(),
                    nb.cp_writeback.clone(),
                ],
                data: nb.comp_fft.encode_words(),
            },
        );
    }
    b.build()
}

/// Unpack what a node received from the boot chain back into a bundle.
pub fn unpack_bundle(
    chain: &crate::chain::Chain,
    node: usize,
    delivered: &[u64],
) -> Result<NodeBundle, pscan::cp::CpError> {
    let (mut programs, code) = chain.unpack(node, delivered)?;
    assert_eq!(programs.len(), 4, "bundle carries four CPs");
    let cp_writeback = programs.pop().expect("4");
    let cp_redeliver = programs.pop().expect("3");
    let cp_transpose = programs.pop().expect("2");
    let cp_deliver = programs.pop().expect("1");
    Ok(NodeBundle {
        comp_fft: CompProgram::decode_words(&code),
        cp_deliver,
        cp_transpose,
        cp_redeliver,
        cp_writeback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::complex::max_error;
    use fft::{fft_in_place, Complex64};
    use pscan::network::{Pscan, PscanConfig};

    #[test]
    fn bundles_carry_consistent_cps() {
        let app = compile_fft2d_app(8, 64);
        // Delivery CPs are disjoint blocked listens; transpose CPs are
        // disjoint drives covering the whole area.
        let total_listen: u64 = app
            .nodes
            .iter()
            .map(|b| b.cp_deliver.slots_listened())
            .sum();
        let total_drive: u64 = app
            .nodes
            .iter()
            .map(|b| b.cp_transpose.slots_driven())
            .sum();
        assert_eq!(total_listen, 64 * 64);
        assert_eq!(total_drive, 64 * 64);
        let drives: Vec<CommProgram> = app.nodes.iter().map(|b| b.cp_transpose.clone()).collect();
        assert!(CpCompiler::audit_disjoint(&drives).is_ok());
    }

    #[test]
    fn boot_over_the_waveguide_and_execute() {
        // The full §IV story: compile the app, ship every node its bundle
        // through the simulated SCA⁻¹, decode on arrival, and run the
        // delivered computation program on real data.
        let procs = 4;
        let n = 32;
        let app = compile_fft2d_app(procs, n);
        let chain = boot_chain(&app);
        let pscan = Pscan::new(PscanConfig {
            nodes: procs,
            ..Default::default()
        });
        let out = pscan
            .scatter(&chain.spec, &chain.burst)
            .expect("boot scatter");

        for p in 0..procs {
            let bundle = unpack_bundle(&chain, p, &out.delivered[p]).expect("decode");
            assert_eq!(bundle.cp_deliver, app.nodes[p].cp_deliver);
            assert_eq!(bundle.cp_transpose, app.nodes[p].cp_transpose);
            // The delivered code computes a correct FFT (wire-precision
            // twiddles).
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.3).sin(), 0.25 * i as f64))
                .collect();
            let mut via_boot = x.clone();
            bundle.comp_fft.execute(&mut via_boot);
            let mut exact = x;
            fft_in_place(&mut exact);
            assert!(max_error(&via_boot, &exact) < 1e-3, "node {p}");
        }
    }

    #[test]
    fn boot_chain_size_is_dominated_by_code_not_cps() {
        // The blocked-phase CPs are one entry (~48 bits) each — the paper's
        // "CPs can be quite small" observation; only the fine-interleaved
        // transpose CPs grow with n. Code still dominates the chain.
        let app = compile_fft2d_app(4, 64);
        let chain = boot_chain(&app);
        let cp_words: usize = chain.control_layout.iter().flatten().sum();
        let total = chain.burst.len();
        assert!(cp_words * 2 < total, "cp {cp_words} vs total {total}");
        // Blocked-phase CPs are single entries.
        for nb in &app.nodes {
            assert_eq!(nb.cp_deliver.entries().len(), 1);
            assert_eq!(nb.cp_deliver.encoded_bits(), 48);
        }
    }
}
