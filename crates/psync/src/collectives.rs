//! Collective-operation phase schedules on the P-sync SCA machine.
//!
//! The photonic fabric has no node-to-node links: every collective routes
//! through the head node's DRAM as SCA gather passes (nodes → memory) and
//! SCA⁻¹ scatter passes (memory → nodes), the machine billing bus slots,
//! DRAM cycles and compute nanoseconds per phase exactly as for the FFT
//! applications. Real data moves: the runner seeds deterministic per-node
//! send buffers, drives them through the simulated bus, and returns what
//! each node captured, so tests can check collective *semantics* (e.g. the
//! all-reduce really sums) and goldens can fingerprint payload bytes.
//!
//! Phase decompositions (P processors, `words` words per node):
//!
//! * **all-to-all** — `gather` the P·`words`-word send buffers src-major
//!   into DRAM, then `scatter` with a transposed address walk: node `d`'s
//!   slots read `src·P·words + d·words + j`, the SCA corner turn.
//! * **all-gather** — `gather` each node's block, then `broadcast` the
//!   whole P·`words` buffer to every node (address walk repeats).
//! * **all-reduce** — `gather` the operands; `shard_scatter` shard `d`
//!   (`⌈words/P⌉` words, last shard ragged) of *every* source to node `d`;
//!   `reduce` on-node (elementwise sum, billed at `mult_ns` per element
//!   like the FFT butterflies); `gather_reduced` the shards back —
//!   concatenated they are exactly the reduced vector; `broadcast` it.
//!
//! Phase names follow [`Collective::phase_name`]
//! (`collective.<op>.<phase>`), so with machine telemetry attached the
//! spans land on the same `("psync", "phases")` track as the FFT phases,
//! alongside the mesh side's identically-named spans
//! (`emesh::collectives`).

use pscan::compiler::{GatherSpec, ScatterSpec};
use sim_core::collective::Collective;

use crate::machine::{Machine, MachineError};

/// Result of one collective run on the SCA machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaCollectiveResult {
    /// Which collective ran.
    pub collective: Collective,
    /// Participating processors.
    pub participants: usize,
    /// Payload words each node contributed.
    pub words: usize,
    /// Executed phase names, in order.
    pub phase_names: Vec<String>,
    /// Bus slots billed across the collective's phases.
    pub bus_slots: u64,
    /// DRAM cycles billed across the collective's phases.
    pub dram_cycles: u64,
    /// Compute nanoseconds billed (all-reduce's `reduce` phase; 0 else).
    pub compute_ns: f64,
    /// Wall-clock seconds across the collective's phases.
    pub seconds: f64,
    /// What each node holds after the collective (per-node receive
    /// buffers, slot order).
    pub received: Vec<Vec<u64>>,
}

impl ScaCollectiveResult {
    /// Order-sensitive FNV-1a fingerprint over the integer observables and
    /// every received payload word — the golden-determinism handle.
    /// (Float seconds are derived from `bus_slots`/`dram_cycles`/compute
    /// and deliberately excluded.)
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, bytes: impl IntoIterator<Item = u8>) {
            for b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        eat(&mut h, (self.participants as u64).to_le_bytes());
        eat(&mut h, (self.words as u64).to_le_bytes());
        eat(&mut h, self.bus_slots.to_le_bytes());
        eat(&mut h, self.dram_cycles.to_le_bytes());
        for name in &self.phase_names {
            eat(&mut h, name.bytes());
        }
        for node in &self.received {
            for &w in node {
                eat(&mut h, w.to_le_bytes());
            }
        }
        h
    }
}

/// The deterministic send buffer the runner seeds on node `i`: for
/// all-to-all, word `d·words + j` is destined to node `d`; the other
/// collectives treat it as one `words`-word block (its first `words`
/// words). Encodes `(i, position)` injectively so delivery errors are
/// visible in payload bytes.
pub fn seed_words(i: usize, p: usize, words: usize, collective: Collective) -> Vec<u64> {
    let len = match collective {
        Collective::AllToAll => p * words,
        Collective::AllGather | Collective::AllReduce => words,
    };
    (0..len).map(|k| (i * p * words + k + 1) as u64).collect()
}

/// Run `collective` on `machine` with `words` payload words per node,
/// seeding send buffers via [`seed_words`]. DRAM must hold `P²·words`
/// words for all-to-all / all-gather and `P·words` for all-reduce.
///
/// # Panics
/// Panics if the machine has fewer than two processors, `words` is zero,
/// or DRAM is too small; bus/DRAM protocol failures surface as
/// [`MachineError`].
pub fn run_sca_collective(
    machine: &mut Machine,
    collective: Collective,
    words: usize,
) -> Result<ScaCollectiveResult, MachineError> {
    let p = machine.nodes.len();
    assert!(p >= 2, "collective needs at least two processors, got {p}");
    assert!(words >= 1, "collective payload must be at least one word");
    let dram_needed = match collective {
        Collective::AllToAll | Collective::AllGather => p * p * words,
        Collective::AllReduce => p * words,
    };
    assert!(
        machine.config().dram_words >= dram_needed,
        "collective {} over {p} procs x {words} words needs {dram_needed} \
         DRAM words, machine has {}",
        collective.label(),
        machine.config().dram_words
    );
    let send: Vec<Vec<u64>> = (0..p)
        .map(|i| seed_words(i, p, words, collective))
        .collect();
    let phases_before = machine.phases.len();

    let received = match collective {
        Collective::AllToAll => {
            // SCA in: src-major [src][dst][word] image of all send buffers.
            let gather = GatherSpec::blocked(p, p * words);
            let addrs: Vec<u64> = (0..(p * p * words) as u64).collect();
            machine.try_gather_to_memory(
                &collective.phase_name("gather"),
                &gather,
                &send,
                &addrs,
            )?;
            // SCA⁻¹ out: transposed walk delivers dst-major blocks.
            let scatter = ScatterSpec::blocked(p, p * words);
            let mut out_addrs = Vec::with_capacity(p * p * words);
            for d in 0..p {
                for s in 0..p {
                    for j in 0..words {
                        out_addrs.push((s * p * words + d * words + j) as u64);
                    }
                }
            }
            machine.try_scatter_from_memory(
                &collective.phase_name("scatter"),
                &out_addrs,
                &scatter,
            )?
        }
        Collective::AllGather => {
            let gather = GatherSpec::blocked(p, words);
            let addrs: Vec<u64> = (0..(p * words) as u64).collect();
            machine.try_gather_to_memory(
                &collective.phase_name("gather"),
                &gather,
                &send,
                &addrs,
            )?;
            // Every node detects a full copy of the gathered buffer.
            let scatter = ScatterSpec::blocked(p, p * words);
            let out_addrs: Vec<u64> = (0..p).flat_map(|_| 0..(p * words) as u64).collect();
            machine.try_scatter_from_memory(
                &collective.phase_name("broadcast"),
                &out_addrs,
                &scatter,
            )?
        }
        Collective::AllReduce => {
            let shard = words.div_ceil(p);
            // (1) SCA in: [src][word] operand image.
            let gather = GatherSpec::blocked(p, words);
            let addrs: Vec<u64> = (0..(p * words) as u64).collect();
            machine.try_gather_to_memory(
                &collective.phase_name("gather"),
                &gather,
                &send,
                &addrs,
            )?;
            // (2) SCA⁻¹: shard d of every source to node d (ragged last
            // shard when P ∤ words).
            let shard_scatter = ScatterSpec {
                slot_dest: (0..p * words).map(|k| (k % words) / shard).collect(),
            };
            let shards = machine.try_scatter_from_memory(
                &collective.phase_name("shard_scatter"),
                &addrs,
                &shard_scatter,
            )?;
            // (3) On-node elementwise reduction across the P copies,
            // billed like the FFT's multiplies.
            let shard_len = |d: usize| words.min((d + 1) * shard).saturating_sub(d * shard);
            let reduced: Vec<Vec<u64>> = shards
                .iter()
                .enumerate()
                .map(|(d, copies)| {
                    let len = shard_len(d);
                    (0..len)
                        .map(|j| (0..p).map(|s| copies[s * len + j]).sum())
                        .collect()
                })
                .collect();
            machine.compute_phase(&collective.phase_name("reduce"), |n| {
                let ops = ((p - 1) * shard_len(n.id)) as u64;
                n.multiplies += ops;
                let ns = ops as f64 * n.exec.mult_ns;
                n.compute_ns += ns;
                ns
            });
            // (4) SCA in: shards concatenate to exactly the reduced vector.
            let gather_red = GatherSpec {
                slot_source: (0..p)
                    .flat_map(|d| std::iter::repeat_n(d, shard_len(d)))
                    .collect(),
            };
            let red_addrs: Vec<u64> = (0..words as u64).collect();
            machine.try_gather_to_memory(
                &collective.phase_name("gather_reduced"),
                &gather_red,
                &reduced,
                &red_addrs,
            )?;
            // (5) SCA⁻¹: broadcast the reduced vector to every node.
            let bcast = ScatterSpec::blocked(p, words);
            let out_addrs: Vec<u64> = (0..p).flat_map(|_| 0..words as u64).collect();
            machine.try_scatter_from_memory(
                &collective.phase_name("broadcast"),
                &out_addrs,
                &bcast,
            )?
        }
    };

    let run = &machine.phases[phases_before..];
    Ok(ScaCollectiveResult {
        collective,
        participants: p,
        words,
        phase_names: run.iter().map(|t| t.name.clone()).collect(),
        bus_slots: run.iter().map(|t| t.bus_slots).sum(),
        dram_cycles: run.iter().map(|t| t.dram_cycles).sum(),
        compute_ns: run.iter().map(|t| t.compute_ns).sum(),
        seconds: run.iter().map(|t| t.seconds).sum(),
        received,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn machine(procs: usize, words: usize) -> Machine {
        Machine::new(MachineConfig::paper_default(procs, procs * procs * words))
    }

    #[test]
    fn all_to_all_delivers_transposed_blocks() {
        let (p, words) = (4, 3);
        let mut m = machine(p, words);
        let r = run_sca_collective(&mut m, Collective::AllToAll, words).unwrap();
        assert_eq!(
            r.phase_names,
            ["collective.alltoall.gather", "collective.alltoall.scatter"]
        );
        let send: Vec<Vec<u64>> = (0..p)
            .map(|i| seed_words(i, p, words, Collective::AllToAll))
            .collect();
        for d in 0..p {
            // Node d's buffer is src-major: src s's block for d.
            for (s, sent) in send.iter().enumerate() {
                for j in 0..words {
                    assert_eq!(
                        r.received[d][s * words + j],
                        sent[d * words + j],
                        "dst {d} src {s} word {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_gather_gives_every_node_the_full_buffer() {
        let (p, words) = (4, 5);
        let mut m = machine(p, words);
        let r = run_sca_collective(&mut m, Collective::AllGather, words).unwrap();
        let full: Vec<u64> = (0..p)
            .flat_map(|i| seed_words(i, p, words, Collective::AllGather))
            .collect();
        for d in 0..p {
            assert_eq!(r.received[d], full, "node {d}");
        }
    }

    #[test]
    fn all_reduce_sums_even_with_ragged_shards() {
        // words = 10, p = 4 ⇒ shards of 3/3/3/1.
        let (p, words) = (4, 10);
        let mut m = machine(p, words);
        let r = run_sca_collective(&mut m, Collective::AllReduce, words).unwrap();
        let expect: Vec<u64> = (0..words)
            .map(|j| {
                (0..p)
                    .map(|i| seed_words(i, p, words, Collective::AllReduce)[j])
                    .sum()
            })
            .collect();
        for d in 0..p {
            assert_eq!(r.received[d], expect, "node {d}");
        }
        assert_eq!(r.phase_names.len(), 5);
        assert!(r.compute_ns > 0.0, "reduce phase must bill compute time");
        let mults: u64 = m.nodes.iter().map(|n| n.multiplies).sum();
        // (P−1) ops per reduced element, summed over the ragged shards.
        assert_eq!(mults, ((p - 1) * words) as u64);
    }

    #[test]
    fn phases_land_on_machine_timeline_and_telemetry() {
        let (p, words) = (4, 4);
        let mut m = machine(p, words);
        m.enable_telemetry();
        let r = run_sca_collective(&mut m, Collective::AllReduce, words).unwrap();
        assert!(r.seconds > 0.0);
        assert!((m.total_seconds() - r.seconds).abs() < 1e-12);
        let reg = m.take_telemetry().unwrap();
        let trace = reg.chrome_trace_json();
        for phase in [
            "gather",
            "shard_scatter",
            "reduce",
            "gather_reduced",
            "broadcast",
        ] {
            assert!(
                trace.contains(&format!("collective.allreduce.{phase}")),
                "missing span for {phase}"
            );
        }
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let run = |c, words| {
            let mut m = machine(4, words);
            run_sca_collective(&mut m, c, words).unwrap().fingerprint()
        };
        // Repeat-run identity for every builder, mirroring the mesh side's
        // collective_identity suite.
        for c in Collective::ALL {
            assert_eq!(run(c, 3), run(c, 3), "{}", c.label());
            assert_ne!(run(c, 3), run(c, 4), "{}", c.label());
        }
        // And the builders are mutually distinct at equal sizing.
        assert_ne!(run(Collective::AllToAll, 3), run(Collective::AllGather, 3));
        assert_ne!(run(Collective::AllGather, 3), run(Collective::AllReduce, 3));
    }

    #[test]
    #[should_panic(expected = "DRAM words")]
    fn undersized_dram_is_rejected_up_front() {
        let mut m = Machine::new(MachineConfig::paper_default(4, 8));
        let _ = run_sca_collective(&mut m, Collective::AllToAll, 4);
    }
}
