//! CP chains — paper §IV.
//!
//! "CPs are delivered, along with operational code to the processor on
//! SCA⁻¹ operations, interleaved with data delivery. CPs form chains in
//! which one CP loads data, and the CP for the SCA waveguide driver,
//! followed by a CP for the next SCA⁻¹ operation."
//!
//! A [`ChainBuilder`] lays out, per node, a control segment (the node's
//! *next* communication programs, encoded) followed by its data segment,
//! all in one monolithic SCA⁻¹ burst. Each node's bootstrap CP listens to
//! its own segment; on receipt it decodes the embedded CPs for the phases
//! that follow — control and data ride the same photons.

use pscan::compiler::ScatterSpec;
use pscan::cp::CommProgram;

/// One node's payload within a chain burst.
#[derive(Debug, Clone, Default)]
pub struct NodeSegment {
    /// Encoded communication programs to load (e.g. the writeback Drive CP
    /// and the next Listen CP).
    pub programs: Vec<CommProgram>,
    /// Data words (wire-format samples).
    pub data: Vec<u64>,
}

/// Builds a combined control+data SCA⁻¹ burst.
#[derive(Debug, Default)]
pub struct ChainBuilder {
    segments: Vec<NodeSegment>,
}

/// A built chain: the burst, the scatter spec, and per-node layout info.
#[derive(Debug)]
pub struct Chain {
    /// The monolithic burst the head node drives.
    pub burst: Vec<u64>,
    /// Which node captures each slot.
    pub spec: ScatterSpec,
    /// Per node: number of leading control words in its segment, and the
    /// per-program word counts (for decoding).
    pub control_layout: Vec<Vec<usize>>,
}

impl ChainBuilder {
    /// Start a chain for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        ChainBuilder {
            segments: vec![NodeSegment::default(); nodes],
        }
    }

    /// Set node `n`'s segment.
    pub fn segment(&mut self, n: usize, seg: NodeSegment) -> &mut Self {
        self.segments[n] = seg;
        self
    }

    /// Lay out the burst: node segments in node order (a blocked scatter).
    pub fn build(self) -> Chain {
        let mut burst = Vec::new();
        let mut slot_dest = Vec::new();
        let mut control_layout = Vec::with_capacity(self.segments.len());
        for (n, seg) in self.segments.iter().enumerate() {
            let mut layout = Vec::with_capacity(seg.programs.len());
            for p in &seg.programs {
                let words = p.encode_words();
                layout.push(words.len());
                burst.extend_from_slice(&words);
                slot_dest.extend(std::iter::repeat_n(n, words.len()));
            }
            burst.extend_from_slice(&seg.data);
            slot_dest.extend(std::iter::repeat_n(n, seg.data.len()));
            control_layout.push(layout);
        }
        Chain {
            burst,
            spec: ScatterSpec { slot_dest },
            control_layout,
        }
    }
}

impl Chain {
    /// Split a node's delivered words back into (decoded programs, data),
    /// as the node's network interface does on receipt.
    pub fn unpack(
        &self,
        node: usize,
        delivered: &[u64],
    ) -> Result<(Vec<CommProgram>, Vec<u64>), pscan::cp::CpError> {
        let mut programs = Vec::new();
        let mut off = 0;
        for &len in &self.control_layout[node] {
            programs.push(CommProgram::decode_words(&delivered[off..off + len])?);
            off += len;
        }
        Ok((programs, delivered[off..].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscan::cp::{CpAction, CpEntry};
    use pscan::network::{Pscan, PscanConfig};

    fn mk_cp(start: u64, len: u64, action: CpAction) -> CommProgram {
        CommProgram::new(vec![CpEntry { start, len, action }]).unwrap()
    }

    #[test]
    fn chain_delivers_programs_and_data_through_the_bus() {
        let nodes = 4;
        let mut b = ChainBuilder::new(nodes);
        for n in 0..nodes {
            b.segment(
                n,
                NodeSegment {
                    programs: vec![
                        mk_cp(1000 + n as u64 * 10, 8, CpAction::Drive),
                        mk_cp(2000 + n as u64 * 10, 8, CpAction::Listen),
                    ],
                    data: vec![n as u64; 6],
                },
            );
        }
        let chain = b.build();
        assert_eq!(chain.burst.len(), nodes * (2 + 6));

        // Push it through a real simulated bus.
        let p = Pscan::new(PscanConfig {
            nodes,
            ..Default::default()
        });
        let out = p.scatter(&chain.spec, &chain.burst).unwrap();
        for n in 0..nodes {
            let (programs, data) = chain.unpack(n, &out.delivered[n]).unwrap();
            assert_eq!(programs.len(), 2);
            assert_eq!(programs[0].entries()[0].start, 1000 + n as u64 * 10);
            assert_eq!(programs[0].entries()[0].action, CpAction::Drive);
            assert_eq!(programs[1].entries()[0].action, CpAction::Listen);
            assert_eq!(data, vec![n as u64; 6]);
        }
    }

    #[test]
    fn empty_segments_are_legal() {
        let mut b = ChainBuilder::new(2);
        b.segment(
            0,
            NodeSegment {
                programs: vec![],
                data: vec![42],
            },
        );
        let chain = b.build();
        assert_eq!(chain.burst, vec![42]);
        let (progs, data) = chain.unpack(0, &[42]).unwrap();
        assert!(progs.is_empty());
        assert_eq!(data, vec![42]);
    }

    #[test]
    fn control_overhead_is_small() {
        // The §IV claim: FFT CPs ≈ 96 bits per node (2 entries). For a
        // 1024-sample data segment the control overhead is 2 words in 1026
        // (< 0.2 %).
        let mut b = ChainBuilder::new(1);
        b.segment(
            0,
            NodeSegment {
                programs: vec![
                    mk_cp(0, 1024, CpAction::Listen),
                    mk_cp(5000, 1024, CpAction::Drive),
                ],
                data: vec![0; 1024],
            },
        );
        let chain = b.build();
        let control = chain.burst.len() - 1024;
        assert_eq!(control, 2);
        let total_cp_bits: usize = 2 * 48;
        assert_eq!(total_cp_bits, 96);
    }
}
