//! End-to-end distributed **1-D** FFT on the P-sync machine, via the
//! six-step decomposition (§II: "large 1D vector FFTs are typically
//! implemented as 2D matrix FFTs ... Therefore, the optimization of the 2D
//! FFT is generalizable to the 1D case").
//!
//! The two corner turns of the decomposition run as SCAs; the strided
//! column reads run as pre-scheduled SCA⁻¹ deliveries; the twiddle pass and
//! both FFT passes run in the nodes. Numerics are verified against a
//! monolithic FFT to wire precision.

use fft::{Complex64, Radix2Plan, SixStepPlan};
use pscan::compiler::{GatherSpec, ScatterSpec};

use crate::machine::{Machine, MachineConfig, PhaseTiming};
use crate::sample::{decode_all, encode_sample};

/// Result of a distributed 1-D run.
#[derive(Debug)]
pub struct Fft1dRun {
    /// The spectrum, in natural output order.
    pub output: Vec<Complex64>,
    /// Phase log.
    pub phases: Vec<PhaseTiming>,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

/// Run a length-`n1·n2` distributed 1-D FFT on `procs` processors
/// (`procs` must divide both `n1` and `n2`).
pub fn run_fft1d(procs: usize, plan: &SixStepPlan, x: &[Complex64]) -> Fft1dRun {
    let (n1, n2) = plan.shape();
    let l = n1 * n2;
    assert_eq!(x.len(), l);
    assert!(
        n1 % procs == 0 && n2 % procs == 0,
        "procs must divide n1 and n2"
    );

    let mut m = Machine::new(MachineConfig::paper_default(procs, 2 * l));
    let wire: Vec<u64> = x.iter().map(|&c| encode_sample(c)).collect();
    m.head.fill(0, &wire);
    let area = l as u64;

    // --- Phase A: deliver Aᵀ rows (columns of A) — a strided SCA⁻¹ -------
    // Node p gets Aᵀ rows j2 ∈ [p·n2/procs, ...): addresses j1·n2 + j2.
    let t_rows_per = n2 / procs;
    let addrs_a: Vec<u64> = (0..n2)
        .flat_map(|j2| (0..n1).map(move |j1| (j1 * n2 + j2) as u64))
        .collect();
    let spec_a = ScatterSpec::blocked(procs, t_rows_per * n1);
    let delivered = m.scatter_from_memory("deliver_cols", &addrs_a, &spec_a);

    // --- Phase B: column FFTs (length n1) + per-element twiddles ----------
    let col_plan = Radix2Plan::new(n1);
    let mut per_node: Vec<Vec<Complex64>> = delivered
        .into_iter()
        .map(|words| decode_all(&words))
        .collect();
    m.compute_phase("col_fft_twiddle", |node| {
        let data = &mut per_node[node.id];
        let mut mults = 0u64;
        for (local, row) in data.chunks_mut(n1).enumerate() {
            let j2 = node.id * t_rows_per + local;
            col_plan.forward(row);
            // row[k1] is inner[k1][j2] pre-twiddle: multiply by W_L^{j2·k1}.
            for (k1, v) in row.iter_mut().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (j2 * k1) as f64 / l as f64;
                *v = *v * Complex64::cis(theta);
                mults += 4;
            }
            mults += fft::ops::multiplies(n1 as u64);
        }
        node.multiplies += mults;
        let t = mults as f64 * node.exec.mult_ns;
        node.compute_ns += t;
        t
    });

    // --- Phase C: corner turn 1 — gather inner[k1][j2] row-major to B ----
    // Slot k = k1·n2 + j2 comes from the owner of j2; node drains its
    // (j2, k1) in slot order: k1 outer? slots ascending => k1 outer, j2
    // inner within the node's j2 range.
    let slot_source_c: Vec<usize> = (0..l).map(|k| (k % n2) / t_rows_per).collect();
    let node_words_c: Vec<Vec<u64>> = (0..procs)
        .map(|p| {
            let j2_0 = p * t_rows_per;
            let mut words = Vec::with_capacity(t_rows_per * n1);
            for k1 in 0..n1 {
                for j2 in j2_0..j2_0 + t_rows_per {
                    // node data layout: local row (j2 - j2_0), element k1.
                    words.push(encode_sample(per_node[p][(j2 - j2_0) * n1 + k1]));
                }
            }
            words
        })
        .collect();
    let addrs_b: Vec<u64> = (0..area).map(|k| area + k).collect();
    m.gather_to_memory(
        "corner_turn_1",
        &GatherSpec {
            slot_source: slot_source_c,
        },
        &node_words_c,
        &addrs_b,
    );

    // --- Phase D: deliver inner rows (k1) blocked; row FFTs (length n2) ---
    let rows_per = n1 / procs;
    let spec_d = ScatterSpec::blocked(procs, rows_per * n2);
    let delivered = m.scatter_from_memory("deliver_rows", &addrs_b, &spec_d);
    let row_plan = Radix2Plan::new(n2);
    let mut per_node2: Vec<Vec<Complex64>> = delivered
        .into_iter()
        .map(|words| decode_all(&words))
        .collect();
    m.compute_phase("row_fft", |node| {
        let data = &mut per_node2[node.id];
        let mut mults = 0u64;
        for row in data.chunks_mut(n2) {
            row_plan.forward(row);
            mults += fft::ops::multiplies(n2 as u64);
        }
        node.multiplies += mults;
        let t = mults as f64 * node.exec.mult_ns;
        node.compute_ns += t;
        t
    });

    // --- Phase E: corner turn 2 — gather X[k1 + k2·n1] to region A -------
    // Slot k of the output: k1 = k % n1, k2 = k / n1; source = owner of k1.
    let slot_source_e: Vec<usize> = (0..l).map(|k| (k % n1) / rows_per).collect();
    let node_words_e: Vec<Vec<u64>> = (0..procs)
        .map(|p| {
            let k1_0 = p * rows_per;
            let mut words = Vec::with_capacity(rows_per * n2);
            for k2 in 0..n2 {
                for k1 in k1_0..k1_0 + rows_per {
                    words.push(encode_sample(per_node2[p][(k1 - k1_0) * n2 + k2]));
                }
            }
            words
        })
        .collect();
    let addrs_out: Vec<u64> = (0..area).collect();
    m.gather_to_memory(
        "corner_turn_2",
        &GatherSpec {
            slot_source: slot_source_e,
        },
        &node_words_e,
        &addrs_out,
    );

    let output = decode_all(m.head.read_region(0, l));
    Fft1dRun {
        output,
        total_seconds: m.total_seconds(),
        phases: m.phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fft::complex::max_error;
    use fft::fft_in_place;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.031).sin(), (i as f64 * 0.017).cos() * 0.5))
            .collect()
    }

    #[test]
    fn distributed_1d_matches_monolithic() {
        for (n1, n2, procs) in [(16usize, 16usize, 4usize), (32, 32, 8), (16, 64, 8)] {
            let plan = SixStepPlan::new(n1, n2);
            let x = signal(n1 * n2);
            let run = run_fft1d(procs, &plan, &x);
            let mut mono = x.clone();
            fft_in_place(&mut mono);
            let err = max_error(&run.output, &mono);
            let scale = (n1 * n2) as f64;
            assert!(err < 2e-4 * scale, "{n1}x{n2}/{procs}: err {err}");
        }
    }

    #[test]
    fn phase_log_has_five_steps() {
        let plan = SixStepPlan::new(16, 16);
        let run = run_fft1d(4, &plan, &signal(256));
        let names: Vec<&str> = run.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "deliver_cols",
                "col_fft_twiddle",
                "corner_turn_1",
                "deliver_rows",
                "row_fft",
                "corner_turn_2"
            ]
        );
        assert!(run.total_seconds > 0.0);
    }

    #[test]
    fn corner_turns_are_gap_free_and_cost_table3_cycles() {
        let plan = SixStepPlan::new(32, 32);
        let run = run_fft1d(8, &plan, &signal(1024));
        let turn = run
            .phases
            .iter()
            .find(|p| p.name == "corner_turn_1")
            .unwrap();
        // 1024 payload slots + 1024/32 header slots.
        assert_eq!(turn.bus_slots, 1024 + 32);
    }
}
