//! The assembled P-sync machine — paper Fig. 6.
//!
//! Processors share the PSCAN waveguide; the head node owns DRAM at the
//! waveguide end; the photonic clock generator defines the slot timebase.
//! The machine executes *phases*: SCA⁻¹ deliveries from memory, local
//! compute, and SCA writebacks to memory — with real data flowing through
//! the simulated bus and real cycles accounted on both the bus and DRAM.
//!
//! Bandwidth convention: the machine uses a WDM plan whose bus word is
//! 64 bits per slot (one `S_s = 64`-bit sample per bus cycle), matching the
//! Table III arithmetic (`S_b = 64`), with the aggregate fixed at the
//! paper's 320 Gb/s. DRAM's 64-bit bus runs at the same rate, so bus slots
//! and DRAM beats are the same currency.

use memory::DramConfig;
use photonics::wdm::WavelengthPlan;
use pscan::compiler::{GatherSpec, ScatterSpec};
use pscan::faults::{PscanError, PscanFaultConfig};
use pscan::network::{Pscan, PscanConfig};
use serde::{Deserialize, Serialize};
use sim_core::telemetry::Registry;

use crate::head::HeadNode;
use crate::node::{ExecParams, Node};

/// Structured errors from the machine's protocol paths (replacing the
/// panics that used to sit on the hot scatter/gather code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The PSCAN rejected or could not recover a transaction.
    Pscan(PscanError),
    /// A gather burst arrived with an empty wavefront slot — a CP/schedule
    /// bug, since SCA writebacks must be gap-free.
    GatherUnderrun {
        /// First empty slot index.
        slot: usize,
        /// Observed utilization.
        utilization_ppm: u64,
    },
    /// The link layer exhausted its retries and every protocol-level
    /// re-issue of the SCA pass failed too.
    ScaReissueExhausted {
        /// SCA passes attempted (1 + re-issues).
        passes: u32,
        /// Corrupted words observed on the final pass.
        last_corrupted: u64,
    },
    /// The machine was interrupted by the installed
    /// [`sim_core::cancel::Interrupt`] at a phase boundary. (Cancellations
    /// that fire *inside* a gather's retry loop surface as
    /// [`MachineError::Pscan`] wrapping [`PscanError::Cancelled`].)
    Cancelled {
        /// Phases completed before the interrupt fired.
        phases_done: usize,
        /// Which interrupt source fired.
        cause: sim_core::cancel::CancelCause,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Pscan(e) => write!(f, "pscan: {e}"),
            MachineError::GatherUnderrun {
                slot,
                utilization_ppm,
            } => write!(
                f,
                "SCA gather underrun at slot {slot} (utilization {} ppm); \
                 writebacks must be gap-free",
                utilization_ppm
            ),
            MachineError::ScaReissueExhausted {
                passes,
                last_corrupted,
            } => write!(
                f,
                "SCA pass failed {passes} times (link-layer retries exhausted each \
                 time; {last_corrupted} corrupted words on the final pass)"
            ),
            MachineError::Cancelled { phases_done, cause } => write!(
                f,
                "machine Cancelled after {phases_done} completed phases ({cause})"
            ),
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Pscan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PscanError> for MachineError {
    fn from(e: PscanError) -> Self {
        MachineError::Pscan(e)
    }
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Processor count (taps on the bus).
    pub procs: usize,
    /// Die edge in mm.
    pub die_mm: f64,
    /// WDM plan; default 64 λ × 5 Gb/s → a 64-bit bus word per slot at
    /// 320 Gb/s aggregate.
    pub plan: WavelengthPlan,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// DRAM capacity in 64-bit words.
    pub dram_words: usize,
    /// Execution-unit timing.
    pub exec: ExecParams,
}

impl MachineConfig {
    /// The paper's baseline machine for `procs` processors and
    /// `dram_words` of storage: 20 mm die, 64 λ × 5 Gb/s plan (64-bit bus
    /// word at 320 Gb/s), ideal DRAM. Refine with the `with_*` builders:
    ///
    /// ```
    /// use memory::DramConfig;
    /// use psync::machine::MachineConfig;
    /// let cfg = MachineConfig::paper_default(4, 256).with_dram(DramConfig::default());
    /// assert_eq!(cfg.procs, 4);
    /// ```
    pub fn paper_default(procs: usize, dram_words: usize) -> Self {
        MachineConfig {
            procs,
            die_mm: 20.0,
            plan: WavelengthPlan::new(64, 5.0),
            dram: DramConfig::ideal_paper(),
            dram_words,
            exec: ExecParams::default(),
        }
    }

    /// Default machine for `procs` processors and `dram_words` of storage.
    #[deprecated(since = "0.1.0", note = "use MachineConfig::paper_default instead")]
    pub fn new(procs: usize, dram_words: usize) -> Self {
        MachineConfig::paper_default(procs, dram_words)
    }

    /// Set the die edge in millimetres.
    #[must_use]
    pub fn with_die_mm(mut self, die_mm: f64) -> Self {
        self.die_mm = die_mm;
        self
    }

    /// Replace the WDM plan.
    #[must_use]
    pub fn with_plan(mut self, plan: WavelengthPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replace the DRAM configuration.
    #[must_use]
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Replace the execution-unit timing.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecParams) -> Self {
        self.exec = exec;
        self
    }
}

/// Timing record of one executed phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase label.
    pub name: String,
    /// Bus slots occupied (including transaction header slots).
    pub bus_slots: u64,
    /// DRAM cycles consumed.
    pub dram_cycles: u64,
    /// Compute nanoseconds (compute phases only).
    pub compute_ns: f64,
    /// Wall-clock seconds: bus and DRAM pipeline against each other, so the
    /// slower of the two (plus compute, which does not overlap within a
    /// phase under Model I) sets the pace.
    pub seconds: f64,
    /// Recovery retries absorbed by this phase (link-layer CRC retries plus
    /// whole-pass SCA re-issues); 0 on clean runs.
    pub retries: u64,
}

/// The machine.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    pscan: Pscan,
    /// The head node (public for result inspection).
    pub head: HeadNode,
    /// The processing elements.
    pub nodes: Vec<Node>,
    /// Executed phase log.
    pub phases: Vec<PhaseTiming>,
    /// Whole-pass SCA re-issues allowed per gather when the link layer's own
    /// retry budget is spent.
    pub sca_reissue_limit: u32,
    /// Telemetry registry; `None` (the default) leaves the phase paths
    /// untouched. Phase spans live on the machine's wall-clock timeline,
    /// rendered at one microsecond of trace time per simulated microsecond.
    telemetry: Option<Registry>,
    /// Cooperative interrupt, polled at every phase boundary (scatter /
    /// gather entry). `None` (the default) leaves the phase paths
    /// untouched.
    interrupt: Option<sim_core::cancel::Interrupt>,
}

impl Machine {
    /// Assemble a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        let pscan = Pscan::new(PscanConfig {
            nodes: cfg.procs,
            die_mm: cfg.die_mm,
            plan: cfg.plan.clone(),
        });
        let head = HeadNode::new(cfg.dram, cfg.dram_words);
        let nodes = (0..cfg.procs).map(|i| Node::new(i, cfg.exec)).collect();
        Machine {
            cfg,
            pscan,
            head,
            nodes,
            phases: Vec::new(),
            sca_reissue_limit: 3,
            telemetry: None,
            interrupt: None,
        }
    }

    /// Install a cooperative [`sim_core::cancel::Interrupt`] on the machine
    /// *and* (a clone of it) on its PSCAN: phase boundaries abort with
    /// [`MachineError::Cancelled`], and a gather's link-layer retry loop
    /// aborts with [`PscanError::Cancelled`] between attempts. Replaces
    /// any earlier interrupt; with none installed every protocol path is
    /// untouched.
    pub fn set_interrupt(&mut self, interrupt: sim_core::cancel::Interrupt) {
        self.pscan.set_interrupt(interrupt.clone());
        self.interrupt = Some(interrupt);
    }

    /// Remove the installed interrupt from the machine and its PSCAN.
    pub fn clear_interrupt(&mut self) {
        self.pscan.clear_interrupt();
        self.interrupt = None;
    }

    /// Poll the interrupt at a phase boundary.
    fn check_interrupt(&mut self) -> Result<(), MachineError> {
        if let Some(intr) = self.interrupt.as_mut() {
            if let Some(cause) = intr.check(self.phases.len() as u64) {
                return Err(MachineError::Cancelled {
                    phases_done: self.phases.len(),
                    cause,
                });
            }
        }
        Ok(())
    }

    /// Attach (or replace) a telemetry registry on the machine *and* its
    /// PSCAN. Every executed phase records a `psync.phase` span (process
    /// `psync`, track `phases`) annotated with its bus/DRAM/retry bill;
    /// the PSCAN contributes per-CP drive/listen spans and CRC counters.
    pub fn enable_telemetry(&mut self) {
        self.telemetry = Some(Registry::new());
        self.pscan.enable_telemetry();
    }

    /// The machine-level telemetry registry, if attached (PSCAN series
    /// live in the PSCAN's own registry until [`Machine::take_telemetry`]).
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref()
    }

    /// Detach and return the merged telemetry of the machine and its
    /// PSCAN.
    pub fn take_telemetry(&mut self) -> Option<Registry> {
        let reg = self.telemetry.take()?;
        if let Some(bus) = self.pscan.take_telemetry() {
            reg.merge(bus);
        }
        Some(reg)
    }

    /// Attach the photonic fault layer (BER-derived word corruption with
    /// CRC/retry recovery) to the machine's PSCAN. Zero-rate configs leave
    /// every timing bit-identical to an un-faulted machine.
    pub fn enable_faults(&mut self, cfg: PscanFaultConfig) {
        self.pscan.set_faults(cfg);
    }

    /// Aggregate fault statistics from the PSCAN, if the layer is attached.
    pub fn fault_stats(&self) -> Option<sim_core::faults::FaultStats> {
        self.pscan.faults().map(|f| f.stats)
    }

    /// The configured slot period in seconds.
    pub fn slot_secs(&self) -> f64 {
        self.cfg.plan.slot().as_secs_f64()
    }

    /// Header slots charged for moving `payload_slots` 64-bit words in
    /// DRAM-row transactions: one `S_h` header per `S_r` of payload
    /// (Table III's 33-cycles-per-32-beat-row).
    pub fn header_slots(&self, payload_slots: u64) -> u64 {
        let row_words = self.cfg.dram.row_bits / 64;
        payload_slots.div_ceil(row_words)
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// SCA⁻¹: stream DRAM words at `addrs` (slot order) onto the bus and
    /// deliver per `spec`; each node's captured words are returned.
    /// Records a phase.
    ///
    /// Asserting wrapper over [`Machine::try_scatter_from_memory`].
    ///
    /// # Panics
    /// Panics on protocol failure; use the fallible path for a structured
    /// error.
    pub fn scatter_from_memory(
        &mut self,
        name: &str,
        addrs: &[u64],
        spec: &ScatterSpec,
    ) -> Vec<Vec<u64>> {
        self.try_scatter_from_memory(name, addrs, spec)
            .expect("scatter_from_memory: bus rejected the SCA pass")
    }

    /// Fallible [`Machine::scatter_from_memory`]: bus rejections surface as
    /// [`MachineError::Pscan`] instead of a panic.
    pub fn try_scatter_from_memory(
        &mut self,
        name: &str,
        addrs: &[u64],
        spec: &ScatterSpec,
    ) -> Result<Vec<Vec<u64>>, MachineError> {
        assert_eq!(addrs.len() as u64, spec.total_slots());
        self.check_interrupt()?;
        let (burst, dram_cycles) = self.head.stream_out(addrs.iter().copied());
        let out = self.pscan.scatter(spec, &burst).map_err(PscanError::from)?;
        let payload = spec.total_slots();
        let headers = self.header_slots(payload);
        let bus_slots = payload + headers;
        self.log_phase(name, bus_slots, dram_cycles, 0.0, 0);
        Ok(out.delivered)
    }

    /// SCA: gather per-node words (in each node's CP slot order) into a
    /// monolithic burst and write it to DRAM at `addrs[k]` for slot `k`.
    /// Records a phase and returns the coalesced words.
    ///
    /// Asserting wrapper over [`Machine::try_gather_to_memory`].
    ///
    /// # Panics
    /// Panics on protocol failure; use the fallible path for a structured
    /// error.
    pub fn gather_to_memory(
        &mut self,
        name: &str,
        spec: &GatherSpec,
        node_words: &[Vec<u64>],
        addrs: &[u64],
    ) -> Vec<u64> {
        self.try_gather_to_memory(name, spec, node_words, addrs)
            .expect("gather_to_memory: SCA pass failed")
    }

    /// Fallible [`Machine::gather_to_memory`]. With a fault layer attached
    /// ([`Machine::enable_faults`]) the gather runs CRC-checked: link-layer
    /// retries are absorbed into the phase's bus-slot bill, and if the link
    /// layer exhausts its budget the whole SCA pass is re-issued up to
    /// [`Machine::sca_reissue_limit`] times before surfacing
    /// [`MachineError::ScaReissueExhausted`]. Gap-containing bursts surface
    /// as [`MachineError::GatherUnderrun`] instead of an assert.
    pub fn try_gather_to_memory(
        &mut self,
        name: &str,
        spec: &GatherSpec,
        node_words: &[Vec<u64>],
        addrs: &[u64],
    ) -> Result<Vec<u64>, MachineError> {
        assert_eq!(addrs.len() as u64, spec.total_slots());
        self.check_interrupt()?;
        let burst = spec.total_slots();
        let mut passes = 0u32;
        let mut retries_total = 0u64;
        let mut extra_slots = 0u64;
        let out = loop {
            passes += 1;
            if self.pscan.faults().is_none() {
                break self
                    .pscan
                    .gather(spec, node_words)
                    .map_err(PscanError::from)
                    .map_err(MachineError::from)?;
            }
            match self.pscan.gather_reliable(spec, node_words) {
                Ok(rel) => {
                    retries_total += u64::from(rel.retries);
                    extra_slots += rel.slots_on_bus - burst;
                    break rel.outcome;
                }
                Err(PscanError::RetriesExhausted {
                    attempts,
                    corrupted_words,
                }) => {
                    // The failed pass still burned the bus: every attempt's
                    // burst plus the backoffs between them. Bill it, then
                    // re-issue the pass or give up.
                    let fcfg = self.pscan.faults().expect("checked above").cfg;
                    let backoffs: u64 = (1..attempts).map(|a| fcfg.backoff_slots(a)).sum();
                    extra_slots += u64::from(attempts) * burst + backoffs;
                    // attempts − 1 link retries, plus this pass's re-issue.
                    retries_total += u64::from(attempts);
                    if passes > self.sca_reissue_limit {
                        return Err(MachineError::ScaReissueExhausted {
                            passes,
                            last_corrupted: corrupted_words,
                        });
                    }
                }
                // Bus rejections and mid-retry cancellations are not
                // recoverable by re-issuing the pass.
                Err(e @ (PscanError::Bus(_) | PscanError::Cancelled { .. })) => {
                    return Err(e.into())
                }
            }
        };
        if let Some(slot) = out.received.iter().position(|w| w.is_none()) {
            return Err(MachineError::GatherUnderrun {
                slot,
                utilization_ppm: (out.utilization * 1e6).round() as u64,
            });
        }
        let words: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
        let dram_cycles = self
            .head
            .stream_in(addrs.iter().copied().zip(words.iter().copied()));
        let payload = spec.total_slots();
        let headers = self.header_slots(payload);
        self.log_phase(
            name,
            payload + headers + extra_slots,
            dram_cycles,
            0.0,
            retries_total,
        );
        Ok(words)
    }

    /// Run a compute step on every node: `f(node) -> ns`. The phase time is
    /// the max across nodes (they run in parallel).
    pub fn compute_phase(&mut self, name: &str, mut f: impl FnMut(&mut Node) -> f64) {
        let mut max_ns: f64 = 0.0;
        for n in &mut self.nodes {
            max_ns = max_ns.max(f(n));
        }
        self.log_phase(name, 0, 0, max_ns, 0);
    }

    fn log_phase(
        &mut self,
        name: &str,
        bus_slots: u64,
        dram_cycles: u64,
        compute_ns: f64,
        retries: u64,
    ) {
        let slot = self.slot_secs();
        let comm = (bus_slots.max(dram_cycles)) as f64 * slot;
        let seconds = comm + compute_ns * 1e-9;
        if let Some(reg) = &self.telemetry {
            // The machine's phases are strictly sequential, so the span
            // starts where the previous phases' seconds left off.
            let start_s = self.total_seconds();
            reg.span(
                "psync",
                "phases",
                name,
                start_s * 1e6,
                seconds * 1e6,
                &[
                    ("bus_slots", bus_slots.to_string()),
                    ("dram_cycles", dram_cycles.to_string()),
                    ("compute_ns", format!("{compute_ns:.1}")),
                    ("retries", retries.to_string()),
                ],
            );
            reg.counter_add("psync.phase.count", 1);
            reg.counter_add("psync.phase.retries", retries);
            reg.counter_add("psync.phase.bus_slots", bus_slots);
            reg.counter_add("psync.phase.dram_cycles", dram_cycles);
        }
        self.phases.push(PhaseTiming {
            name: name.to_string(),
            bus_slots,
            dram_cycles,
            compute_ns,
            seconds,
            retries,
        });
    }

    /// Total wall-clock seconds across all executed phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Find a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseTiming> {
        self.phases.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_then_gather_roundtrip() {
        let mut m = Machine::new(MachineConfig::paper_default(4, 256));
        m.head
            .fill(0, &(0..64u64).map(|i| i * 3).collect::<Vec<_>>());
        // Deliver words 0..64 blocked: node i gets 16.
        let spec = ScatterSpec::blocked(4, 16);
        let addrs: Vec<u64> = (0..64).collect();
        let delivered = m.scatter_from_memory("deliver", &addrs, &spec);
        assert_eq!(delivered[1][0], 48); // word 16 -> 16*3
                                         // Gather them back, interleaved, to 64..128.
        let gspec = GatherSpec::interleaved(4, 4, 4);
        let back_addrs: Vec<u64> = (64..128).collect();
        let words = m.gather_to_memory("writeback", &gspec, &delivered, &back_addrs);
        assert_eq!(words.len(), 64);
        // Slot 0..4 come from node 0's first 4 words.
        assert_eq!(words[0], 0);
        assert_eq!(words[4], 48);
        assert_eq!(m.head.read_region(64, 1), &[0]);
        assert_eq!(m.phases.len(), 2);
    }

    #[test]
    fn header_accounting_matches_table3() {
        // 2^20 payload slots with 2048-bit rows -> 32768 headers ->
        // 1,081,344 total bus slots.
        let m = Machine::new(MachineConfig::paper_default(4, 16));
        let payload = 1u64 << 20;
        assert_eq!(m.header_slots(payload), 32_768);
        assert_eq!(payload + m.header_slots(payload), 1_081_344);
    }

    #[test]
    fn phase_seconds_take_the_slower_pipe() {
        let mut m = Machine::new(MachineConfig::paper_default(2, 128));
        m.head.fill(0, &[1; 64]);
        let spec = ScatterSpec::blocked(2, 32);
        let addrs: Vec<u64> = (0..64).collect();
        m.scatter_from_memory("d", &addrs, &spec);
        let p = &m.phases[0];
        // Ideal DRAM streams 64 words in 64 cycles; bus moves 64 + headers.
        assert_eq!(p.dram_cycles, 64);
        assert_eq!(p.bus_slots, 64 + m.header_slots(64));
        assert!((p.seconds - p.bus_slots as f64 * m.slot_secs()).abs() < 1e-15);
    }

    #[test]
    fn compute_phase_takes_parallel_max() {
        let mut m = Machine::new(MachineConfig::paper_default(3, 16));
        let mut i = 0.0;
        m.compute_phase("c", |_| {
            i += 100.0;
            i
        });
        let p = m.phase("c").unwrap();
        assert!((p.compute_ns - 300.0).abs() < 1e-12);
        assert!((p.seconds - 300e-9).abs() < 1e-18);
    }

    #[test]
    fn faulty_gather_recovers_and_bills_retries() {
        let run = |rate: f64, seed: u64| {
            let mut m = Machine::new(MachineConfig::paper_default(4, 256));
            m.enable_faults(PscanFaultConfig {
                seed,
                word_error_rate: rate,
                max_retries: 64,
                ..Default::default()
            });
            let words: Vec<Vec<u64>> = (0..4).map(|n| vec![n as u64; 8]).collect();
            let spec = GatherSpec::interleaved(4, 4, 2);
            let addrs: Vec<u64> = (0..32).collect();
            let got = m
                .try_gather_to_memory("wb", &spec, &words, &addrs)
                .expect("recovers");
            (got, m.phases[0].clone())
        };
        // Clean run: no retries, baseline slot bill.
        let (clean_words, clean) = run(0.0, 1);
        assert_eq!(clean.retries, 0);
        // Faulty run: same data lands, retries recorded, bus bill grows.
        let (noisy_words, noisy) = run(0.05, 2);
        assert_eq!(noisy_words, clean_words, "retransmits carry clean data");
        assert!(noisy.retries > 0, "5% over 32 words must trip the CRC");
        assert!(noisy.bus_slots > clean.bus_slots);
        assert!(noisy.seconds > clean.seconds);
    }

    #[test]
    fn hopeless_channel_exhausts_sca_reissues() {
        let mut m = Machine::new(MachineConfig::paper_default(2, 64));
        m.sca_reissue_limit = 2;
        m.enable_faults(PscanFaultConfig {
            seed: 5,
            word_error_rate: 1.0,
            max_retries: 2,
            ..Default::default()
        });
        let words: Vec<Vec<u64>> = (0..2).map(|n| vec![n as u64; 4]).collect();
        let spec = GatherSpec::interleaved(2, 2, 2);
        let addrs: Vec<u64> = (0..8).collect();
        match m.try_gather_to_memory("wb", &spec, &words, &addrs) {
            Err(MachineError::ScaReissueExhausted {
                passes,
                last_corrupted,
            }) => {
                assert_eq!(passes, 3, "initial pass + 2 re-issues");
                assert!(last_corrupted > 0);
            }
            other => panic!("expected ScaReissueExhausted, got {other:?}"),
        }
        // The failed gather logged no phase and wrote nothing to DRAM.
        assert!(m.phases.is_empty());
    }

    #[test]
    fn faulty_machine_runs_are_deterministic() {
        let run = || {
            let mut m = Machine::new(MachineConfig::paper_default(4, 256));
            m.enable_faults(PscanFaultConfig {
                seed: 9,
                word_error_rate: 0.03,
                max_retries: 64,
                ..Default::default()
            });
            let words: Vec<Vec<u64>> = (0..4).map(|n| vec![n as u64 * 7; 8]).collect();
            let spec = GatherSpec::interleaved(4, 4, 2);
            let addrs: Vec<u64> = (0..32).collect();
            m.try_gather_to_memory("wb", &spec, &words, &addrs)
                .expect("recovers");
            let p = &m.phases[0];
            (p.bus_slots, p.retries, m.fault_stats().unwrap().injected)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slot_rate_is_320_gbps_with_64_bit_words() {
        let m = Machine::new(MachineConfig::paper_default(2, 16));
        assert_eq!(m.config().plan.bits_per_slot(), 64);
        assert!((m.config().plan.aggregate_gbps() - 320.0).abs() < 1e-9);
        assert!((m.slot_secs() - 200e-12).abs() < 1e-15);
    }
}
