//! Machine-level telemetry: phase spans, PSCAN bus series, and the merge of
//! the bus registry into the machine registry on `take_telemetry`.

use pscan::compiler::{GatherSpec, ScatterSpec};
use psync::machine::{Machine, MachineConfig};

fn run_traced_machine() -> sim_core::Registry {
    const NODES: usize = 4;
    const BLOCK: usize = 8;
    let words = NODES * BLOCK;
    let mut m = Machine::new(MachineConfig::paper_default(NODES, 2 * words));
    m.enable_telemetry();
    m.head.fill(0, &(0..words as u64).collect::<Vec<_>>());
    let addrs: Vec<u64> = (0..words as u64).collect();
    let delivered = m.scatter_from_memory("deliver", &addrs, &ScatterSpec::blocked(NODES, BLOCK));
    m.compute_phase("compute", |_| 50.0);
    let back: Vec<u64> = (words as u64..2 * words as u64).collect();
    m.gather_to_memory(
        "writeback",
        &GatherSpec::interleaved(NODES, BLOCK, 1),
        &delivered,
        &back,
    );
    m.take_telemetry().expect("telemetry enabled")
}

#[test]
fn phases_become_spans_and_counters() {
    let reg = run_traced_machine();
    assert_eq!(reg.counter_value("psync.phase.count"), Some(3));
    assert!(reg.counter_value("psync.phase.bus_slots").unwrap() > 0);

    let json = reg.chrome_trace_json();
    for name in ["\"deliver\"", "\"compute\"", "\"writeback\""] {
        assert!(json.contains(name), "missing phase span {name}");
    }
    assert!(json.contains("\"psync\""), "missing psync process");
    assert!(json.contains("\"phases\""), "missing phases track");
}

#[test]
fn pscan_series_are_merged_into_the_machine_registry() {
    let reg = run_traced_machine();
    // Bus slots from the PSCAN's own registry, visible post-merge.
    assert!(reg.counter_value("pscan.bus.slots_total").unwrap() > 0);
    assert!(reg.counter_value("pscan.bus.gathers").unwrap() > 0);
    assert!(reg.counter_value("pscan.bus.scatters").unwrap() > 0);
    // Per-CP drive/listen spans ride along on their own tracks.
    let json = reg.chrome_trace_json();
    assert!(json.contains("\"cp 0\""), "missing per-CP track");
    assert!(json.contains("\"terminus\""), "missing terminus track");
}
