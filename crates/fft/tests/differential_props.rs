//! Differential property tests (DESIGN.md §12): the FFT kernels against the
//! naive O(N²) DFT reference, and the §V operation-count formulas (Table I,
//! Eqs. 17/18) against instrumented tallies of the butterflies the kernels
//! actually execute.
//!
//! The tally replicates `Radix2Plan::butterflies_in_place`'s loop bounds
//! with the butterfly body replaced by a counter — each body iteration is
//! exactly one butterfly (4 real multiplies + 6 real additions under the
//! paper's costing) — so a drift between the kernel's stage structure and
//! the analytic formulas shows up as an exact integer mismatch.

use fft::complex::max_error;
use fft::{dft_reference, fft_in_place, BlockedFft, Complex64};
use proptest::prelude::*;

/// Butterflies executed by `butterflies_in_place` on an `n`-length slice
/// over stages `[from_stage, to_stage)`: same `s`/`base` loop structure,
/// counting the `j in 0..half` inner iterations.
fn tally_butterflies(n: usize, from_stage: u32, to_stage: u32) -> u64 {
    let mut count = 0u64;
    for s in from_stage..to_stage {
        let half = 1usize << s;
        let block = half << 1;
        let mut base = 0;
        while base < n {
            count += half as u64;
            base += block;
        }
    }
    count
}

fn log2(n: usize) -> u32 {
    n.trailing_zeros()
}

/// Zip two real vectors into a complex signal of length `n`.
fn to_signal(res: &[f64], ims: &[f64], n: usize) -> Vec<Complex64> {
    res.iter()
        .zip(ims)
        .take(n)
        .map(|(&r, &i)| Complex64::new(r, i))
        .collect()
}

#[test]
fn op_formulas_match_instrumented_tallies() {
    // Exhaustive over every (n, k) the paper's tables could ask for: the
    // Eq. 17/18 closed forms equal what the kernel would actually execute,
    // and blocking conserves work at the butterfly level.
    for bits in 0..=12u32 {
        let n = 1usize << bits;
        assert_eq!(
            tally_butterflies(n, 0, bits),
            fft::ops::butterflies(n as u64),
            "full FFT butterflies, n = {n}"
        );
        assert_eq!(
            tally_butterflies(n, 0, bits) * fft::ops::MULTS_PER_BUTTERFLY,
            fft::ops::multiplies(n as u64),
            "full FFT multiplies, n = {n}"
        );
        for kb in 0..=bits {
            let k = 1u64 << kb;
            let b = n >> kb;
            // One delivered block: sub-FFT stages [0, log2 b) on a b-slice.
            let sub = tally_butterflies(b, 0, bits - kb);
            assert_eq!(
                sub * fft::ops::MULTS_PER_BUTTERFLY,
                fft::ops::multiplies_per_block(n as u64, k),
                "Eq. 17, n = {n}, k = {k}"
            );
            // The compute-only combine: stages [log2 b, log2 n) on the row.
            let combine = tally_butterflies(n, bits - kb, bits);
            assert_eq!(
                combine * fft::ops::MULTS_PER_BUTTERFLY,
                fft::ops::multiplies_final(n as u64, k),
                "Eq. 18, n = {n}, k = {k}"
            );
            // Work conservation: k sub-FFTs + combine = the monolithic FFT.
            assert_eq!(
                k * sub + combine,
                fft::ops::butterflies(n as u64),
                "work conservation, n = {n}, k = {k}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_matches_dft_across_sizes(
        bits in 0u32..=9,
        res in prop::collection::vec(-1.0f64..1.0, 512),
        ims in prop::collection::vec(-1.0f64..1.0, 512),
    ) {
        let n = 1usize << bits;
        let x = to_signal(&res, &ims, n);
        let reference = dft_reference(&x);
        let mut y = x;
        fft_in_place(&mut y);
        let err = max_error(&y, &reference);
        prop_assert!(err < 1e-9 * (n.max(2) as f64), "n = {}: err {}", n, err);
    }

    #[test]
    fn blocked_fft_matches_dft_for_every_k(
        bits in 0u32..=8,
        res in prop::collection::vec(-1.0f64..1.0, 256),
        ims in prop::collection::vec(-1.0f64..1.0, 256),
    ) {
        let n = 1usize << bits;
        let x = to_signal(&res, &ims, n);
        let reference = dft_reference(&x);
        for kb in 0..=bits {
            let k = 1usize << kb;
            let y = BlockedFft::new(n, k).run(&x);
            let err = max_error(&y, &reference);
            prop_assert!(err < 1e-9 * (n.max(2) as f64), "n = {}, k = {}: err {}", n, k, err);
        }
    }

    #[test]
    fn streamed_blocks_match_batch_in_any_delivery_order(
        bits in 2u32..=8,
        start in 0usize..256,
        res in prop::collection::vec(-1.0f64..1.0, 256),
        ims in prop::collection::vec(-1.0f64..1.0, 256),
    ) {
        let n = 1usize << bits;
        let x = to_signal(&res, &ims, n);
        let k = 1usize << (log2(n) / 2); // a middling blocking factor
        let bf = BlockedFft::new(n, k);
        let batch = bf.run(&x);
        // Deliver blocks in a rotated order derived from the random start.
        let mut st = bf.begin();
        for i in 0..k {
            let c = (start + i) % k;
            let samples: Vec<Complex64> =
                bf.block_source_indices(c).iter().map(|&i| x[i]).collect();
            st.deliver_block(c, &samples);
        }
        let streamed = st.finish();
        prop_assert!(max_error(&batch, &streamed) < 1e-12);
    }
}
