//! Exact operation counting under the paper's costing model.
//!
//! Table I counts "only multiplies", with "4 32-bit multiplies per FFT
//! butterfly". A radix-2 N-point FFT has `(N/2)·log₂N` butterflies, so the
//! multiply count is `2N·log₂N`. For GFLOPS reporting (Fig. 13) we also
//! provide the standard total-flop count of 10 real ops per butterfly
//! (4 multiplies + 6 additions), i.e. `5N·log₂N`.

use serde::{Deserialize, Serialize};

/// Real multiplies per butterfly (paper Table I assumption).
pub const MULTS_PER_BUTTERFLY: u64 = 4;
/// Real additions per butterfly (2 complex adds + 2 from the complex mul).
pub const ADDS_PER_BUTTERFLY: u64 = 6;

/// log₂ of a power of two.
fn log2(n: u64) -> u64 {
    assert!(n.is_power_of_two(), "expected a power of two, got {n}");
    n.trailing_zeros() as u64
}

/// Butterflies in an N-point radix-2 FFT: `(N/2)·log₂N`.
pub fn butterflies(n: u64) -> u64 {
    n / 2 * log2(n)
}

/// Real multiplies in an N-point FFT: `2N·log₂N` (Table I's unit).
pub fn multiplies(n: u64) -> u64 {
    MULTS_PER_BUTTERFLY * butterflies(n)
}

/// Total real floating-point ops in an N-point FFT: `5N·log₂N`.
pub fn total_flops(n: u64) -> u64 {
    (MULTS_PER_BUTTERFLY + ADDS_PER_BUTTERFLY) * butterflies(n)
}

/// Multiplies in one block's sub-FFT under k-way blocking — Eq. (17):
/// `(2N/k)·log₂(N/k)`.
pub fn multiplies_per_block(n: u64, k: u64) -> u64 {
    assert!(k.is_power_of_two() && k <= n && n.is_multiple_of(k));
    multiplies(n / k)
}

/// Multiplies in the final compute-only phase — Eq. (18): `2N·log₂k`.
pub fn multiplies_final(n: u64, k: u64) -> u64 {
    assert!(k.is_power_of_two() && k <= n && n.is_multiple_of(k));
    2 * n * log2(k)
}

/// An operation tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Real multiplies.
    pub multiplies: u64,
    /// Real additions.
    pub additions: u64,
}

impl OpCounts {
    /// Tally for one N-point FFT.
    pub fn fft(n: u64) -> Self {
        OpCounts {
            multiplies: multiplies(n),
            additions: ADDS_PER_BUTTERFLY * butterflies(n),
        }
    }

    /// Tally for a `rows × cols` 2-D FFT (row FFTs + column FFTs).
    pub fn fft2d(rows: u64, cols: u64) -> Self {
        let row = Self::fft(cols);
        let col = Self::fft(rows);
        OpCounts {
            multiplies: rows * row.multiplies + cols * col.multiplies,
            additions: rows * row.additions + cols * col.additions,
        }
    }

    /// Total flops.
    pub fn total(&self) -> u64 {
        self.multiplies + self.additions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_k1_compute_time() {
        // Table I row k=1: 1024-pt FFT, multiplies = 2·1024·10 = 20480;
        // at 2 ns per multiply that is 40960 ns, the printed t_ck.
        assert_eq!(multiplies(1024), 20_480);
        assert_eq!(multiplies(1024) * 2, 40_960);
    }

    #[test]
    fn eq17_eq18_block_split() {
        // Per-block + final must sum to the whole FFT's multiplies:
        // k·(2N/k)·log2(N/k) + 2N·log2 k = 2N·log2 N.
        let n = 1024;
        for k in [1u64, 2, 4, 8, 16, 32, 64] {
            let per_block = multiplies_per_block(n, k);
            let fin = multiplies_final(n, k);
            assert_eq!(k * per_block + fin, multiplies(n), "k = {k}");
        }
    }

    #[test]
    fn table1_tck_column() {
        // t_ck (ns) at 2 ns/multiply for each k in Table I.
        let expect = [
            (1u64, 40_960u64),
            (2, 18_432),
            (4, 8_192),
            (8, 3_584),
            (16, 1_536),
            (32, 640),
            (64, 256),
        ];
        for (k, t_ck) in expect {
            assert_eq!(multiplies_per_block(1024, k) * 2, t_ck, "k = {k}");
        }
    }

    #[test]
    fn table1_tcf_column() {
        let expect = [
            (1u64, 0u64),
            (2, 4_096),
            (4, 8_192),
            (8, 12_288),
            (16, 16_384),
            (32, 20_480),
            (64, 24_576),
        ];
        for (k, t_cf) in expect {
            assert_eq!(multiplies_final(1024, k) * 2, t_cf, "k = {k}");
        }
    }

    #[test]
    fn flop_totals() {
        assert_eq!(total_flops(8), 10 * butterflies(8));
        let c = OpCounts::fft2d(1024, 1024);
        // 1024 row FFTs + 1024 col FFTs of 1024 points each.
        assert_eq!(c.multiplies, 2 * 1024 * multiplies(1024));
        assert_eq!(c.total(), 2 * 1024 * total_flops(1024));
    }
}
