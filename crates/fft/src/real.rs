//! Real-input FFTs via complex packing.
//!
//! The paper's motivating applications — "astronomy, medical imaging, and
//! intelligence, surveillance, and reconnaissance (ISR)" — largely sense
//! *real* signals. The classic trick computes a 2N-point real FFT with one
//! N-point complex FFT: pack even samples into the real part and odd
//! samples into the imaginary part, transform, then untangle with the
//! symmetry `X_e[k] = (Z[k] + Z*[N−k])/2`, `X_o[k] = −i(Z[k] − Z*[N−k])/2`.

use crate::complex::Complex64;
use crate::radix2::fft_in_place;

/// Forward FFT of a real signal of even length `2N`. Returns the full
/// complex spectrum (length 2N, conjugate-symmetric).
pub fn rfft(x: &[f64]) -> Vec<Complex64> {
    let n2 = x.len();
    assert!(
        n2 >= 2 && n2.is_multiple_of(2),
        "rfft needs even length ≥ 2"
    );
    let n = n2 / 2;
    assert!(n.is_power_of_two(), "packed length must be a power of two");

    // Pack: z[j] = x[2j] + i·x[2j+1].
    let mut z: Vec<Complex64> = (0..n)
        .map(|j| Complex64::new(x[2 * j], x[2 * j + 1]))
        .collect();
    fft_in_place(&mut z);

    // Untangle and combine with the half-length twiddles.
    let mut out = vec![Complex64::ZERO; n2];
    for k in 0..n {
        let zk = z[k];
        let zc = z[(n - k) % n].conj();
        let xe = (zk + zc).scale(0.5);
        let xo = (zk - zc) * Complex64::new(0.0, -0.5);
        let w = Complex64::cis(-std::f64::consts::PI * k as f64 / n as f64);
        out[k] = xe + w * xo;
    }
    // Nyquist bin: X[N] = X_e[0] − X_o[0].
    let z0 = z[0];
    out[n] = Complex64::new(z0.re - z0.im, 0.0);
    // Conjugate symmetry fills the upper half.
    for k in n + 1..n2 {
        out[k] = out[n2 - k].conj();
    }
    out
}

/// Magnitude spectrum of a real signal (first N+1 bins — the rest are
/// redundant by symmetry).
pub fn rfft_magnitudes(x: &[f64]) -> Vec<f64> {
    let spec = rfft(x);
    spec[..=x.len() / 2].iter().map(|c| c.abs()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::dft::dft_reference;

    fn as_complex(x: &[f64]) -> Vec<Complex64> {
        x.iter().map(|&v| Complex64::new(v, 0.0)).collect()
    }

    #[test]
    fn matches_complex_dft() {
        for n2 in [4usize, 16, 64, 256] {
            let x: Vec<f64> = (0..n2).map(|i| (i as f64 * 0.37).sin() + 0.2).collect();
            let fast = rfft(&x);
            let slow = dft_reference(&as_complex(&x));
            assert!(
                max_error(&fast, &slow) < 1e-9,
                "n = {n2}: {}",
                max_error(&fast, &slow)
            );
        }
    }

    #[test]
    fn spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..64)
            .map(|i| (i as f64).cos() * 0.5 + (i as f64 * 0.1).sin())
            .collect();
        let s = rfft(&x);
        for k in 1..32 {
            let a = s[k];
            let b = s[64 - k].conj();
            assert!((a - b).abs() < 1e-10, "bin {k}");
        }
        // DC and Nyquist are purely real.
        assert!(s[0].im.abs() < 1e-12);
        assert!(s[32].im.abs() < 1e-12);
    }

    #[test]
    fn single_real_tone() {
        let n2 = 128;
        let x: Vec<f64> = (0..n2)
            .map(|i| (2.0 * std::f64::consts::PI * 5.0 * i as f64 / n2 as f64).cos())
            .collect();
        let mags = rfft_magnitudes(&x);
        // Energy concentrated in bin 5 at amplitude N/2 = 64.
        assert!((mags[5] - 64.0).abs() < 1e-8);
        for (k, &m) in mags.iter().enumerate() {
            if k != 5 {
                assert!(m < 1e-8, "leak at {k}: {m}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_rejected() {
        rfft(&[1.0, 2.0, 3.0]);
    }
}
