//! Naive O(N²) reference DFT.
//!
//! Slow but obviously correct; every fast path in this crate is verified
//! against it.

use crate::complex::Complex64;

/// Forward DFT: `X[k] = Σ_n x[n]·e^{-2πikn/N}`.
pub fn dft_reference(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex64::ZERO;
        for (j, &v) in x.iter().enumerate() {
            let theta = -2.0 * std::f64::consts::PI * (k as f64) * (j as f64) / (n as f64);
            acc += v * Complex64::cis(theta);
        }
        out.push(acc);
    }
    out
}

/// Inverse DFT (unscaled by 1/N inside; scales at the end).
pub fn idft_reference(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex64::ZERO;
        for (j, &v) in x.iter().enumerate() {
            let theta = 2.0 * std::f64::consts::PI * (k as f64) * (j as f64) / (n as f64);
            acc += v * Complex64::cis(theta);
        }
        out.push(acc.scale(1.0 / n as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let y = dft_reference(&x);
        for v in y {
            assert!((v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let x = vec![Complex64::ONE; 8];
        let y = dft_reference(&x);
        assert!((y[0] - Complex64::new(8.0, 0.0)).abs() < 1e-9);
        for v in &y[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 16;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        let y = dft_reference(&x);
        assert!((y[3] - Complex64::new(n as f64, 0.0)).abs() < 1e-9);
        for (k, v) in y.iter().enumerate() {
            if k != 3 {
                assert!(v.abs() < 1e-9, "leak into bin {k}");
            }
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<Complex64> = (0..12)
            .map(|i| Complex64::new(i as f64 * 0.7 - 3.0, (i as f64).sin()))
            .collect();
        let back = idft_reference(&dft_reference(&x));
        assert!(max_error(&x, &back) < 1e-9);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..8).map(|i| Complex64::new(0.0, -(i as f64))).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let lhs = dft_reference(&sum);
        let rhs: Vec<Complex64> = dft_reference(&a)
            .iter()
            .zip(dft_reference(&b))
            .map(|(x, y)| *x + y)
            .collect();
        assert!(max_error(&lhs, &rhs) < 1e-9);
    }
}
