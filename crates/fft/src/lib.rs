//! # fft
//!
//! The workload of the paper's evaluation: the Fast Fourier Transform,
//! implemented from scratch.
//!
//! ```
//! use fft::{fft_in_place, ifft_in_place, Complex64};
//!
//! let x: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
//! let mut y = x.clone();
//! fft_in_place(&mut y);
//! ifft_in_place(&mut y);
//! for (a, b) in x.iter().zip(&y) {
//!     assert!((*a - *b).abs() < 1e-12);
//! }
//! ```
//!
//! * [`complex`] — a minimal `Complex64` (no external numerics crates).
//! * [`dft`] — the naive O(N²) reference transform used to verify the FFT.
//! * [`radix2`] — iterative radix-2 decimation-in-time FFT with bit-reversal
//!   permutation and cached twiddles.
//! * [`blocked`] — the paper's Fig. 10 decomposition: with data delivered in
//!   `k` blocks, each block's sub-FFT (`log₂(N/k)` stages) runs as the block
//!   arrives, and the remaining `log₂ k` combine stages run in a final
//!   compute-only phase. Operation counts match Eqs. (17)–(18) exactly.
//! * [`fft2d`] — row/column 2-D FFT over a matrix with an explicit
//!   transpose, mirroring §V-B's five-step flow.
//! * [`ops`] — exact multiply/butterfly counting under the paper's costing
//!   (4 real multiplies per butterfly, Table I assumptions).
//! * [`six_step`] — Bailey's large-1-D-as-2-D decomposition (§II's "large 1D
//!   vector FFTs are typically implemented as 2D matrix FFTs"), whose two
//!   corner turns are exactly the SCA's sweet spot.

pub mod blocked;
pub mod complex;
pub mod dft;
pub mod fft2d;
pub mod ops;
pub mod radix2;
pub mod real;
pub mod six_step;

pub use blocked::BlockedFft;
pub use complex::Complex64;
pub use dft::dft_reference;
pub use fft2d::Fft2d;
pub use ops::{butterflies, multiplies, OpCounts};
pub use radix2::{bit_reverse_permute, fft_in_place, ifft_in_place, Radix2Plan};
pub use real::rfft;
pub use six_step::SixStepPlan;
