//! 2-D FFT with explicit transpose — the §V-B five-step flow.
//!
//! 1. deliver P rows, 2. P row FFTs, 3. transpose, 4. re-deliver,
//! 5. P column FFTs.
//!
//! The transpose in step 3 is the non-local writeback the whole paper is
//! about; [`Fft2d::transpose_writeback_addresses`] exposes the exact
//! linear-address stream each processor emits, which the network
//! simulators consume.

use crate::complex::Complex64;
use crate::radix2::Radix2Plan;

/// A row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` elements.
    pub data: Vec<Complex64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element accessor.
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [Complex64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Out-of-place transpose.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *t.at_mut(c, r) = self.at(r, c);
            }
        }
        t
    }
}

/// A 2-D FFT plan for `rows × cols` matrices (both powers of two).
#[derive(Debug, Clone)]
pub struct Fft2d {
    row_plan: Radix2Plan,
    col_plan: Radix2Plan,
}

impl Fft2d {
    /// Plan for `rows × cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        Fft2d {
            row_plan: Radix2Plan::new(cols),
            col_plan: Radix2Plan::new(rows),
        }
    }

    /// Forward 2-D FFT via row FFTs → transpose → row FFTs (of columns) →
    /// transpose back. Returns the spectrum in natural (row, col) layout.
    pub fn forward(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols, self.row_plan.len());
        assert_eq!(m.rows, self.col_plan.len());
        let mut a = m.clone();
        for r in 0..a.rows {
            self.row_plan.forward(a.row_mut(r));
        }
        let mut t = a.transposed();
        for r in 0..t.rows {
            self.col_plan.forward(t.row_mut(r));
        }
        t.transposed()
    }

    /// The transpose-writeback address stream of processor `r` (owner of
    /// row `r`): element (r, c) lands at linear word address `c·P + r` in
    /// column-major DRAM, emitted in c order. `P` = number of rows.
    pub fn transpose_writeback_addresses(rows: usize, cols: usize, r: usize) -> Vec<u64> {
        assert!(r < rows);
        (0..cols as u64)
            .map(|c| c * rows as u64 + r as u64)
            .collect()
    }
}

/// Reference 2-D DFT (O(N⁴)-ish; tests only).
pub fn dft2d_reference(m: &Matrix) -> Matrix {
    use crate::dft::dft_reference;
    let mut a = m.clone();
    for r in 0..a.rows {
        let out = dft_reference(a.row(r));
        a.row_mut(r).copy_from_slice(&out);
    }
    let mut t = a.transposed();
    for r in 0..t.rows {
        let out = dft_reference(t.row(r));
        t.row_mut(r).copy_from_slice(&out);
    }
    t.transposed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;

    fn test_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            Complex64::new(
                (r as f64 * 1.3 + c as f64 * 0.7).sin(),
                (r as f64 - 2.0 * c as f64).cos() * 0.5,
            )
        })
    }

    #[test]
    fn matches_reference_2d() {
        for (rows, cols) in [(4, 4), (8, 16), (16, 8)] {
            let m = test_matrix(rows, cols);
            let fast = Fft2d::new(rows, cols).forward(&m);
            let slow = dft2d_reference(&m);
            assert!(
                max_error(&fast.data, &slow.data) < 1e-8,
                "{rows}x{cols}: {}",
                max_error(&fast.data, &slow.data)
            );
        }
    }

    #[test]
    fn transpose_is_involution() {
        let m = test_matrix(8, 4);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn transpose_moves_elements() {
        let m = test_matrix(4, 8);
        let t = m.transposed();
        for r in 0..4 {
            for c in 0..8 {
                assert_eq!(m.at(r, c), t.at(c, r));
            }
        }
    }

    #[test]
    fn impulse_gives_flat_2d_spectrum() {
        let mut m = Matrix::zeros(8, 8);
        *m.at_mut(0, 0) = Complex64::ONE;
        let s = Fft2d::new(8, 8).forward(&m);
        for v in &s.data {
            assert!((*v - Complex64::ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn separable_tone_lands_in_one_bin() {
        let n = 16;
        let m = Matrix::from_fn(n, n, |r, c| {
            Complex64::cis(
                2.0 * std::f64::consts::PI * (3.0 * r as f64 + 5.0 * c as f64) / n as f64,
            )
        });
        let s = Fft2d::new(n, n).forward(&m);
        for r in 0..n {
            for c in 0..n {
                let v = s.at(r, c).abs();
                if (r, c) == (3, 5) {
                    assert!((v - (n * n) as f64).abs() < 1e-6);
                } else {
                    assert!(v < 1e-6, "leak at ({r},{c}) = {v}");
                }
            }
        }
    }

    #[test]
    fn writeback_addresses_interleave_processors() {
        // Consecutive DRAM addresses come from consecutive processors —
        // the fine interleaving that makes the transpose non-local.
        let a0 = Fft2d::transpose_writeback_addresses(1024, 1024, 0);
        let a1 = Fft2d::transpose_writeback_addresses(1024, 1024, 1);
        assert_eq!(a0[0] + 1, a1[0]);
        assert_eq!(a0[1], 1024); // same processor's next element is P away
        assert_eq!(a0.len(), 1024);
    }
}
