//! A minimal double-precision complex number.
//!
//! The paper's samples are 64-bit complex values (two 32-bit halves, `S_s =
//! 64`). For numerics we compute in f64 pairs; the *wire* size used by the
//! network models is a separate constant ([`SAMPLE_BITS`]).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Wire size of one FFT sample in bits (`S_s` in the paper).
pub const SAMPLE_BITS: u64 = 64;

/// A complex number with f64 parts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// 0 + 0i.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// e^{iθ} = cos θ + i sin θ.
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

/// Max |a − b| across a pair of slices (∞-norm distance), for tests.
pub fn max_error(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!((a * b).re, 1.0 * -3.0 - 2.0 * 0.5);
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            let w = Complex64::cis(theta);
            assert!((w.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let a = Complex64::new(3.0, -4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, 4.0));
        assert!((a.abs() - 5.0).abs() < 1e-12);
        assert_eq!(a.norm_sqr(), 25.0);
    }

    #[test]
    fn max_error_measures_distance() {
        let a = [Complex64::ZERO, Complex64::ONE];
        let b = [Complex64::ZERO, Complex64::new(1.0, 0.5)];
        assert!((max_error(&a, &b) - 0.5).abs() < 1e-12);
    }
}
