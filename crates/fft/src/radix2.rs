//! Iterative radix-2 decimation-in-time FFT.
//!
//! The DIT structure is what makes the paper's Fig. 10 blocking possible:
//! "the non-locality as defined by the span in linear memory between two
//! operands increases as 2ⁿ, where n is the number of butterfly stages
//! executed" — early stages touch only nearby elements, late stages span
//! the whole vector.

use crate::complex::Complex64;

/// A reusable FFT plan: cached twiddle factors for size `n`.
#[derive(Debug, Clone)]
pub struct Radix2Plan {
    n: usize,
    /// Twiddles w_N^j = e^{-2πij/N} for j in 0..n/2.
    twiddles: Vec<Complex64>,
}

impl Radix2Plan {
    /// Plan for transforms of length `n` (a power of two ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "radix-2 FFT needs a power of two, got {n}"
        );
        let twiddles = (0..n / 2)
            .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        Radix2Plan { n, twiddles }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT.
    pub fn forward(&self, x: &mut [Complex64]) {
        assert_eq!(x.len(), self.n, "buffer length must match the plan");
        bit_reverse_permute(x);
        self.butterflies_in_place(x, 0, log2(self.n));
    }

    /// Run butterfly stages `[from_stage, to_stage)` on bit-reversed data.
    /// Stage `s` (0-based) combines blocks of 2^s into blocks of 2^{s+1}.
    ///
    /// This is the primitive the blocked decomposition (Fig. 10) uses: a
    /// sub-block FFT is stages `[0, log2(block))` on its own slice; the
    /// compute-only phase is stages `[log2(block), log2(N))` on the whole
    /// vector.
    pub fn butterflies_in_place(&self, x: &mut [Complex64], from_stage: u32, to_stage: u32) {
        let n = x.len();
        debug_assert!(n.is_power_of_two());
        for s in from_stage..to_stage {
            let half = 1usize << s; // butterflies per block
            let block = half << 1;
            let stride = self.n / block; // twiddle stride in the full plan
            let mut base = 0;
            while base < n {
                for j in 0..half {
                    let w = self.twiddles[j * stride];
                    let t = w * x[base + j + half];
                    let u = x[base + j];
                    x[base + j] = u + t;
                    x[base + j + half] = u - t;
                }
                base += block;
            }
        }
    }
}

/// log₂ of a power of two.
pub(crate) fn log2(n: usize) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

/// In-place bit-reversal permutation.
pub fn bit_reverse_permute(x: &mut [Complex64]) {
    let n = x.len();
    assert!(n.is_power_of_two());
    if n <= 2 {
        return; // 0 or 1 bit: reversal is the identity
    }
    let bits = log2(n);
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
}

/// One-shot in-place forward FFT.
pub fn fft_in_place(x: &mut [Complex64]) {
    Radix2Plan::new(x.len()).forward(x);
}

/// One-shot in-place inverse FFT (scaled by 1/N).
pub fn ifft_in_place(x: &mut [Complex64]) {
    let n = x.len();
    for v in x.iter_mut() {
        *v = v.conj();
    }
    fft_in_place(x);
    let s = 1.0 / n as f64;
    for v in x.iter_mut() {
        *v = v.conj().scale(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::dft::dft_reference;

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new(i as f64 * 0.31 - 1.0, (i as f64 * 0.7).cos()))
            .collect()
    }

    #[test]
    fn matches_reference_across_sizes() {
        for n in [1usize, 2, 4, 8, 16, 64, 256, 1024] {
            let x = ramp(n);
            let mut y = x.clone();
            fft_in_place(&mut y);
            let r = dft_reference(&x);
            assert!(
                max_error(&y, &r) < 1e-7 * n as f64,
                "size {n}: err {}",
                max_error(&y, &r)
            );
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let x = ramp(512);
        let mut y = x.clone();
        fft_in_place(&mut y);
        ifft_in_place(&mut y);
        assert!(max_error(&x, &y) < 1e-10);
    }

    #[test]
    fn bit_reverse_is_involution() {
        let x = ramp(64);
        let mut y = x.clone();
        bit_reverse_permute(&mut y);
        bit_reverse_permute(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn bit_reverse_small_case() {
        let mut x: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
        bit_reverse_permute(&mut x);
        let order: Vec<f64> = x.iter().map(|c| c.re).collect();
        assert_eq!(order, vec![0.0, 4.0, 2.0, 6.0, 1.0, 5.0, 3.0, 7.0]);
    }

    #[test]
    fn staged_butterflies_equal_full_transform() {
        // Running stages [0, m) then [m, log2 n) equals one full pass —
        // the identity the blocked FFT depends on.
        let n = 256;
        let plan = Radix2Plan::new(n);
        let x = ramp(n);
        let mut full = x.clone();
        plan.forward(&mut full);
        for m in 0..=log2(n) {
            let mut staged = x.clone();
            bit_reverse_permute(&mut staged);
            plan.butterflies_in_place(&mut staged, 0, m);
            plan.butterflies_in_place(&mut staged, m, log2(n));
            assert!(max_error(&full, &staged) < 1e-12, "split at stage {m}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Radix2Plan::new(12);
    }

    #[test]
    fn parseval_energy_preserved() {
        let x = ramp(128);
        let mut y = x.clone();
        fft_in_place(&mut y);
        let time_e: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq_e: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_e - freq_e).abs() < 1e-8 * time_e);
    }
}
