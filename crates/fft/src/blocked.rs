//! The blocked FFT decomposition of paper Fig. 10.
//!
//! Model II delivers a processor's N-point row in `k` blocks. Because the
//! DIT butterfly span doubles per stage, the first `log₂(N/k)` stages touch
//! only elements within one block — so each block's sub-FFT runs as soon as
//! the block arrives, overlapping the delivery of the next block. After the
//! last block, a compute-only phase runs the remaining `log₂k` combine
//! stages over the whole row.
//!
//! One subtlety the paper glosses: the elements of a deliverable block are a
//! *decimated* (strided) subsequence of the natural-order row, namely the
//! residue class `i ≡ rev_k(c) (mod k)` for block `c`. That is precisely a
//! non-local gather — which the memory side (P-sync head node or mesh memory
//! node) must perform, and which the SCA⁻¹ performs at full line rate.

use crate::complex::Complex64;
use crate::ops;
use crate::radix2::{log2, Radix2Plan};

/// A k-way blocked N-point FFT.
#[derive(Debug, Clone)]
pub struct BlockedFft {
    plan: Radix2Plan,
    k: usize,
}

impl BlockedFft {
    /// Blocked FFT of length `n` delivered in `k` blocks (both powers of
    /// two, `k ≤ n`).
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n.is_power_of_two(), "n must be a power of two");
        assert!(
            k.is_power_of_two() && k <= n,
            "k must be a power of two ≤ n"
        );
        BlockedFft {
            plan: Radix2Plan::new(n),
            k,
        }
    }

    /// Transform length N.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Never empty (N ≥ 1).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of blocks k.
    pub fn blocks(&self) -> usize {
        self.k
    }

    /// Elements per block, `S_b = N/k`.
    pub fn block_len(&self) -> usize {
        self.plan.len() / self.k
    }

    /// The natural-order source indices that make up block `c`: the
    /// decimated subsequence delivered in the c-th delivery cycle, in the
    /// order the sub-FFT consumes them (bit-reversed within the block).
    pub fn block_source_indices(&self, c: usize) -> Vec<usize> {
        assert!(c < self.k, "block {c} out of range");
        let n = self.plan.len();
        let b = self.block_len();
        let bits = log2(n);
        (0..b)
            .map(|r| {
                let pos = c * b + r;
                if bits == 0 {
                    return pos;
                }
                // buf[pos] = x[rev_N(pos)]: global bit-reversed placement.
                (pos.reverse_bits() >> (usize::BITS - bits)) & (n - 1)
            })
            .collect()
    }

    /// Run the blocked transform: deliver block-by-block, sub-FFT each
    /// block on arrival, then the final combine phase. Returns the spectrum
    /// (identical to a monolithic FFT of `x`).
    pub fn run(&self, x: &[Complex64]) -> Vec<Complex64> {
        let n = self.plan.len();
        assert_eq!(x.len(), n);
        let b = self.block_len();
        let mut buf = vec![Complex64::ZERO; n];
        let sub_stages = log2(b);
        for c in 0..self.k {
            // "Delivery": gather the block's decimated elements.
            for (r, &src) in self.block_source_indices(c).iter().enumerate() {
                buf[c * b + r] = x[src];
            }
            // Sub-FFT on the freshly delivered block (stages 0..log2 B).
            self.plan
                .butterflies_in_place(&mut buf[c * b..(c + 1) * b], 0, sub_stages);
        }
        // Compute-only combine phase (stages log2 B .. log2 N).
        self.plan
            .butterflies_in_place(&mut buf, sub_stages, log2(n));
        buf
    }

    /// Begin an incremental (streaming) blocked transform: blocks are fed
    /// as they arrive from the network — the shape of Model II execution on
    /// a real node, where the sub-FFT runs while later blocks are still in
    /// flight.
    pub fn begin(&self) -> BlockedState<'_> {
        BlockedState {
            bf: self,
            buf: vec![Complex64::ZERO; self.plan.len()],
            delivered: vec![false; self.k],
        }
    }

    /// Multiplies per delivered block — Eq. (17).
    pub fn multiplies_per_block(&self) -> u64 {
        ops::multiplies_per_block(self.plan.len() as u64, self.k as u64)
    }

    /// Multiplies in the final combine phase — Eq. (18).
    pub fn multiplies_final(&self) -> u64 {
        ops::multiplies_final(self.plan.len() as u64, self.k as u64)
    }
}

/// In-progress streaming blocked FFT (see [`BlockedFft::begin`]).
#[derive(Debug)]
pub struct BlockedState<'a> {
    bf: &'a BlockedFft,
    buf: Vec<Complex64>,
    delivered: Vec<bool>,
}

impl BlockedState<'_> {
    /// Feed block `c`'s samples (in the [`BlockedFft::block_source_indices`]
    /// delivery order) and immediately run its sub-FFT stages.
    pub fn deliver_block(&mut self, c: usize, samples: &[Complex64]) {
        let b = self.bf.block_len();
        assert_eq!(samples.len(), b, "block {c} must carry {b} samples");
        assert!(!self.delivered[c], "block {c} delivered twice");
        self.delivered[c] = true;
        self.buf[c * b..(c + 1) * b].copy_from_slice(samples);
        self.bf
            .plan
            .butterflies_in_place(&mut self.buf[c * b..(c + 1) * b], 0, log2(b));
    }

    /// Blocks still missing.
    pub fn missing(&self) -> usize {
        self.delivered.iter().filter(|&&d| !d).count()
    }

    /// Run the final combine stages and return the spectrum.
    ///
    /// # Panics
    /// Panics if any block is missing — a node must not start the
    /// compute-only phase before its delivery completes.
    pub fn finish(mut self) -> Vec<Complex64> {
        assert_eq!(self.missing(), 0, "finish() before all blocks arrived");
        let n = self.bf.len();
        self.bf
            .plan
            .butterflies_in_place(&mut self.buf, log2(self.bf.block_len()), log2(n));
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::radix2::fft_in_place;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn blocked_equals_monolithic_for_all_k() {
        let n = 1024;
        let x = signal(n);
        let mut mono = x.clone();
        fft_in_place(&mut mono);
        for k in [1usize, 2, 4, 8, 16, 32, 64] {
            let y = BlockedFft::new(n, k).run(&x);
            assert!(
                max_error(&mono, &y) < 1e-9,
                "k = {k}: err {}",
                max_error(&mono, &y)
            );
        }
    }

    #[test]
    fn extreme_blocking_k_equals_n() {
        // k = N: every "block" is one element; all work is combine stages.
        let n = 64;
        let x = signal(n);
        let mut mono = x.clone();
        fft_in_place(&mut mono);
        let y = BlockedFft::new(n, n).run(&x);
        assert!(max_error(&mono, &y) < 1e-10);
    }

    #[test]
    fn block_indices_are_residue_classes() {
        // Block c's sources all share i mod k (the decimation the text
        // predicts), and together the blocks partition 0..N.
        let bf = BlockedFft::new(256, 8);
        let mut seen = vec![false; 256];
        for c in 0..8 {
            let idx = bf.block_source_indices(c);
            assert_eq!(idx.len(), 32);
            let residue = idx[0] % 8;
            for &i in &idx {
                assert_eq!(i % 8, residue, "block {c}");
                assert!(!seen[i], "duplicate index {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn block_non_locality_grows_with_k() {
        // The span between consecutive delivered elements is the stride k —
        // the "increasing non-locality" the paper exploits.
        for k in [2usize, 8, 32] {
            let bf = BlockedFft::new(256, k);
            let idx = bf.block_source_indices(0);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert_eq!(w[1] - w[0], k, "stride must equal k = {k}");
            }
        }
    }

    #[test]
    fn op_counts_match_eqs() {
        let bf = BlockedFft::new(1024, 8);
        assert_eq!(bf.multiplies_per_block(), 2 * 128 * 7);
        assert_eq!(bf.multiplies_final(), 2 * 1024 * 3);
        assert_eq!(bf.block_len(), 128);
        assert_eq!(bf.blocks(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_k() {
        BlockedFft::new(64, 3);
    }

    #[test]
    fn streaming_equals_batch_even_out_of_order() {
        let n = 256;
        let x = signal(n);
        let bf = BlockedFft::new(n, 8);
        let batch = bf.run(&x);
        // Deliver blocks in a scrambled order — the math doesn't care.
        let mut st = bf.begin();
        for &c in &[3usize, 0, 7, 1, 6, 2, 5, 4] {
            let samples: Vec<Complex64> =
                bf.block_source_indices(c).iter().map(|&i| x[i]).collect();
            st.deliver_block(c, &samples);
        }
        let streamed = st.finish();
        assert!(max_error(&batch, &streamed) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before all blocks")]
    fn finish_requires_all_blocks() {
        let bf = BlockedFft::new(64, 4);
        let st = bf.begin();
        assert_eq!(st.missing(), 4);
        let _ = st.finish();
    }

    #[test]
    #[should_panic(expected = "delivered twice")]
    fn double_delivery_rejected() {
        let bf = BlockedFft::new(64, 4);
        let x = signal(64);
        let samples: Vec<Complex64> = bf.block_source_indices(0).iter().map(|&i| x[i]).collect();
        let mut st = bf.begin();
        st.deliver_block(0, &samples);
        st.deliver_block(0, &samples);
    }
}
