//! Large 1-D FFTs as 2-D matrix FFTs — the paper's §II motivation.
//!
//! "While both 1D and 2D FFTs can be found in many applications, large 1D
//! vector FFTs are typically implemented as 2D matrix FFTs to improve
//! overall performance \[Bailey\]. Therefore, the optimization of the 2D FFT
//! is generalizable to the 1D case."
//!
//! This is Bailey's four/six-step decomposition: for `N = n1·n2`, view the
//! vector as an `n1 × n2` row-major matrix, then
//!
//! 1. n2 column FFTs of length n1 (realized as transpose → row FFTs),
//! 2. pointwise twiddle multiplication by `W_N^{j2·k1}`,
//! 3. n1 row FFTs of length n2,
//! 4. a final transpose-order readout (`X[k1 + k2·n1] = out[k1][k2]`).
//!
//! Steps 1 and 4 are *matrix transposes* — exactly the non-local pattern the
//! SCA accelerates, which is why optimizing the 2-D FFT covers the 1-D case.

use crate::complex::Complex64;
use crate::fft2d::Matrix;
use crate::radix2::Radix2Plan;

/// A plan for an `n1 × n2`-decomposed 1-D FFT of length `n1 * n2`.
#[derive(Debug, Clone)]
pub struct SixStepPlan {
    n1: usize,
    n2: usize,
    col_plan: Radix2Plan,
    row_plan: Radix2Plan,
    /// Twiddles `W_N^{j2·k1}` as a flat `n1 × n2` table (k1-major).
    twiddles: Vec<Complex64>,
}

impl SixStepPlan {
    /// Plan for `n1 × n2` (both powers of two).
    pub fn new(n1: usize, n2: usize) -> Self {
        assert!(n1.is_power_of_two() && n2.is_power_of_two());
        let n = n1 * n2;
        let mut twiddles = Vec::with_capacity(n);
        for k1 in 0..n1 {
            for j2 in 0..n2 {
                let theta = -2.0 * std::f64::consts::PI * (j2 * k1) as f64 / n as f64;
                twiddles.push(Complex64::cis(theta));
            }
        }
        SixStepPlan {
            n1,
            n2,
            col_plan: Radix2Plan::new(n1),
            row_plan: Radix2Plan::new(n2),
            twiddles,
        }
    }

    /// Square decomposition for a length-`n` vector (`n` an even power of
    /// two gives n1 = n2 = √n; otherwise n1 = √(n/2)·... the nearest split).
    pub fn square(n: usize) -> Self {
        assert!(n.is_power_of_two());
        let half_bits = n.trailing_zeros() / 2;
        let n1 = 1usize << half_bits;
        Self::new(n1, n / n1)
    }

    /// Total transform length.
    pub fn len(&self) -> usize {
        self.n1 * self.n2
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Matrix shape `(n1, n2)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// Apply the twiddle table in place to an `n1 × n2` row-major matrix
    /// whose row index is `k1` (post-column-FFT order).
    pub fn apply_twiddles(&self, m: &mut Matrix) {
        assert_eq!((m.rows, m.cols), (self.n1, self.n2));
        for (v, w) in m.data.iter_mut().zip(&self.twiddles) {
            *v = *v * *w;
        }
    }

    /// Run the full decomposed 1-D FFT.
    pub fn forward(&self, x: &[Complex64]) -> Vec<Complex64> {
        let (n1, n2) = (self.n1, self.n2);
        assert_eq!(x.len(), n1 * n2);
        // View as n1 x n2 row-major: A[j1][j2] = x[j1*n2 + j2].
        let a = Matrix {
            rows: n1,
            cols: n2,
            data: x.to_vec(),
        };
        // Step 1: column FFTs via transpose -> row FFTs (the first corner
        // turn).
        let mut t = a.transposed(); // n2 x n1
        for r in 0..n2 {
            self.col_plan.forward(t.row_mut(r));
        }
        let mut inner = t.transposed(); // n1 x n2, rows indexed by k1
                                        // Step 2: twiddles.
        self.apply_twiddles(&mut inner);
        // Step 3: row FFTs of length n2.
        for r in 0..n1 {
            self.row_plan.forward(inner.row_mut(r));
        }
        // Step 4: transpose-order readout (the second corner turn):
        // X[k1 + k2*n1] = inner[k1][k2].
        let mut out = vec![Complex64::ZERO; n1 * n2];
        for k1 in 0..n1 {
            for k2 in 0..n2 {
                out[k1 + k2 * n1] = inner.at(k1, k2);
            }
        }
        out
    }

    /// Real multiplies, counting both FFT passes plus the twiddle pass
    /// (4 real multiplies per complex twiddle multiply), under the paper's
    /// costing.
    pub fn multiplies(&self) -> u64 {
        let col = self.n2 as u64 * crate::ops::multiplies(self.n1 as u64);
        let row = self.n1 as u64 * crate::ops::multiplies(self.n2 as u64);
        let twiddle = 4 * (self.n1 * self.n2) as u64;
        col + row + twiddle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_error;
    use crate::dft::dft_reference;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.29).sin(), (i as f64 * 0.53).cos() * 0.7))
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        for (n1, n2) in [(4usize, 4usize), (8, 8), (8, 16), (16, 8), (2, 32)] {
            let x = signal(n1 * n2);
            let fast = SixStepPlan::new(n1, n2).forward(&x);
            let slow = dft_reference(&x);
            assert!(
                max_error(&fast, &slow) < 1e-7,
                "{n1}x{n2}: {}",
                max_error(&fast, &slow)
            );
        }
    }

    #[test]
    fn matches_monolithic_radix2() {
        let n = 1024;
        let x = signal(n);
        let mut mono = x.clone();
        crate::radix2::fft_in_place(&mut mono);
        let six = SixStepPlan::square(n).forward(&x);
        assert!(max_error(&six, &mono) < 1e-8);
    }

    #[test]
    fn square_split_shapes() {
        assert_eq!(SixStepPlan::square(1024).shape(), (32, 32));
        assert_eq!(SixStepPlan::square(2048).shape(), (32, 64));
        assert_eq!(SixStepPlan::square(4).shape(), (2, 2));
    }

    #[test]
    fn multiply_count_exceeds_monolithic_by_twiddles_only() {
        // n1·n2·(log n1 + log n2) butterflies = monolithic count; the
        // decomposition's only extra multiplies are the twiddle pass.
        let p = SixStepPlan::new(32, 32);
        let mono = crate::ops::multiplies(1024);
        assert_eq!(p.multiplies(), mono + 4 * 1024);
    }

    #[test]
    fn impulse_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 64];
        x[0] = Complex64::ONE;
        let y = SixStepPlan::new(8, 8).forward(&x);
        for v in y {
            assert!((v - Complex64::ONE).abs() < 1e-10);
        }
    }
}
