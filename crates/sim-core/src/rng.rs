//! Seeded, reproducible randomness.
//!
//! Every stochastic choice in the workspace (workload address streams,
//! adaptive-routing tie-breaks) goes through an explicitly seeded RNG so that
//! simulations are exactly repeatable and property-test failures shrink
//! deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct the workspace-standard RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// Used to give each simulated component its own independent stream while
/// still being fully determined by one experiment-level seed. The mixing is
/// SplitMix64, whose output is equidistributed over `u64`.
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic shuffled permutation of `0..n`, seeded by `seed`.
///
/// Used by workload generators that need a random-but-repeatable visit order
/// (e.g. randomized transpose writeback order in the mesh ablations).
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut rng = seeded(seed);
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let a: Vec<u32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn child_seeds_are_distinct() {
        let parent = 7;
        let kids: Vec<u64> = (0..64).map(|i| child_seed(parent, i)).collect();
        let mut dedup = kids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kids.len());
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = permutation(100, 3);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_is_reproducible() {
        assert_eq!(permutation(50, 9), permutation(50, 9));
        assert_ne!(permutation(50, 9), permutation(50, 10));
    }

    #[test]
    fn empty_and_singleton_permutations() {
        assert!(permutation(0, 1).is_empty());
        assert_eq!(permutation(1, 1), vec![0]);
    }
}
