//! Unified observability: named metric series plus span-based event
//! tracing, serializable to Chrome trace-event JSON (loadable in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)) and to a flat
//! metrics JSON.
//!
//! The paper's evaluation is all about *where cycles and picojoules go*
//! (Tables I–III, Figs. 5/11/13/14); this module is how the simulators
//! attribute them. Every fabric exposes an `enable_telemetry()` switch that
//! attaches a [`Registry`]; with no registry attached the hot paths do no
//! telemetry work at all (a single `Option` check per service batch), so
//! the zero-fault goldens stay byte-identical and the perf harness sees
//! < 2% overhead.
//!
//! # Naming convention
//!
//! Metric series are named `fabric.component.metric`, e.g.
//! `emesh.router.forwards` or `pscan.crc.retries`. Per-component instances
//! are distinguished by labels, canonicalized into the series key as
//! `name{k=v,...}` with label keys sorted, e.g.
//! `emesh.router.forwards{node=12}`.
//!
//! # Timebase
//!
//! Chrome trace timestamps are microseconds. Each fabric maps its native
//! unit onto the µs axis (documented per fabric): the mesh renders one
//! cycle as 1 µs, the PSCAN one bus slot as 1 µs, and the P-sync machine
//! renders real seconds scaled by 10⁶. Tracks from different fabrics live
//! in different trace *processes*, so mixed timebases never share an axis.
//!
//! ```
//! use sim_core::telemetry::Registry;
//!
//! let reg = Registry::new();
//! reg.counter_add("emesh.mesh.injections", 2);
//! reg.counter_add_labeled("emesh.router.forwards", &[("node", "3".into())], 14);
//! reg.span("emesh", "router 3", "active", 0.0, 12.0, &[]);
//! assert_eq!(reg.series_count(), 2);
//! let trace = reg.chrome_trace_json();
//! assert!(trace.contains("\"traceEvents\""));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;

use serde::{Serialize, Value};

/// One completed Chrome trace event (phase `"X"`: a span with a duration).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the span label).
    pub name: String,
    /// Category: the fabric that emitted it (`emesh`, `pscan`, `psync`,
    /// `dram`).
    pub cat: String,
    /// Trace process id (one per fabric).
    pub pid: u32,
    /// Trace thread id (one per component track).
    pub tid: u32,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Free-form annotations rendered into the event's `args`.
    pub args: Vec<(String, String)>,
}

/// Sparse power-of-two-bucket histogram used for metric series. Unlike
/// [`crate::stats::Histogram`] it needs no up-front bucket sizing, so
/// callers can record into a fresh series without knowing its range.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesHistogram {
    /// Sample count per power-of-two bucket: bucket `i` holds samples in
    /// `[2^(i-1), 2^i)` (bucket 0 holds the sample `0`).
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl SeriesHistogram {
    fn bucket(sample: u64) -> u32 {
        64 - sample.leading_zeros()
    }

    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += u128::from(sample);
        *self.buckets.entry(Self::bucket(sample)).or_insert(0) += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Fold another histogram into this one. Exact, not approximate: every
    /// aggregate this type maintains (bucket counts, count, sum, min, max)
    /// is commutative and associative, so merging per-worker shards yields
    /// byte-identical state to recording every sample into one histogram —
    /// the property the parallel mesh telemetry path relies on.
    pub fn merge(&mut self, other: &SeriesHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }

    /// Upper edge of the bucket holding the `q`-quantile sample (a
    /// conservative estimate), or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&b, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                // Upper edge of bucket b, clamped to the observed max.
                let edge = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return Some(edge.min(self.max));
            }
        }
        Some(self.max)
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), Value::UInt(self.count)),
            (
                "sum".into(),
                Value::UInt(self.sum.min(u128::from(u64::MAX)) as u64),
            ),
            ("min".into(), Value::UInt(self.min().unwrap_or(0))),
            ("max".into(), Value::UInt(self.max().unwrap_or(0))),
            ("mean".into(), Value::Float(self.mean().unwrap_or(0.0))),
            ("p50".into(), Value::UInt(self.quantile(0.5).unwrap_or(0))),
            ("p99".into(), Value::UInt(self.quantile(0.99).unwrap_or(0))),
        ])
    }
}

/// A metric series value.
#[derive(Debug, Clone, PartialEq)]
enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Histogram(SeriesHistogram),
}

/// An entered-but-not-exited span: (name, enter ts, args).
type OpenSpan = (String, f64, Vec<(String, String)>);

#[derive(Debug, Clone, Default)]
struct Inner {
    series: BTreeMap<String, SeriesValue>,
    events: Vec<TraceEvent>,
    /// Interned (process, track) → (pid, tid); insertion order defines ids.
    tracks: Vec<(String, String)>,
    /// Open-span stacks, one per interned track.
    open: Vec<Vec<OpenSpan>>,
}

impl Inner {
    fn intern(&mut self, process: &str, track: &str) -> (u32, u32) {
        let pid = match self.tracks.iter().position(|(p, _)| p == process) {
            Some(i) => self.tracks[i].0.clone(),
            None => process.to_string(),
        };
        if let Some(i) = self
            .tracks
            .iter()
            .position(|(p, t)| *p == pid && t == track)
        {
            return (self.pid_of(&self.tracks[i].0), i as u32);
        }
        self.tracks.push((pid.clone(), track.to_string()));
        self.open.push(Vec::new());
        (self.pid_of(&pid), (self.tracks.len() - 1) as u32)
    }

    /// pid = 1 + index of first track belonging to this process.
    fn pid_of(&self, process: &str) -> u32 {
        1 + self
            .tracks
            .iter()
            .position(|(p, _)| p == process)
            .expect("interned") as u32
    }
}

/// Canonical series key: `name` or `name{k=v,...}` with keys sorted.
fn series_key(name: &str, labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut ls: Vec<&(&str, String)> = labels.iter().collect();
    ls.sort_by_key(|(k, _)| *k);
    let body: Vec<String> = ls.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

/// A registry of named metric series and trace spans.
///
/// Interior-mutable (single-threaded `RefCell`) so that instrumentation
/// points with `&self` receivers can record; each simulator instance owns
/// its registry, and registries from different fabrics are combined with
/// [`Registry::merge`] before export.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: RefCell<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.counter_add_labeled(name, &[], delta);
    }

    /// Add `delta` to counter `name` with labels.
    pub fn counter_add_labeled(&self, name: &str, labels: &[(&str, String)], delta: u64) {
        let key = series_key(name, labels);
        let mut inner = self.inner.borrow_mut();
        match inner.series.entry(key).or_insert(SeriesValue::Counter(0)) {
            SeriesValue::Counter(c) => *c += delta,
            other => *other = SeriesValue::Counter(delta),
        }
    }

    /// Set counter `name` to an absolute value (end-of-run flushes use this
    /// so repeated `run()` calls publish totals, not sums of totals).
    pub fn counter_set_labeled(&self, name: &str, labels: &[(&str, String)], value: u64) {
        let key = series_key(name, labels);
        self.inner
            .borrow_mut()
            .series
            .insert(key, SeriesValue::Counter(value));
    }

    /// Set counter `name` (no labels) to an absolute value.
    pub fn counter_set(&self, name: &str, value: u64) {
        self.counter_set_labeled(name, &[], value);
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.gauge_set_labeled(name, &[], value);
    }

    /// Set gauge `name` with labels to `value`.
    pub fn gauge_set_labeled(&self, name: &str, labels: &[(&str, String)], value: f64) {
        let key = series_key(name, labels);
        self.inner
            .borrow_mut()
            .series
            .insert(key, SeriesValue::Gauge(value));
    }

    /// Record `sample` into histogram `name`.
    pub fn histogram_record(&self, name: &str, sample: u64) {
        self.histogram_record_labeled(name, &[], sample);
    }

    /// Record `sample` into histogram `name` with labels.
    pub fn histogram_record_labeled(&self, name: &str, labels: &[(&str, String)], sample: u64) {
        let key = series_key(name, labels);
        let mut inner = self.inner.borrow_mut();
        match inner
            .series
            .entry(key)
            .or_insert_with(|| SeriesValue::Histogram(SeriesHistogram::default()))
        {
            SeriesValue::Histogram(h) => h.record(sample),
            other => {
                let mut h = SeriesHistogram::default();
                h.record(sample);
                *other = SeriesValue::Histogram(h);
            }
        }
    }

    /// Absorb a whole pre-built histogram as series `name` (end-of-run
    /// flush of a histogram accumulated outside the registry).
    pub fn histogram_set_labeled(
        &self,
        name: &str,
        labels: &[(&str, String)],
        hist: SeriesHistogram,
    ) {
        let key = series_key(name, labels);
        self.inner
            .borrow_mut()
            .series
            .insert(key, SeriesValue::Histogram(hist));
    }

    /// Record a completed span on `(process, track)` from `ts_us` for
    /// `dur_us` microseconds.
    pub fn span(
        &self,
        process: &str,
        track: &str,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        let mut inner = self.inner.borrow_mut();
        let (pid, tid) = inner.intern(process, track);
        inner.events.push(TraceEvent {
            name: name.to_string(),
            cat: process.to_string(),
            pid,
            tid,
            ts_us,
            dur_us: dur_us.max(0.0),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Open a nested span on `(process, track)` at `ts_us`. Close it with
    /// [`Registry::span_exit`]; spans on one track nest strictly
    /// (enter/exit must pair LIFO, as in a call stack).
    pub fn span_enter(
        &self,
        process: &str,
        track: &str,
        name: &str,
        ts_us: f64,
        args: &[(&str, String)],
    ) {
        let mut inner = self.inner.borrow_mut();
        let (_, tid) = inner.intern(process, track);
        let frame = (
            name.to_string(),
            ts_us,
            args.iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        );
        inner.open[tid as usize].push(frame);
    }

    /// Close the innermost open span on `(process, track)` at `ts_us`.
    /// Returns `false` (and records nothing) if no span is open there.
    pub fn span_exit(&self, process: &str, track: &str, ts_us: f64) -> bool {
        let mut inner = self.inner.borrow_mut();
        let (pid, tid) = inner.intern(process, track);
        let Some((name, start, args)) = inner.open[tid as usize].pop() else {
            return false;
        };
        inner.events.push(TraceEvent {
            name,
            cat: process.to_string(),
            pid,
            tid,
            ts_us: start,
            dur_us: (ts_us - start).max(0.0),
            args,
        });
        true
    }

    /// Number of distinct named metric series.
    pub fn series_count(&self) -> usize {
        self.inner.borrow().series.len()
    }

    /// Number of recorded (completed) trace spans.
    pub fn span_count(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Current value of counter series `key` (canonical key, including any
    /// `{labels}`), if it exists and is a counter.
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        match self.inner.borrow().series.get(key) {
            Some(SeriesValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Current value of gauge series `key`, if it exists and is a gauge.
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        match self.inner.borrow().series.get(key) {
            Some(SeriesValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Snapshot of histogram series `key`, if it exists and is a histogram.
    pub fn histogram_value(&self, key: &str) -> Option<SeriesHistogram> {
        match self.inner.borrow().series.get(key) {
            Some(SeriesValue::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// All canonical series keys, sorted.
    pub fn series_keys(&self) -> Vec<String> {
        self.inner.borrow().series.keys().cloned().collect()
    }

    /// Absorb `other`'s series and spans into `self`. Counters add,
    /// gauges/histograms from `other` win on key collision; `other`'s
    /// tracks are re-interned (pids/tids may change, process/track names
    /// are preserved).
    pub fn merge(&self, other: Registry) {
        let other = other.inner.into_inner();
        {
            let mut inner = self.inner.borrow_mut();
            for (key, val) in other.series {
                match (inner.series.get_mut(&key), val) {
                    (Some(SeriesValue::Counter(a)), SeriesValue::Counter(b)) => *a += b,
                    (slot, val) => {
                        let _ = slot;
                        inner.series.insert(key, val);
                    }
                }
            }
        }
        for ev in other.events {
            let (process, track) = other.tracks[ev.tid as usize].clone();
            let mut inner = self.inner.borrow_mut();
            let (pid, tid) = inner.intern(&process, &track);
            inner.events.push(TraceEvent { pid, tid, ..ev });
        }
    }

    /// Render the Chrome trace-event JSON: an object with a `traceEvents`
    /// array of phase-`"X"` span events plus `"M"` metadata events naming
    /// each process and track. Loadable in `chrome://tracing` and Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.inner.borrow();
        let mut events: Vec<Value> = Vec::new();
        // Metadata: process and thread names.
        let mut seen_pids: Vec<u32> = Vec::new();
        for (i, (process, track)) in inner.tracks.iter().enumerate() {
            let pid = inner.pid_of(process);
            let tid = i as u32;
            if !seen_pids.contains(&pid) {
                seen_pids.push(pid);
                events.push(Value::Object(vec![
                    ("name".into(), Value::Str("process_name".into())),
                    ("ph".into(), Value::Str("M".into())),
                    ("pid".into(), Value::UInt(u64::from(pid))),
                    ("tid".into(), Value::UInt(0)),
                    (
                        "args".into(),
                        Value::Object(vec![("name".into(), Value::Str(process.clone()))]),
                    ),
                ]));
            }
            events.push(Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::UInt(u64::from(pid))),
                ("tid".into(), Value::UInt(u64::from(tid))),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(track.clone()))]),
                ),
            ]));
        }
        for ev in &inner.events {
            let args: Vec<(String, Value)> = ev
                .args
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect();
            events.push(Value::Object(vec![
                ("name".into(), Value::Str(ev.name.clone())),
                ("cat".into(), Value::Str(ev.cat.clone())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::Float(ev.ts_us)),
                ("dur".into(), Value::Float(ev.dur_us)),
                ("pid".into(), Value::UInt(u64::from(ev.pid))),
                ("tid".into(), Value::UInt(u64::from(ev.tid))),
                ("args".into(), Value::Object(args)),
            ]));
        }
        let root = Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        serde_json::to_string_pretty(&W(root)).expect("infallible")
    }

    /// Render the flat metrics JSON: `{"series": {key: value, ...}}` with
    /// counters as integers, gauges as floats, and histograms as summary
    /// objects (`count`/`sum`/`min`/`max`/`mean`/`p50`/`p99`).
    pub fn metrics_json(&self) -> String {
        let inner = self.inner.borrow();
        let series: Vec<(String, Value)> = inner
            .series
            .iter()
            .map(|(k, v)| {
                let val = match v {
                    SeriesValue::Counter(c) => Value::UInt(*c),
                    SeriesValue::Gauge(g) => Value::Float(*g),
                    SeriesValue::Histogram(h) => h.to_value(),
                };
                (k.clone(), val)
            })
            .collect();
        let root = Value::Object(vec![
            ("series".into(), Value::Object(series)),
            (
                "series_count".into(),
                Value::UInt(inner.series.len() as u64),
            ),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        serde_json::to_string_pretty(&W(root)).expect("infallible")
    }
}

/// Record a completed span with inline `key = value` annotations:
///
/// ```
/// use sim_core::{span, telemetry::Registry};
/// let reg = Registry::new();
/// span!(reg, "psync", "phases", "transpose", 0.0, 42.0, retries = 1, k = 8);
/// assert_eq!(reg.span_count(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($reg:expr, $process:expr, $track:expr, $name:expr, $ts:expr, $dur:expr
     $(, $k:ident = $v:expr)* $(,)?) => {
        $reg.span(
            $process,
            $track,
            $name,
            $ts,
            $dur,
            &[$((stringify!($k), ::std::string::ToString::to_string(&$v))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set_overwrites() {
        let r = Registry::new();
        r.counter_add("a.b.c", 2);
        r.counter_add("a.b.c", 3);
        assert_eq!(r.counter_value("a.b.c"), Some(5));
        r.counter_set("a.b.c", 7);
        assert_eq!(r.counter_value("a.b.c"), Some(7));
    }

    #[test]
    fn labels_canonicalize_sorted() {
        let r = Registry::new();
        r.counter_add_labeled("m", &[("b", "2".into()), ("a", "1".into())], 1);
        r.counter_add_labeled("m", &[("a", "1".into()), ("b", "2".into())], 1);
        assert_eq!(r.series_count(), 1);
        assert_eq!(r.counter_value("m{a=1,b=2}"), Some(2));
    }

    #[test]
    fn gauges_and_histograms() {
        let r = Registry::new();
        r.gauge_set("util", 0.75);
        assert_eq!(r.gauge_value("util"), Some(0.75));
        for s in [1u64, 2, 3, 100] {
            r.histogram_record("depth", s);
        }
        let h = r.histogram_value("depth").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 26.5).abs() < 1e-12);
        assert!(h.quantile(0.5).unwrap() <= 3);
    }

    #[test]
    fn sharded_histogram_merge_is_exact() {
        // Recording a sample stream into one histogram must equal recording
        // an arbitrary partition of it into shards and merging — including
        // the serialized form (PartialEq covers buckets/count/sum/min/max).
        let samples: Vec<u64> = (0..257u64).map(|i| i.wrapping_mul(0x9E37) % 5000).collect();
        let mut whole = SeriesHistogram::default();
        for &s in &samples {
            whole.record(s);
        }
        for parts in [1usize, 2, 3, 7] {
            let mut merged = SeriesHistogram::default();
            for p in 0..parts {
                let mut shard = SeriesHistogram::default();
                for (i, &s) in samples.iter().enumerate() {
                    if i % parts == p {
                        shard.record(s);
                    }
                }
                merged.merge(&shard);
            }
            assert_eq!(merged, whole, "{parts}-way shard merge diverged");
        }
        // Merging an empty histogram is the identity, in both directions.
        let mut id = whole.clone();
        id.merge(&SeriesHistogram::default());
        assert_eq!(id, whole);
        let mut from_empty = SeriesHistogram::default();
        from_empty.merge(&whole);
        assert_eq!(from_empty, whole);
    }

    #[test]
    fn histogram_of_zeros() {
        let r = Registry::new();
        r.histogram_record("z", 0);
        r.histogram_record("z", 0);
        let h = r.histogram_value("z").unwrap();
        assert_eq!((h.min(), h.max(), h.count()), (Some(0), Some(0), 2));
        assert_eq!(h.quantile(1.0), Some(0));
    }

    #[test]
    fn span_nesting_pairs_lifo() {
        let r = Registry::new();
        r.span_enter("f", "t", "outer", 0.0, &[]);
        r.span_enter("f", "t", "inner", 1.0, &[]);
        assert!(r.span_exit("f", "t", 2.0));
        assert!(r.span_exit("f", "t", 3.0));
        assert!(!r.span_exit("f", "t", 4.0), "stack must be empty");
        let trace = r.chrome_trace_json();
        // inner closes first, so it precedes outer in the event list, and
        // its interval [1, 2] nests inside outer's [0, 3].
        let inner_at = trace.find("\"inner\"").unwrap();
        let outer_at = trace.find("\"outer\"").unwrap();
        assert!(inner_at < outer_at);
    }

    #[test]
    fn chrome_trace_has_metadata_and_events() {
        let r = Registry::new();
        r.span("emesh", "router 0", "active", 0.0, 10.0, &[]);
        r.span("pscan", "cp 1", "drive", 2.0, 4.0, &[("slots", "4".into())]);
        let t = r.chrome_trace_json();
        assert!(t.contains("\"traceEvents\""));
        assert!(t.contains("\"process_name\""));
        assert!(t.contains("\"thread_name\""));
        assert!(t.contains("\"emesh\""));
        assert!(t.contains("\"router 0\""));
        assert!(t.contains("\"ph\": \"X\""));
        assert!(t.contains("\"slots\": \"4\""));
        // Distinct fabrics land in distinct trace processes.
        assert!(t.contains("\"pscan\""));
    }

    #[test]
    fn metrics_json_flattens_all_series() {
        let r = Registry::new();
        r.counter_add("a", 1);
        r.gauge_set("b", 2.5);
        r.histogram_record("c", 9);
        let m = r.metrics_json();
        assert!(m.contains("\"series\""));
        assert!(m.contains("\"a\": 1"));
        assert!(m.contains("\"b\": 2.5"));
        assert!(m.contains("\"count\": 1"));
        assert!(m.contains("\"series_count\": 3"));
    }

    #[test]
    fn merge_adds_counters_and_reinterns_tracks() {
        let a = Registry::new();
        a.counter_add("n", 1);
        a.span("f", "t0", "x", 0.0, 1.0, &[]);
        let b = Registry::new();
        b.counter_add("n", 2);
        b.gauge_set("g", 1.0);
        b.span("f", "t1", "y", 0.0, 1.0, &[]);
        b.span("f2", "t0", "z", 0.0, 1.0, &[]);
        a.merge(b);
        assert_eq!(a.counter_value("n"), Some(3));
        assert_eq!(a.gauge_value("g"), Some(1.0));
        assert_eq!(a.span_count(), 3);
        let t = a.chrome_trace_json();
        assert!(t.contains("\"f2\"") && t.contains("\"t1\""));
    }

    #[test]
    fn span_macro_records_args() {
        let r = Registry::new();
        span!(
            r,
            "psync",
            "phases",
            "wb",
            1.0,
            2.0,
            retries = 3,
            node = "h"
        );
        assert_eq!(r.span_count(), 1);
        let t = r.chrome_trace_json();
        assert!(t.contains("\"retries\": \"3\""));
        assert!(t.contains("\"node\": \"h\""));
    }
}
