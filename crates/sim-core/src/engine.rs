//! Cycle-driven simulation engine.
//!
//! The wormhole mesh baseline of the paper (§V-C-2) is a synchronous design:
//! every router advances one pipeline step per network clock. A cycle-driven
//! engine is both simpler and faster than a discrete-event queue for such
//! models. [`CycleEngine`] owns the cycle counter and a watchdog so that a
//! deadlocked model terminates with a diagnostic instead of spinning forever.

use crate::time::{Duration, Time};

/// Outcome of stepping a cycle-driven model one clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// Work remains; keep clocking.
    Active,
    /// The model reached its terminal condition this cycle.
    Done,
    /// The model did nothing this cycle (used for watchdog accounting).
    Idle,
}

/// A synchronous (clocked) simulation model.
pub trait CycleModel {
    /// Advance the model by one clock cycle.
    fn step(&mut self, cycle: u64) -> StepStatus;
}

/// Drives a [`CycleModel`] to completion and converts cycles to simulated time.
#[derive(Debug, Clone)]
pub struct CycleEngine {
    /// Simulated length of one clock cycle.
    pub period: Duration,
    /// Abort after this many consecutive idle cycles (deadlock watchdog).
    pub idle_limit: u64,
    /// Hard upper bound on total cycles (runaway watchdog).
    pub max_cycles: u64,
}

impl Default for CycleEngine {
    fn default() -> Self {
        CycleEngine {
            // 2.5 GHz network clock, the paper's mesh router clock (§III-C).
            period: Duration::from_ps(400),
            idle_limit: 100_000,
            max_cycles: u64::MAX / 2,
        }
    }
}

/// Result of running a model to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles elapsed, including the final one.
    pub cycles: u64,
    /// `cycles * period`.
    pub elapsed: Duration,
}

impl RunResult {
    /// Completion timestamp assuming the run started at t = 0.
    pub fn end_time(&self) -> Time {
        Time::ZERO + self.elapsed
    }
}

/// Error from a run that failed to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The model reported `Idle` for `idle_limit` consecutive cycles.
    Deadlock { at_cycle: u64 },
    /// The model exceeded `max_cycles`.
    CycleLimit { limit: u64 },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock { at_cycle } => {
                write!(f, "model deadlocked (idle watchdog) at cycle {at_cycle}")
            }
            RunError::CycleLimit { limit } => {
                write!(f, "model exceeded the {limit}-cycle watchdog")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl CycleEngine {
    /// Engine with the given clock frequency in GHz and default watchdogs.
    pub fn at_ghz(ghz: f64) -> Self {
        CycleEngine {
            period: Duration::from_freq_ghz(ghz),
            ..Default::default()
        }
    }

    /// Clock `model` until it reports [`StepStatus::Done`].
    pub fn run<M: CycleModel>(&self, model: &mut M) -> Result<RunResult, RunError> {
        let mut idle_streak = 0u64;
        let mut cycle = 0u64;
        loop {
            if cycle >= self.max_cycles {
                return Err(RunError::CycleLimit {
                    limit: self.max_cycles,
                });
            }
            match model.step(cycle) {
                StepStatus::Done => {
                    let cycles = cycle + 1;
                    return Ok(RunResult {
                        cycles,
                        elapsed: self.period * cycles,
                    });
                }
                StepStatus::Active => idle_streak = 0,
                StepStatus::Idle => {
                    idle_streak += 1;
                    if idle_streak >= self.idle_limit {
                        return Err(RunError::Deadlock { at_cycle: cycle });
                    }
                }
            }
            cycle += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountDown(u64);
    impl CycleModel for CountDown {
        fn step(&mut self, _c: u64) -> StepStatus {
            if self.0 == 0 {
                StepStatus::Done
            } else {
                self.0 -= 1;
                StepStatus::Active
            }
        }
    }

    struct Stuck;
    impl CycleModel for Stuck {
        fn step(&mut self, _c: u64) -> StepStatus {
            StepStatus::Idle
        }
    }

    #[test]
    fn runs_to_completion_and_counts_cycles() {
        let eng = CycleEngine::at_ghz(2.5);
        let res = eng.run(&mut CountDown(9)).unwrap();
        assert_eq!(res.cycles, 10);
        assert_eq!(res.elapsed, Duration::from_ps(4_000));
    }

    #[test]
    fn deadlock_watchdog_fires() {
        let eng = CycleEngine {
            idle_limit: 50,
            ..CycleEngine::default()
        };
        let err = eng.run(&mut Stuck).unwrap_err();
        assert!(matches!(err, RunError::Deadlock { at_cycle: 49 }));
    }

    #[test]
    fn cycle_limit_watchdog_fires() {
        struct Forever;
        impl CycleModel for Forever {
            fn step(&mut self, _c: u64) -> StepStatus {
                StepStatus::Active
            }
        }
        let eng = CycleEngine {
            max_cycles: 10,
            ..CycleEngine::default()
        };
        let err = eng.run(&mut Forever).unwrap_err();
        assert_eq!(err, RunError::CycleLimit { limit: 10 });
    }

    #[test]
    fn period_matches_frequency() {
        assert_eq!(CycleEngine::at_ghz(10.0).period.as_ps(), 100);
        assert_eq!(CycleEngine::default().period.as_ps(), 400);
    }
}
