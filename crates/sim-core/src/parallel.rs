//! Epoch-synchronous worker pool and deterministic partitioning.
//!
//! Substrate for the deterministic parallel execution modes of the fabric
//! simulators (the emesh tile scheduler in particular). The design point is
//! *barrier-synchronous epochs*: a master thread repeatedly publishes a
//! batch of independent work items, every thread (master included) chews a
//! deterministic contiguous chunk, and the master blocks until all chunks
//! are done before it advances simulated time. Epochs are short — often
//! well under a microsecond of work — so the pool is built around a
//! spin → yield → park waiting ladder rather than channels:
//!
//! * workers spin briefly on an epoch counter (latency when batches arrive
//!   back-to-back, e.g. the flood phase of a transpose),
//! * then yield the core (so an oversubscribed or single-core host — CI
//!   runners included — keeps making progress),
//! * then park on a condvar (so a simulator stuck in a serial stretch pays
//!   nothing for the idle pool).
//!
//! Determinism contract: [`EpochPool::run`] assigns chunk `i` of
//! [`chunk_range`] to participant `i`, every run. Which *OS thread* executes
//! a chunk is irrelevant to simulator results by design — callers must make
//! work items within one epoch batch mutually independent and commit their
//! effects in a deterministic order afterwards (see `emesh::mesh`'s
//! epoch-parallel scheduler and DESIGN.md §11 for the full argument).

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Interior-mutable cell that an epoch-parallel scheduler may touch from
/// several threads at once. All access goes through raw-pointer place
/// projections; the *caller's* independence argument (e.g. the emesh wave
/// planner's radius-1 disjointness, DESIGN.md §11) is what makes the
/// aliasing sound — the cell itself only erases the static exclusivity.
#[repr(transparent)]
pub struct SyncCell<T>(UnsafeCell<T>);

// Safety: SyncCell only hands out raw pointers; every dereference site must
// sit inside a parallel region whose work items have pairwise-disjoint
// footprints (the caller's contract).
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    /// Raw pointer to the payload. Dereferencing is `unsafe`; see the type
    /// docs for the disjointness contract.
    #[inline]
    pub fn get(&self) -> *mut T {
        self.0.get()
    }

    /// View a uniquely-borrowed slice as a slice of cells (the inverse
    /// projection of `Cell::as_slice_of_cells`; sound because the unique
    /// borrow is held for the cells' whole lifetime).
    #[inline]
    pub fn from_mut(v: &mut [T]) -> &[SyncCell<T>] {
        let ptr = v as *mut [T] as *const [SyncCell<T>];
        unsafe { &*ptr }
    }
}

/// Monotone arrival counter: a reusable in-epoch barrier.
///
/// Unlike a classic sense-reversing barrier it is never reset — each
/// synchronization round waits for an *absolute* arrival count, so a batch
/// of `w` successive barriers among `t` participants is: capture
/// `base = current()` once, then after round `i` every participant calls
/// `arrive()` and spins in `wait(base + t * (i + 1))`. Stragglers from a
/// finished round can never confuse the next one because the target only
/// grows. Used by the emesh epoch scheduler for wave hand-offs *inside* one
/// [`EpochPool::run`] call, where the pool's own epoch/done machinery is
/// too coarse (it is a full publish/collect round-trip).
///
/// Waits spin then yield; they never park. Callers should only place
/// barriers between sub-microsecond work items (waves), where parking
/// latency would dominate the work. A participant that unwinds out of a
/// barrier ladder strands everyone still waiting — panic-safe callers
/// must compensate the remaining `arrive`s before propagating (see the
/// emesh wave dispatcher).
#[derive(Default)]
pub struct Arrivals {
    n: AtomicU64,
}

impl Arrivals {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Arrivals::default()
    }

    /// Current arrival count (acquire: pairs with [`Arrivals::arrive`]).
    #[inline]
    pub fn current(&self) -> u64 {
        self.n.load(Ordering::Acquire)
    }

    /// Announce this participant's arrival (release: everything it wrote
    /// before arriving is visible to a `wait` that observes the count).
    #[inline]
    pub fn arrive(&self) {
        self.n.fetch_add(1, Ordering::AcqRel);
    }

    /// Spin (then yield, so oversubscribed or single-core hosts make
    /// progress) until at least `target` arrivals have been announced.
    pub fn wait(&self, target: u64) {
        let mut spins = 0u32;
        while self.n.load(Ordering::Acquire) < target {
            spins += 1;
            if spins < SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// The contiguous index range participant `part` of `parts` owns when
/// splitting `len` work items: balanced chunks, earlier parts take the
/// remainder, order-preserving. The full partition covers `0..len` exactly
/// once; empty ranges fall out naturally when `len < parts`.
///
/// ```
/// use sim_core::parallel::chunk_range;
/// assert_eq!(chunk_range(10, 4, 0), 0..3);
/// assert_eq!(chunk_range(10, 4, 1), 3..6);
/// assert_eq!(chunk_range(10, 4, 2), 6..8);
/// assert_eq!(chunk_range(10, 4, 3), 8..10);
/// ```
pub fn chunk_range(len: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    assert!(parts > 0, "zero-way partition");
    assert!(part < parts, "part {part} out of {parts}");
    let base = len / parts;
    let rem = len % parts;
    let start = part * base + part.min(rem);
    let end = start + base + usize::from(part < rem);
    start..end
}

/// Spins before yielding in the worker wait ladder.
const SPINS: u32 = 256;
/// Yields before parking on the condvar.
const YIELDS: u32 = 64;

type Job = *const (dyn Fn(usize) + Sync + 'static);

/// State shared between the master and the workers.
struct Shared {
    /// Epoch counter: bumped (release) by the master after publishing a
    /// job; observed (acquire) by workers.
    epoch: AtomicU64,
    /// Workers that finished the current epoch's chunk.
    done: AtomicUsize,
    /// The published job for the current epoch. Written by the master
    /// before the epoch bump, read by workers after observing it — the
    /// release/acquire pair on `epoch` orders the accesses.
    job: Mutex<Option<SendJob>>,
    /// A worker chunk panicked; the master re-panics at the barrier.
    panicked: AtomicBool,
    /// Shut the pool down (checked after every epoch observation).
    stop: AtomicBool,
    /// Parked-worker bookkeeping for the condvar hand-off.
    sleepers: Mutex<usize>,
    wake: Condvar,
}

/// Raw job pointer made `Send`: the master guarantees the pointee outlives
/// the epoch (it blocks in [`EpochPool::run`] until every worker is done).
#[derive(Clone, Copy)]
struct SendJob(Job);
unsafe impl Send for SendJob {}

/// Barrier-synchronous scoped worker pool. See the module docs.
pub struct EpochPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EpochPool {
    /// A pool executing `threads`-way epochs: the calling (master) thread
    /// plus `threads - 1` spawned workers. `threads` is clamped to at
    /// least 1; a 1-thread pool spawns nothing and `run` degenerates to a
    /// plain call.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            job: Mutex::new(None),
            panicked: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            sleepers: Mutex::new(0),
            wake: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|part| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("epoch-worker-{part}"))
                    .spawn(move || worker_loop(&shared, part))
                    .expect("spawn epoch worker")
            })
            .collect();
        EpochPool { shared, workers }
    }

    /// Total participants (master + workers).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Run one epoch: `f(part)` is invoked once for every
    /// `part ∈ 0..threads()`, part 0 on the calling thread, and `run`
    /// returns only after every invocation completed. `f` typically maps
    /// `part` to [`chunk_range`] over a batch of independent work items.
    ///
    /// # Panics
    /// Re-panics on the master if any worker's invocation panicked.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() {
            f(0);
            return;
        }
        let sh = &*self.shared;
        sh.done.store(0, Ordering::Relaxed);
        // Publish the job, then the epoch (release): workers that observe
        // the new epoch (acquire) see the job. The lifetime is erased to
        // store the fat pointer; the barrier below keeps the pointee alive
        // past the last worker dereference.
        let raw: *const (dyn Fn(usize) + Sync) = f;
        let raw: Job = unsafe { std::mem::transmute(raw) };
        *sh.job.lock().expect("pool poisoned") = Some(SendJob(raw));
        sh.epoch.fetch_add(1, Ordering::Release);
        // Wake parked workers. Taking the sleepers lock orders this with
        // the re-check a parking worker performs under the same lock, so
        // the bump cannot fall between its check and its wait.
        {
            let sleepers = sh.sleepers.lock().expect("pool poisoned");
            if *sleepers > 0 {
                sh.wake.notify_all();
            }
        }
        // The master's own chunk runs under catch_unwind so an unwinding
        // master still reaches the barrier below — workers may yet be
        // dereferencing the job closure (and whatever stack state it
        // borrows), so leaving `run` before they are done would be unsound.
        let master = catch_unwind(AssertUnwindSafe(|| f(0)));
        // Barrier: wait for every worker, yielding so single-core hosts
        // schedule them.
        let mut spins = 0u32;
        while sh.done.load(Ordering::Acquire) < self.workers.len() {
            spins += 1;
            if spins < SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if let Err(p) = master {
            std::panic::resume_unwind(p);
        }
        if sh.panicked.load(Ordering::Relaxed) {
            panic!("epoch pool worker panicked");
        }
    }
}

impl Drop for EpochPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        {
            let _guard = self.shared.sleepers.lock();
            self.shared.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(sh: &Shared, part: usize) {
    let mut seen = 0u64;
    loop {
        // Wait ladder: spin → yield → park.
        let mut spins = 0u32;
        loop {
            let e = sh.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < SPINS {
                std::hint::spin_loop();
            } else if spins < SPINS + YIELDS {
                std::thread::yield_now();
            } else {
                let mut sleepers = sh.sleepers.lock().expect("pool poisoned");
                // Re-check under the lock: a bump between the load above
                // and this lock acquisition would otherwise be missed.
                if sh.epoch.load(Ordering::Acquire) == seen {
                    *sleepers += 1;
                    let (guard, _) = sh
                        .wake
                        .wait_timeout(sleepers, std::time::Duration::from_millis(50))
                        .expect("pool poisoned");
                    sleepers = guard;
                    *sleepers -= 1;
                }
                drop(sleepers);
                spins = 0;
            }
        }
        if sh.stop.load(Ordering::Relaxed) {
            return;
        }
        let job = sh
            .job
            .lock()
            .expect("pool poisoned")
            .expect("job published");
        // Safety: the master keeps the closure alive until the `done`
        // barrier below releases it.
        let f = unsafe { &*job.0 };
        if catch_unwind(AssertUnwindSafe(|| f(part))).is_err() {
            sh.panicked.store(true, Ordering::Relaxed);
        }
        sh.done.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn chunks_cover_everything_exactly_once() {
        for len in [0usize, 1, 5, 10, 97, 1024] {
            for parts in [1usize, 2, 3, 4, 7] {
                let mut covered = vec![0u32; len];
                let mut prev_end = 0;
                for p in 0..parts {
                    let r = chunk_range(len, parts, p);
                    assert_eq!(r.start, prev_end, "len={len} parts={parts} p={p}");
                    prev_end = r.end;
                    for i in r {
                        covered[i] += 1;
                    }
                }
                assert_eq!(prev_end, len);
                assert!(covered.iter().all(|&c| c == 1));
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        for len in [10usize, 11, 12, 13] {
            let sizes: Vec<usize> = (0..4).map(|p| chunk_range(len, 4, p).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced {sizes:?}");
        }
    }

    #[test]
    fn pool_runs_every_part_every_epoch() {
        let pool = EpochPool::new(3);
        assert_eq!(pool.threads(), 3);
        let hits = TestCounter::new(0);
        for epoch in 0..200u64 {
            let base = epoch * 100;
            pool.run(&|part| {
                hits.fetch_add(base + part as u64, Ordering::Relaxed);
            });
            // run() is a barrier: all three parts have landed.
            let expect: u64 = (0..=epoch).map(|e| 3 * e * 100 + 3).sum();
            assert_eq!(hits.load(Ordering::Relaxed), expect);
        }
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = EpochPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut touched = false;
        let cell = std::sync::Mutex::new(&mut touched);
        pool.run(&|part| {
            assert_eq!(part, 0);
            **cell.lock().unwrap() = true;
        });
        assert!(touched);
    }

    #[test]
    fn pool_survives_idle_stretch_then_resumes() {
        let pool = EpochPool::new(2);
        let hits = TestCounter::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        // Long enough for workers to park.
        std::thread::sleep(std::time::Duration::from_millis(120));
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn deterministic_chunk_assignment() {
        let pool = EpochPool::new(4);
        let items: Vec<u64> = (0..103).collect();
        for _ in 0..20 {
            let sums: Vec<TestCounter> = (0..4).map(|_| TestCounter::new(0)).collect();
            pool.run(&|part| {
                for i in chunk_range(items.len(), 4, part) {
                    sums[part].fetch_add(items[i], Ordering::Relaxed);
                }
            });
            let got: Vec<u64> = sums.iter().map(|s| s.load(Ordering::Relaxed)).collect();
            // Same chunks every epoch: part sums are reproducible.
            let expect: Vec<u64> = (0..4)
                .map(|p| chunk_range(103, 4, p).map(|i| items[i]).sum())
                .collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    #[should_panic(expected = "epoch pool worker panicked")]
    fn worker_panic_reaches_the_master() {
        let pool = EpochPool::new(2);
        pool.run(&|part| {
            if part == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn arrivals_barrier_orders_waves_within_one_epoch() {
        // 3 participants, 4 in-epoch waves, two barrier rounds per wave:
        // everyone writes its own slot, a barrier publishes the wave, then
        // everyone reads a *peer's* slot and asserts it shows this wave's
        // value, and a second barrier keeps the next wave's writes from
        // overlapping the reads. (The emesh scheduler gets away with one
        // barrier per wave because its wave planner keeps concurrent
        // footprints disjoint; this test deliberately makes every slot
        // cross-thread, so it needs the full write/read phase split.)
        let pool = EpochPool::new(3);
        let threads = pool.threads() as u64;
        let gate = Arrivals::new();
        let mut log: Vec<u64> = vec![0; 3];
        let cells = SyncCell::from_mut(&mut log);
        const WAVES: u64 = 4;
        let base = gate.current();
        pool.run(&|part| {
            for w in 0..WAVES {
                unsafe { *cells[part].get() = w + 1 };
                gate.arrive();
                gate.wait(base + threads * (2 * w + 1));
                let peer = (part + 1) % 3;
                let seen = unsafe { *cells[peer].get() };
                assert_eq!(seen, w + 1, "wave {w} not fully committed");
                gate.arrive();
                gate.wait(base + threads * (2 * w + 2));
            }
        });
        drop(pool);
        assert_eq!(log, vec![WAVES; 3]);
    }

    #[test]
    fn arrivals_counter_is_monotone_across_rounds() {
        let gate = Arrivals::new();
        assert_eq!(gate.current(), 0);
        gate.arrive();
        gate.arrive();
        gate.wait(2); // already satisfied: returns immediately
        assert_eq!(gate.current(), 2);
    }

    #[test]
    fn sync_cell_roundtrips_mut_slice() {
        let mut v = vec![1u64, 2, 3];
        let cells = SyncCell::from_mut(&mut v);
        unsafe { *cells[1].get() = 20 };
        assert_eq!(v, vec![1, 20, 3]);
    }
}
