//! Cooperative cancellation for long-running simulations.
//!
//! Every fabric in this workspace runs to completion once started; this
//! module provides the machinery to interrupt one mid-flight without
//! perturbing its determinism:
//!
//! * [`CancelToken`] — a shared atomic *generation counter*. Cancelling
//!   bumps the generation; it never resets, so a token can be reused
//!   across many runs (each run arms a fresh [`CancelWatch`] against the
//!   current generation).
//! * [`CancelWatch`] — a token snapshot held by one run. It reports
//!   cancelled exactly when the token's generation has advanced past the
//!   generation it was armed at, so cancellations that happened *before*
//!   arming are invisible (no stale-cancel races).
//! * [`Deadline`] — a wall-clock bound ([`std::time::Instant`] based).
//! * [`Interrupt`] — the bundle a simulator polls: any number of watches,
//!   an optional deadline, and an optional deterministic *cycle bound*
//!   ([`Interrupt::with_cycle_bound`]) used by tests to cancel at an exact,
//!   reproducible point in simulated time.
//!
//! # Cost model
//!
//! Simulators store an `Option<Interrupt>` and poll only when it is
//! `Some`: an uninstalled interrupt costs one branch per poll site and
//! nothing per flit/word — the zero-cost-when-unset contract the
//! byte-identical goldens and the perf gate enforce. When installed,
//! watch and cycle-bound checks are a handful of relaxed atomic loads and
//! integer compares per poll; the `Instant::now()` syscall behind the
//! deadline check is throttled to once every
//! [`Interrupt::DEADLINE_POLL_PERIOD`] polls (with one check on the very
//! first poll, so an already-expired deadline — e.g. `--timeout-s 0` —
//! fires deterministically at the first poll site).
//!
//! Poll granularity is the host loop's natural chunk: one serviced cycle
//! for the mesh master loop, one gather attempt for the PSCAN link layer,
//! one phase for the P-sync machine, 1024 accesses for a DRAM trace.
//! Cancellation is therefore prompt (micro- to milliseconds) but never
//! mid-chunk: a cancelled run's partial statistics are always consistent
//! at a chunk boundary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation source: an atomic generation counter.
///
/// Clones share the counter. [`CancelToken::cancel`] bumps the
/// generation, tripping every [`CancelWatch`] armed at an earlier
/// generation — across threads, immediately and permanently (for those
/// watches). Arming a new watch afterwards starts clean.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    gen: Arc<AtomicU64>,
}

impl CancelToken {
    /// A fresh, untripped token at generation 0.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trip the token: every watch armed at an earlier generation reports
    /// cancelled from now on. Safe to call from any thread, any number of
    /// times — and from a signal handler (a single atomic add).
    pub fn cancel(&self) {
        self.gen.fetch_add(1, Ordering::Release);
    }

    /// The current generation (bumps once per [`CancelToken::cancel`]).
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Arm a watch against the current generation: it reports cancelled
    /// exactly when the token is cancelled *after* this call.
    pub fn watch(&self) -> CancelWatch {
        CancelWatch {
            token: self.clone(),
            armed: self.generation(),
        }
    }
}

/// One run's view of a [`CancelToken`]: armed at a generation, tripped by
/// any later cancellation. Sticky once tripped (generations never rewind).
#[derive(Debug, Clone)]
pub struct CancelWatch {
    token: CancelToken,
    armed: u64,
}

impl CancelWatch {
    /// Whether the token was cancelled after this watch was armed.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.token.generation() > self.armed
    }
}

/// A shared partial-progress probe: the latest progress counter a running
/// simulation reported through its [`Interrupt`] polls.
///
/// Attach one with [`Interrupt::with_progress`]; every `check(cycle)` then
/// publishes `cycle` with a single relaxed store, and any thread holding a
/// clone can read the run's most recent position without touching the
/// fabric. This is the plumbing the experiment daemon's `progress` events
/// stream from: the poll sites the cancellation layer already owns double
/// as progress reports, so no fabric needs a second instrumentation path.
///
/// The counter unit is whatever the polling loop counts (serviced cycles
/// for the mesh, gather attempts for PSCAN, phases for the machine) and is
/// monotone within one run. `u64::MAX` means "no poll observed yet".
#[derive(Debug, Clone, Default)]
pub struct Progress {
    cycle: Arc<AtomicU64>,
    polls: Arc<AtomicU64>,
}

impl Progress {
    /// A fresh probe with no observations.
    pub fn new() -> Self {
        Progress {
            cycle: Arc::new(AtomicU64::new(u64::MAX)),
            polls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The most recently polled progress counter, or `None` before the
    /// first poll.
    pub fn cycle(&self) -> Option<u64> {
        match self.cycle.load(Ordering::Relaxed) {
            u64::MAX => None,
            c => Some(c),
        }
    }

    /// Total interrupt polls observed (over all fabrics sharing the probe).
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    #[inline]
    fn record(&self, cycle: u64) {
        // Saturate just below the "unobserved" sentinel.
        self.cycle.store(cycle.min(u64::MAX - 1), Ordering::Relaxed);
        self.polls.fetch_add(1, Ordering::Relaxed);
    }
}

/// A wall-clock deadline.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// A deadline `secs` seconds from now. Negative, NaN or absurdly large
    /// values are clamped to `[0, ~1 year]`, so `0.0` means "already
    /// expired" and garbage cannot panic `Duration::from_secs_f64`.
    pub fn after_secs_f64(secs: f64) -> Self {
        const YEAR: f64 = 365.0 * 24.0 * 3600.0;
        let secs = if secs.is_finite() {
            secs.clamp(0.0, YEAR)
        } else {
            YEAR
        };
        Deadline::after(Duration::from_secs_f64(secs))
    }

    /// Whether the deadline has passed. Costs an `Instant::now()` read —
    /// poll through [`Interrupt`] to amortize it.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// Why a run was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// A [`CancelToken`] this run was watching was cancelled.
    Cancelled,
    /// The run's [`Deadline`] passed.
    DeadlineExceeded,
    /// The deterministic cycle bound was reached.
    CycleReached {
        /// The configured bound.
        bound: u64,
    },
}

impl std::fmt::Display for CancelCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelCause::Cancelled => write!(f, "cancel token tripped"),
            CancelCause::DeadlineExceeded => write!(f, "deadline exceeded"),
            CancelCause::CycleReached { bound } => {
                write!(f, "cycle bound {bound} reached")
            }
        }
    }
}

/// The poll bundle a simulator carries: cancellation watches, an optional
/// wall-clock deadline, and an optional deterministic cycle bound.
///
/// Build with the `with_*` combinators and install via the fabric's
/// `set_interrupt`. An empty `Interrupt` never fires — but prefer leaving
/// the fabric's `Option<Interrupt>` as `None` to skip the poll entirely.
#[derive(Debug, Clone, Default)]
#[must_use = "an Interrupt does nothing until installed on a simulator"]
pub struct Interrupt {
    watches: Vec<CancelWatch>,
    deadline: Option<Deadline>,
    at_cycle: Option<u64>,
    progress: Option<Progress>,
    /// Polls remaining until the next deadline check; 0 = check now.
    countdown: u32,
}

impl Interrupt {
    /// Polls between `Instant::now()` reads for the deadline check. The
    /// first poll always checks (countdown starts at zero), so an
    /// already-expired deadline fires deterministically at the first poll
    /// site regardless of host speed.
    pub const DEADLINE_POLL_PERIOD: u32 = 1024;

    /// An empty interrupt: fires on nothing until combinators add sources.
    pub fn new() -> Self {
        Interrupt::default()
    }

    /// Also fire when `watch` trips. Multiple watches compose (e.g. a
    /// batch-wide token plus a per-job token).
    pub fn with_watch(mut self, watch: CancelWatch) -> Self {
        self.watches.push(watch);
        self
    }

    /// Convenience: arm a fresh watch on `token` and add it.
    pub fn with_token(self, token: &CancelToken) -> Self {
        self.with_watch(token.watch())
    }

    /// Also fire when `deadline` passes (replaces any earlier deadline).
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Also fire — deterministically — when the polled progress counter
    /// reaches `cycle`. The mesh polls with its serviced cycle, so
    /// `with_cycle_bound(0)` cancels before any cycle is serviced and
    /// `with_cycle_bound(u64::MAX)` never fires; both are exercised by the
    /// cancellation-determinism proptests.
    pub fn with_cycle_bound(mut self, cycle: u64) -> Self {
        self.at_cycle = Some(cycle);
        self
    }

    /// Also publish every polled progress counter to `probe` (clones share
    /// the underlying atomics). Progress reporting alone does not arm the
    /// interrupt: an interrupt carrying only a probe never fires, but each
    /// poll still publishes its position.
    pub fn with_progress(mut self, probe: Progress) -> Self {
        self.progress = Some(probe);
        self
    }

    /// Whether any source is armed; an empty interrupt can be skipped.
    /// A progress probe by itself does not arm the interrupt for
    /// cancellation, but it still wants polls, so it counts here.
    pub fn is_armed(&self) -> bool {
        !self.watches.is_empty()
            || self.deadline.is_some()
            || self.at_cycle.is_some()
            || self.progress.is_some()
    }

    /// Poll all sources with the host loop's progress counter (`cycle` in
    /// whatever unit the loop counts: serviced cycles, attempts, phases,
    /// accesses). Returns the cause on the first firing source, checked in
    /// deterministic-first order: cycle bound, then watches, then the
    /// (throttled) deadline.
    #[inline]
    pub fn check(&mut self, cycle: u64) -> Option<CancelCause> {
        if let Some(p) = &self.progress {
            p.record(cycle);
        }
        if let Some(bound) = self.at_cycle {
            if cycle >= bound {
                return Some(CancelCause::CycleReached { bound });
            }
        }
        if self.watches.iter().any(CancelWatch::is_cancelled) {
            return Some(CancelCause::Cancelled);
        }
        if let Some(d) = &self.deadline {
            if self.countdown == 0 {
                self.countdown = Self::DEADLINE_POLL_PERIOD;
                if d.expired() {
                    return Some(CancelCause::DeadlineExceeded);
                }
            }
            self.countdown -= 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_watches_armed_before_cancel() {
        let t = CancelToken::new();
        let w = t.watch();
        assert!(!w.is_cancelled());
        t.cancel();
        assert!(w.is_cancelled());
        assert!(w.is_cancelled(), "sticky");
    }

    #[test]
    fn watch_armed_after_cancel_is_clean() {
        let t = CancelToken::new();
        t.cancel();
        let w = t.watch();
        assert!(!w.is_cancelled(), "pre-arm cancellations are invisible");
        t.cancel();
        assert!(w.is_cancelled());
    }

    #[test]
    fn clones_share_the_counter() {
        let a = CancelToken::new();
        let b = a.clone();
        let w = a.watch();
        b.cancel();
        assert!(w.is_cancelled());
        assert_eq!(a.generation(), 1);
    }

    #[test]
    fn cross_thread_cancellation() {
        let t = CancelToken::new();
        let w = t.watch();
        let t2 = t.clone();
        std::thread::spawn(move || t2.cancel()).join().unwrap();
        assert!(w.is_cancelled());
    }

    #[test]
    fn deadline_zero_is_expired_and_garbage_is_clamped() {
        assert!(Deadline::after_secs_f64(0.0).expired());
        assert!(Deadline::after_secs_f64(-5.0).expired());
        assert!(!Deadline::after_secs_f64(3600.0).expired());
        assert!(!Deadline::after_secs_f64(f64::NAN).expired());
        assert!(!Deadline::after_secs_f64(f64::INFINITY).expired());
    }

    #[test]
    fn empty_interrupt_never_fires() {
        let mut i = Interrupt::new();
        assert!(!i.is_armed());
        for c in 0..10_000 {
            assert_eq!(i.check(c), None);
        }
    }

    #[test]
    fn cycle_bound_fires_exactly_at_the_bound() {
        let mut i = Interrupt::new().with_cycle_bound(5);
        assert_eq!(i.check(0), None);
        assert_eq!(i.check(4), None);
        assert_eq!(i.check(5), Some(CancelCause::CycleReached { bound: 5 }));
        assert_eq!(i.check(100), Some(CancelCause::CycleReached { bound: 5 }));
    }

    #[test]
    fn cycle_bound_zero_fires_immediately_and_max_never() {
        let mut zero = Interrupt::new().with_cycle_bound(0);
        assert_eq!(zero.check(0), Some(CancelCause::CycleReached { bound: 0 }));
        let mut never = Interrupt::new().with_cycle_bound(u64::MAX);
        for c in [0, 1, u64::MAX - 1] {
            assert_eq!(never.check(c), None);
        }
    }

    #[test]
    fn expired_deadline_fires_on_the_first_poll() {
        let mut i = Interrupt::new().with_deadline(Deadline::after_secs_f64(0.0));
        assert_eq!(i.check(0), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn deadline_checks_are_throttled() {
        // A deadline expiring mid-window is only observed at the next
        // throttle boundary: the first poll checks, then every PERIOD.
        let mut i = Interrupt::new().with_deadline(Deadline::after_secs_f64(3600.0));
        // The first poll checks (not expired yet).
        assert_eq!(i.check(0), None);
        // Move the deadline into the past by rebuilding the bundle state:
        // simulate by swapping in an expired deadline mid-run.
        i.deadline = Some(Deadline::after_secs_f64(0.0));
        let mut fired_at = None;
        for poll in 1..=2 * Interrupt::DEADLINE_POLL_PERIOD as u64 {
            if i.check(poll).is_some() {
                fired_at = Some(poll);
                break;
            }
        }
        assert_eq!(
            fired_at,
            Some(Interrupt::DEADLINE_POLL_PERIOD as u64),
            "expiry observed exactly at the throttle boundary"
        );
    }

    #[test]
    fn token_cancellation_fires_unthrottled() {
        let t = CancelToken::new();
        let mut i = Interrupt::new().with_token(&t);
        assert_eq!(i.check(0), None);
        t.cancel();
        assert_eq!(i.check(1), Some(CancelCause::Cancelled));
    }

    #[test]
    fn multiple_watches_compose() {
        let batch = CancelToken::new();
        let job = CancelToken::new();
        let mut i = Interrupt::new().with_token(&batch).with_token(&job);
        assert_eq!(i.check(0), None);
        job.cancel();
        assert_eq!(i.check(1), Some(CancelCause::Cancelled));
    }

    #[test]
    fn progress_probe_publishes_polled_cycles() {
        let probe = Progress::new();
        assert_eq!(probe.cycle(), None, "unobserved before the first poll");
        let mut i = Interrupt::new().with_progress(probe.clone());
        assert!(i.is_armed(), "a probe wants polls");
        assert_eq!(i.check(0), None, "a probe alone never cancels");
        assert_eq!(probe.cycle(), Some(0));
        assert_eq!(i.check(417), None);
        assert_eq!(probe.cycle(), Some(417));
        assert_eq!(probe.polls(), 2);
    }

    #[test]
    fn progress_probe_composes_with_cancellation_sources() {
        let probe = Progress::new();
        let t = CancelToken::new();
        let mut i = Interrupt::new().with_progress(probe.clone()).with_token(&t);
        assert_eq!(i.check(9), None);
        t.cancel();
        assert_eq!(i.check(10), Some(CancelCause::Cancelled));
        assert_eq!(probe.cycle(), Some(10), "the firing poll still publishes");
    }

    #[test]
    fn progress_probe_is_shared_across_clones() {
        let probe = Progress::new();
        let mut a = Interrupt::new().with_progress(probe.clone());
        let mut b = a.clone();
        a.check(5);
        b.check(7);
        assert_eq!(probe.cycle(), Some(7));
        assert_eq!(probe.polls(), 2);
    }

    #[test]
    fn deterministic_sources_win_over_wall_clock() {
        // Cycle bound and token both firing: the deterministic bound is
        // reported, keeping error payloads reproducible.
        let t = CancelToken::new();
        t.cancel();
        let mut i = Interrupt::new()
            .with_cycle_bound(0)
            .with_watch(CancelToken::new().watch())
            .with_deadline(Deadline::after_secs_f64(0.0));
        assert_eq!(i.check(0), Some(CancelCause::CycleReached { bound: 0 }));
    }
}
