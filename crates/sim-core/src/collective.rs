//! Collective-operation vocabulary shared by both fabrics.
//!
//! The electronic mesh (`emesh::collectives`) and the photonic SCA machine
//! (`psync::collectives`) generate traffic for the same three collectives;
//! this module is the single definition of *which* collectives exist, their
//! wire labels, and their phase names, so harnesses and the service layer
//! can parse and compare results across fabrics without string drift.

use serde::{Deserialize, Serialize};

/// A collective operation over the fabric's processing nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// Personalized exchange: every node sends a distinct block to every
    /// other node (the 2D-FFT corner turn is the P-block special case).
    AllToAll,
    /// Every node broadcasts its own block; all nodes end with every block.
    AllGather,
    /// Element-wise reduction of per-node vectors, result on every node.
    /// Decomposed as reduce-scatter + all-gather on the mesh, and as
    /// gather / shard-scatter / reduce / gather / broadcast on the SCA.
    AllReduce,
}

impl Collective {
    /// Every collective, in canonical (result-row) order.
    pub const ALL: [Collective; 3] = [
        Collective::AllToAll,
        Collective::AllGather,
        Collective::AllReduce,
    ];

    /// Stable lowercase wire label (result rows, JobSpec JSON, telemetry).
    pub fn label(self) -> &'static str {
        match self {
            Collective::AllToAll => "alltoall",
            Collective::AllGather => "allgather",
            Collective::AllReduce => "allreduce",
        }
    }

    /// Parse a wire label back (case-sensitive, the exact [`Self::label`]
    /// strings).
    pub fn from_label(s: &str) -> Option<Self> {
        Collective::ALL.into_iter().find(|c| c.label() == s)
    }

    /// Telemetry phase-span name: `collective.<op>.<phase>`.
    pub fn phase_name(self, phase: &str) -> String {
        format!("collective.{}.{phase}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for c in Collective::ALL {
            assert_eq!(Collective::from_label(c.label()), Some(c));
        }
        assert_eq!(Collective::from_label("reduce"), None);
        assert_eq!(Collective::from_label("AllToAll"), None);
    }

    #[test]
    fn phase_names_are_namespaced() {
        assert_eq!(
            Collective::AllReduce.phase_name("gather"),
            "collective.allreduce.gather"
        );
    }
}
