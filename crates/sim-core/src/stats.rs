//! Measurement plumbing: counters, histograms and time-weighted averages.
//!
//! Simulators in this workspace report utilization, latency distributions and
//! energy through these types so that the bench harness can print table rows
//! uniformly.

use serde::{Deserialize, Serialize};

use crate::time::{Duration, Time};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Fixed-bucket histogram of `u64` samples (e.g. latencies in cycles).
///
/// Buckets are linear with a configurable width; samples beyond the last
/// bucket are clamped into an overflow bucket so nothing is lost silently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with `n_buckets` linear buckets of `bucket_width` each.
    pub fn new(bucket_width: u64, n_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(n_buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; n_buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.sum += sample as u128;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        let idx = (sample / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (0.0 ..= 1.0) approximated from bucket boundaries.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // Upper edge of the bucket: a conservative estimate.
                return Some(((i as u64) + 1) * self.bucket_width - 1);
            }
        }
        Some(self.max)
    }

    /// Samples that exceeded the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

/// Time-weighted running average of a piecewise-constant quantity, such as
/// queue occupancy or link utilization.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_change: Time,
    current: f64,
    weighted_sum: f64,
    start: Time,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `value`.
    pub fn new(start: Time, value: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: value,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Record that the quantity changed to `value` at time `now`.
    pub fn set(&mut self, now: Time, value: f64) {
        let dt = now.since(self.last_change);
        self.weighted_sum += self.current * dt.as_ps() as f64;
        self.current = value;
        self.last_change = now;
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: Time) -> f64 {
        let dt_tail = now.since(self.last_change);
        let total = now.since(self.start);
        if total == Duration::ZERO {
            return self.current;
        }
        (self.weighted_sum + self.current * dt_tail.as_ps() as f64) / total.as_ps() as f64
    }
}

/// Utilization accumulator: fraction of elapsed time a resource was busy.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BusyTime {
    busy: Duration,
}

impl BusyTime {
    /// Record `d` of busy time.
    pub fn add(&mut self, d: Duration) {
        self.busy += d;
    }

    /// Busy fraction of the window `total`; zero-length windows report 0.
    pub fn utilization(&self, total: Duration) -> f64 {
        if total == Duration::ZERO {
            0.0
        } else {
            self.busy.as_ps() as f64 / total.as_ps() as f64
        }
    }

    /// Accumulated busy time.
    pub fn busy(&self) -> Duration {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_bumps() {
        let mut c = Counter::default();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new(10, 10);
        for s in [5, 15, 25] {
            h.record(s);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Some(15.0));
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(25));
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_overflow_is_counted() {
        let mut h = Histogram::new(10, 2);
        h.record(100);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1, 100);
        for s in 0..100 {
            h.record(s);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((45..=55).contains(&median), "median was {median}");
        assert!(h.quantile(1.0).unwrap() >= 99);
    }

    #[test]
    fn histogram_empty_reports_none() {
        let h = Histogram::new(1, 1);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(Time::ZERO, 0.0);
        tw.set(Time::from_ps(10), 1.0); // 0 for 10 ps
        tw.set(Time::from_ps(30), 0.0); // 1 for 20 ps
        let mean = tw.mean(Time::from_ps(40)); // 0 for 10 ps
        assert!((mean - 0.5).abs() < 1e-12, "mean was {mean}");
    }

    #[test]
    fn busy_time_utilization() {
        let mut b = BusyTime::default();
        b.add(Duration::from_ps(25));
        b.add(Duration::from_ps(25));
        assert!((b.utilization(Duration::from_ps(100)) - 0.5).abs() < 1e-12);
        assert_eq!(b.utilization(Duration::ZERO), 0.0);
    }
}
