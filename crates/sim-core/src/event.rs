//! Deterministic discrete-event scheduler.
//!
//! The queue is a binary heap keyed on `(time, sequence)`: events scheduled
//! at the same simulated time pop in the order they were pushed, so model
//! behaviour never depends on heap tie-breaking internals. This determinism
//! matters for the PSCAN simulator, where many modulator events legitimately
//! share a timestamp (the whole point of the SCA is exact temporal alignment).

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at an absolute simulated time.
#[derive(Debug, Clone)]
pub struct EventScheduled<E> {
    /// When the event fires.
    pub at: Time,
    /// Monotone insertion index, used as a deterministic tie-breaker.
    pub seq: u64,
    /// The model-defined payload.
    pub payload: E,
}

impl<E> PartialEq for EventScheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for EventScheduled<E> {}

impl<E> Ord for EventScheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for EventScheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-ordered event queue with stable same-time ordering.
///
/// ```
/// use sim_core::{EventQueue, Time};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(Time::from_ns(2), "late");
/// q.schedule(Time::from_ns(1), "first");
/// q.schedule(Time::from_ns(1), "second");
/// assert_eq!(q.pop().unwrap().payload, "first");
/// assert_eq!(q.pop().unwrap().payload, "second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventScheduled<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulated time — scheduling
    /// into the past is always a model bug.
    pub fn schedule(&mut self, at: Time, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past ({:?} < {:?})",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventScheduled { at, seq, payload });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<EventScheduled<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        Some(ev)
    }

    /// Drain events while `pred` holds on the popped event, applying `f`.
    /// Returns the number of events processed.
    pub fn run_while<F, P>(&mut self, mut pred: P, mut f: F) -> u64
    where
        F: FnMut(Time, E),
        P: FnMut(&EventScheduled<E>) -> bool,
    {
        let mut n = 0;
        while let Some(ev) = self.heap.peek() {
            if !pred(ev) {
                break;
            }
            let ev = self.pop().expect("peeked event vanished");
            f(ev.at, ev.payload);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ps(30), 3);
        q.schedule(Time::from_ps(10), 1);
        q.schedule(Time::from_ps(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ps(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ps(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ps(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ps(10), ());
        q.pop();
        q.schedule(Time::from_ps(5), ());
    }

    #[test]
    fn run_while_respects_predicate() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(Time::from_ps(i * 10), i);
        }
        let mut seen = Vec::new();
        let n = q.run_while(|e| e.at < Time::from_ps(50), |_, p| seen.push(p));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ps(10), "a");
        q.schedule(Time::from_ps(30), "c");
        assert_eq!(q.pop().unwrap().payload, "a");
        // Schedule between now (10) and the pending 30.
        q.schedule(Time::from_ps(20), "b");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
    }
}
