//! A minimal Value Change Dump (IEEE 1364) writer.
//!
//! Simulators in this workspace can export signal activity for inspection
//! in standard waveform viewers (GTKWave etc.). Only what we need: scalar
//! and small-vector wires, picosecond timescale, monotone timestamps.

use std::fmt::Write as _;

use crate::time::Time;

/// A signal handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

/// An in-memory VCD document builder.
#[derive(Debug, Default)]
pub struct VcdWriter {
    signals: Vec<(String, u32)>, // (name, width)
    changes: Vec<(u64, usize, String)>,
    last_time: u64,
}

impl VcdWriter {
    /// New empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a wire of `width` bits; call before recording changes.
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        assert!(width >= 1, "zero-width signal");
        self.signals.push((name.to_string(), width));
        SignalId(self.signals.len() - 1)
    }

    /// Record that `sig` takes `value` at time `at` (timestamps must be
    /// non-decreasing).
    pub fn change(&mut self, at: Time, sig: SignalId, value: u64) {
        let t = at.as_ps();
        assert!(t >= self.last_time, "VCD timestamps must be monotone");
        self.last_time = t;
        let width = self.signals[sig.0].1;
        let bits: String = (0..width)
            .rev()
            .map(|b| if (value >> b) & 1 == 1 { '1' } else { '0' })
            .collect();
        self.changes.push((t, sig.0, bits));
    }

    /// Render the complete VCD text.
    pub fn render(&self, module: &str) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ps $end\n");
        let _ = writeln!(out, "$scope module {module} $end");
        for (i, (name, width)) in self.signals.iter().enumerate() {
            let id = ident(i);
            if *width == 1 {
                let _ = writeln!(out, "$var wire 1 {id} {name} $end");
            } else {
                let _ = writeln!(out, "$var wire {width} {id} {name} $end");
            }
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last_t = None;
        for (t, sig, bits) in &self.changes {
            if last_t != Some(*t) {
                let _ = writeln!(out, "#{t}");
                last_t = Some(*t);
            }
            let id = ident(*sig);
            if bits.len() == 1 {
                let _ = writeln!(out, "{bits}{id}");
            } else {
                let _ = writeln!(out, "b{bits} {id}");
            }
        }
        out
    }
}

/// Short printable identifier for signal `i` (VCD id chars are '!'..'~').
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_changes() {
        let mut v = VcdWriter::new();
        let clk = v.add_signal("clk", 1);
        let bus = v.add_signal("data", 4);
        v.change(Time::from_ps(0), clk, 0);
        v.change(Time::from_ps(100), clk, 1);
        v.change(Time::from_ps(100), bus, 0xA);
        let text = v.render("pscan");
        assert!(text.contains("$timescale 1ps $end"));
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("$var wire 4 \" data $end"));
        assert!(text.contains("#100"));
        assert!(text.contains("b1010 \""));
        // Time 100 appears once even with two changes.
        assert_eq!(text.matches("#100").count(), 1);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_time_travel() {
        let mut v = VcdWriter::new();
        let s = v.add_signal("s", 1);
        v.change(Time::from_ps(10), s, 1);
        v.change(Time::from_ps(5), s, 0);
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }
}
