//! # sim-core
//!
//! Simulation substrate shared by the photonic (PSCAN) and electronic (mesh)
//! network simulators of the P-sync reproduction.
//!
//! The crate provides:
//!
//! * [`time`] — a picosecond-resolution simulated-time type ([`time::Time`])
//!   with exact integer arithmetic, so photonic flight times (fractions of a
//!   nanosecond) and electronic cycle times compose without rounding drift.
//! * [`event`] — a deterministic discrete-event scheduler ([`event::EventQueue`])
//!   with stable FIFO ordering among same-timestamp events.
//! * [`engine`] — a cycle-driven engine ([`engine::CycleEngine`]) for
//!   synchronous models such as the wormhole mesh.
//! * [`stats`] — counters, histograms and time-weighted averages used to
//!   report utilization, latency and energy.
//! * [`rng`] — seeded, reproducible random-number helpers.
//! * [`faults`] — deterministic fault injection: seeded per-component fault
//!   sites and pre-generated fault schedules, zero-cost when disabled.
//! * [`telemetry`] — opt-in metric registry (counters/gauges/histograms with
//!   labels) and span tracing with Chrome trace-event JSON export; a fabric
//!   with no registry attached does no telemetry work on its hot path.
//! * [`parallel`] — epoch-synchronous worker pool ([`parallel::EpochPool`])
//!   and deterministic partitioner for the barrier-synchronous parallel
//!   execution modes of the fabric simulators.
//! * [`collective`] — the shared collective-operation vocabulary
//!   ([`collective::Collective`]): labels and phase names both fabrics'
//!   all-to-all / all-gather / all-reduce traffic generators agree on.
//! * [`cancel`] — cooperative cancellation: generation-counter
//!   [`cancel::CancelToken`]s, wall-clock [`cancel::Deadline`]s and the
//!   [`cancel::Interrupt`] bundle the fabrics poll at chunk granularity;
//!   zero-cost when uninstalled.
//! * [`invariants`] — the [`invariant!`] runtime-checking macro for the
//!   fabric conservation laws (flit conservation, buffer bounds, staging
//!   accounting, bus-slot exclusivity); on in debug builds and under the
//!   `check-invariants` feature, compiled out otherwise.
//!
//! All simulators in this workspace are **deterministic**: identical inputs
//! (including RNG seeds) produce identical event orders and results. This is
//! enforced by the stable tie-breaking in [`event::EventQueue`] and by using
//! only explicitly-seeded RNGs.

pub mod cancel;
pub mod collective;
pub mod engine;
pub mod event;
pub mod faults;
pub mod invariants;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod vcd;

pub use cancel::{CancelCause, CancelToken, CancelWatch, Deadline, Interrupt};
pub use collective::Collective;
pub use engine::CycleEngine;
pub use event::{EventQueue, EventScheduled};
pub use faults::{FaultEvent, FaultKind, FaultSchedule, FaultSite, FaultStats};
pub use parallel::{chunk_range, EpochPool};
pub use stats::{Counter, Histogram, TimeWeighted};
pub use telemetry::{Registry, SeriesHistogram, TraceEvent};
pub use time::{Duration, Time};
pub use vcd::VcdWriter;

/// Canonical public surface of `sim-core`, for glob import:
/// `use sim_core::prelude::*;`.
pub mod prelude {
    pub use crate::cancel::{CancelCause, CancelToken, CancelWatch, Deadline, Interrupt};
    pub use crate::engine::CycleEngine;
    pub use crate::event::{EventQueue, EventScheduled};
    pub use crate::faults::{FaultEvent, FaultKind, FaultSchedule, FaultSite, FaultStats};
    pub use crate::parallel::{chunk_range, EpochPool};
    pub use crate::stats::{Counter, Histogram, TimeWeighted};
    pub use crate::telemetry::{Registry, SeriesHistogram, TraceEvent};
    pub use crate::time::{Duration, Time};
}
