//! Deterministic fault injection.
//!
//! Every fabric in the workspace (photonic bus, electronic mesh, P-sync
//! protocol) models an ideal physical layer by default. This module is the
//! shared substrate for *breaking* that layer on purpose: seeded Bernoulli
//! fault processes ([`FaultSite`]) and pre-generated fault schedules
//! ([`FaultSchedule`]), both reproducible from one experiment-level seed via
//! [`crate::rng::child_seed`].
//!
//! Two invariants make the layer safe-by-default:
//!
//! * **Zero rate draws nothing.** A site or schedule with `rate == 0` never
//!   touches its RNG and never perturbs the simulation — zero-fault runs are
//!   bit-identical to runs built without the fault layer at all (enforced by
//!   the emesh golden tests and the proptests in `tests/fault_injection.rs`).
//! * **Determinism.** Each site owns an independent child-seeded stream, so
//!   the fault sequence at one site is unaffected by how often other sites
//!   are consulted, and identical seeds reproduce identical fault orders.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng::{child_seed, seeded};

/// What goes wrong when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flip one bit of a data word in flight.
    BitFlip {
        /// Which bit (0 = LSB).
        bit: u8,
    },
    /// Take a link out of service for a bounded time.
    LinkDown {
        /// Outage length in cycles / slots.
        cycles: u64,
    },
    /// Permanently kill a component (no recovery).
    Kill,
}

/// One scheduled fault: at tick `at`, site `site` suffers `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation tick (cycle or bus slot) the fault fires at.
    pub at: u64,
    /// Component fault-site index (fabric-defined numbering).
    pub site: u32,
    /// The fault.
    pub kind: FaultKind,
}

/// A pre-generated, deterministic schedule of fault events, sorted by
/// `(at, site)` and consumed in order via [`FaultSchedule::pop_due`].
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultSchedule {
    /// A schedule with no events.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Build a schedule from explicit events (sorted internally).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.site));
        FaultSchedule { events, cursor: 0 }
    }

    /// Generate a Bernoulli schedule: each of `sites` sites is tested once
    /// per tick over `[0, horizon)` with probability `rate`; hits get a
    /// random [`FaultKind::BitFlip`]. `rate == 0` produces an empty schedule
    /// without consuming any randomness.
    ///
    /// Generation is per-site (site `s` uses child stream `s` of `seed`), so
    /// adding or removing sites never changes another site's fault sequence.
    pub fn generate(seed: u64, rate: f64, horizon: u64, sites: u32) -> Self {
        if rate <= 0.0 {
            return FaultSchedule::empty();
        }
        let mut events = Vec::new();
        for site in 0..sites {
            let mut rng = seeded(child_seed(seed, u64::from(site)));
            for at in 0..horizon {
                if rng.gen::<f64>() < rate {
                    let bit = rng.gen_range(0u8..64);
                    events.push(FaultEvent {
                        at,
                        site,
                        kind: FaultKind::BitFlip { bit },
                    });
                }
            }
        }
        FaultSchedule::from_events(events)
    }

    /// All events (in `(at, site)` order), including already-consumed ones.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Remaining (unconsumed) event count.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Pop the next event with `at <= now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<FaultEvent> {
        let e = *self.events.get(self.cursor)?;
        if e.at <= now {
            self.cursor += 1;
            Some(e)
        } else {
            None
        }
    }

    /// Tick of the next unconsumed event, if any.
    pub fn next_at(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.at)
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counter-based Bernoulli trial: does trial number `trial` of fault site
/// `site` under `seed` fire, with probability `rate`?
///
/// Unlike [`FaultSite`] (a stateful RNG stream whose draw *order* defines
/// the outcome sequence), this is a pure function of `(seed, site, trial)`
/// — the outcome of one trial is independent of when, where, or in what
/// order any other trial is evaluated. That makes it the primitive for
/// parallel fault evaluation: each site keeps only a trial counter, sites
/// advance their counters independently on different threads, and the
/// fault pattern is still a deterministic function of the seed (identical
/// between sequential and parallel schedulers by construction).
///
/// `rate == 0` fires nothing (the safe-by-default invariant shared with
/// [`FaultSite`]); `rate >= 1` always fires.
#[inline]
pub fn hash_bernoulli(seed: u64, site: u64, trial: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let h = mix64(seed ^ mix64(site ^ mix64(trial)));
    // Top 53 bits as a uniform f64 in [0, 1).
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

/// A per-component Bernoulli fault process: an independent child-seeded
/// stream that fires with a fixed probability per trial.
#[derive(Debug, Clone)]
pub struct FaultSite {
    rate: f64,
    rng: StdRng,
    /// Trials performed (consulted even at rate 0 for accounting).
    pub trials: u64,
    /// Faults fired.
    pub fired: u64,
}

impl FaultSite {
    /// A disabled site: never fires, never draws.
    pub fn off() -> Self {
        FaultSite {
            rate: 0.0,
            rng: seeded(0),
            trials: 0,
            fired: 0,
        }
    }

    /// A site firing with probability `rate` per trial, on child stream
    /// `stream` of `parent_seed`.
    pub fn new(parent_seed: u64, stream: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate in [0, 1]");
        FaultSite {
            rate,
            rng: seeded(child_seed(parent_seed, stream)),
            trials: 0,
            fired: 0,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether this site can ever fire.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// One Bernoulli trial. At rate 0 this returns `false` without touching
    /// the RNG — the zero-fault bit-identity guarantee.
    pub fn fire(&mut self) -> bool {
        self.trials += 1;
        if self.rate <= 0.0 {
            return false;
        }
        let hit = self.rng.gen::<f64>() < self.rate;
        if hit {
            self.fired += 1;
        }
        hit
    }

    /// Draw a bit index in `[0, width)` for a [`FaultKind::BitFlip`].
    pub fn draw_bit(&mut self, width: u8) -> u8 {
        debug_assert!(width > 0);
        self.rng.gen_range(0..width)
    }
}

/// Counters every fault-aware component reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected into the component.
    pub injected: u64,
    /// Faults detected by the component's checks (CRC, NACK, watchdog).
    pub detected: u64,
    /// Recovery attempts (retries / retransmissions / re-issues).
    pub retries: u64,
    /// Recoveries abandoned (data lost or error surfaced).
    pub giveups: u64,
}

impl FaultStats {
    /// Merge another component's counters into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.retries += other.retries;
        self.giveups += other.giveups;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_schedule_is_empty() {
        let s = FaultSchedule::generate(42, 0.0, 10_000, 16);
        assert_eq!(s.events().len(), 0);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let a = FaultSchedule::generate(7, 0.01, 2_000, 8);
        let b = FaultSchedule::generate(7, 0.01, 2_000, 8);
        assert_eq!(a.events(), b.events());
        assert!(!a.events().is_empty(), "1% over 16k trials must hit");
        assert!(a
            .events()
            .windows(2)
            .all(|w| (w[0].at, w[0].site) <= (w[1].at, w[1].site)));
        let c = FaultSchedule::generate(8, 0.01, 2_000, 8);
        assert_ne!(a.events(), c.events(), "different seeds differ");
    }

    #[test]
    fn pop_due_consumes_in_order() {
        let mut s = FaultSchedule::from_events(vec![
            FaultEvent {
                at: 5,
                site: 1,
                kind: FaultKind::Kill,
            },
            FaultEvent {
                at: 2,
                site: 0,
                kind: FaultKind::LinkDown { cycles: 3 },
            },
        ]);
        assert_eq!(s.next_at(), Some(2));
        assert!(s.pop_due(1).is_none());
        assert_eq!(s.pop_due(2).unwrap().at, 2);
        assert!(s.pop_due(4).is_none());
        assert_eq!(s.pop_due(9).unwrap().site, 1);
        assert!(s.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn site_rate_zero_never_fires_and_never_draws() {
        let mut a = FaultSite::new(1, 0, 0.0);
        let mut b = FaultSite::off();
        for _ in 0..1000 {
            assert!(!a.fire());
            assert!(!b.fire());
        }
        assert_eq!(a.fired, 0);
        assert_eq!(a.trials, 1000);
    }

    #[test]
    fn site_streams_are_independent() {
        // Consulting site 0 more often must not change site 1's sequence.
        let seq = |extra_draws: usize| {
            let mut other = FaultSite::new(9, 0, 0.5);
            let mut site = FaultSite::new(9, 1, 0.5);
            for _ in 0..extra_draws {
                other.fire();
            }
            (0..64).map(|_| site.fire()).collect::<Vec<_>>()
        };
        assert_eq!(seq(0), seq(57));
    }

    #[test]
    fn site_fires_near_its_rate() {
        let mut s = FaultSite::new(3, 0, 0.25);
        let n = 20_000;
        let hits = (0..n).filter(|_| s.fire()).count();
        let p = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&p), "empirical rate {p}");
        assert_eq!(s.fired as usize, hits);
    }

    #[test]
    fn hash_bernoulli_is_a_pure_function_of_its_coordinates() {
        // Same coordinates, same outcome — and the outcome of one trial
        // does not depend on any other trial being evaluated (there is no
        // hidden stream state to perturb).
        for trial in 0..64u64 {
            let a = hash_bernoulli(7, 3, trial, 0.5);
            let b = hash_bernoulli(7, 3, trial, 0.5);
            assert_eq!(a, b);
        }
        // Different seeds / sites decorrelate: the outcome vectors differ.
        let v = |seed: u64, site: u64| -> Vec<bool> {
            (0..256)
                .map(|t| hash_bernoulli(seed, site, t, 0.5))
                .collect()
        };
        assert_ne!(v(1, 0), v(2, 0), "seed must matter");
        assert_ne!(v(1, 0), v(1, 1), "site must matter");
    }

    #[test]
    fn hash_bernoulli_zero_and_one_rates() {
        for t in 0..1000 {
            assert!(!hash_bernoulli(9, 4, t, 0.0));
            assert!(hash_bernoulli(9, 4, t, 1.0));
        }
    }

    #[test]
    fn hash_bernoulli_fires_near_its_rate() {
        let n = 20_000u64;
        let hits = (0..n).filter(|&t| hash_bernoulli(3, 11, t, 0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&p), "empirical rate {p}");
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = FaultStats {
            injected: 1,
            detected: 2,
            retries: 3,
            giveups: 4,
        };
        a.absorb(&FaultStats {
            injected: 10,
            detected: 20,
            retries: 30,
            giveups: 40,
        });
        assert_eq!(a.injected, 11);
        assert_eq!(a.giveups, 44);
    }
}
