//! Runtime invariant checkers for the conformance oracle (DESIGN.md §12).
//!
//! The fabric simulators maintain redundant book-keeping (flit counters,
//! staging maps, slot-ownership vectors) whose *consistency* is an
//! algebraic invariant of a correct simulation: flits are conserved,
//! buffers respect their configured depth, staged rows are strictly
//! partial, every corrupted word is attributed to a CP. The
//! [`invariant!`](crate::invariant) macro asserts such identities at the
//! hot sites that maintain them —
//! but only when checking is compiled in:
//!
//! * **debug builds** (`debug_assertions`): always on, so every `cargo
//!   test` run checks every invariant;
//! * **release builds**: off by default, on with the `check-invariants`
//!   cargo feature (forwarded by `emesh`, `pscan`, `psync` and `bench`).
//!
//! When off, [`ENABLED`] is a compile-time `false` and the whole check —
//! condition evaluation included — is removed by the optimizer, so the
//! deterministic release goldens are byte-identical with and without the
//! feature (the `conformance` CI job asserts exactly that).
//!
//! The macro deliberately mirrors `assert!` rather than `debug_assert!`:
//! a violated invariant is a simulator bug, never a recoverable condition,
//! and the release-mode feature gate is what lets the full-scale nightly
//! sweeps run checked without taxing the PR-blocking perf gate.

/// Whether invariant checking is compiled into this build.
///
/// `true` in debug builds and in release builds with the
/// `check-invariants` feature; `false` (a compile-time constant the
/// optimizer eliminates branches on) otherwise.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "check-invariants"));

/// Assert a simulator invariant, compiled out unless
/// [`invariants::ENABLED`](crate::invariants::ENABLED).
///
/// Usage is identical to `assert!`:
///
/// ```
/// use sim_core::invariant;
/// let in_flight = 3u64;
/// let occupancy = 3u64;
/// invariant!(in_flight == occupancy, "flit conservation: {in_flight} vs {occupancy}");
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr $(, $($arg:tt)+)?) => {
        if $crate::invariants::ENABLED {
            assert!($cond $(, $($arg)+)?);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn enabled_in_test_builds() {
        // Tests compile with debug_assertions, so checking must be on —
        // "invariant checks are on in every test run" is load-bearing.
        assert!(super::ENABLED);
    }

    #[test]
    fn passing_invariant_is_silent() {
        invariant!(1 + 1 == 2);
        invariant!(true, "with a message");
        let x = 41;
        invariant!(x + 1 == 42, "formatted {x}");
    }

    #[test]
    #[should_panic(expected = "broken invariant")]
    fn failing_invariant_panics_when_enabled() {
        invariant!(1 + 1 == 3, "broken invariant");
    }
}
