//! Exact simulated time in picoseconds.
//!
//! Photonic signal flight is ~7 cm/ns in silicon waveguides (group index
//! ≈ 4.3), so per-node offsets on a centimetre-scale bus are tens of
//! picoseconds. Electronic network clocks in the paper run at 2.5 GHz
//! (400 ps). A `u64` picosecond counter covers > 200 days of simulated time,
//! far beyond any experiment here, with exact integer arithmetic throughout.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in picoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl Time {
    /// Simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// A sentinel later than any reachable simulated time.
    pub const MAX: Time = Time(u64::MAX);

    /// Absolute time from a picosecond count.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Absolute time from a nanosecond count.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds since simulation start (fractional).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Microseconds since simulation start (fractional).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self` (a causality bug in a model).
    pub fn since(self, earlier: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("Time::since: earlier timestamp is in the future"),
        )
    }

    /// Saturating difference; zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Span from a picosecond count.
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Span from a nanosecond count.
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * 1_000)
    }

    /// Span from a fractional nanosecond count (rounded to the nearest ps).
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(
            ns >= 0.0 && ns.is_finite(),
            "negative or non-finite duration"
        );
        Duration((ns * 1e3).round() as u64)
    }

    /// Span of one period of a clock with the given frequency in GHz.
    ///
    /// E.g. `Duration::from_freq_ghz(2.5)` is 400 ps; `from_freq_ghz(10.0)`
    /// is 100 ps (one 10 Gb/s bit slot).
    pub fn from_freq_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "clock frequency must be positive");
        Duration::from_ns_f64(1.0 / ghz)
    }

    /// Picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// `self * n` with overflow checking.
    pub fn checked_mul(self, n: u64) -> Option<Duration> {
        self.0.checked_mul(n).map(Duration)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div for Duration {
    /// Integer number of `rhs` periods fitting in `self`.
    type Output = u64;
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ps", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Time::from_ns(3).as_ps(), 3_000);
        assert_eq!(Duration::from_ns(2).as_ps(), 2_000);
        assert_eq!(Duration::from_ns_f64(0.4).as_ps(), 400);
        assert_eq!(Duration::from_ns_f64(0.1).as_ps(), 100);
    }

    #[test]
    fn clock_periods() {
        // 2.5 GHz electronic network clock -> 400 ps.
        assert_eq!(Duration::from_freq_ghz(2.5).as_ps(), 400);
        // 10 Gb/s photonic modulation -> 100 ps per bit slot.
        assert_eq!(Duration::from_freq_ghz(10.0).as_ps(), 100);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_ns(1) + Duration::from_ps(500);
        assert_eq!(t.as_ps(), 1_500);
        assert_eq!(t.since(Time::from_ns(1)).as_ps(), 500);
        assert_eq!(Duration::from_ps(300) * 4, Duration::from_ps(1_200));
        assert_eq!(Duration::from_ps(1_200) / Duration::from_ps(400), 3);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_causality_violation() {
        let _ = Time::from_ps(1).since(Time::from_ps(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            Time::from_ps(1).saturating_since(Time::from_ps(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Time::from_ps(12)), "12ps");
        assert_eq!(format!("{}", Time::from_ps(1_500)), "1.500ns");
        assert_eq!(format!("{}", Time::from_ps(2_000_000)), "2.000us");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Time::from_ps(5), Time::ZERO, Time::from_ps(3)];
        v.sort();
        assert_eq!(v, vec![Time::ZERO, Time::from_ps(3), Time::from_ps(5)]);
    }
}
