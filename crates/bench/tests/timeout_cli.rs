//! Subprocess tests for the shared `--timeout-s` flag (ISSUE 7 satellite):
//! strict parsing on every harness bin, and end-to-end deadline
//! cancellation surfacing as a structured nonzero exit.

use std::process::Command;

fn spawn(bin_exe: &str, args: &[&str], tag: &str) -> (i32, String) {
    let out = Command::new(bin_exe)
        .args(args)
        .env(
            "PSYNC_RESULTS_DIR",
            std::env::temp_dir().join(format!("bench_timeout_{tag}_{}", std::process::id())),
        )
        .output()
        .expect("harness binary spawns");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn non_numeric_timeout_exits_2_with_usage() {
    let (code, err) = spawn(
        env!("CARGO_BIN_EXE_table1"),
        &["--timeout-s", "soon"],
        "nan",
    );
    assert_eq!(code, 2, "bad --timeout-s must exit 2: {err}");
    assert!(err.contains("--timeout-s"), "names the flag: {err}");
    assert!(err.contains("usage:"), "prints usage: {err}");
}

#[test]
fn negative_timeout_exits_2() {
    let (code, err) = spawn(env!("CARGO_BIN_EXE_table1"), &["--timeout-s", "-1"], "neg");
    assert_eq!(code, 2, "negative --timeout-s must exit 2: {err}");
}

#[test]
fn infinite_timeout_exits_2() {
    let (code, err) = spawn(env!("CARGO_BIN_EXE_table1"), &["--timeout-s", "inf"], "inf");
    assert_eq!(code, 2, "non-finite --timeout-s must exit 2: {err}");
}

#[test]
fn dangling_timeout_exits_2() {
    let (code, err) = spawn(env!("CARGO_BIN_EXE_table1"), &["--timeout-s"], "dangling");
    assert_eq!(code, 2, "dangling --timeout-s must exit 2: {err}");
    assert!(err.contains("needs a value"), "explains: {err}");
}

/// A generous deadline on a bin that never polls long enough to hit it is
/// a no-op: the run completes normally.
#[test]
fn generous_timeout_is_a_no_op() {
    let (code, err) = spawn(
        env!("CARGO_BIN_EXE_table1"),
        &["--quick", "--timeout-s", "3600"],
        "noop",
    );
    assert_eq!(code, 0, "generous timeout must not perturb the run: {err}");
}

/// An already-expired deadline cancels a simulating bin at its first
/// interrupt poll: nonzero exit, and the structured `Cancelled` error —
/// with the deadline cause — lands on stderr.
#[test]
fn zero_timeout_cancels_with_a_structured_error() {
    let (code, err) = spawn(
        env!("CARGO_BIN_EXE_table3_transpose"),
        &["--quick", "--timeout-s", "0"],
        "zero",
    );
    assert_eq!(code, 1, "cancellation is a run failure, exit 1: {err}");
    assert!(err.contains("Cancelled"), "structured cancel error: {err}");
    assert!(
        err.contains("Deadline"),
        "carries the deadline cause: {err}"
    );
}
