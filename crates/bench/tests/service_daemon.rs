//! Subprocess integration test for the experiment service (ISSUE 8): boot
//! the real `psyncd` binary on a temp socket, drive it with raw socket
//! clients and the `psync_client` binary, and exercise the full lifecycle —
//! submit → accepted → result, warm-cache resubmission answered
//! byte-identically, cancel, malformed requests, concurrent clients, and
//! SIGTERM graceful drain to exit 0.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use serde::Value;

/// Daemon under test: spawned `psyncd` on a per-test temp socket, killed
/// (SIGKILL) on drop unless the test already waited it out.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn boot(tag: &str, extra_args: &[&str]) -> Daemon {
        let socket =
            std::env::temp_dir().join(format!("psyncd-it-{tag}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_psyncd"))
            .arg("--socket")
            .arg(&socket)
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("psyncd spawns");
        let daemon = Daemon { child, socket };
        // Wait for the listener to come up.
        let deadline = Instant::now() + Duration::from_secs(20);
        while UnixStream::connect(&daemon.socket).is_err() {
            assert!(
                Instant::now() < deadline,
                "psyncd did not bind {} in time",
                daemon.socket.display()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn connect(&self) -> Client {
        let s = UnixStream::connect(&self.socket).expect("connect to psyncd");
        let reader = BufReader::new(s.try_clone().expect("clone stream"));
        Client { writer: s, reader }
    }

    /// SIGTERM the daemon and assert it drains to exit 0.
    fn sigterm_and_wait(mut self) {
        let pid = self.child.id();
        let status = Command::new("kill")
            .args(["-TERM", &pid.to_string()])
            .status()
            .expect("kill runs");
        assert!(status.success(), "kill -TERM delivered");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert_eq!(status.code(), Some(0), "psyncd drains to exit 0");
                break;
            }
            assert!(Instant::now() < deadline, "psyncd did not drain in time");
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(
            !self.socket.exists(),
            "socket file removed on graceful exit"
        );
        // Disarm the drop killer.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// Raw NDJSON client over the daemon socket.
struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write request");
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read event");
        assert!(!line.is_empty(), "daemon closed the connection");
        line.trim_end().to_string()
    }

    fn recv(&mut self) -> Value {
        serde_json::from_str(&self.recv_line()).expect("event is JSON")
    }

    /// Read events until one of `kinds`; returns (raw line, parsed).
    fn recv_until(&mut self, kinds: &[&str]) -> (String, Value) {
        loop {
            let line = self.recv_line();
            let ev: Value = serde_json::from_str(&line).expect("event is JSON");
            let kind = ev
                .get("event")
                .and_then(Value::as_str)
                .expect("event field")
                .to_string();
            if kinds.contains(&kind.as_str()) {
                return (line, ev);
            }
        }
    }
}

fn event(v: &Value) -> &str {
    v.get("event").and_then(Value::as_str).expect("event field")
}

fn code(v: &Value) -> &str {
    v.get("code").and_then(Value::as_str).expect("code field")
}

const TINY_TABLE3: &str =
    r#"{"v":1,"verb":"submit","spec":{"family":"table3","procs":16,"row_len":8}}"#;

/// The headline lifecycle: submit → accepted → result, then an identical
/// resubmission is served from the warm cache — `cached:true`, zero extra
/// executions, and a byte-identical result document + fingerprint.
#[test]
fn submit_then_warm_cache_resubmit_is_byte_identical() {
    let daemon = Daemon::boot("cache", &["--workers", "2"]);
    let mut c = daemon.connect();

    c.send(TINY_TABLE3);
    let (_, acc) = c.recv_until(&["accepted", "error"]);
    assert_eq!(event(&acc), "accepted", "submit accepted: {acc:?}");
    assert_eq!(acc.get("family").and_then(Value::as_str), Some("table3"));
    let first_id = acc.get("job_id").and_then(Value::as_u64).expect("job id");
    let (first_line, first) = c.recv_until(&["result", "error"]);
    assert_eq!(event(&first), "result", "first run succeeds: {first_line}");
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));

    c.send(TINY_TABLE3);
    let (_, acc2) = c.recv_until(&["accepted"]);
    let second_id = acc2.get("job_id").and_then(Value::as_u64).expect("job id");
    assert_ne!(first_id, second_id, "a fresh job id per submission");
    let (second_line, second) = c.recv_until(&["result", "error"]);
    assert_eq!(event(&second), "result");
    assert_eq!(
        second.get("cached").and_then(Value::as_bool),
        Some(true),
        "identical resubmit must be served from the cache: {second_line}"
    );

    // Byte-identity: the event lines differ only in job_id; the embedded
    // result document and fingerprint must match exactly.
    assert_eq!(
        serde_json::to_string(first.get("result").expect("result doc")).unwrap(),
        serde_json::to_string(second.get("result").expect("result doc")).unwrap(),
        "cached result document must be byte-identical"
    );
    assert_eq!(
        first.get("fingerprint").and_then(Value::as_str),
        second.get("fingerprint").and_then(Value::as_str),
    );

    // The daemon's own accounting agrees: one miss (the build), at least
    // one hit (the cached resubmit), nothing evicted.
    c.send(r#"{"v":1,"verb":"status"}"#);
    let (_, status) = c.recv_until(&["status"]);
    let cache = status.get("cache").expect("cache stats");
    assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
    assert!(cache.get("hits").and_then(Value::as_u64).unwrap_or(0) >= 1);
    assert_eq!(cache.get("evictions").and_then(Value::as_u64), Some(0));

    daemon.sigterm_and_wait();
}

/// Two clients on separate connections submit the same spec concurrently:
/// both get results, the cache builds at most once (single-flight), and
/// progress/terminal events route to the right connection.
#[test]
fn concurrent_clients_share_the_single_flight_cache() {
    let daemon = Daemon::boot("concurrent", &["--workers", "2"]);
    let mut a = daemon.connect();
    let mut b = daemon.connect();
    a.send(TINY_TABLE3);
    b.send(TINY_TABLE3);
    let (_, ra) = a.recv_until(&["result", "error"]);
    let (_, rb) = b.recv_until(&["result", "error"]);
    assert_eq!(event(&ra), "result");
    assert_eq!(event(&rb), "result");
    assert_eq!(
        serde_json::to_string(ra.get("result").unwrap()).unwrap(),
        serde_json::to_string(rb.get("result").unwrap()).unwrap(),
        "both clients see the same result bytes"
    );
    let mut c = daemon.connect();
    c.send(r#"{"v":1,"verb":"status"}"#);
    let (_, status) = c.recv_until(&["status"]);
    assert_eq!(
        status
            .get("cache")
            .and_then(|v| v.get("misses"))
            .and_then(Value::as_u64),
        Some(1),
        "single-flight: the result was built exactly once: {status:?}"
    );
    daemon.sigterm_and_wait();
}

/// Malformed and invalid requests get structured error events with stable
/// machine-readable codes — and never wedge the connection.
#[test]
fn malformed_requests_get_structured_errors() {
    let daemon = Daemon::boot("malformed", &[]);
    let mut c = daemon.connect();

    c.send("this is not json");
    assert_eq!(code(&c.recv()), "bad_json");

    c.send(r#"{"verb":"ping"}"#);
    assert_eq!(code(&c.recv()), "bad_version");

    c.send(r#"{"v":2,"verb":"ping"}"#);
    assert_eq!(code(&c.recv()), "bad_version");

    c.send(r#"{"v":1,"verb":"frobnicate"}"#);
    assert_eq!(code(&c.recv()), "unknown_verb");

    c.send(r#"{"v":1,"verb":"submit","spec":{"family":"table3","procs":17}}"#);
    let ev = c.recv();
    assert_eq!(code(&ev), "bad_spec");
    assert!(
        ev.get("detail")
            .and_then(Value::as_str)
            .is_some_and(|d| d.contains("square")),
        "spec validation detail names the violated invariant: {ev:?}"
    );

    c.send(r#"{"v":1,"verb":"cancel","job_id":123456}"#);
    assert_eq!(code(&c.recv()), "unknown_job");

    // Unknown fields are tolerated (forward compatibility): still a pong.
    c.send(r#"{"v":1,"verb":"ping","future_field":[1,2,3]}"#);
    assert_eq!(event(&c.recv()), "pong");

    daemon.sigterm_and_wait();
}

/// Cancelling a running job routes through the CancelToken → Interrupt
/// path: the fabric stops at a poll boundary and the client gets the
/// structured `cancelled` error, not a result.
#[test]
fn cancel_interrupts_a_running_job() {
    // One worker so the target job holds it; paper-sized mesh gives the
    // cancel a long window to land in.
    let daemon = Daemon::boot("cancel", &["--workers", "1"]);
    let mut c = daemon.connect();
    c.send(r#"{"v":1,"verb":"submit","spec":{"family":"table3","procs":256,"row_len":256}}"#);
    let (_, acc) = c.recv_until(&["accepted"]);
    let id = acc.get("job_id").and_then(Value::as_u64).expect("job id");
    c.send(&format!(r#"{{"v":1,"verb":"cancel","job_id":{id}}}"#));
    let mut saw_ack = false;
    let terminal = loop {
        let ev = c.recv();
        match event(&ev) {
            "cancel_requested" => saw_ack = true,
            "result" | "error" => break ev,
            _ => {}
        }
    };
    assert!(saw_ack, "cancel verb acknowledged");
    assert_eq!(event(&terminal), "error", "no result after cancel");
    assert_eq!(code(&terminal), "cancelled");
    daemon.sigterm_and_wait();
}

/// SIGTERM during an in-flight job: the daemon stops accepting, finishes
/// the job, flushes its result to the client, and exits 0.
#[test]
fn sigterm_drains_inflight_work_before_exit() {
    let daemon = Daemon::boot("drain", &["--workers", "1"]);
    let mut c = daemon.connect();
    c.send(TINY_TABLE3);
    c.recv_until(&["accepted"]);
    // Deliver SIGTERM immediately — likely mid-job.
    let pid = daemon.child.id();
    assert!(Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("kill runs")
        .success());
    // The terminal event still arrives before the stream closes.
    let (_, terminal) = c.recv_until(&["result", "error"]);
    assert_eq!(event(&terminal), "result", "drain flushes the result");
    daemon.sigterm_and_wait();
}

/// The `psync_client` CLI end-to-end: ping, a family/preset submit, and
/// exit codes (0 result, 1 daemon error, 2 usage).
#[test]
fn psync_client_cli_round_trips() {
    let daemon = Daemon::boot("cli", &["--workers", "2"]);
    let socket = daemon.socket.to_str().expect("utf8 socket path");
    let client = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_psync_client"))
            .args(["--socket", socket])
            .args(args)
            .output()
            .expect("psync_client spawns")
    };

    let out = client(&["ping"]);
    assert_eq!(out.status.code(), Some(0), "ping exits 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"pong\""));

    let out = client(&[
        "submit",
        "--spec",
        r#"{"family":"table3","procs":16,"row_len":8}"#,
    ]);
    assert_eq!(out.status.code(), Some(0), "successful submit exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"accepted\""),
        "streams accepted: {stdout}"
    );
    assert!(stdout.contains("\"result\""), "streams result: {stdout}");

    let out = client(&[
        "submit",
        "--spec",
        r#"{"family":"table3","procs":16,"row_len":8}"#,
    ]);
    assert_eq!(out.status.code(), Some(0), "resubmit exits 0");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"cached\":true"),
        "identical spec from a second CLI invocation → warm-cache hit"
    );

    // Family + preset shorthand (analytic family: fast even in debug).
    let out = client(&[
        "submit",
        "--family",
        "crosscheck_models",
        "--preset",
        "quick",
    ]);
    assert_eq!(out.status.code(), Some(0), "preset submit exits 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"result\""));

    let out = client(&["submit", "--family", "no_such_family"]);
    assert_eq!(out.status.code(), Some(1), "daemon error exits 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("bad_spec"));

    let out = client(&["submit"]);
    assert_eq!(out.status.code(), Some(2), "usage error exits 2");

    let out = client(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "unknown verb exits 2");

    daemon.sigterm_and_wait();
}
