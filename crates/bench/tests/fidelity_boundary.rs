//! Fidelity-selection boundary behaviour and the auto-vs-simulation
//! differential: the guarantees DESIGN.md §15 makes about when the
//! analytic fast path may answer and how far it may stray when it does.

use bench::fidelity::{decide, FidelityPolicy, PointConfig, ValidationRegistry};
use bench::jobs::{matrix_points, run_full_matrix, FullMatrixSpec};

fn point(family: &str, p: u64, n: u64, fault_rate: f64, policy: &str) -> PointConfig {
    PointConfig {
        family: family.to_string(),
        p,
        n,
        fault_rate,
        policy: policy.to_string(),
    }
}

#[test]
fn at_edge_points_are_inside_the_validated_region() {
    let reg = ValidationRegistry::builtin();
    let auto = FidelityPolicy::auto();
    // Region bounds are inclusive: the validated corners themselves answer
    // analytically.
    for pc in [
        point("model2_eq11", 4, 16, 0.0, "sca"),    // both minima
        point("model2_eq11", 16, 1024, 0.0, "sca"), // both maxima
        point("mesh_eq21", 64, 256, 0.0, "Xy"),     // fixed-P family at n max
        point("table3_pscan", 1024, 1024, 0.0, "sca"),
    ] {
        let d = decide(auto, &pc, &reg);
        assert!(d.is_analytic(), "{pc:?}: {}", d.reason);
        assert!(d.envelope_rel_err.is_some());
    }
}

#[test]
fn one_step_beyond_the_edge_falls_back_to_simulation() {
    let reg = ValidationRegistry::builtin();
    let auto = FidelityPolicy::auto();
    for pc in [
        point("model2_eq11", 32, 1024, 0.0, "sca"), // P past the max
        point("model2_eq11", 2, 64, 0.0, "sca"),    // P below the min
        point("model2_eq11", 16, 2048, 0.0, "sca"), // N past the max
        point("model2_eq11", 16, 8, 0.0, "sca"),    // N below the min
        point("mesh_eq21", 16, 64, 0.0, "Xy"),      // unvalidated geometry
        point("mesh_eq21", 64, 64, 0.0, "MinimalAdaptive"), // unvalidated policy
    ] {
        let d = decide(auto, &pc, &reg);
        assert_eq!(d.chosen, "cycle_accurate", "{pc:?}: {}", d.reason);
        assert!(d.envelope_rel_err.is_none());
        assert!(
            d.reason.contains("outside validation"),
            "{pc:?}: {}",
            d.reason
        );
    }
}

#[test]
fn nonzero_fault_rate_forces_simulation_even_when_analytic_is_requested() {
    let reg = ValidationRegistry::builtin();
    // No closed form models the fault/retransmit machinery, so even a
    // forced-analytic run must simulate a faulted point.
    let pc = point("mesh_eq21", 64, 64, 1e-2, "Xy");
    let d = decide(FidelityPolicy::Analytic, &pc, &reg);
    assert_eq!(d.chosen, "cycle_accurate");
    assert!(d.reason.contains("fault"), "{}", d.reason);
}

#[test]
fn auto_ceiling_rejects_envelopes_looser_than_requested() {
    let reg = ValidationRegistry::builtin();
    // mesh_eq21's envelope is 0.35 — fine for the default auto ceiling,
    // too loose for a 10% one. The tighter model2 envelope still passes.
    let mesh = point("mesh_eq21", 64, 64, 0.0, "Xy");
    let model2 = point("model2_eq11", 8, 64, 0.0, "sca");
    let strict = FidelityPolicy::parse("auto:0.1").unwrap();
    let d = decide(strict, &mesh, &reg);
    assert_eq!(d.chosen, "cycle_accurate");
    assert!(d.reason.contains("looser"), "{}", d.reason);
    assert!(decide(strict, &model2, &reg).is_analytic());
    // The explicit policies are not ceiling-gated: forced analytic takes
    // the loose envelope, forced simulation ignores the registry entirely.
    assert!(decide(FidelityPolicy::Analytic, &mesh, &reg).is_analytic());
    assert_eq!(
        decide(FidelityPolicy::CycleAccurate, &model2, &reg).chosen,
        "cycle_accurate"
    );
}

#[test]
fn every_matrix_point_decision_is_scale_invariant() {
    // The quick and paper matrices must make identical fidelity choices
    // row-for-row, or a green quick CI run would not vouch for the paper
    // configuration.
    let reg = ValidationRegistry::builtin();
    let auto = FidelityPolicy::auto();
    let quick = matrix_points(true);
    let paper = matrix_points(false);
    for (q, p) in quick.iter().zip(&paper) {
        assert_eq!(q.family, p.family);
        assert_eq!(
            decide(auto, &q.point_config(), &reg).chosen,
            decide(auto, &p.point_config(), &reg).chosen,
            "row {} decides differently across scales",
            q.id
        );
    }
}

#[test]
fn auto_matrix_agrees_with_full_simulation_within_envelopes() {
    // The differential: run the quick matrix twice — once under `auto`,
    // once all-simulated — and hold every analytic answer inside its
    // validated envelope against the measured value.
    let auto = run_full_matrix(
        &FullMatrixSpec {
            reference: false,
            ..FullMatrixSpec::quick()
        },
        None,
        None,
    )
    .expect("auto matrix runs");
    let sim = run_full_matrix(
        &FullMatrixSpec {
            fidelity: "cycle_accurate".to_string(),
            reference: false,
            ..FullMatrixSpec::quick()
        },
        None,
        None,
    )
    .expect("all-simulated matrix runs");
    let (auto, sim) = (auto.0, sim.0);
    assert_eq!(sim.analytic_rows, 0, "cycle_accurate simulates everything");
    assert!(
        auto.analytic_rows > 0,
        "auto answers something analytically"
    );
    for (a, s) in auto.rows.iter().zip(&sim.rows) {
        assert_eq!(a.id, s.id);
        if a.fidelity == "cycle_accurate" {
            // Same fabric, same seed, same answer.
            assert_eq!(a.value, s.value, "row {} simulation drifted", a.id);
            continue;
        }
        let envelope = a.envelope_rel_err.expect("analytic rows carry envelopes");
        let rel = (a.value - s.value).abs() / s.value.abs();
        assert!(
            rel <= envelope + 1e-12,
            "row {} ({} [{}]): analytic {} vs simulated {} — rel err {rel:.3e} \
             breaks envelope {envelope:.0e}",
            a.id,
            a.family,
            a.point,
            a.value,
            s.value,
        );
    }
}
