//! The `Experiment` writer path must stay byte-identical to the seed's
//! `write_json` (pretty serde_json straight to `results/<name>.json`): the
//! committed goldens are diffed byte-for-byte by CI, so any drift in
//! formatting or routing here shows up as a spurious golden churn.

use bench::Experiment;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: u64,
    eta: f64,
    label: String,
}

/// Single test so the process-global results-dir override can't race a
/// sibling test.
#[test]
fn results_file_is_byte_identical_to_pretty_serde_json() {
    let dir = std::env::temp_dir().join(format!("bench_io_{}", std::process::id()));
    std::env::set_var("PSYNC_RESULTS_DIR", &dir);

    let rows = vec![
        Row {
            k: 64,
            eta: 0.875,
            label: "peak".into(),
        },
        Row {
            k: 128,
            eta: 0.5,
            label: "past the knee".into(),
        },
    ];
    Experiment::new("experiment_io_test")
        .note("byte-identity check")
        .rows(&rows)
        .run()
        .expect("run succeeds");

    let written = std::fs::read_to_string(dir.join("experiment_io_test.json")).expect("file");
    let expected = serde_json::to_string_pretty(&rows).expect("serializable");
    assert_eq!(
        written, expected,
        "results writer drifted from the seed format"
    );

    std::env::remove_var("PSYNC_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}
