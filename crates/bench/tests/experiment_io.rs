//! The `Experiment` writer path must stay byte-identical to the seed's
//! `write_json` (pretty serde_json straight to `results/<name>.json`): the
//! committed goldens are diffed byte-for-byte by CI, so any drift in
//! formatting or routing here shows up as a spurious golden churn.

use bench::Experiment;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: u64,
    eta: f64,
    label: String,
}

/// Single test so the process-global results-dir override can't race a
/// sibling test.
#[test]
fn results_file_is_byte_identical_to_pretty_serde_json() {
    let dir = std::env::temp_dir().join(format!("bench_io_{}", std::process::id()));
    std::env::set_var("PSYNC_RESULTS_DIR", &dir);

    let rows = vec![
        Row {
            k: 64,
            eta: 0.875,
            label: "peak".into(),
        },
        Row {
            k: 128,
            eta: 0.5,
            label: "past the knee".into(),
        },
    ];
    Experiment::with_args("experiment_io_test", std::iter::empty())
        .expect("no flags to parse")
        .note("byte-identity check")
        .rows(&rows)
        .run()
        .expect("run succeeds");

    let written = std::fs::read_to_string(dir.join("experiment_io_test.json")).expect("file");
    let expected = serde_json::to_string_pretty(&rows).expect("serializable");
    assert_eq!(
        written, expected,
        "results writer drifted from the seed format"
    );

    std::env::remove_var("PSYNC_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawn the `table1` harness binary (the cheapest closed-form bin) with
/// `args` and return (exit code, stderr).
fn spawn_table1(args: &[&str]) -> (i32, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(args)
        .env(
            "PSYNC_RESULTS_DIR",
            std::env::temp_dir().join("bench_errpath"),
        )
        .output()
        .expect("harness binary spawns");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let (code, err) = spawn_table1(&["--quikc"]);
    assert_eq!(code, 2, "bad usage must exit 2: {err}");
    assert!(err.contains("--quikc"), "names the offender: {err}");
    assert!(err.contains("usage:"), "prints usage: {err}");
}

#[test]
fn zero_threads_exits_2() {
    let (code, err) = spawn_table1(&["--threads", "0"]);
    assert_eq!(code, 2, "--threads 0 must exit 2: {err}");
    assert!(err.contains("--threads"), "names the flag: {err}");
}

#[test]
fn missing_flag_value_exits_2() {
    let (code, err) = spawn_table1(&["--trace-out"]);
    assert_eq!(code, 2, "dangling flag must exit 2: {err}");
    assert!(err.contains("needs a value"), "explains: {err}");
}

#[test]
fn unwritable_trace_out_exits_1() {
    // The parent of the target path is a regular file, so the directory
    // creation inside the writer must fail with a plumbing error.
    let blocker = std::env::temp_dir().join(format!("bench_blocker_{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").expect("blocker file");
    let target = blocker.join("trace.json");
    let (code, err) = spawn_table1(&["--no-json", "--trace-out", target.to_str().unwrap()]);
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(code, 1, "io failure must exit 1: {err}");
    assert!(
        err.contains("error") || err.contains("Error"),
        "reports: {err}"
    );
}

#[test]
fn unwritable_metrics_out_exits_1() {
    let blocker = std::env::temp_dir().join(format!("bench_blocker_m_{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").expect("blocker file");
    let target = blocker.join("metrics.json");
    let (code, err) = spawn_table1(&["--no-json", "--metrics-out", target.to_str().unwrap()]);
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(code, 1, "io failure must exit 1: {err}");
}
