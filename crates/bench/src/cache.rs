//! Exact-match result cache for supervised experiment batches.
//!
//! Every simulator in this workspace is deterministic: the same
//! configuration always produces the same result bytes. That makes caching
//! trivial to reason about — the key is a hash of the *canonical
//! configuration JSON* (plus anything else that can change the outcome,
//! e.g. a deadline), and a hit returns the exact bytes a fresh run would
//! have produced. There is no staleness: an entry is valid for the life of
//! the process.
//!
//! The cache is **single-flight**: when two jobs race on the same key, one
//! builds while the others block on a condvar, so an expensive simulation
//! never runs twice. Each entry also records a FNV-1a fingerprint of the
//! result bytes — the same witness the perf-gate golden comparison uses —
//! so a batch report can prove which bytes a cache hit handed out.
//!
//! Long-running processes (the `psyncd` daemon) can bound memory with
//! [`ResultCache::with_budget_bytes`]: when the stored result bytes exceed
//! the budget, ready entries are evicted least-recently-used first.
//! Hit/miss/eviction counters are readable at any time via
//! [`ResultCache::stats`] (the daemon's `status` verb) and exportable into
//! a telemetry [`Registry`] via [`ResultCache::record_telemetry`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use sim_core::telemetry::Registry;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`: the workspace's canonical cheap stable hash, used
/// both for cache keys (over config JSON) and result fingerprints (over
/// result JSON). Not a cryptographic hash; collisions are astronomically
/// unlikely at batch scale but would only ever substitute one deterministic
/// result for another with the same recorded fingerprint.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Render a fingerprint the way batch reports and goldens spell it.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("fnv1a64:{fp:016x}")
}

/// One cached result.
#[derive(Debug)]
pub struct CacheEntry {
    /// The config-hash key this entry was stored under.
    pub key: u64,
    /// The exact result bytes a direct run would have written.
    pub result_json: String,
    /// FNV-1a fingerprint of `result_json` — the perf-gate witness.
    pub fingerprint: u64,
}

/// Per-key slot: either someone is building, or the entry is ready (with
/// its last-touched tick for LRU eviction).
enum Slot {
    Building,
    Ready { entry: Arc<CacheEntry>, used: u64 },
}

/// State behind the cache lock: the slots plus the LRU clock and the
/// running total of stored result bytes.
#[derive(Default)]
struct Slots {
    map: HashMap<u64, Slot>,
    /// Monotone tick; bumped on every insert and hit.
    tick: u64,
    /// Total `result_json` bytes across Ready slots.
    bytes: u64,
}

/// Point-in-time counters of a [`ResultCache`] — the payload of the
/// daemon's `status` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served without running the builder (including waits on
    /// another caller's in-flight build).
    pub hits: u64,
    /// Lookups that ran the builder.
    pub misses: u64,
    /// Ready entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Ready entries currently stored.
    pub entries: u64,
    /// Result bytes currently stored.
    pub bytes: u64,
    /// Configured budget (`None` = unbounded).
    pub budget_bytes: Option<u64>,
}

/// The exact-match, single-flight result cache.
#[derive(Default)]
pub struct ResultCache {
    slots: Mutex<Slots>,
    changed: Condvar,
    /// `0` = unbounded (the batch default).
    budget_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// An unbounded cache (the `run_batch` default: within one batch,
    /// every entry is worth keeping).
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// A cache that evicts least-recently-used ready entries once the
    /// stored result bytes exceed `budget` (`0` = unbounded). The entry
    /// being returned by the current lookup is never evicted by its own
    /// insertion, so a single oversized result still caches (until the
    /// next insert pushes it out).
    pub fn with_budget_bytes(budget: u64) -> Self {
        ResultCache {
            budget_bytes: budget,
            ..ResultCache::default()
        }
    }

    /// Look up `key`; on a miss run `build` (exactly once across all
    /// concurrent callers of this key) and store its result. Returns the
    /// entry plus whether it was a hit (`true` = served without running
    /// `build`; callers that waited for another thread's in-flight build
    /// also count as hits).
    ///
    /// If `build` fails — by error **or by panic** — the slot is released
    /// so a later caller can retry; waiting callers wake and race to become
    /// the next builder. A panic propagates to the caller (where the batch
    /// supervisor's `catch_unwind` turns it into a structured report).
    pub fn get_or_build<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<String, E>,
    ) -> Result<(Arc<CacheEntry>, bool), E> {
        {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            loop {
                // Advance the recency clock before borrowing the slot.
                let now = slots.tick + 1;
                match slots.map.get_mut(&key) {
                    Some(Slot::Ready { entry, used }) => {
                        *used = now;
                        let entry = Arc::clone(entry);
                        slots.tick = now;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((entry, true));
                    }
                    Some(Slot::Building) => {
                        slots = self.changed.wait(slots).expect("cache lock poisoned");
                    }
                    None => {
                        slots.map.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // We own the building slot; run the (possibly expensive) build
        // without holding the lock. The guard releases the slot if `build`
        // panics — otherwise every waiter on this key would block forever
        // (the supervisor catches job panics *outside* the cache).
        struct BuildGuard<'a> {
            cache: &'a ResultCache,
            key: u64,
            armed: bool,
        }
        impl Drop for BuildGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    if let Ok(mut slots) = self.cache.slots.lock() {
                        slots.map.remove(&self.key);
                    }
                    self.cache.changed.notify_all();
                }
            }
        }
        let mut guard = BuildGuard {
            cache: self,
            key,
            armed: true,
        };
        match build() {
            Ok(result_json) => {
                let entry = Arc::new(CacheEntry {
                    key,
                    fingerprint: fnv1a64(result_json.as_bytes()),
                    result_json,
                });
                let mut slots = self.slots.lock().expect("cache lock poisoned");
                slots.tick += 1;
                slots.bytes += entry.result_json.len() as u64;
                let used = slots.tick;
                slots.map.insert(
                    key,
                    Slot::Ready {
                        entry: Arc::clone(&entry),
                        used,
                    },
                );
                self.evict_to_budget(&mut slots, key);
                guard.armed = false;
                drop(slots);
                self.changed.notify_all();
                Ok((entry, false))
            }
            // The guard's Drop removes the building slot and wakes waiters.
            Err(e) => Err(e),
        }
    }

    /// Evict least-recently-used Ready slots until the stored bytes fit the
    /// budget. Building slots hold no bytes and are never touched; `keep`
    /// (the entry the current caller is about to return) is exempt.
    fn evict_to_budget(&self, slots: &mut Slots, keep: u64) {
        if self.budget_bytes == 0 {
            return;
        }
        while slots.bytes > self.budget_bytes {
            let lru = slots
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { used, .. } if *k != keep => Some((*used, *k)),
                    _ => None,
                })
                .min();
            let Some((_, victim)) = lru else { break };
            if let Some(Slot::Ready { entry, .. }) = slots.map.remove(&victim) {
                slots.bytes -= entry.result_json.len() as u64;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Point-in-time counters (lock-free except for the entry/byte scan).
    pub fn stats(&self) -> CacheStats {
        let slots = self.slots.lock().expect("cache lock poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: slots
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count() as u64,
            bytes: slots.bytes,
            budget_bytes: (self.budget_bytes > 0).then_some(self.budget_bytes),
        }
    }

    /// Export the counters as `service.cache.*` series into `reg` (the
    /// daemon records them alongside its own series when flushing metrics).
    pub fn record_telemetry(&self, reg: &Registry) {
        let s = self.stats();
        reg.counter_set("service.cache.hits", s.hits);
        reg.counter_set("service.cache.misses", s.misses);
        reg.counter_set("service.cache.evictions", s.evictions);
        reg.counter_set("service.cache.entries", s.entries);
        reg.counter_set("service.cache.bytes", s.bytes);
    }

    /// Ready entries currently stored.
    pub fn len(&self) -> usize {
        self.stats().entries as usize
    }

    /// Whether no ready entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hit_returns_identical_bytes_without_rebuilding() {
        let cache = ResultCache::new();
        let builds = AtomicU32::new(0);
        let build = || -> Result<String, ()> {
            builds.fetch_add(1, Ordering::SeqCst);
            Ok("{\"x\":1}".to_string())
        };
        let (a, hit_a) = cache.get_or_build(7, build).unwrap();
        let (b, hit_b) = cache
            .get_or_build(7, || -> Result<String, ()> { unreachable!("must hit") })
            .unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(a.result_json, b.result_json);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.fingerprint, fnv1a64(b"{\"x\":1}"));
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.bytes, a.result_json.len() as u64);
        assert_eq!(s.budget_bytes, None);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = ResultCache::new();
        let (a, _) = cache
            .get_or_build(1, || Ok::<_, ()>("one".to_string()))
            .unwrap();
        let (b, _) = cache
            .get_or_build(2, || Ok::<_, ()>("two".to_string()))
            .unwrap();
        assert_ne!(a.result_json, b.result_json);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_build_releases_the_slot_for_retry() {
        let cache = ResultCache::new();
        let err = cache
            .get_or_build(9, || Err::<String, _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.is_empty());
        let (e, hit) = cache
            .get_or_build(9, || Ok::<_, ()>("recovered".to_string()))
            .unwrap();
        assert!(!hit);
        assert_eq!(e.result_json, "recovered");
    }

    #[test]
    fn panicking_build_releases_the_slot_for_waiters() {
        let cache = Arc::new(ResultCache::new());
        let c = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.get_or_build(5, || -> Result<String, ()> { panic!("boom") })
            }));
        });
        panicker.join().unwrap();
        // Without the build guard this would deadlock on the Building slot.
        let (e, hit) = cache
            .get_or_build(5, || Ok::<_, ()>("after panic".to_string()))
            .unwrap();
        assert!(!hit);
        assert_eq!(e.result_json, "after panic");
    }

    #[test]
    fn single_flight_under_contention() {
        let cache = Arc::new(ResultCache::new());
        let builds = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                let (entry, _hit) = cache
                    .get_or_build(42, || -> Result<String, ()> {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually block.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok("slow result".to_string())
                    })
                    .unwrap();
                entry.result_json.clone()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), "slow result");
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight: one build");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7, "waiters on the in-flight build count as hits");
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        // Budget fits two 10-byte entries; inserting a third evicts the
        // least recently *used* (key 1 was touched after key 2 was stored).
        let cache = ResultCache::with_budget_bytes(20);
        let ten = "x".repeat(10);
        for key in [1u64, 2] {
            cache
                .get_or_build(key, || Ok::<_, ()>(ten.clone()))
                .unwrap();
        }
        let (_, hit) = cache
            .get_or_build(1, || -> Result<String, ()> { unreachable!() })
            .unwrap();
        assert!(hit);
        cache.get_or_build(3, || Ok::<_, ()>(ten.clone())).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 20);
        assert_eq!(s.budget_bytes, Some(20));
        // Key 2 was the LRU victim; 1 and 3 still hit.
        for (key, expect_hit) in [(1u64, true), (3, true)] {
            let (_, hit) = cache
                .get_or_build(key, || Ok::<_, ()>("rebuilt!!!".to_string()))
                .unwrap();
            assert_eq!(hit, expect_hit, "key {key}");
        }
        let (_, hit) = cache.get_or_build(2, || Ok::<_, ()>(ten.clone())).unwrap();
        assert!(!hit, "the evicted key rebuilds");
    }

    #[test]
    fn oversized_entry_still_serves_then_yields_to_the_next_insert() {
        let cache = ResultCache::with_budget_bytes(5);
        let (big, hit) = cache
            .get_or_build(1, || Ok::<_, ()>("way past the budget".to_string()))
            .unwrap();
        assert!(!hit);
        assert_eq!(big.result_json, "way past the budget");
        // The oversized entry is kept (nothing else to evict)...
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 0);
        // ...until the next insert pushes it out.
        cache
            .get_or_build(2, || Ok::<_, ()>("ok".to_string()))
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 2);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ResultCache::new();
        for key in 0..64u64 {
            cache
                .get_or_build(key, || Ok::<_, ()>("z".repeat(1024)))
                .unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 0);
        assert_eq!(s.entries, 64);
        assert_eq!(s.bytes, 64 * 1024);
    }

    #[test]
    fn telemetry_export_records_the_counters() {
        let cache = ResultCache::with_budget_bytes(1024);
        cache
            .get_or_build(1, || Ok::<_, ()>("a".to_string()))
            .unwrap();
        cache
            .get_or_build(1, || -> Result<String, ()> { unreachable!() })
            .unwrap();
        let reg = Registry::new();
        cache.record_telemetry(&reg);
        assert_eq!(reg.counter_value("service.cache.hits"), Some(1));
        assert_eq!(reg.counter_value("service.cache.misses"), Some(1));
        assert_eq!(reg.counter_value("service.cache.evictions"), Some(0));
        assert_eq!(reg.counter_value("service.cache.entries"), Some(1));
        assert_eq!(reg.counter_value("service.cache.bytes"), Some(1));
    }

    #[test]
    fn fingerprint_hex_format() {
        assert_eq!(fingerprint_hex(0xff), "fnv1a64:00000000000000ff");
    }
}
