//! Exact-match result cache for supervised experiment batches.
//!
//! Every simulator in this workspace is deterministic: the same
//! configuration always produces the same result bytes. That makes caching
//! trivial to reason about — the key is a hash of the *canonical
//! configuration JSON* (plus anything else that can change the outcome,
//! e.g. a deadline), and a hit returns the exact bytes a fresh run would
//! have produced. There is no eviction and no staleness: within one batch
//! process, an entry is valid forever.
//!
//! The cache is **single-flight**: when two jobs race on the same key, one
//! builds while the others block on a condvar, so an expensive simulation
//! never runs twice. Each entry also records a FNV-1a fingerprint of the
//! result bytes — the same witness the perf-gate golden comparison uses —
//! so a batch report can prove which bytes a cache hit handed out.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`: the workspace's canonical cheap stable hash, used
/// both for cache keys (over config JSON) and result fingerprints (over
/// result JSON). Not a cryptographic hash; collisions are astronomically
/// unlikely at batch scale but would only ever substitute one deterministic
/// result for another with the same recorded fingerprint.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Render a fingerprint the way batch reports and goldens spell it.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("fnv1a64:{fp:016x}")
}

/// One cached result.
#[derive(Debug)]
pub struct CacheEntry {
    /// The config-hash key this entry was stored under.
    pub key: u64,
    /// The exact result bytes a direct run would have written.
    pub result_json: String,
    /// FNV-1a fingerprint of `result_json` — the perf-gate witness.
    pub fingerprint: u64,
}

/// Per-key slot: either someone is building, or the entry is ready.
enum Slot {
    Building,
    Ready(Arc<CacheEntry>),
}

/// The exact-match, single-flight result cache.
#[derive(Default)]
pub struct ResultCache {
    slots: Mutex<HashMap<u64, Slot>>,
    changed: Condvar,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Look up `key`; on a miss run `build` (exactly once across all
    /// concurrent callers of this key) and store its result. Returns the
    /// entry plus whether it was a hit (`true` = served without running
    /// `build`; callers that waited for another thread's in-flight build
    /// also count as hits).
    ///
    /// If `build` fails — by error **or by panic** — the slot is released
    /// so a later caller can retry; waiting callers wake and race to become
    /// the next builder. A panic propagates to the caller (where the batch
    /// supervisor's `catch_unwind` turns it into a structured report).
    pub fn get_or_build<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<String, E>,
    ) -> Result<(Arc<CacheEntry>, bool), E> {
        {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            loop {
                match slots.get(&key) {
                    Some(Slot::Ready(entry)) => return Ok((Arc::clone(entry), true)),
                    Some(Slot::Building) => {
                        slots = self.changed.wait(slots).expect("cache lock poisoned");
                    }
                    None => {
                        slots.insert(key, Slot::Building);
                        break;
                    }
                }
            }
        }
        // We own the building slot; run the (possibly expensive) build
        // without holding the lock. The guard releases the slot if `build`
        // panics — otherwise every waiter on this key would block forever
        // (the supervisor catches job panics *outside* the cache).
        struct BuildGuard<'a> {
            cache: &'a ResultCache,
            key: u64,
            armed: bool,
        }
        impl Drop for BuildGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    if let Ok(mut slots) = self.cache.slots.lock() {
                        slots.remove(&self.key);
                    }
                    self.cache.changed.notify_all();
                }
            }
        }
        let mut guard = BuildGuard {
            cache: self,
            key,
            armed: true,
        };
        match build() {
            Ok(result_json) => {
                let entry = Arc::new(CacheEntry {
                    key,
                    fingerprint: fnv1a64(result_json.as_bytes()),
                    result_json,
                });
                let mut slots = self.slots.lock().expect("cache lock poisoned");
                slots.insert(key, Slot::Ready(Arc::clone(&entry)));
                guard.armed = false;
                drop(slots);
                self.changed.notify_all();
                Ok((entry, false))
            }
            // The guard's Drop removes the building slot and wakes waiters.
            Err(e) => Err(e),
        }
    }

    /// Ready entries currently stored.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("cache lock poisoned")
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether no ready entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hit_returns_identical_bytes_without_rebuilding() {
        let cache = ResultCache::new();
        let builds = AtomicU32::new(0);
        let build = || -> Result<String, ()> {
            builds.fetch_add(1, Ordering::SeqCst);
            Ok("{\"x\":1}".to_string())
        };
        let (a, hit_a) = cache.get_or_build(7, build).unwrap();
        let (b, hit_b) = cache
            .get_or_build(7, || -> Result<String, ()> { unreachable!("must hit") })
            .unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(a.result_json, b.result_json);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.fingerprint, fnv1a64(b"{\"x\":1}"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = ResultCache::new();
        let (a, _) = cache
            .get_or_build(1, || Ok::<_, ()>("one".to_string()))
            .unwrap();
        let (b, _) = cache
            .get_or_build(2, || Ok::<_, ()>("two".to_string()))
            .unwrap();
        assert_ne!(a.result_json, b.result_json);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_build_releases_the_slot_for_retry() {
        let cache = ResultCache::new();
        let err = cache
            .get_or_build(9, || Err::<String, _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.is_empty());
        let (e, hit) = cache
            .get_or_build(9, || Ok::<_, ()>("recovered".to_string()))
            .unwrap();
        assert!(!hit);
        assert_eq!(e.result_json, "recovered");
    }

    #[test]
    fn panicking_build_releases_the_slot_for_waiters() {
        let cache = Arc::new(ResultCache::new());
        let c = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.get_or_build(5, || -> Result<String, ()> { panic!("boom") })
            }));
        });
        panicker.join().unwrap();
        // Without the build guard this would deadlock on the Building slot.
        let (e, hit) = cache
            .get_or_build(5, || Ok::<_, ()>("after panic".to_string()))
            .unwrap();
        assert!(!hit);
        assert_eq!(e.result_json, "after panic");
    }

    #[test]
    fn single_flight_under_contention() {
        let cache = Arc::new(ResultCache::new());
        let builds = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                let (entry, _hit) = cache
                    .get_or_build(42, || -> Result<String, ()> {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually block.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok("slow result".to_string())
                    })
                    .unwrap();
                entry.result_json.clone()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), "slow result");
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight: one build");
    }

    #[test]
    fn fingerprint_hex_format() {
        assert_eq!(fingerprint_hex(0xff), "fnv1a64:00000000000000ff");
    }
}
