//! The multi-fidelity selection engine (DESIGN.md §15): decide, per sweep
//! point, whether the §V closed forms ([`analytic::surrogate`]) may answer
//! in place of a cycle-accurate simulation.
//!
//! The decision is grounded in the conformance oracle: every analytic
//! answer must be covered by a [`ValidationEnvelope`] — a model family, the
//! config region the oracle actually swept (P range, FFT-size range, fault
//! rate, policy set), and the crosscheck tolerance the fabrics were held to
//! inside it. The envelope catalog lives in code
//! ([`crate::crosscheck::envelope_catalog`]) and is serialized to
//! `ci/validation_envelopes.json`, whose bytes a unit test pins against the
//! catalog — the registry is machine-checked, not documentation.
//!
//! Every selection produces a [`FidelityDecision`] naming what was
//! requested, what was chosen, the envelope attached (if any), and a
//! human-readable reason — recorded in telemetry
//! ([`record_decision`]) and embedded in result rows so each number in a
//! sweep is auditable back to the validation that authorized it.

use serde::{Serialize, Value};
use sim_core::telemetry::Registry;

/// Default Auto-mode envelope ceiling: an analytic answer is acceptable
/// when its validated envelope is within 50 % — loose enough to admit the
/// mesh's 35 % Eq. 21 bracket, tight enough to reject an unvalidated model.
pub const DEFAULT_MAX_ENVELOPE_REL_ERR: f64 = 0.5;

/// How a sweep point may be answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FidelityPolicy {
    /// Prefer the closed form wherever a validated envelope covers the
    /// point, regardless of how loose the envelope is; fall back to the
    /// simulator only where no validation exists at all.
    Analytic,
    /// Always simulate.
    CycleAccurate,
    /// Answer analytically only when the covering envelope is tighter than
    /// `max_envelope_rel_err`; otherwise simulate.
    Auto {
        /// Loosest acceptable envelope (relative error).
        max_envelope_rel_err: f64,
    },
}

impl FidelityPolicy {
    /// The default policy: Auto at [`DEFAULT_MAX_ENVELOPE_REL_ERR`].
    pub fn auto() -> Self {
        FidelityPolicy::Auto {
            max_envelope_rel_err: DEFAULT_MAX_ENVELOPE_REL_ERR,
        }
    }

    /// Parse the wire/CLI spelling: `analytic`, `cycle_accurate`, `auto`,
    /// or `auto:<max_envelope_rel_err>`.
    ///
    /// # Errors
    /// A human-readable message naming the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "analytic" => Ok(FidelityPolicy::Analytic),
            "cycle_accurate" => Ok(FidelityPolicy::CycleAccurate),
            "auto" => Ok(FidelityPolicy::auto()),
            other => {
                if let Some(t) = other.strip_prefix("auto:") {
                    let max = t
                        .parse::<f64>()
                        .ok()
                        .filter(|v| v.is_finite() && *v >= 0.0)
                        .ok_or_else(|| {
                            format!(
                                "auto threshold must be a finite non-negative number, got {t:?}"
                            )
                        })?;
                    return Ok(FidelityPolicy::Auto {
                        max_envelope_rel_err: max,
                    });
                }
                Err(format!(
                    "unknown fidelity {other:?} (expected \"analytic\", \"cycle_accurate\", \
                     \"auto\", or \"auto:<rel_err>\")"
                ))
            }
        }
    }

    /// The canonical wire spelling ([`FidelityPolicy::parse`]'s inverse).
    pub fn wire(&self) -> String {
        match self {
            FidelityPolicy::Analytic => "analytic".to_string(),
            FidelityPolicy::CycleAccurate => "cycle_accurate".to_string(),
            FidelityPolicy::Auto {
                max_envelope_rel_err,
            } if *max_envelope_rel_err == DEFAULT_MAX_ENVELOPE_REL_ERR => "auto".to_string(),
            FidelityPolicy::Auto {
                max_envelope_rel_err,
            } => format!("auto:{max_envelope_rel_err}"),
        }
    }
}

/// The configuration region one envelope was validated over. Bounds are
/// inclusive: the oracle checked the endpoints themselves, so a point *at*
/// the validated maximum is covered and one beyond it is not.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ValidatedRegion {
    /// Smallest processor (or mesh-node) count checked.
    pub p_min: u64,
    /// Largest processor (or mesh-node) count checked.
    pub p_max: u64,
    /// Smallest size parameter checked (FFT length, block words, row
    /// length — whatever the family's `n` means).
    pub n_min: u64,
    /// Largest size parameter checked.
    pub n_max: u64,
    /// The only fault rate validated (the closed forms model fault-free
    /// fabrics, so this is 0).
    pub fault_rate: f64,
    /// Policies the oracle exercised (`"sca"` for the photonic bus,
    /// routing-policy names for the mesh).
    pub policies: Vec<String>,
}

impl ValidatedRegion {
    /// Whether `point` lies inside this region; `Err` carries the first
    /// violated bound, spelled for a decision audit trail.
    pub fn covers(&self, point: &PointConfig) -> Result<(), String> {
        if point.p < self.p_min || point.p > self.p_max {
            return Err(format!(
                "P={} outside validated [{}, {}]",
                point.p, self.p_min, self.p_max
            ));
        }
        if point.n < self.n_min || point.n > self.n_max {
            return Err(format!(
                "N={} outside validated [{}, {}]",
                point.n, self.n_min, self.n_max
            ));
        }
        if point.fault_rate != self.fault_rate {
            return Err(format!(
                "fault_rate={} not validated (closed forms hold at {})",
                point.fault_rate, self.fault_rate
            ));
        }
        if !self.policies.iter().any(|p| p == &point.policy) {
            return Err(format!(
                "policy {:?} not in validated set {:?}",
                point.policy, self.policies
            ));
        }
        Ok(())
    }
}

/// One machine-checked validation claim: inside `region`, model `family`'s
/// closed form tracks its cycle-accurate fabric within `rel_err`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ValidationEnvelope {
    /// Model family (`model2_eq11`, `model2_eq14`, `mesh_eq21`,
    /// `table3_pscan`).
    pub family: String,
    /// The `bench::crosscheck` check the envelope descends from.
    pub check: String,
    /// The envelope: the crosscheck tolerance the oracle holds the fabric
    /// to inside `region` (0 = exact integer identity).
    pub rel_err: f64,
    /// Where the claim was validated.
    pub region: ValidatedRegion,
    /// Which constant/job pins the claim in CI.
    pub source: String,
}

/// One sweep point, reduced to the coordinates the registry is keyed on.
#[derive(Debug, Clone, PartialEq)]
pub struct PointConfig {
    /// Model family requested (a [`ValidationEnvelope::family`] name).
    pub family: String,
    /// Processor / mesh-node count.
    pub p: u64,
    /// Size parameter (FFT length, block words, row length).
    pub n: u64,
    /// Injected fault rate.
    pub fault_rate: f64,
    /// Delivery policy (`"sca"`, `"Xy"`, `"MinimalAdaptive"`, …).
    pub policy: String,
}

/// The envelope catalog, versioned for the serialized form.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ValidationRegistry {
    /// Schema version of `ci/validation_envelopes.json`.
    pub schema: u32,
    /// Every validated envelope.
    pub envelopes: Vec<ValidationEnvelope>,
}

/// Schema version of the serialized registry.
pub const REGISTRY_SCHEMA_VERSION: u32 = 1;

impl ValidationRegistry {
    /// The in-code catalog: [`crate::crosscheck::envelope_catalog`] under
    /// the current schema version.
    pub fn builtin() -> Self {
        ValidationRegistry {
            schema: REGISTRY_SCHEMA_VERSION,
            envelopes: crate::crosscheck::envelope_catalog(),
        }
    }

    /// The envelope covering `point`, or a reason string explaining the
    /// miss (no such family, or the nearest same-family region bound the
    /// point violates).
    pub fn lookup_with_reason(&self, point: &PointConfig) -> Result<&ValidationEnvelope, String> {
        let mut last_miss = None;
        for env in &self.envelopes {
            if env.family != point.family {
                continue;
            }
            match env.region.covers(point) {
                Ok(()) => return Ok(env),
                Err(miss) => last_miss = Some(miss),
            }
        }
        Err(match last_miss {
            Some(miss) => miss,
            None => format!("no validated envelope for family {:?}", point.family),
        })
    }

    /// Serialize as the committed `ci/validation_envelopes.json` contents
    /// (pretty JSON plus a trailing newline).
    pub fn to_json_pretty(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("registry serializes");
        s.push('\n');
        s
    }

    /// Parse a serialized registry, verifying the schema version.
    ///
    /// # Errors
    /// A message naming the malformed field (the vendored deserializer is
    /// accessor-based, so every field is checked explicitly).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = serde_json::from_str(s).map_err(|e| format!("registry JSON: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("registry.schema must be an integer")?;
        if schema != u64::from(REGISTRY_SCHEMA_VERSION) {
            return Err(format!(
                "registry schema {schema} unsupported (expected {REGISTRY_SCHEMA_VERSION})"
            ));
        }
        let envelopes = v
            .get("envelopes")
            .and_then(Value::as_array)
            .ok_or("registry.envelopes must be an array")?
            .iter()
            .map(parse_envelope)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ValidationRegistry {
            schema: REGISTRY_SCHEMA_VERSION,
            envelopes,
        })
    }

    /// Load and parse the committed registry file, trying the workspace
    /// `ci/` directory first (harness binaries run from the workspace
    /// root) and the crate-relative path second (unit tests run from the
    /// crate directory).
    ///
    /// # Errors
    /// The IO or parse failure, with the path tried.
    pub fn load_committed() -> Result<Self, String> {
        let (contents, path) = read_committed()?;
        Self::from_json(&contents).map_err(|e| format!("{path}: {e}"))
    }
}

/// Relative location of the serialized registry.
pub const REGISTRY_RELATIVE_PATH: &str = "ci/validation_envelopes.json";

/// Read the committed registry bytes and the path they came from.
///
/// # Errors
/// The IO failure for the workspace-root path when neither candidate reads.
pub fn read_committed() -> Result<(String, String), String> {
    let candidates = [
        REGISTRY_RELATIVE_PATH.to_string(),
        format!(
            "{}/../../{REGISTRY_RELATIVE_PATH}",
            env!("CARGO_MANIFEST_DIR")
        ),
    ];
    let mut first_err = None;
    for path in &candidates {
        match std::fs::read_to_string(path) {
            Ok(contents) => return Ok((contents, path.clone())),
            Err(e) => {
                first_err.get_or_insert_with(|| format!("{path}: {e}"));
            }
        }
    }
    Err(first_err.expect("at least one candidate attempted"))
}

fn parse_envelope(v: &Value) -> Result<ValidationEnvelope, String> {
    let field_str = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("envelope.{key} must be a string"))
    };
    let family = field_str("family")?;
    let check = field_str("check")?;
    let rel_err = v
        .get("rel_err")
        .and_then(Value::as_f64)
        .ok_or("envelope.rel_err must be a number")?;
    let r = v.get("region").ok_or("envelope.region missing")?;
    let bound = |key: &str| -> Result<u64, String> {
        r.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("region.{key} must be a non-negative integer"))
    };
    let policies = r
        .get("policies")
        .and_then(Value::as_array)
        .ok_or("region.policies must be an array")?
        .iter()
        .map(|p| {
            p.as_str()
                .map(str::to_string)
                .ok_or_else(|| "region.policies must be strings".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ValidationEnvelope {
        family,
        check,
        rel_err,
        region: ValidatedRegion {
            p_min: bound("p_min")?,
            p_max: bound("p_max")?,
            n_min: bound("n_min")?,
            n_max: bound("n_max")?,
            fault_rate: r
                .get("fault_rate")
                .and_then(Value::as_f64)
                .ok_or("region.fault_rate must be a number")?,
            policies,
        },
        source: field_str("source")?,
    })
}

/// The structured outcome of one fidelity selection — embedded in result
/// rows and recorded in telemetry so every sweep answer is auditable.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FidelityDecision {
    /// The policy the caller asked for, in wire spelling.
    pub requested: String,
    /// What will answer the point: `"analytic"` or `"cycle_accurate"`.
    pub chosen: String,
    /// The point's model family.
    pub family: String,
    /// The validated envelope attached to an analytic answer (`None` on
    /// the cycle-accurate path).
    pub envelope_rel_err: Option<f64>,
    /// Why this fidelity was chosen.
    pub reason: String,
}

impl FidelityDecision {
    /// Whether the analytic fast path answers this point.
    pub fn is_analytic(&self) -> bool {
        self.chosen == "analytic"
    }
}

/// Select the fidelity for `point` under `policy`, consulting `registry`.
///
/// `CycleAccurate` always simulates. `Analytic` and `Auto` answer from the
/// closed form only when a validated envelope covers the point — there is
/// no closed form for unvalidated territory (faulted fabrics, unchecked
/// policies, out-of-range sizes), so both fall back to the simulator with
/// the registry's miss reason in the decision. `Auto` additionally rejects
/// envelopes looser than its ceiling.
pub fn decide(
    policy: FidelityPolicy,
    point: &PointConfig,
    registry: &ValidationRegistry,
) -> FidelityDecision {
    let requested = policy.wire();
    let decision = |chosen: &str, envelope: Option<f64>, reason: String| FidelityDecision {
        requested: requested.clone(),
        chosen: chosen.to_string(),
        family: point.family.clone(),
        envelope_rel_err: envelope,
        reason,
    };
    match policy {
        FidelityPolicy::CycleAccurate => decision(
            "cycle_accurate",
            None,
            "requested cycle_accurate".to_string(),
        ),
        FidelityPolicy::Analytic => match registry.lookup_with_reason(point) {
            Ok(env) => decision(
                "analytic",
                Some(env.rel_err),
                format!("validated by {} (envelope {:.0e})", env.check, env.rel_err),
            ),
            Err(miss) => decision(
                "cycle_accurate",
                None,
                format!("no closed form applies: {miss}"),
            ),
        },
        FidelityPolicy::Auto {
            max_envelope_rel_err,
        } => match registry.lookup_with_reason(point) {
            Ok(env) if env.rel_err <= max_envelope_rel_err => decision(
                "analytic",
                Some(env.rel_err),
                format!("validated by {} (envelope {:.0e})", env.check, env.rel_err),
            ),
            Ok(env) => decision(
                "cycle_accurate",
                None,
                format!(
                    "envelope {:.0e} looser than auto ceiling {max_envelope_rel_err:.0e}",
                    env.rel_err
                ),
            ),
            Err(miss) => decision(
                "cycle_accurate",
                None,
                format!("outside validation: {miss}"),
            ),
        },
    }
}

/// Record `decision` in `registry` as a labeled counter
/// (`fidelity.decision{chosen=..,family=..,requested=..}`), so a traced
/// sweep exposes its fast-path/fallback mix as metrics.
pub fn record_decision(registry: &Registry, decision: &FidelityDecision) {
    registry.counter_add_labeled(
        "fidelity.decision",
        &[
            ("chosen", decision.chosen.clone()),
            ("family", decision.family.clone()),
            ("requested", decision.requested.clone()),
        ],
        1,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model2_point_at(p: u64, n: u64) -> PointConfig {
        PointConfig {
            family: "model2_eq11".to_string(),
            p,
            n,
            fault_rate: 0.0,
            policy: "sca".to_string(),
        }
    }

    #[test]
    fn policy_wire_round_trips() {
        for s in ["analytic", "cycle_accurate", "auto", "auto:0.1"] {
            let p = FidelityPolicy::parse(s).unwrap();
            assert_eq!(p.wire(), s, "round trip {s}");
            assert_eq!(FidelityPolicy::parse(&p.wire()).unwrap(), p);
        }
        assert_eq!(
            FidelityPolicy::parse("auto:0.5").unwrap(),
            FidelityPolicy::auto(),
            "the default ceiling spelled explicitly is the same policy"
        );
    }

    #[test]
    fn policy_rejects_bad_spellings() {
        for bad in ["quantum", "auto:", "auto:nan", "auto:-1", "Analytic"] {
            assert!(FidelityPolicy::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn builtin_registry_serializes_and_reparses_identically() {
        let reg = ValidationRegistry::builtin();
        let json = reg.to_json_pretty();
        let back = ValidationRegistry::from_json(&json).expect("round trip");
        assert_eq!(back, reg);
    }

    #[test]
    fn committed_registry_matches_builtin_byte_for_byte() {
        // The machine check: ci/validation_envelopes.json is generated from
        // the in-code catalog (`full_matrix --write-envelopes`) and must
        // never drift from it.
        let (committed, path) = read_committed().expect("committed registry readable");
        assert_eq!(
            committed,
            ValidationRegistry::builtin().to_json_pretty(),
            "{path} is stale — regenerate with \
             `cargo run -p bench --bin full_matrix -- --write-envelopes`"
        );
        let parsed = ValidationRegistry::load_committed().expect("parses");
        assert_eq!(parsed, ValidationRegistry::builtin());
    }

    #[test]
    fn from_json_names_the_malformed_field() {
        assert!(ValidationRegistry::from_json("{}")
            .unwrap_err()
            .contains("schema"));
        assert!(
            ValidationRegistry::from_json(r#"{"schema":99,"envelopes":[]}"#)
                .unwrap_err()
                .contains("schema 99")
        );
        assert!(
            ValidationRegistry::from_json(r#"{"schema":1,"envelopes":[{}]}"#)
                .unwrap_err()
                .contains("family")
        );
        assert!(ValidationRegistry::from_json("not json").is_err());
    }

    #[test]
    fn region_bounds_are_inclusive() {
        let reg = ValidationRegistry::builtin();
        let env = reg
            .lookup_with_reason(&model2_point_at(16, 1024))
            .expect("the validated maximum is covered");
        assert_eq!(env.family, "model2_eq11");
        assert!(reg.lookup_with_reason(&model2_point_at(32, 1024)).is_err());
        assert!(reg.lookup_with_reason(&model2_point_at(16, 2048)).is_err());
    }

    #[test]
    fn auto_decisions_cover_all_outcomes() {
        let reg = ValidationRegistry::builtin();
        // In-region, tight envelope: analytic with the error bar attached.
        let d = decide(FidelityPolicy::auto(), &model2_point_at(8, 64), &reg);
        assert!(d.is_analytic());
        assert_eq!(d.envelope_rel_err, Some(crate::crosscheck::TOL_ALGEBRAIC));
        // Out of region: fallback with the violated bound in the reason.
        let d = decide(FidelityPolicy::auto(), &model2_point_at(512, 64), &reg);
        assert!(!d.is_analytic());
        assert!(d.reason.contains("P=512"), "{}", d.reason);
        // Envelope looser than the ceiling: fallback names both numbers.
        let mesh = PointConfig {
            family: "mesh_eq21".to_string(),
            p: 64,
            n: 16,
            fault_rate: 0.0,
            policy: "Xy".to_string(),
        };
        let d = decide(
            FidelityPolicy::Auto {
                max_envelope_rel_err: 0.1,
            },
            &mesh,
            &reg,
        );
        assert!(!d.is_analytic());
        assert!(d.reason.contains("looser"), "{}", d.reason);
        // Forced cycle-accurate never consults the registry.
        let d = decide(FidelityPolicy::CycleAccurate, &model2_point_at(8, 64), &reg);
        assert!(!d.is_analytic());
        assert_eq!(d.envelope_rel_err, None);
    }

    #[test]
    fn forced_analytic_still_falls_back_without_validation() {
        // There is no closed form for a faulted fabric; Analytic cannot
        // conjure one, so the decision documents the forced fallback.
        let reg = ValidationRegistry::builtin();
        let faulted = PointConfig {
            fault_rate: 1e-2,
            ..model2_point_at(8, 64)
        };
        let d = decide(FidelityPolicy::Analytic, &faulted, &reg);
        assert!(!d.is_analytic());
        assert!(d.reason.contains("fault_rate"), "{}", d.reason);
    }

    #[test]
    fn decisions_land_in_telemetry() {
        let reg = ValidationRegistry::builtin();
        let telemetry = Registry::new();
        let d = decide(FidelityPolicy::auto(), &model2_point_at(8, 64), &reg);
        record_decision(&telemetry, &d);
        record_decision(&telemetry, &d);
        let json = telemetry.metrics_json();
        assert!(
            json.contains("fidelity.decision{chosen=analytic,family=model2_eq11,requested=auto}"),
            "{json}"
        );
    }
}
