//! Typed experiment job specifications shared by the standalone harness
//! binaries, the supervised batch driver (`run_batch`), and the experiment
//! daemon (`psyncd`).
//!
//! [`JobSpec`] is the one request surface: a versioned
//! ([`SCHEMA_VERSION`]) enum covering every experiment family the
//! supervision layer can route —
//!
//! * **`table3`** — the Table III transpose (PSCAN closed form plus the
//!   `t_p = 1`/`t_p = 4` mesh simulations), the reference workload whose
//!   supervised result file is byte-identical to the direct
//!   `table3_transpose` bin;
//! * **`perf_mesh`** — one mesh transpose at a chosen routing policy and
//!   thread count, reduced to its deterministic witness (cycles and flit
//!   moves; the `perf_mesh` bin adds wall-clock around the same core);
//! * **`ablate_faults`** — the fault-rate degradation sweep over both
//!   fabrics (shared point functions with the `ablate_faults` bin);
//! * **`crosscheck_models`** — the Eq. 11/14 conformance checks of the
//!   cycle-accurate Model II machine against the §V closed forms;
//! * **`full_matrix`** — the complete 21-row ablation matrix under the
//!   multi-fidelity engine ([`crate::fidelity`]): each row answered from
//!   the validated closed form where an envelope covers it, simulated
//!   where not, with a [`crate::fidelity::FidelityDecision`] on every row;
//! * **`collectives`** — all-to-all / all-gather / all-reduce traffic on
//!   both fabrics over a chosen mesh/torus geometry (shared cores with the
//!   `collectives` bin).
//!
//! Every family's result is a deterministic JSON document, which is what
//! makes the exact result cache ([`crate::cache`]) sound: the cache key is
//! [`JobSpec::canonical_json`] (plus the deadline bits), and a hit returns
//! the exact bytes a fresh run would have produced.
//!
//! [`supervised_work`] packages a spec as a [`crate::supervisor`] job body
//! with cache lookup, per-job cancellation, and partial-progress
//! reporting — the single code path `run_batch` and `psyncd` both route
//! through.

use std::sync::Arc;

use analytic::surrogate::{
    mesh_scatter_cycles, model2_point, table3_writeback_cycles, Model2TimingParams,
};
use analytic::table3::{
    table3_pscan_cycles, Table3Params, PAPER_MESH_WRITEBACK_TP1, PAPER_MESH_WRITEBACK_TP4,
};
use emesh::collectives::run_mesh_collective;
use emesh::energy::OrionParams;
use emesh::mesh::{MeshConfig, MeshError, RoutingPolicy};
use emesh::topology::{MemifPlacement, Topology};
use emesh::workloads::{load_scatter, load_transpose};
use emesh::{MeshFaultConfig, MeshFaultStats};
use fft::Complex64;
use pscan::compiler::GatherSpec;
use pscan::faults::PscanFaultConfig;
use pscan::network::{Pscan, PscanConfig};
use psync::collectives::run_sca_collective;
use psync::machine::{Machine, MachineConfig, MachineError};
use rayon::prelude::*;
use serde::{Serialize, Value};
use sim_core::cancel::{CancelToken, Interrupt, Progress};
use sim_core::collective::Collective;
use sim_core::telemetry::Registry;

use crate::cache::{fnv1a64, ResultCache};
use crate::fidelity::{
    decide, record_decision, FidelityDecision, FidelityPolicy, PointConfig, ValidationRegistry,
};
use crate::supervisor::{JobSuccess, Work, WorkError};

/// Version of the [`JobSpec`] request schema. Bumped when a field changes
/// meaning; embedded in [`JobSpec::canonical_json`] so cache keys from
/// different schema generations can never collide.
///
/// v2: the `full_matrix` family and its `fidelity` field — results now
/// depend on the fidelity policy, so specs carrying one must never share a
/// cache generation with v1 keys that could not express it.
///
/// v3: the `collectives` family (all-to-all / all-gather / all-reduce over
/// both fabrics) and rectangular/torus geometry fields. Purely additive:
/// every schema-2 request body still parses (see the
/// `schema2_requests_still_parse` test), but cache generations must not mix.
pub const SCHEMA_VERSION: u32 = 3;

// ---------------------------------------------------------------------------
// Per-family specifications
// ---------------------------------------------------------------------------

/// The Table III workload configuration: everything that determines the
/// resulting cycle counts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table3Spec {
    /// Mesh/PSCAN processor count `P` (a perfect square for the mesh).
    pub procs: usize,
    /// Samples per processor row, `N`.
    pub row_len: usize,
    /// Worker threads for the deterministic parallel mesh scheduler.
    /// Results are bit-identical for any value.
    pub threads: usize,
}

/// Deprecated name of [`Table3Spec`], kept so external callers get a
/// warning, not a break.
#[deprecated(since = "0.2.0", note = "renamed to Table3Spec (JobSpec redesign)")]
pub type Table3Config = Table3Spec;

impl Table3Spec {
    /// The `--quick` configuration (256 processors, 256-sample rows).
    pub fn quick() -> Self {
        Table3Spec {
            procs: 256,
            row_len: 256,
            threads: 1,
        }
    }

    /// The full paper configuration (P = 1024, N = 1024).
    pub fn paper() -> Self {
        Table3Spec {
            procs: 1024,
            row_len: 1024,
            threads: 1,
        }
    }

    /// Canonical JSON of this spec alone (the [`JobSpec::canonical_json`]
    /// envelope adds the schema version and family tag).
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("Table3Spec serializes")
    }
}

/// One mesh-transpose performance point, reduced to deterministic fields.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PerfMeshSpec {
    /// Mesh processor count (a perfect square).
    pub procs: usize,
    /// Samples per processor row.
    pub row_len: usize,
    /// Routing policy: `"MinimalAdaptive"` or `"Xy"`.
    pub policy: String,
    /// Memory port service time `t_p`.
    pub t_p: u64,
    /// Worker threads (bit-identical results for any value).
    pub threads: usize,
}

impl PerfMeshSpec {
    /// The `--quick` configuration.
    pub fn quick() -> Self {
        PerfMeshSpec {
            procs: 256,
            row_len: 256,
            policy: "MinimalAdaptive".to_string(),
            t_p: 1,
            threads: 1,
        }
    }

    /// The full paper-scale configuration (the 2²⁰-element transpose).
    pub fn paper() -> Self {
        PerfMeshSpec {
            procs: 1024,
            row_len: 1024,
            ..PerfMeshSpec::quick()
        }
    }

    /// Parse the policy string.
    pub fn routing_policy(&self) -> Result<RoutingPolicy, String> {
        match self.policy.as_str() {
            "MinimalAdaptive" | "minimal_adaptive" => Ok(RoutingPolicy::MinimalAdaptive),
            "Xy" | "xy" => Ok(RoutingPolicy::Xy),
            other => Err(format!(
                "unknown routing policy {other:?} (expected MinimalAdaptive or Xy)"
            )),
        }
    }
}

/// The fault-injection degradation sweep over both fabrics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AblateFaultsSpec {
    /// Word/flit error probabilities to sweep, each in `[0, 1)`.
    pub rates: Vec<f64>,
    /// Mesh processor count for the transpose (a perfect square).
    pub procs: usize,
    /// Samples per processor row.
    pub row_len: usize,
    /// SCA writeback bursts on the photonic machine.
    pub gathers: usize,
    /// Mesh worker threads.
    pub threads: usize,
}

impl AblateFaultsSpec {
    /// The `--quick` configuration the `ablate_faults` bin uses.
    pub fn quick() -> Self {
        AblateFaultsSpec {
            rates: FAULT_RATES.to_vec(),
            procs: 16,
            row_len: 16,
            gathers: 4,
            threads: 1,
        }
    }

    /// The full configuration the `ablate_faults` bin uses.
    pub fn paper() -> Self {
        AblateFaultsSpec {
            procs: 64,
            row_len: 64,
            gathers: 16,
            ..AblateFaultsSpec::quick()
        }
    }
}

/// The Eq. 11/14 conformance check: the overlapped Model II machine vs the
/// §V closed forms, at a grid of block counts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CrosscheckSpec {
    /// Processor count.
    pub procs: usize,
    /// Samples per row.
    pub n: usize,
    /// Blocks-per-row values to check.
    pub ks: Vec<usize>,
}

impl CrosscheckSpec {
    /// The `--quick` grid the `crosscheck_models` bin uses for check 1.
    pub fn quick() -> Self {
        CrosscheckSpec {
            procs: 8,
            n: 64,
            ks: vec![1, 4, 8],
        }
    }

    /// The full grid the `crosscheck_models` bin uses for check 1.
    pub fn paper() -> Self {
        CrosscheckSpec {
            procs: 16,
            n: 1024,
            ks: vec![1, 8, 64],
        }
    }
}

/// The 21-row ablation matrix under the multi-fidelity engine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FullMatrixSpec {
    /// Point sizing: `"quick"` (per-PR) or `"paper"` (full scale).
    pub scale: String,
    /// Fidelity policy, in [`FidelityPolicy::parse`] spelling
    /// (`analytic` / `cycle_accurate` / `auto` / `auto:<rel_err>`). Part
    /// of the canonical JSON, so runs at different fidelities can never
    /// share a cache entry.
    pub fidelity: String,
    /// Also run the all-cycle-accurate reference pass and attach
    /// per-row disagreement columns.
    pub reference: bool,
}

impl FullMatrixSpec {
    /// The `--quick` configuration: small points, Auto fidelity, with the
    /// cycle-accurate reference pass (cheap at this scale, and it is what
    /// lets CI assert every analytic row sits inside its envelope).
    pub fn quick() -> Self {
        FullMatrixSpec {
            scale: "quick".to_string(),
            fidelity: "auto".to_string(),
            reference: true,
        }
    }

    /// The full-scale configuration: paper-size points, Auto fidelity, no
    /// reference pass — the whole point is that full scale no longer costs
    /// a full simulation sweep.
    pub fn paper() -> Self {
        FullMatrixSpec {
            scale: "paper".to_string(),
            fidelity: "auto".to_string(),
            reference: false,
        }
    }

    /// Parse the fidelity field.
    pub fn policy(&self) -> Result<FidelityPolicy, String> {
        FidelityPolicy::parse(&self.fidelity)
    }
}

/// The collective-traffic comparison: all three collectives on both
/// fabrics over one mesh/torus geometry.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CollectivesSpec {
    /// Mesh width (columns).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Wrap the mesh edges into a torus.
    pub torus: bool,
    /// Payload words per node per block.
    pub words: usize,
    /// Mesh worker threads (bit-identical results for any value).
    pub threads: usize,
}

impl CollectivesSpec {
    /// The `--quick` configuration (4×4 mesh, 4-word blocks).
    pub fn quick() -> Self {
        CollectivesSpec {
            width: 4,
            height: 4,
            torus: false,
            words: 4,
            threads: 1,
        }
    }

    /// The full configuration (16×16 mesh, 64-word blocks).
    pub fn paper() -> Self {
        CollectivesSpec {
            width: 16,
            height: 16,
            words: 64,
            ..CollectivesSpec::quick()
        }
    }

    /// The mesh topology this spec describes (memory interface in the
    /// single corner, as in the Table III runs).
    pub fn topology(&self) -> Topology {
        Topology::rect(self.width, self.height, MemifPlacement::SingleCorner).with_torus(self.torus)
    }
}

// ---------------------------------------------------------------------------
// The unified JobSpec enum
// ---------------------------------------------------------------------------

/// A typed experiment request: one variant per routable experiment family.
///
/// This is the single request surface shared by `run_batch`, the `psyncd`
/// daemon, and the direct harness binaries — anything that can run under
/// the supervisor pool is expressed as a `JobSpec`.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// The Table III transpose (reference workload).
    Table3(Table3Spec),
    /// One deterministic mesh performance point.
    PerfMesh(PerfMeshSpec),
    /// The fault-rate degradation sweep.
    AblateFaults(AblateFaultsSpec),
    /// The Model II conformance checks.
    CrosscheckModels(CrosscheckSpec),
    /// The 21-row multi-fidelity ablation matrix.
    FullMatrix(FullMatrixSpec),
    /// The collective-traffic comparison on both fabrics.
    Collectives(CollectivesSpec),
}

impl JobSpec {
    /// The wire name of this spec's experiment family.
    pub fn family(&self) -> &'static str {
        match self {
            JobSpec::Table3(_) => "table3",
            JobSpec::PerfMesh(_) => "perf_mesh",
            JobSpec::AblateFaults(_) => "ablate_faults",
            JobSpec::CrosscheckModels(_) => "crosscheck_models",
            JobSpec::FullMatrix(_) => "full_matrix",
            JobSpec::Collectives(_) => "collectives",
        }
    }

    /// Every routable family name, in wire spelling.
    pub const FAMILIES: [&'static str; 6] = [
        "table3",
        "perf_mesh",
        "ablate_faults",
        "crosscheck_models",
        "full_matrix",
        "collectives",
    ];

    /// The preset spec for `family`: the quick or full configuration the
    /// corresponding harness bin runs. `None` for an unknown family.
    pub fn preset(family: &str, quick: bool) -> Option<JobSpec> {
        let spec = match family {
            "table3" => JobSpec::Table3(if quick {
                Table3Spec::quick()
            } else {
                Table3Spec::paper()
            }),
            "perf_mesh" => JobSpec::PerfMesh(if quick {
                PerfMeshSpec::quick()
            } else {
                PerfMeshSpec::paper()
            }),
            "ablate_faults" => JobSpec::AblateFaults(if quick {
                AblateFaultsSpec::quick()
            } else {
                AblateFaultsSpec::paper()
            }),
            "crosscheck_models" => JobSpec::CrosscheckModels(if quick {
                CrosscheckSpec::quick()
            } else {
                CrosscheckSpec::paper()
            }),
            "full_matrix" => JobSpec::FullMatrix(if quick {
                FullMatrixSpec::quick()
            } else {
                FullMatrixSpec::paper()
            }),
            "collectives" => JobSpec::Collectives(if quick {
                CollectivesSpec::quick()
            } else {
                CollectivesSpec::paper()
            }),
            _ => return None,
        };
        Some(spec)
    }

    /// Canonical JSON for config hashing and the wire: a versioned envelope
    /// with a stable field order, so equal specs always serialize to equal
    /// bytes.
    pub fn canonical_json(&self) -> String {
        let spec = match self {
            JobSpec::Table3(s) => serde_json::to_string(s),
            JobSpec::PerfMesh(s) => serde_json::to_string(s),
            JobSpec::AblateFaults(s) => serde_json::to_string(s),
            JobSpec::CrosscheckModels(s) => serde_json::to_string(s),
            JobSpec::FullMatrix(s) => serde_json::to_string(s),
            JobSpec::Collectives(s) => serde_json::to_string(s),
        }
        .expect("job specs serialize");
        format!(
            "{{\"schema\":{SCHEMA_VERSION},\"family\":\"{}\",\"spec\":{spec}}}",
            self.family()
        )
    }

    /// Parse a spec from a decoded JSON object, e.g. the `spec` field of a
    /// daemon `submit` request:
    ///
    /// ```json
    /// {"family": "table3", "preset": "quick", "procs": 64, "row_len": 16}
    /// ```
    ///
    /// `family` selects the variant; the optional `preset`
    /// (`"quick"`/`"paper"`, default quick) supplies defaults; any known
    /// field then overrides its default. Unknown fields are **ignored** —
    /// newer clients can decorate requests without breaking older daemons.
    ///
    /// # Errors
    /// A human-readable message naming the offending field (surfaced on the
    /// wire as a `bad_spec` error).
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        if v.as_object().is_none() {
            return Err("spec must be a JSON object".to_string());
        }
        let family = v
            .get("family")
            .and_then(Value::as_str)
            .ok_or_else(|| "spec.family must be a string".to_string())?;
        let quick = match v.get("preset").and_then(Value::as_str) {
            None => true,
            Some("quick") => true,
            Some("paper") | Some("full") => false,
            Some(other) => {
                return Err(format!(
                    "spec.preset {other:?} unknown (expected \"quick\" or \"paper\")"
                ))
            }
        };
        let mut spec = JobSpec::preset(family, quick).ok_or_else(|| {
            format!(
                "unknown family {family:?} (expected one of {:?})",
                JobSpec::FAMILIES
            )
        })?;
        let usize_field = |key: &str, default: usize| -> Result<usize, String> {
            match v.get(key) {
                None => Ok(default),
                Some(f) => f
                    .as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| format!("spec.{key} must be a non-negative integer")),
            }
        };
        match &mut spec {
            JobSpec::Table3(s) => {
                s.procs = usize_field("procs", s.procs)?;
                s.row_len = usize_field("row_len", s.row_len)?;
                s.threads = usize_field("threads", s.threads)?;
            }
            JobSpec::PerfMesh(s) => {
                s.procs = usize_field("procs", s.procs)?;
                s.row_len = usize_field("row_len", s.row_len)?;
                s.threads = usize_field("threads", s.threads)?;
                if let Some(t) = v.get("t_p") {
                    s.t_p = t
                        .as_u64()
                        .ok_or_else(|| "spec.t_p must be a non-negative integer".to_string())?;
                }
                if let Some(p) = v.get("policy") {
                    s.policy = p
                        .as_str()
                        .ok_or_else(|| "spec.policy must be a string".to_string())?
                        .to_string();
                }
            }
            JobSpec::AblateFaults(s) => {
                s.procs = usize_field("procs", s.procs)?;
                s.row_len = usize_field("row_len", s.row_len)?;
                s.gathers = usize_field("gathers", s.gathers)?;
                s.threads = usize_field("threads", s.threads)?;
                if let Some(r) = v.get("rates") {
                    let items = r
                        .as_array()
                        .ok_or_else(|| "spec.rates must be an array of numbers".to_string())?;
                    s.rates = items
                        .iter()
                        .map(|x| {
                            x.as_f64()
                                .ok_or_else(|| "spec.rates must be an array of numbers".to_string())
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            JobSpec::FullMatrix(s) => {
                if let Some(f) = v.get("fidelity") {
                    s.fidelity = f
                        .as_str()
                        .ok_or_else(|| "spec.fidelity must be a string".to_string())?
                        .to_string();
                }
                if let Some(r) = v.get("reference") {
                    s.reference = r
                        .as_bool()
                        .ok_or_else(|| "spec.reference must be a boolean".to_string())?;
                }
                // `scale` follows the preset; an explicit field overrides.
                if let Some(sc) = v.get("scale") {
                    s.scale = sc
                        .as_str()
                        .ok_or_else(|| "spec.scale must be a string".to_string())?
                        .to_string();
                }
            }
            JobSpec::Collectives(s) => {
                s.width = usize_field("width", s.width)?;
                s.height = usize_field("height", s.height)?;
                s.words = usize_field("words", s.words)?;
                s.threads = usize_field("threads", s.threads)?;
                if let Some(t) = v.get("torus") {
                    s.torus = t
                        .as_bool()
                        .ok_or_else(|| "spec.torus must be a boolean".to_string())?;
                }
            }
            JobSpec::CrosscheckModels(s) => {
                s.procs = usize_field("procs", s.procs)?;
                s.n = usize_field("n", s.n)?;
                if let Some(k) = v.get("ks") {
                    let items = k
                        .as_array()
                        .ok_or_else(|| "spec.ks must be an array of integers".to_string())?;
                    s.ks = items
                        .iter()
                        .map(|x| {
                            x.as_u64()
                                .and_then(|n| usize::try_from(n).ok())
                                .ok_or_else(|| {
                                    "spec.ks must be an array of non-negative integers".to_string()
                                })
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Reject configurations the fabrics would panic on, so a bad request
    /// is a structured error instead of a `Panicked` job report.
    pub fn validate(&self) -> Result<(), String> {
        let mesh_geometry = |procs: usize, row_len: usize, threads: usize| {
            if procs == 0 || row_len == 0 {
                return Err("procs and row_len must be positive".to_string());
            }
            let side = (procs as f64).sqrt() as usize;
            if side * side != procs {
                return Err(format!("procs must be a perfect square, got {procs}"));
            }
            if threads == 0 {
                return Err("threads must be at least 1".to_string());
            }
            Ok(())
        };
        match self {
            JobSpec::Table3(s) => mesh_geometry(s.procs, s.row_len, s.threads),
            JobSpec::PerfMesh(s) => {
                mesh_geometry(s.procs, s.row_len, s.threads)?;
                s.routing_policy().map(|_| ())
            }
            JobSpec::AblateFaults(s) => {
                mesh_geometry(s.procs, s.row_len, s.threads)?;
                if s.gathers == 0 {
                    return Err("gathers must be at least 1".to_string());
                }
                if s.rates.is_empty() {
                    return Err("rates must be non-empty".to_string());
                }
                for &r in &s.rates {
                    if !r.is_finite() || !(0.0..1.0).contains(&r) {
                        return Err(format!("rates must be finite in [0, 1), got {r}"));
                    }
                }
                Ok(())
            }
            JobSpec::CrosscheckModels(s) => {
                if s.procs == 0 || s.n == 0 {
                    return Err("procs and n must be positive".to_string());
                }
                if !s.n.is_power_of_two() {
                    return Err(format!("n must be a power of two, got {}", s.n));
                }
                if s.ks.is_empty() {
                    return Err("ks must be non-empty".to_string());
                }
                for &k in &s.ks {
                    if k == 0 || k > s.n || !k.is_power_of_two() {
                        return Err(format!(
                            "each k must be a power of two in [1, n={}], got {k}",
                            s.n
                        ));
                    }
                }
                Ok(())
            }
            JobSpec::FullMatrix(s) => {
                if s.scale != "quick" && s.scale != "paper" {
                    return Err(format!(
                        "scale must be \"quick\" or \"paper\", got {:?}",
                        s.scale
                    ));
                }
                s.policy().map(|_| ()).map_err(|e| format!("fidelity: {e}"))
            }
            JobSpec::Collectives(s) => {
                if s.width < 2 || s.height < 2 {
                    return Err(format!(
                        "width and height must each be at least 2 (a corner memif \
                         must leave collective participants), got {}x{}",
                        s.width, s.height
                    ));
                }
                if s.words == 0 {
                    return Err("words must be at least 1".to_string());
                }
                if s.threads == 0 {
                    return Err("threads must be at least 1".to_string());
                }
                Ok(())
            }
        }
    }

    /// Run the experiment this spec describes to its deterministic result
    /// JSON (the bytes the cache stores and the daemon streams), plus any
    /// telemetry registries when `tracing`.
    ///
    /// # Errors
    /// A classified [`WorkError`]: `Cancelled` when the interrupt fired,
    /// `Transient` for conditions worth a retry (mesh no-progress
    /// watchdog), `Fatal` for everything else.
    pub fn run(
        &self,
        tracing: bool,
        interrupt: Option<&Interrupt>,
    ) -> Result<(String, Vec<Registry>), WorkError> {
        match self {
            JobSpec::Table3(s) => {
                let (row, regs) = run_table3(s, tracing, interrupt).map_err(classify_mesh)?;
                let json = serde_json::to_string_pretty(&row).map_err(serialize_err)?;
                Ok((json, regs))
            }
            JobSpec::PerfMesh(s) => {
                let policy = s
                    .routing_policy()
                    .map_err(|detail| WorkError::Fatal { detail })?;
                let point =
                    perf_mesh_point(s.procs, s.row_len, policy, s.t_p, s.threads, interrupt)
                        .map_err(classify_mesh)?;
                let row = PerfMeshRow {
                    procs: s.procs,
                    row_len: s.row_len,
                    elements: s.procs * s.row_len,
                    policy: s.policy.clone(),
                    t_p: s.t_p,
                    threads: s.threads,
                    cycles: point.cycles,
                    flit_moves: point.flit_moves,
                };
                let json = serde_json::to_string_pretty(&row).map_err(serialize_err)?;
                Ok((json, Vec::new()))
            }
            JobSpec::AblateFaults(s) => {
                let points = run_ablate_faults(s, interrupt)?;
                let json = serde_json::to_string_pretty(&points).map_err(serialize_err)?;
                Ok((json, Vec::new()))
            }
            JobSpec::CrosscheckModels(s) => {
                let rows = run_crosscheck_model2(s, interrupt)?;
                let json = serde_json::to_string_pretty(&rows).map_err(serialize_err)?;
                Ok((json, Vec::new()))
            }
            JobSpec::FullMatrix(s) => {
                let reg = tracing.then(Registry::new);
                let (result, _timing) = run_full_matrix(s, interrupt, reg.as_ref())?;
                let json = serde_json::to_string_pretty(&result).map_err(serialize_err)?;
                Ok((json, reg.into_iter().collect()))
            }
            JobSpec::Collectives(s) => {
                let (rows, regs) = run_collectives(s, tracing, interrupt)?;
                let json = serde_json::to_string_pretty(&rows).map_err(serialize_err)?;
                Ok((json, regs))
            }
        }
    }
}

/// Classify a fabric error for the retry policy.
fn classify_mesh(e: MeshError) -> WorkError {
    match &e {
        MeshError::Cancelled { .. } => WorkError::Cancelled {
            detail: e.to_string(),
        },
        // A mesh that deadlocks or trips its watchdog under a fault layer
        // is worth one more try; real bugs fail again identically.
        MeshError::NoProgress { .. } => WorkError::Transient {
            detail: e.to_string(),
        },
        _ => WorkError::Fatal {
            detail: e.to_string(),
        },
    }
}

fn classify_machine(e: MachineError) -> WorkError {
    match &e {
        MachineError::Cancelled { .. } => WorkError::Cancelled {
            detail: e.to_string(),
        },
        _ => WorkError::Fatal {
            detail: e.to_string(),
        },
    }
}

fn serialize_err(e: serde_json::Error) -> WorkError {
    WorkError::Fatal {
        detail: format!("serialize result rows: {e}"),
    }
}

// ---------------------------------------------------------------------------
// table3 family
// ---------------------------------------------------------------------------

/// One Table III result row, serialized to `results/table3.json` (direct
/// run) or `results/batch/table3.json` (supervised run) — the field set and
/// order are the byte-identity contract between the two paths.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Processor count.
    pub procs: usize,
    /// Samples per row.
    pub row_len: usize,
    /// PSCAN SCA writeback, closed form Eq. (23)/(24).
    pub pscan_cycles: u64,
    /// Simulated mesh writeback at `t_p = 1`.
    pub mesh_cycles_tp1: u64,
    /// Simulated mesh writeback at `t_p = 4`.
    pub mesh_cycles_tp4: u64,
    /// `mesh_cycles_tp1 / pscan_cycles`.
    pub multiplier_tp1: f64,
    /// `mesh_cycles_tp4 / pscan_cycles`.
    pub multiplier_tp4: f64,
    /// The paper's Table III multiplier at `t_p = 1`.
    pub paper_multiplier_tp1: f64,
    /// The paper's Table III multiplier at `t_p = 4`.
    pub paper_multiplier_tp4: f64,
}

/// Simulate the mesh transpose writeback at `t_p`, optionally instrumented
/// and optionally under an interrupt (cancellation surfaces as
/// [`MeshError::Cancelled`]).
pub fn mesh_transpose_cycles(
    cfg: &Table3Spec,
    t_p: u64,
    tracing: bool,
    interrupt: Option<&Interrupt>,
) -> Result<(u64, Option<Registry>), MeshError> {
    let mesh_cfg = MeshConfig::table3(cfg.procs, t_p).with_threads(cfg.threads);
    let mut mesh = load_transpose(mesh_cfg, cfg.procs, cfg.row_len);
    if tracing {
        mesh.enable_telemetry();
    }
    if let Some(intr) = interrupt {
        mesh.set_interrupt(intr.clone());
    }
    let res = mesh.run()?;
    let s = res.memif_stats[0];
    assert_eq!(
        s.elements as usize,
        cfg.procs * cfg.row_len,
        "lost elements"
    );
    Ok((res.cycles, mesh.take_telemetry()))
}

/// Run the complete Table III workload: the PSCAN closed form plus the two
/// mesh simulations (`t_p = 1` and `t_p = 4`, in parallel), assembled into
/// the canonical row.
///
/// With `interrupt` installed, each mesh polls its own clone; a deadline or
/// token cancels both, and the `t_p = 1` error is the one reported (index
/// order, so the failure is deterministic). Telemetry registries (when
/// `tracing`) come back alongside the row in `t_p` order.
pub fn run_table3(
    cfg: &Table3Spec,
    tracing: bool,
    interrupt: Option<&Interrupt>,
) -> Result<(Table3Row, Vec<Registry>), MeshError> {
    let params = Table3Params {
        n: cfg.row_len as u64,
        p: cfg.procs as u64,
        ..Default::default()
    };
    let pscan = params.pscan_cycles();

    // The two t_p points are independent simulations: run them in parallel.
    let mesh_runs: Vec<Result<(u64, Option<Registry>), MeshError>> = [1u64, 4]
        .into_par_iter()
        .map(|t_p| {
            eprintln!(
                "simulating mesh transpose (P = {}, N = {}, t_p = {t_p})...",
                cfg.procs, cfg.row_len
            );
            // Trace only the t_p = 1 run: one fully-instrumented mesh is
            // what the trace viewer wants, not two interleaved ones.
            mesh_transpose_cycles(cfg, t_p, tracing && t_p == 1, interrupt)
        })
        .collect();
    let mut cycles = Vec::new();
    let mut registries = Vec::new();
    for run in mesh_runs {
        let (c, reg) = run?;
        cycles.push(c);
        registries.extend(reg);
    }
    let (mesh1, mesh4) = (cycles[0], cycles[1]);

    let row = Table3Row {
        procs: cfg.procs,
        row_len: cfg.row_len,
        pscan_cycles: pscan,
        mesh_cycles_tp1: mesh1,
        mesh_cycles_tp4: mesh4,
        multiplier_tp1: mesh1 as f64 / pscan as f64,
        multiplier_tp4: mesh4 as f64 / pscan as f64,
        paper_multiplier_tp1: PAPER_MESH_WRITEBACK_TP1 as f64 / table3_pscan_cycles() as f64,
        paper_multiplier_tp4: PAPER_MESH_WRITEBACK_TP4 as f64 / table3_pscan_cycles() as f64,
    };
    Ok((row, registries))
}

// ---------------------------------------------------------------------------
// perf_mesh family
// ---------------------------------------------------------------------------

/// Deterministic witness of one mesh performance point.
#[derive(Debug, Clone, Serialize)]
pub struct PerfMeshRow {
    /// Processor count.
    pub procs: usize,
    /// Samples per row.
    pub row_len: usize,
    /// Total elements moved.
    pub elements: usize,
    /// Routing policy name.
    pub policy: String,
    /// Memory port service time.
    pub t_p: u64,
    /// Worker threads.
    pub threads: usize,
    /// Simulated completion cycles.
    pub cycles: u64,
    /// Router traversals (the scheduler-work witness).
    pub flit_moves: u64,
}

/// Measured core of one `perf_mesh` point: deterministic witness plus the
/// wall-clock of the `run()` call (construction excluded, matching the
/// `perf_mesh` bin's historical timing window).
#[derive(Debug, Clone, Copy)]
pub struct MeshPerfPoint {
    /// Simulated completion cycles (bit-identical for any thread count).
    pub cycles: u64,
    /// Router traversals.
    pub flit_moves: u64,
    /// Wall-clock seconds of the simulation itself.
    pub wall_s: f64,
}

/// Run one mesh transpose and report its deterministic witness and wall
/// time. Shared by the `perf_mesh` bin and the `perf_mesh` job family.
pub fn perf_mesh_point(
    procs: usize,
    row_len: usize,
    policy: RoutingPolicy,
    t_p: u64,
    threads: usize,
    interrupt: Option<&Interrupt>,
) -> Result<MeshPerfPoint, MeshError> {
    let cfg = MeshConfig::table3(procs, t_p)
        .with_policy(policy)
        .with_threads(threads);
    let mut mesh = load_transpose(cfg, procs, row_len);
    if let Some(intr) = interrupt {
        mesh.set_interrupt(intr.clone());
    }
    let t0 = std::time::Instant::now();
    let res = mesh.run()?;
    let wall_s = t0.elapsed().as_secs_f64();
    Ok(MeshPerfPoint {
        cycles: res.cycles,
        flit_moves: res.energy.router_traversals,
        wall_s,
    })
}

// ---------------------------------------------------------------------------
// collectives family
// ---------------------------------------------------------------------------

/// One collective-traffic result row (field order is the
/// `results/collectives.json` byte contract). `cycles` is the fabric's
/// native sequential unit: mesh cycles on the electronic side, bus slots
/// on the photonic side.
#[derive(Debug, Clone, Serialize)]
pub struct CollectiveRow {
    /// Collective wire label (`alltoall` / `allgather` / `allreduce`).
    pub collective: String,
    /// `"mesh"` or `"sca"`.
    pub fabric: String,
    /// Geometry label: the mesh topology (`"4x4"`, `"4x4t"`, …) or the
    /// SCA processor count (`"p16"`).
    pub geometry: String,
    /// Participating nodes.
    pub participants: u64,
    /// Payload words per node per block.
    pub words: usize,
    /// Executed phases.
    pub phases: usize,
    /// Mesh completion cycles, or SCA bus slots.
    pub cycles: u64,
    /// Golden-determinism fingerprint of the full run observables.
    pub fingerprint: u64,
}

/// Run one collective on the electronic mesh described by `spec`.
pub fn collective_mesh_row(
    spec: &CollectivesSpec,
    collective: Collective,
    telemetry: Option<&Registry>,
) -> Result<CollectiveRow, MeshError> {
    let cfg = MeshConfig {
        topology: spec.topology(),
        t_r: 1,
        policy: RoutingPolicy::Xy,
        memif: Default::default(),
        buffer_depth: 2,
        max_cycles: 1 << 30,
        threads: spec.threads,
    };
    let res = run_mesh_collective(collective, cfg, spec.words, telemetry)?;
    Ok(CollectiveRow {
        collective: collective.label().to_string(),
        fabric: "mesh".to_string(),
        geometry: spec.topology().label(),
        participants: res.participants,
        words: spec.words,
        phases: res.phases.len(),
        cycles: res.cycles,
        fingerprint: res.fingerprint(),
    })
}

/// Run one collective on the photonic SCA machine sized to `spec` (every
/// `width × height` processor participates; the head node hosts memory).
pub fn collective_sca_row(
    spec: &CollectivesSpec,
    collective: Collective,
    tracing: bool,
) -> Result<(CollectiveRow, Option<Registry>), MachineError> {
    let procs = spec.width * spec.height;
    let dram_words = procs * procs * spec.words;
    let mut machine = Machine::new(MachineConfig::paper_default(procs, dram_words));
    if tracing {
        machine.enable_telemetry();
    }
    let res = run_sca_collective(&mut machine, collective, spec.words)?;
    let row = CollectiveRow {
        collective: collective.label().to_string(),
        fabric: "sca".to_string(),
        geometry: format!("p{procs}"),
        participants: res.participants as u64,
        words: spec.words,
        phases: res.phase_names.len(),
        cycles: res.bus_slots,
        fingerprint: res.fingerprint(),
    };
    Ok((row, machine.take_telemetry()))
}

/// Run all three collectives on both fabrics: six deterministic rows in
/// [`Collective::ALL`] × (mesh, sca) order. The interrupt is polled
/// between rows, so cancellation is collective-granular.
pub fn run_collectives(
    spec: &CollectivesSpec,
    tracing: bool,
    interrupt: Option<&Interrupt>,
) -> Result<(Vec<CollectiveRow>, Vec<Registry>), WorkError> {
    let mut rows = Vec::with_capacity(Collective::ALL.len() * 2);
    let mut regs = Vec::new();
    let mesh_reg = tracing.then(Registry::new);
    let mut intr = interrupt.cloned();
    for collective in Collective::ALL {
        if let Some(cause) = intr.as_mut().and_then(|i| i.check(rows.len() as u64)) {
            return Err(WorkError::Cancelled {
                detail: format!("collectives cancelled after {} rows: {cause:?}", rows.len()),
            });
        }
        rows.push(collective_mesh_row(spec, collective, mesh_reg.as_ref()).map_err(classify_mesh)?);
        let (row, reg) = collective_sca_row(spec, collective, tracing).map_err(classify_machine)?;
        rows.push(row);
        regs.extend(reg);
    }
    regs.extend(mesh_reg);
    Ok((rows, regs))
}

// ---------------------------------------------------------------------------
// ablate_faults family
// ---------------------------------------------------------------------------

/// Word/flit error probabilities the `ablate_faults` bin sweeps. Spacing is
/// ≥ 2× so the retry counts separate cleanly under the fixed seeds.
pub const FAULT_RATES: &[f64] = &[0.0, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2];

/// One point of the degradation sweep (field order is the
/// `results/ablate_faults.json` byte contract).
#[derive(Debug, Clone, Serialize)]
pub struct FaultPoint {
    /// Swept error probability.
    pub rate: f64,
    // Electronic mesh, Table III transpose.
    /// Completion cycles.
    pub mesh_cycles: u64,
    /// Orion energy estimate, microjoules.
    pub mesh_energy_uj: f64,
    /// Flits corrupted in flight.
    pub mesh_corrupted_flits: u64,
    /// NACK-triggered retransmissions.
    pub mesh_retransmits: u64,
    /// Link outage events.
    pub mesh_link_down_events: u64,
    /// Elements lost past the retry budget (must be 0).
    pub mesh_dropped_elements: u64,
    // Photonic machine, SCA writeback sequence.
    /// Bus slots consumed.
    pub pscan_bus_slots: u64,
    /// Link-layer retries.
    pub pscan_retries: u64,
    /// Words corrupted by the injected faults.
    pub pscan_corrupted_words: u64,
    /// Gathers abandoned past the retry budget (must be 0).
    pub pscan_giveups: u64,
    /// Headline: recovery actions across both fabrics.
    pub total_retries: u64,
}

/// Mesh half of one sweep point: the Table III transpose under transient
/// flit corruption plus occasional link outages.
pub fn mesh_fault_point(
    rate: f64,
    procs: usize,
    row_len: usize,
    threads: usize,
    interrupt: Option<&Interrupt>,
) -> Result<(u64, f64, MeshFaultStats), MeshError> {
    let cfg = MeshConfig::table3(procs, 1).with_threads(threads);
    let mut mesh = load_transpose(cfg, procs, row_len);
    if let Some(intr) = interrupt {
        mesh.set_interrupt(intr.clone());
    }
    mesh.enable_faults(MeshFaultConfig {
        seed: 0xFA_u64,
        corrupt_rate: rate,
        link_down_rate: rate / 10.0,
        max_retransmits: 64,
        ..Default::default()
    });
    let res = mesh.run()?;
    let energy_uj = OrionParams::default().total_j(&res.energy, procs) * 1e6;
    Ok((res.cycles, energy_uj, res.faults.expect("layer attached")))
}

/// Machine half of one sweep point: `gathers` SCA writebacks of one 64-slot
/// burst each. Bursts are kept small so even the harshest swept rate stays
/// recoverable within the link-layer retry budget (CRC granularity =
/// burst). Returns `(bus_slots, retries, corrupted_words, giveups)`.
pub fn machine_fault_point(
    rate: f64,
    gathers: usize,
    interrupt: Option<&Interrupt>,
) -> Result<(u64, u64, u64, u64), MachineError> {
    const NODES: usize = 8;
    let spec = GatherSpec::interleaved(NODES, 4, 2); // 64 slots
    let burst = spec.total_slots() as usize;
    let mut m = Machine::new(MachineConfig::paper_default(NODES, gathers * burst));
    if let Some(intr) = interrupt {
        m.set_interrupt(intr.clone());
    }
    m.enable_faults(PscanFaultConfig {
        seed: 0xFA_u64,
        word_error_rate: rate,
        max_retries: 256,
        ..Default::default()
    });
    for g in 0..gathers {
        let words: Vec<Vec<u64>> = (0..NODES)
            .map(|n| vec![(g * NODES + n) as u64; burst / NODES])
            .collect();
        let addrs: Vec<u64> = (0..burst as u64).map(|k| (g * burst) as u64 + k).collect();
        // Swept rates stay within the retry budget; only a cancellation
        // (or a genuinely exhausted budget) propagates.
        m.try_gather_to_memory(&format!("wb{g}"), &spec, &words, &addrs)?;
    }
    let bus_slots: u64 = m.phases.iter().map(|p| p.bus_slots).sum();
    let retries: u64 = m.phases.iter().map(|p| p.retries).sum();
    let stats = m.fault_stats().expect("layer attached");
    Ok((bus_slots, retries, stats.injected, stats.giveups))
}

/// The full degradation sweep: every rate in the spec, both fabrics, in
/// parallel across rates (order preserved).
pub fn run_ablate_faults(
    spec: &AblateFaultsSpec,
    interrupt: Option<&Interrupt>,
) -> Result<Vec<FaultPoint>, WorkError> {
    spec.rates
        .par_iter()
        .map(|&rate| {
            eprintln!("rate = {rate:.0e}...");
            let (mesh_cycles, mesh_energy_uj, ms) =
                mesh_fault_point(rate, spec.procs, spec.row_len, spec.threads, interrupt)
                    .map_err(classify_mesh)?;
            let (pscan_bus_slots, pscan_retries, pscan_corrupted_words, pscan_giveups) =
                machine_fault_point(rate, spec.gathers, interrupt).map_err(classify_machine)?;
            Ok(FaultPoint {
                rate,
                mesh_cycles,
                mesh_energy_uj,
                mesh_corrupted_flits: ms.corrupted_flits,
                mesh_retransmits: ms.retransmits,
                mesh_link_down_events: ms.link_down_events,
                mesh_dropped_elements: ms.dropped_elements,
                pscan_bus_slots,
                pscan_retries,
                pscan_corrupted_words,
                pscan_giveups,
                total_retries: ms.retransmits + pscan_retries,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// crosscheck_models family
// ---------------------------------------------------------------------------

/// One Eq. 11/14 conformance row (deterministic: no wall-clock fields, so
/// repeated runs produce identical bytes the cache can vouch for).
#[derive(Debug, Clone, Serialize)]
pub struct CrosscheckRow {
    /// Which identity was checked (`eq11_total_time` / `eq14_efficiency`).
    pub check: String,
    /// Operating point, `P=..,N=..,k=..`.
    pub point: String,
    /// Machine-side measurement.
    pub measured: f64,
    /// Closed-form prediction.
    pub predicted: f64,
    /// `|measured − predicted| / |predicted|`.
    pub rel_err: f64,
    /// Tolerance the row is held to.
    pub tol: f64,
    /// `rel_err <= tol`.
    pub pass: bool,
    /// Fixed-point witness of the measured value.
    pub witness: u64,
}

/// Deterministic test signal: one `n`-sample row per processor (same
/// generator as the `crosscheck_models` bin).
pub fn crosscheck_signal_rows(procs: usize, n: usize) -> Vec<Vec<Complex64>> {
    (0..procs)
        .map(|p| {
            (0..n)
                .map(|i| {
                    Complex64::new(
                        ((p * 31 + i) as f64 * 0.1).sin(),
                        ((i * 17 + p) as f64 * 0.05).cos(),
                    )
                })
                .collect()
        })
        .collect()
}

/// The Eq. 11/14 conformance checks at every `k` in the spec, polled for
/// cancellation between points (the machine runs are short; per-point
/// granularity keeps cancellation prompt without threading an interrupt
/// through `run_model2_rows`).
pub fn run_crosscheck_model2(
    spec: &CrosscheckSpec,
    interrupt: Option<&Interrupt>,
) -> Result<Vec<CrosscheckRow>, WorkError> {
    use crate::crosscheck::{predict_model2, witness, TOL_ALGEBRAIC};
    let rows = crosscheck_signal_rows(spec.procs, spec.n);
    let mut intr = interrupt.cloned();
    let mut out = Vec::new();
    for (done, &k) in spec.ks.iter().enumerate() {
        if let Some(cause) = intr.as_mut().and_then(|i| i.check(done as u64)) {
            return Err(WorkError::Cancelled {
                detail: format!("crosscheck Cancelled after {done} point(s) ({cause})"),
            });
        }
        let point = format!("P={},N={},k={k}", spec.procs, spec.n);
        eprintln!("crosscheck: eq11 machine at {point} ...");
        let run = psync::run_model2_rows(spec.procs, spec.n, k, &rows);
        let pred = predict_model2(spec.procs, spec.n, k, run.serialized_seconds);
        let mut push = |check: &str, measured: f64, predicted: f64| {
            let rel_err = if predicted == 0.0 {
                measured.abs()
            } else {
                (measured - predicted).abs() / predicted.abs()
            };
            out.push(CrosscheckRow {
                check: check.to_string(),
                point: point.clone(),
                measured,
                predicted,
                rel_err,
                tol: TOL_ALGEBRAIC,
                pass: rel_err <= TOL_ALGEBRAIC,
                witness: witness(measured),
            });
        };
        push(
            "eq11_total_time",
            run.overlapped_seconds,
            pred.overlapped_seconds,
        );
        push("eq14_efficiency", run.efficiency, pred.efficiency);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// full_matrix family
// ---------------------------------------------------------------------------

/// Static definition of one matrix row: which model family, at which
/// operating point, under which delivery policy and fault rate.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixPointSpec {
    /// Row number, 1-based and stable across scales.
    pub id: usize,
    /// Model family (a `ci/validation_envelopes.json` family name).
    pub family: &'static str,
    /// Processor / mesh-node count.
    pub p: u64,
    /// Size parameter: FFT length (model2), block words (mesh), row
    /// length (table3).
    pub n: u64,
    /// Blocks per row (model2 families; 1 elsewhere).
    pub k: u64,
    /// Injected fault rate (cycle-accurate only — no closed form exists).
    pub fault_rate: f64,
    /// Delivery policy (`"sca"`, `"Xy"`, `"MinimalAdaptive"`).
    pub policy: &'static str,
}

impl MatrixPointSpec {
    /// The point's coordinates in the fidelity registry's key space.
    pub fn point_config(&self) -> PointConfig {
        PointConfig {
            family: self.family.to_string(),
            p: self.p,
            n: self.n,
            fault_rate: self.fault_rate,
            policy: self.policy.to_string(),
        }
    }

    /// Human-readable operating point, crosscheck-style.
    pub fn point_label(&self) -> String {
        let mut s = format!("P={},N={}", self.p, self.n);
        if self.family.starts_with("model2") {
            s.push_str(&format!(",k={}", self.k));
        }
        if self.fault_rate > 0.0 {
            s.push_str(&format!(",rate={:.0e}", self.fault_rate));
        }
        s
    }
}

/// The 21-row ablation matrix (perf-gate shaped: every historical sweep
/// dimension represented).
///
/// Rows 1–18 sweep the three validated families across their regions —
/// Model II Eq. 11 total time (P × k grid), Eq. 14 efficiency, the Eq. 21
/// mesh scatter across block sizes, and the Table III PSCAN writeback —
/// and are analytic-answerable under `auto`. Rows 19–21 are deliberately
/// outside every validated region (an unvalidated mesh geometry, an
/// unvalidated routing policy, a nonzero fault rate), so any policy that
/// consults the registry must take the cycle-accurate fallback there: the
/// matrix itself guarantees the fallback path is exercised on every run.
pub fn matrix_points(quick: bool) -> Vec<MatrixPointSpec> {
    let n_fft = if quick { 64 } else { 1024 };
    let mut rows = Vec::with_capacity(21);
    let mut id = 0;
    let mut push = |family, p, n, k, fault_rate, policy| {
        id += 1;
        rows.push(MatrixPointSpec {
            id,
            family,
            p,
            n,
            k,
            fault_rate,
            policy,
        });
    };
    // 1–6: Eq. 11 overlapped time, P × k.
    for p in [4u64, 8, 16] {
        for k in [1u64, 8] {
            push("model2_eq11", p, n_fft, k, 0.0, "sca");
        }
    }
    // 7–9: Eq. 14 efficiency at k = 4.
    for p in [4u64, 8, 16] {
        push("model2_eq14", p, n_fft, 4, 0.0, "sca");
    }
    // 10–14: Eq. 21 mesh scatter across block sizes.
    for block in [16u64, 32, 64, 128, 256] {
        push("mesh_eq21", 64, block, 1, 0.0, "Xy");
    }
    // 15–18: Table III PSCAN writeback.
    let t3: [(u64, u64); 4] = if quick {
        [(32, 32), (32, 64), (64, 32), (64, 64)]
    } else {
        [(128, 128), (256, 256), (512, 512), (1024, 1024)]
    };
    for (p, n) in t3 {
        push("table3_pscan", p, n, 1, 0.0, "sca");
    }
    // 19–21: outside validated territory — cycle-accurate fallbacks.
    push("mesh_eq21", 16, 8, 1, 0.0, "Xy"); // unvalidated geometry
    push("mesh_eq21", 64, 16, 1, 0.0, "MinimalAdaptive"); // unvalidated policy
    push("mesh_eq21", 16, 8, 1, 1e-2, "Xy"); // faulted fabric
    rows
}

/// One answered matrix row. Every field is deterministic — wall-clock
/// lives in [`FullMatrixTiming`], outside the cacheable result.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixRow {
    /// Row number (1–21).
    pub id: usize,
    /// Model family.
    pub family: String,
    /// Operating point label.
    pub point: String,
    /// Processor / node count.
    pub p: u64,
    /// Size parameter.
    pub n: u64,
    /// Blocks per row.
    pub k: u64,
    /// Injected fault rate.
    pub fault_rate: f64,
    /// Delivery policy.
    pub policy: String,
    /// The fidelity that answered this row (`decision.chosen`).
    pub fidelity: String,
    /// The answered quantity.
    pub value: f64,
    /// What `value` measures (`seconds`, `cycles`, `efficiency`).
    pub unit: String,
    /// The validated envelope attached to an analytic answer — the error
    /// bar within which the cycle-accurate fabric is known to agree.
    pub envelope_rel_err: Option<f64>,
    /// The full audit record of the fidelity selection.
    pub decision: FidelityDecision,
    /// The all-cycle-accurate reference value (reference runs only).
    pub reference_value: Option<f64>,
    /// `|value − reference| / |reference|` (reference runs only).
    pub reference_rel_err: Option<f64>,
    /// Whether an analytic answer landed inside its envelope against the
    /// measured reference (`None` for cycle-accurate rows).
    pub within_envelope: Option<bool>,
}

/// The deterministic result document of a `full_matrix` job.
#[derive(Debug, Clone, Serialize)]
pub struct FullMatrixResult {
    /// Point sizing used.
    pub scale: String,
    /// Requested fidelity policy (wire spelling).
    pub fidelity: String,
    /// Whether the reference pass ran.
    pub reference: bool,
    /// Rows answered from the closed forms.
    pub analytic_rows: usize,
    /// Rows answered by simulation.
    pub cycle_accurate_rows: usize,
    /// The 21 rows.
    pub rows: Vec<MatrixRow>,
}

/// Wall-clock accounting of one matrix run, kept out of the result
/// document so cached bytes stay machine-independent. The `full_matrix`
/// bin derives its speedup assertions from these.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullMatrixTiming {
    /// Wall seconds of the fidelity-selected pass (all 21 rows).
    pub selected_wall_s: f64,
    /// Wall seconds spent inside analytic evaluations alone.
    pub analytic_wall_s: f64,
    /// Wall seconds of the cycle-accurate reference pass (all rows).
    pub reference_wall_s: f64,
    /// Reference wall seconds over just the analytic-answered rows — the
    /// simulation time the fast path actually displaced.
    pub reference_analytic_wall_s: f64,
}

/// Evaluate one matrix point analytically (the validated closed forms).
/// Returns `(value, unit)`.
fn analytic_value(pt: &MatrixPointSpec) -> Result<(f64, &'static str), WorkError> {
    match pt.family {
        "model2_eq11" => Ok((
            model2_point(pt.p, pt.n, pt.k, &Model2TimingParams::default()).overlapped_seconds,
            "seconds",
        )),
        "model2_eq14" => Ok((
            model2_point(pt.p, pt.n, pt.k, &Model2TimingParams::default()).efficiency,
            "efficiency",
        )),
        "mesh_eq21" => Ok((mesh_scatter_cycles(pt.p, pt.n, 1) as f64, "cycles")),
        "table3_pscan" => Ok((table3_writeback_cycles(pt.p, pt.n) as f64, "cycles")),
        other => Err(WorkError::Fatal {
            detail: format!("no closed form for family {other:?}"),
        }),
    }
}

/// Evaluate one matrix point on its cycle-accurate fabric. Returns
/// `(value, unit)`.
fn cycle_accurate_value(
    pt: &MatrixPointSpec,
    interrupt: Option<&Interrupt>,
) -> Result<(f64, &'static str), WorkError> {
    match pt.family {
        "model2_eq11" | "model2_eq14" => {
            let (procs, n, k) = (pt.p as usize, pt.n as usize, pt.k as usize);
            let rows = crosscheck_signal_rows(procs, n);
            let run = psync::run_model2_rows(procs, n, k, &rows);
            if pt.family == "model2_eq11" {
                Ok((run.overlapped_seconds, "seconds"))
            } else {
                Ok((run.efficiency, "efficiency"))
            }
        }
        "mesh_eq21" => {
            let policy = match pt.policy {
                "Xy" => RoutingPolicy::Xy,
                "MinimalAdaptive" => RoutingPolicy::MinimalAdaptive,
                other => {
                    return Err(WorkError::Fatal {
                        detail: format!("unknown mesh policy {other:?}"),
                    })
                }
            };
            let cfg = MeshConfig {
                topology: Topology::square(pt.p as usize, MemifPlacement::SingleCorner),
                t_r: 1,
                policy,
                memif: Default::default(),
                buffer_depth: 2,
                max_cycles: 1 << 30,
                threads: 1,
            };
            let mut mesh = load_scatter(cfg, pt.n as usize, pt.k as usize);
            if pt.fault_rate > 0.0 {
                mesh.enable_faults(MeshFaultConfig {
                    seed: 0xFA_u64,
                    corrupt_rate: pt.fault_rate,
                    link_down_rate: pt.fault_rate / 10.0,
                    max_retransmits: 64,
                    ..Default::default()
                });
            }
            if let Some(intr) = interrupt {
                mesh.set_interrupt(intr.clone());
            }
            let res = mesh.run().map_err(classify_mesh)?;
            Ok((res.cycles as f64, "cycles"))
        }
        "table3_pscan" => {
            let (procs, row_len) = (pt.p as usize, pt.n as usize);
            let pscan = Pscan::new(PscanConfig::paper_default().with_nodes(procs));
            let spec = GatherSpec {
                slot_source: (0..procs * row_len).map(|k| k % procs).collect(),
            };
            let data: Vec<Vec<u64>> = (0..procs).map(|p| vec![p as u64; row_len]).collect();
            let out = pscan.gather(&spec, &data).map_err(|e| WorkError::Fatal {
                detail: format!("pscan gather: {e}"),
            })?;
            // The measured writeback: the SCA's slot span plus one header
            // slot per DRAM row — the same composition the conformance
            // oracle holds equal to Eqs. 23/24.
            let span_slots =
                out.last_arrival.since(out.first_arrival).as_ps() / pscan.slot().as_ps() + 1;
            let t3 = Table3Params {
                n: pt.n,
                p: pt.p,
                ..Default::default()
            };
            let headers = ((procs * row_len) as u64).div_ceil(t3.s_r / t3.s_b);
            Ok(((span_slots + headers) as f64, "cycles"))
        }
        other => Err(WorkError::Fatal {
            detail: format!("no fabric for family {other:?}"),
        }),
    }
}

/// Run the full matrix under `spec`'s fidelity policy.
///
/// Per row: consult the validation registry ([`decide`]), evaluate on the
/// chosen path, and — when `spec.reference` — also evaluate the
/// cycle-accurate reference and attach the disagreement columns. Rows the
/// selected pass already simulated reuse that value as their reference
/// (the fabrics are deterministic, so rerunning them would produce the
/// same number and twice the bill). Decisions are recorded on `telemetry`
/// when given; the interrupt is polled between rows and threaded into the
/// mesh runs.
pub fn run_full_matrix(
    spec: &FullMatrixSpec,
    interrupt: Option<&Interrupt>,
    telemetry: Option<&Registry>,
) -> Result<(FullMatrixResult, FullMatrixTiming), WorkError> {
    let policy = spec
        .policy()
        .map_err(|detail| WorkError::Fatal { detail })?;
    let registry = ValidationRegistry::builtin();
    let quick = spec.scale == "quick";
    let points = matrix_points(quick);

    let mut intr = interrupt.cloned();
    let mut rows = Vec::with_capacity(points.len());
    let mut timing = FullMatrixTiming::default();
    for (done, pt) in points.iter().enumerate() {
        if let Some(cause) = intr.as_mut().and_then(|i| i.check(done as u64)) {
            return Err(WorkError::Cancelled {
                detail: format!("full_matrix Cancelled after {done} row(s) ({cause})"),
            });
        }
        let decision = decide(policy, &pt.point_config(), &registry);
        if let Some(reg) = telemetry {
            record_decision(reg, &decision);
        }
        eprintln!(
            "full_matrix: row {:>2} {} [{}] -> {} ({})",
            pt.id,
            pt.family,
            pt.point_label(),
            decision.chosen,
            decision.reason
        );
        let t0 = std::time::Instant::now();
        let (value, unit) = if decision.is_analytic() {
            analytic_value(pt)?
        } else {
            cycle_accurate_value(pt, interrupt)?
        };
        let row_wall = t0.elapsed().as_secs_f64();
        timing.selected_wall_s += row_wall;
        if decision.is_analytic() {
            timing.analytic_wall_s += row_wall;
        }

        let (reference_value, reference_rel_err, within_envelope) = if spec.reference {
            let (ref_value, ref_wall) = if decision.is_analytic() {
                let t1 = std::time::Instant::now();
                let (v, _) = cycle_accurate_value(pt, interrupt)?;
                let w = t1.elapsed().as_secs_f64();
                timing.reference_analytic_wall_s += w;
                (v, w)
            } else {
                (value, row_wall)
            };
            timing.reference_wall_s += ref_wall;
            let rel = if ref_value == 0.0 {
                (value - ref_value).abs()
            } else {
                (value - ref_value).abs() / ref_value.abs()
            };
            let inside = decision.envelope_rel_err.map(|env| rel <= env + 1e-12);
            (Some(ref_value), Some(rel), inside)
        } else {
            (None, None, None)
        };

        rows.push(MatrixRow {
            id: pt.id,
            family: pt.family.to_string(),
            point: pt.point_label(),
            p: pt.p,
            n: pt.n,
            k: pt.k,
            fault_rate: pt.fault_rate,
            policy: pt.policy.to_string(),
            fidelity: decision.chosen.clone(),
            value,
            unit: unit.to_string(),
            envelope_rel_err: decision.envelope_rel_err,
            decision,
            reference_value,
            reference_rel_err,
            within_envelope,
        });
    }

    let analytic_rows = rows.iter().filter(|r| r.fidelity == "analytic").count();
    let result = FullMatrixResult {
        scale: spec.scale.clone(),
        fidelity: spec.fidelity.clone(),
        reference: spec.reference,
        analytic_rows,
        cycle_accurate_rows: rows.len() - analytic_rows,
        rows,
    };
    Ok((result, timing))
}

// ---------------------------------------------------------------------------
// Supervised execution: the shared work-closure builder
// ---------------------------------------------------------------------------

/// The cache key for `spec` under `timeout_s`: FNV-1a over the canonical
/// spec JSON plus the deadline bits. The deadline is part of the key so a
/// run cancelled at 0 s can never poison (or be served from) the untimed
/// entry.
pub fn cache_key(spec: &JobSpec, timeout_s: Option<f64>) -> u64 {
    fnv1a64(
        format!(
            "{}|timeout={:?}",
            spec.canonical_json(),
            timeout_s.map(f64::to_bits)
        )
        .as_bytes(),
    )
}

/// Package `spec` as a supervised job body: single-flight cache lookup
/// keyed on [`cache_key`], simulation on miss, structured error
/// classification — the one code path `run_batch` and `psyncd` both route
/// jobs through.
///
/// * `job_token` — an optional per-job cancel source (the daemon's `cancel`
///   verb). The watch is armed **now**, at build time, so a cancel that
///   lands while the job is still queued is honored before any simulation
///   starts. It composes with whatever interrupt the supervisor arms
///   (per-attempt deadline + batch-wide cancel).
/// * `progress` — an optional probe every fabric poll publishes its
///   position to (the daemon's `progress` event stream).
pub fn supervised_work(
    spec: JobSpec,
    timeout_s: Option<f64>,
    cache: Arc<ResultCache>,
    job_token: Option<&CancelToken>,
    progress: Option<Progress>,
) -> Arc<Work> {
    let watch = job_token.map(CancelToken::watch);
    Arc::new(move |interrupt| {
        let mut intr = interrupt.unwrap_or_default();
        if let Some(w) = &watch {
            if w.is_cancelled() {
                return Err(WorkError::Cancelled {
                    detail: "job cancelled before the attempt started".to_string(),
                });
            }
            intr = intr.with_watch(w.clone());
        }
        if let Some(p) = &progress {
            intr = intr.with_progress(p.clone());
        }
        let intr = intr.is_armed().then_some(&intr);
        let key = cache_key(&spec, timeout_s);
        let (entry, cached) =
            cache.get_or_build(key, || spec.run(false, intr).map(|(json, _)| json))?;
        Ok(JobSuccess {
            json: entry.result_json.clone(),
            cached,
            fingerprint: entry.fingerprint,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::cancel::CancelCause;

    fn tiny() -> Table3Spec {
        Table3Spec {
            procs: 16,
            row_len: 8,
            threads: 1,
        }
    }

    #[test]
    fn uninterrupted_run_produces_consistent_row() {
        let (row, regs) = run_table3(&tiny(), false, None).expect("tiny transpose completes");
        assert_eq!(row.procs, 16);
        assert!(row.pscan_cycles > 0);
        assert!(row.mesh_cycles_tp1 > 0);
        assert!(row.multiplier_tp1 > 0.0);
        assert!(regs.is_empty(), "no tracing requested");
    }

    #[test]
    fn interrupt_is_ignored_when_nothing_fires() {
        let idle = Interrupt::new().with_cycle_bound(u64::MAX);
        let (a, _) = run_table3(&tiny(), false, None).unwrap();
        let (b, _) = run_table3(&tiny(), false, Some(&idle)).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "an armed-but-silent interrupt must not perturb the numbers"
        );
    }

    #[test]
    fn cycle_bound_cancels_with_structured_error() {
        let intr = Interrupt::new().with_cycle_bound(0);
        let err = run_table3(&tiny(), false, Some(&intr)).expect_err("bound 0 fires immediately");
        match err {
            MeshError::Cancelled { cause, .. } => {
                assert_eq!(cause, CancelCause::CycleReached { bound: 0 });
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        assert!(err.to_string().contains("Cancelled"));
    }

    #[test]
    fn canonical_json_is_stable() {
        assert_eq!(
            Table3Spec::quick().canonical_json(),
            r#"{"procs":256,"row_len":256,"threads":1}"#
        );
        assert_eq!(
            JobSpec::Table3(Table3Spec::quick()).canonical_json(),
            r#"{"schema":3,"family":"table3","spec":{"procs":256,"row_len":256,"threads":1}}"#
        );
        assert_eq!(
            JobSpec::Collectives(CollectivesSpec::quick()).canonical_json(),
            r#"{"schema":3,"family":"collectives","spec":{"width":4,"height":4,"torus":false,"words":4,"threads":1}}"#
        );
    }

    #[test]
    fn schema2_requests_still_parse() {
        // Exact request bodies schema-2 clients sent (including ones that
        // decorated the spec with the old schema number — unknown fields
        // are ignored by contract). The v3 bump is additive only.
        for body in [
            r#"{"family":"table3","procs":64,"row_len":64}"#,
            r#"{"schema":2,"family":"table3","preset":"quick"}"#,
            r#"{"family":"perf_mesh","policy":"xy","t_p":4,"procs":16,"row_len":4}"#,
            r#"{"family":"ablate_faults","rates":[0.0,0.01],"procs":16,"row_len":8,"gathers":2}"#,
            r#"{"family":"crosscheck_models","procs":8,"n":64,"ks":[1,4]}"#,
            r#"{"family":"full_matrix","fidelity":"auto:0.05","reference":true}"#,
        ] {
            let spec = parse(body).unwrap_or_else(|e| panic!("{body}: {e}"));
            spec.validate().expect("schema-2 bodies stay valid");
        }
    }

    #[test]
    fn from_value_parses_collectives_geometry() {
        let spec = parse(r#"{"family":"collectives","width":8,"height":2,"torus":true,"words":3}"#)
            .unwrap();
        match &spec {
            JobSpec::Collectives(s) => {
                assert_eq!((s.width, s.height, s.torus, s.words), (8, 2, true, 3));
                assert_eq!(s.topology().label(), "8x2t");
            }
            other => panic!("expected Collectives, got {other:?}"),
        }
        let err = parse(r#"{"family":"collectives","width":1}"#).unwrap_err();
        assert!(err.contains("at least 2"), "{err}");
        let err = parse(r#"{"family":"collectives","torus":3}"#).unwrap_err();
        assert!(err.contains("torus"), "{err}");
    }

    #[test]
    fn deprecated_alias_still_compiles() {
        #[allow(deprecated)]
        let cfg: Table3Config = Table3Spec::quick();
        assert_eq!(cfg, Table3Spec::quick());
    }

    #[test]
    fn presets_cover_every_family() {
        for family in JobSpec::FAMILIES {
            for quick in [true, false] {
                let spec = JobSpec::preset(family, quick).expect("preset exists");
                assert_eq!(spec.family(), family);
                spec.validate().expect("presets validate");
                assert!(spec.canonical_json().contains(family));
            }
        }
        assert!(JobSpec::preset("nonsense", true).is_none());
    }

    fn parse(s: &str) -> Result<JobSpec, String> {
        JobSpec::from_value(&serde_json::from_str(s).expect("test specs are valid JSON"))
    }

    #[test]
    fn from_value_applies_preset_then_overrides() {
        let spec = parse(r#"{"family":"table3","procs":16,"row_len":8}"#).unwrap();
        assert_eq!(
            spec,
            JobSpec::Table3(Table3Spec {
                procs: 16,
                row_len: 8,
                threads: 1
            })
        );
        let spec = parse(r#"{"family":"table3","preset":"paper"}"#).unwrap();
        assert_eq!(spec, JobSpec::Table3(Table3Spec::paper()));
    }

    #[test]
    fn from_value_tolerates_unknown_fields() {
        let spec = parse(
            r#"{"family":"table3","procs":16,"row_len":8,"future_field":{"x":1},"note":"hi"}"#,
        )
        .unwrap();
        assert_eq!(spec.family(), "table3");
    }

    #[test]
    fn from_value_parses_every_family() {
        let pm = parse(r#"{"family":"perf_mesh","policy":"xy","t_p":4,"procs":16,"row_len":4}"#)
            .unwrap();
        match &pm {
            JobSpec::PerfMesh(s) => {
                assert_eq!(s.routing_policy().unwrap(), RoutingPolicy::Xy);
                assert_eq!(s.t_p, 4);
            }
            other => panic!("expected PerfMesh, got {other:?}"),
        }
        let af = parse(
            r#"{"family":"ablate_faults","rates":[0.0,0.01],"procs":16,"row_len":8,"gathers":2}"#,
        )
        .unwrap();
        match &af {
            JobSpec::AblateFaults(s) => assert_eq!(s.rates, vec![0.0, 0.01]),
            other => panic!("expected AblateFaults, got {other:?}"),
        }
        let cc = parse(r#"{"family":"crosscheck_models","procs":4,"n":16,"ks":[1,2]}"#).unwrap();
        match &cc {
            JobSpec::CrosscheckModels(s) => assert_eq!(s.ks, vec![1, 2]),
            other => panic!("expected CrosscheckModels, got {other:?}"),
        }
        let fm =
            parse(r#"{"family":"full_matrix","fidelity":"auto:0.1","reference":false}"#).unwrap();
        match &fm {
            JobSpec::FullMatrix(s) => {
                assert_eq!(s.fidelity, "auto:0.1");
                assert!(!s.reference);
                assert_eq!(s.scale, "quick");
            }
            other => panic!("expected FullMatrix, got {other:?}"),
        }
    }

    #[test]
    fn from_value_rejects_bad_specs_with_named_fields() {
        for (bad, needle) in [
            (r#"{"procs":16}"#, "family"),
            (r#"{"family":"warp_drive"}"#, "unknown family"),
            (r#"{"family":"table3","preset":"slow"}"#, "preset"),
            (r#"{"family":"table3","procs":"many"}"#, "procs"),
            (r#"{"family":"table3","procs":15}"#, "perfect square"),
            (r#"{"family":"table3","procs":0}"#, "positive"),
            (r#"{"family":"table3","threads":0}"#, "threads"),
            (r#"{"family":"perf_mesh","policy":"warp"}"#, "policy"),
            (r#"{"family":"ablate_faults","rates":[2.0]}"#, "rates"),
            (r#"{"family":"ablate_faults","rates":[]}"#, "rates"),
            (r#"{"family":"ablate_faults","gathers":0}"#, "gathers"),
            (r#"{"family":"crosscheck_models","ks":[3]}"#, "power of two"),
            (r#"{"family":"crosscheck_models","n":100}"#, "power of two"),
            (r#"{"family":"full_matrix","fidelity":"warp"}"#, "fidelity"),
            (r#"{"family":"full_matrix","scale":"huge"}"#, "scale"),
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad}: {err:?} lacks {needle:?}");
        }
        assert!(JobSpec::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn collectives_family_runs_both_fabrics_deterministically() {
        let spec = CollectivesSpec::quick();
        let (rows, regs) = run_collectives(&spec, false, None).expect("quick collectives run");
        assert_eq!(rows.len(), 6, "3 collectives x 2 fabrics");
        assert!(regs.is_empty(), "no tracing requested");
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].fabric, "mesh");
            assert_eq!(pair[1].fabric, "sca");
            assert_eq!(pair[0].collective, pair[1].collective);
            assert!(pair[0].cycles > 0 && pair[1].cycles > 0);
        }
        let (again, _) = run_collectives(&spec, false, None).unwrap();
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(
                a.fingerprint, b.fingerprint,
                "{} {}",
                a.collective, a.fabric
            );
        }
        // The torus variant is a different deterministic result, not a crash.
        let torus = CollectivesSpec {
            torus: true,
            ..spec
        };
        let (trows, _) = run_collectives(&torus, false, None).unwrap();
        assert_eq!(trows[0].geometry, "4x4t");
        assert_ne!(trows[0].fingerprint, rows[0].fingerprint);
    }

    #[test]
    fn canonical_json_distinguishes_specs_and_is_reparseable() {
        let a = JobSpec::Table3(tiny());
        let b = JobSpec::Table3(Table3Spec {
            procs: 64,
            ..tiny()
        });
        assert_ne!(a.canonical_json(), b.canonical_json());
        assert_ne!(cache_key(&a, None), cache_key(&b, None));
        assert_ne!(cache_key(&a, None), cache_key(&a, Some(1.0)));
        // The canonical envelope itself parses as JSON.
        let v = serde_json::from_str(&a.canonical_json()).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("family").and_then(Value::as_str), Some("table3"));
    }

    #[test]
    fn matrix_composition_is_21_rows_with_3_forced_fallbacks() {
        let registry = ValidationRegistry::builtin();
        let auto = FidelityPolicy::auto();
        for quick in [true, false] {
            let points = matrix_points(quick);
            assert_eq!(points.len(), 21);
            assert!(points.iter().enumerate().all(|(i, p)| p.id == i + 1));
            let analytic = points
                .iter()
                .filter(|p| decide(auto, &p.point_config(), &registry).is_analytic())
                .count();
            // Rows 19–21 (unvalidated geometry, unvalidated policy, faults)
            // must fall back to cycle-accurate at either scale.
            assert_eq!(analytic, 18, "quick={quick}");
            assert_eq!(points.iter().filter(|p| p.fault_rate > 0.0).count(), 1);
        }
    }

    #[test]
    fn full_matrix_runs_without_reference_and_labels_every_row() {
        let spec = FullMatrixSpec {
            reference: false,
            ..FullMatrixSpec::quick()
        };
        let (result, timing) = run_full_matrix(&spec, None, None).unwrap();
        assert_eq!(result.rows.len(), 21);
        assert_eq!(result.analytic_rows, 18);
        assert_eq!(result.cycle_accurate_rows, 3);
        for row in &result.rows {
            assert!(row.value > 0.0, "row {} has no answer", row.id);
            assert_eq!(row.fidelity, row.decision.chosen);
            assert_eq!(
                row.fidelity == "analytic",
                row.envelope_rel_err.is_some(),
                "row {}: analytic answers carry envelopes, simulated ones don't",
                row.id
            );
            assert!(row.reference_value.is_none());
            assert!(row.within_envelope.is_none());
        }
        assert!(timing.selected_wall_s > 0.0);
        assert!(timing.analytic_wall_s <= timing.selected_wall_s);
        // Determinism: a second run produces byte-identical result JSON.
        let (again, _) = run_full_matrix(&spec, None, None).unwrap();
        assert_eq!(
            serde_json::to_string(&result).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    #[test]
    fn tiny_specs_run_to_deterministic_json() {
        let specs = [
            JobSpec::Table3(tiny()),
            JobSpec::PerfMesh(PerfMeshSpec {
                procs: 16,
                row_len: 4,
                policy: "Xy".to_string(),
                t_p: 1,
                threads: 1,
            }),
            JobSpec::AblateFaults(AblateFaultsSpec {
                rates: vec![0.0, 0.01],
                procs: 16,
                row_len: 8,
                gathers: 2,
                threads: 1,
            }),
            JobSpec::CrosscheckModels(CrosscheckSpec {
                procs: 4,
                n: 16,
                ks: vec![1, 2],
            }),
        ];
        for spec in specs {
            let (a, regs) = spec.run(false, None).expect("tiny spec runs");
            let (b, _) = spec.run(false, None).expect("rerun");
            assert_eq!(
                a,
                b,
                "{}: result bytes must be deterministic",
                spec.family()
            );
            assert!(regs.is_empty());
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn crosscheck_rows_pass_their_tolerance() {
        let rows = run_crosscheck_model2(
            &CrosscheckSpec {
                procs: 4,
                n: 16,
                ks: vec![1, 4],
            },
            None,
        )
        .unwrap();
        assert_eq!(rows.len(), 4, "two checks per k");
        for r in &rows {
            assert!(r.pass, "{}@{}: rel_err {}", r.check, r.point, r.rel_err);
        }
    }

    #[test]
    fn supervised_work_caches_and_honors_job_token() {
        let cache = Arc::new(ResultCache::new());
        let spec = JobSpec::Table3(tiny());
        let work = supervised_work(spec.clone(), None, Arc::clone(&cache), None, None);
        let first = work(None).expect("tiny job runs");
        assert!(!first.cached);
        let again = work(None).expect("cache hit");
        assert!(again.cached);
        assert_eq!(first.json, again.json, "byte-identical from the cache");
        assert_eq!(first.fingerprint, again.fingerprint);

        // A token cancelled while the job is still queued prevents any run.
        let token = CancelToken::new();
        let cancelled = supervised_work(
            JobSpec::Table3(Table3Spec {
                procs: 64,
                ..tiny()
            }),
            None,
            Arc::clone(&cache),
            Some(&token),
            None,
        );
        token.cancel();
        match cancelled(None) {
            Err(WorkError::Cancelled { detail }) => {
                assert!(detail.contains("before the attempt"), "{detail}")
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn supervised_work_reports_progress() {
        let cache = Arc::new(ResultCache::new());
        let probe = Progress::new();
        let work = supervised_work(
            JobSpec::Table3(tiny()),
            None,
            cache,
            None,
            Some(probe.clone()),
        );
        work(None).expect("tiny job runs");
        assert!(probe.polls() > 0, "fabric polls published progress");
        assert!(probe.cycle().is_some());
    }
}
