//! Experiment workloads shared between the standalone harness binaries and
//! the supervised batch driver (`run_batch`).
//!
//! The Table III transpose is the reference workload: `table3_transpose`
//! runs it directly, and `run_batch` runs the *same* function under the
//! [`crate::supervisor`], so a supervised result file is byte-identical to
//! a direct one. Every knob that affects the numbers lives in
//! [`Table3Config`], which serializes canonically for the result cache's
//! config hash.

use analytic::table3::{
    table3_pscan_cycles, Table3Params, PAPER_MESH_WRITEBACK_TP1, PAPER_MESH_WRITEBACK_TP4,
};
use emesh::mesh::{MeshConfig, MeshError};
use emesh::workloads::load_transpose;
use rayon::prelude::*;
use serde::Serialize;
use sim_core::cancel::Interrupt;
use sim_core::telemetry::Registry;

/// The Table III workload configuration: everything that determines the
/// resulting cycle counts.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Config {
    /// Mesh/PSCAN processor count `P` (a perfect square for the mesh).
    pub procs: usize,
    /// Samples per processor row, `N`.
    pub row_len: usize,
    /// Worker threads for the deterministic parallel mesh scheduler.
    /// Results are bit-identical for any value.
    pub threads: usize,
}

impl Table3Config {
    /// The `--quick` configuration (256 processors, 256-sample rows).
    pub fn quick() -> Self {
        Table3Config {
            procs: 256,
            row_len: 256,
            threads: 1,
        }
    }

    /// The full paper configuration (P = 1024, N = 1024).
    pub fn paper() -> Self {
        Table3Config {
            procs: 1024,
            row_len: 1024,
            threads: 1,
        }
    }

    /// Canonical JSON for config hashing ([`crate::cache`]).
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("Table3Config serializes")
    }
}

/// One Table III result row, serialized to `results/table3.json` (direct
/// run) or `results/batch/table3.json` (supervised run) — the field set and
/// order are the byte-identity contract between the two paths.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Processor count.
    pub procs: usize,
    /// Samples per row.
    pub row_len: usize,
    /// PSCAN SCA writeback, closed form Eq. (23)/(24).
    pub pscan_cycles: u64,
    /// Simulated mesh writeback at `t_p = 1`.
    pub mesh_cycles_tp1: u64,
    /// Simulated mesh writeback at `t_p = 4`.
    pub mesh_cycles_tp4: u64,
    /// `mesh_cycles_tp1 / pscan_cycles`.
    pub multiplier_tp1: f64,
    /// `mesh_cycles_tp4 / pscan_cycles`.
    pub multiplier_tp4: f64,
    /// The paper's Table III multiplier at `t_p = 1`.
    pub paper_multiplier_tp1: f64,
    /// The paper's Table III multiplier at `t_p = 4`.
    pub paper_multiplier_tp4: f64,
}

/// Simulate the mesh transpose writeback at `t_p`, optionally instrumented
/// and optionally under an interrupt (cancellation surfaces as
/// [`MeshError::Cancelled`]).
pub fn mesh_transpose_cycles(
    cfg: &Table3Config,
    t_p: u64,
    tracing: bool,
    interrupt: Option<&Interrupt>,
) -> Result<(u64, Option<Registry>), MeshError> {
    let mesh_cfg = MeshConfig::table3(cfg.procs, t_p).with_threads(cfg.threads);
    let mut mesh = load_transpose(mesh_cfg, cfg.procs, cfg.row_len);
    if tracing {
        mesh.enable_telemetry();
    }
    if let Some(intr) = interrupt {
        mesh.set_interrupt(intr.clone());
    }
    let res = mesh.run()?;
    let s = res.memif_stats[0];
    assert_eq!(
        s.elements as usize,
        cfg.procs * cfg.row_len,
        "lost elements"
    );
    Ok((res.cycles, mesh.take_telemetry()))
}

/// Run the complete Table III workload: the PSCAN closed form plus the two
/// mesh simulations (`t_p = 1` and `t_p = 4`, in parallel), assembled into
/// the canonical row.
///
/// With `interrupt` installed, each mesh polls its own clone; a deadline or
/// token cancels both, and the `t_p = 1` error is the one reported (index
/// order, so the failure is deterministic). Telemetry registries (when
/// `tracing`) come back alongside the row in `t_p` order.
pub fn run_table3(
    cfg: &Table3Config,
    tracing: bool,
    interrupt: Option<&Interrupt>,
) -> Result<(Table3Row, Vec<Registry>), MeshError> {
    let params = Table3Params {
        n: cfg.row_len as u64,
        p: cfg.procs as u64,
        ..Default::default()
    };
    let pscan = params.pscan_cycles();

    // The two t_p points are independent simulations: run them in parallel.
    let mesh_runs: Vec<Result<(u64, Option<Registry>), MeshError>> = [1u64, 4]
        .into_par_iter()
        .map(|t_p| {
            eprintln!(
                "simulating mesh transpose (P = {}, N = {}, t_p = {t_p})...",
                cfg.procs, cfg.row_len
            );
            // Trace only the t_p = 1 run: one fully-instrumented mesh is
            // what the trace viewer wants, not two interleaved ones.
            mesh_transpose_cycles(cfg, t_p, tracing && t_p == 1, interrupt)
        })
        .collect();
    let mut cycles = Vec::new();
    let mut registries = Vec::new();
    for run in mesh_runs {
        let (c, reg) = run?;
        cycles.push(c);
        registries.extend(reg);
    }
    let (mesh1, mesh4) = (cycles[0], cycles[1]);

    let row = Table3Row {
        procs: cfg.procs,
        row_len: cfg.row_len,
        pscan_cycles: pscan,
        mesh_cycles_tp1: mesh1,
        mesh_cycles_tp4: mesh4,
        multiplier_tp1: mesh1 as f64 / pscan as f64,
        multiplier_tp4: mesh4 as f64 / pscan as f64,
        paper_multiplier_tp1: PAPER_MESH_WRITEBACK_TP1 as f64 / table3_pscan_cycles() as f64,
        paper_multiplier_tp4: PAPER_MESH_WRITEBACK_TP4 as f64 / table3_pscan_cycles() as f64,
    };
    Ok((row, registries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::cancel::CancelCause;

    fn tiny() -> Table3Config {
        Table3Config {
            procs: 16,
            row_len: 8,
            threads: 1,
        }
    }

    #[test]
    fn uninterrupted_run_produces_consistent_row() {
        let (row, regs) = run_table3(&tiny(), false, None).expect("tiny transpose completes");
        assert_eq!(row.procs, 16);
        assert!(row.pscan_cycles > 0);
        assert!(row.mesh_cycles_tp1 > 0);
        assert!(row.multiplier_tp1 > 0.0);
        assert!(regs.is_empty(), "no tracing requested");
    }

    #[test]
    fn interrupt_is_ignored_when_nothing_fires() {
        let idle = Interrupt::new().with_cycle_bound(u64::MAX);
        let (a, _) = run_table3(&tiny(), false, None).unwrap();
        let (b, _) = run_table3(&tiny(), false, Some(&idle)).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "an armed-but-silent interrupt must not perturb the numbers"
        );
    }

    #[test]
    fn cycle_bound_cancels_with_structured_error() {
        let intr = Interrupt::new().with_cycle_bound(0);
        let err = run_table3(&tiny(), false, Some(&intr)).expect_err("bound 0 fires immediately");
        match err {
            MeshError::Cancelled { cause, .. } => {
                assert_eq!(cause, CancelCause::CycleReached { bound: 0 });
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        assert!(err.to_string().contains("Cancelled"));
    }

    #[test]
    fn canonical_json_is_stable() {
        assert_eq!(
            Table3Config::quick().canonical_json(),
            r#"{"procs":256,"row_len":256,"threads":1}"#
        );
    }
}
